"""Unit tests for the cross-system configuration checker."""

import pytest

from repro.common.config import Configuration, MergePolicy
from repro.confcheck import (
    Deployment,
    Rule,
    Severity,
    Violation,
    check_deployment,
    default_rules,
)
from repro.core.taxonomy import ConfigPattern
from repro.flinklite.configs import HEAP_CUTOFF_RATIO, JM_PROCESS_SIZE_MB, FlinkConf
from repro.sparklite.conf import SparkConf
from repro.yarnlite.configs import (
    INCREMENT_MB,
    MAX_ALLOC_MB,
    MIN_ALLOC_MB,
    SCHEDULER_CLASS,
    YarnConf,
)


def make_deployment(**tweaks):
    yarn = YarnConf()
    flink = FlinkConf()
    spark = SparkConf()
    for key, value in tweaks.items():
        applied = False
        for conf in (yarn, flink, spark):
            if key in conf.declared:
                conf.set(key, value, source="test")
                applied = True
                break
        assert applied, f"unknown key {key}"
    return Deployment().add(yarn).add(flink).add(spark)


class TestFramework:
    def test_coherent_default_deployment(self):
        violations = check_deployment(make_deployment(), default_rules())
        assert violations == []

    def test_rules_skip_missing_systems(self):
        deployment = Deployment().add(SparkConf())
        # flink/yarn rules are simply not applicable
        violations = check_deployment(deployment, default_rules())
        assert all("flink" not in v.systems for v in violations)

    def test_errors_sort_before_warnings(self):
        rule_w = Rule(
            "w", ConfigPattern.IGNORANCE, "", (),
            lambda d: [Violation("w", ConfigPattern.IGNORANCE,
                                 Severity.WARNING, "", ("x",))],
        )
        rule_e = Rule(
            "e", ConfigPattern.IGNORANCE, "", (),
            lambda d: [Violation("e", ConfigPattern.IGNORANCE,
                                 Severity.ERROR, "", ("x",))],
        )
        violations = check_deployment(Deployment(), [rule_w, rule_e])
        assert [v.severity for v in violations] == ["error", "warning"]

    def test_require_missing_raises(self):
        with pytest.raises(KeyError):
            Deployment().require("yarn")


class TestFlink19141Rule:
    def test_fair_with_mismatched_keys_flagged(self):
        deployment = make_deployment(**{
            SCHEDULER_CLASS: "fair",
            MIN_ALLOC_MB: 1024,
            INCREMENT_MB: 512,
        })
        violations = check_deployment(deployment, default_rules())
        ids = [v.rule_id for v in violations]
        assert "flink-yarn-allocation-keys" in ids
        flagged = next(
            v for v in violations if v.rule_id == "flink-yarn-allocation-keys"
        )
        assert flagged.pattern is ConfigPattern.INCONSISTENT_CONTEXT
        assert flagged.severity == Severity.ERROR

    def test_capacity_scheduler_not_flagged(self):
        deployment = make_deployment(**{
            SCHEDULER_CLASS: "capacity",
            INCREMENT_MB: 512,
        })
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "flink-yarn-allocation-keys" not in ids

    def test_aligned_keys_not_flagged(self):
        deployment = make_deployment(**{
            SCHEDULER_CLASS: "fair",
            MIN_ALLOC_MB: 1024,
            INCREMENT_MB: 1024,
        })
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "flink-yarn-allocation-keys" not in ids


class TestFlink887Rule:
    def test_zero_cutoff_flagged(self):
        deployment = make_deployment(**{HEAP_CUTOFF_RATIO: "0.0"})
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "flink-yarn-pmem-headroom" in ids

    def test_disabled_monitor_not_flagged(self):
        deployment = make_deployment(**{
            HEAP_CUTOFF_RATIO: "0.0",
            "yarn.nodemanager.pmem-check-enabled": "false",
        })
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "flink-yarn-pmem-headroom" not in ids


class TestContainerSizeRule:
    def test_oversized_container_flagged(self):
        deployment = make_deployment(**{
            JM_PROCESS_SIZE_MB: 16384,
            MAX_ALLOC_MB: 8192,
        })
        violations = [
            v
            for v in check_deployment(deployment, default_rules())
            if v.rule_id == "flink-yarn-container-size"
        ]
        assert violations  # exceeds both the scheduler max and the NM


class TestSpark10181Rule:
    def test_half_configured_kerberos_flagged(self):
        deployment = make_deployment(**{"spark.yarn.keytab": "/etc/kt"})
        violations = [
            v
            for v in check_deployment(deployment, default_rules())
            if v.rule_id == "spark-hive-kerberos-pair"
        ]
        assert violations
        assert violations[0].pattern is ConfigPattern.IGNORANCE

    def test_fully_configured_not_flagged(self):
        deployment = make_deployment(**{
            "spark.yarn.keytab": "/etc/kt",
            "spark.yarn.principal": "spark@REALM",
        })
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "spark-hive-kerberos-pair" not in ids


class TestSpark16901Rule:
    def test_silent_overwrite_detected(self):
        hive_site = Configuration(system="hive-site")
        hive_site.set("hive.metastore.uris", "thrift://prod:9083", "operator")
        spark = SparkConf()
        spark.set("hive.metastore.uris", "thrift://localhost:9083",
                  source="hadoop-defaults")
        deployment = make_deployment()
        deployment.add(hive_site)
        deployment.configurations["spark"] = spark
        violations = [
            v
            for v in check_deployment(deployment, default_rules())
            if v.rule_id == "spark-hive-config-overwrite"
        ]
        assert violations
        assert violations[0].pattern is ConfigPattern.UNEXPECTED_OVERRIDE

    def test_preserved_value_not_flagged(self):
        hive_site = Configuration(system="hive-site")
        hive_site.set("hive.metastore.uris", "thrift://prod:9083", "operator")
        spark = SparkConf()
        spark.merge(hive_site, MergePolicy.PREFER_OTHER)
        deployment = make_deployment()
        deployment.add(hive_site)
        deployment.configurations["spark"] = spark
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "spark-hive-config-overwrite" not in ids


class TestSpark15046Rule:
    def test_unit_mistake_flagged(self):
        deployment = make_deployment(**{"spark.network.timeout": 86_400_079})
        violations = [
            v
            for v in check_deployment(deployment, default_rules())
            if v.rule_id == "spark-yarn-interval-magnitude"
        ]
        assert violations
        assert violations[0].pattern is ConfigPattern.MISHANDLING_VALUES

    def test_sane_interval_not_flagged(self):
        deployment = make_deployment(**{"spark.network.timeout": "120s"})
        ids = [v.rule_id for v in check_deployment(deployment, default_rules())]
        assert "spark-yarn-interval-magnitude" not in ids
