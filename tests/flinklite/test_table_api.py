"""Tests for Flink's table layer and the FLINK-17189 mechanism."""

import datetime

import pytest

from repro.common.schema import Schema
from repro.errors import QueryError
from repro.flinklite.table_api import FlinkTableEnvironment, ProctimeLostError
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import HiveMetastore
from repro.kafkalite.log import PartitionLog
from repro.scenarios.data_flink_hive import replay_flink_17189
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def env():
    hive = HiveServer(HiveMetastore(), FileSystem(NameNode()))
    return FlinkTableEnvironment(hive)


def stream(records=4):
    log = PartitionLog("s")
    for index in range(records):
        log.append({"user": f"u{index}"}, timestamp_ms=index * 60_000)
    return log


class TestStreamToTable:
    def test_materializes_rows(self, env):
        rows = env.table_from_stream("t", stream(3), Schema.of(("user", "string")))
        assert [r["user"] for r in rows] == ["u0", "u1", "u2"]

    def test_proctime_column_synthesized(self, env):
        rows = env.table_from_stream(
            "t", stream(2), Schema.of(("user", "string")),
            proctime_column="proc_ts",
        )
        assert rows[0].schema.names() == ("user", "proc_ts")
        assert isinstance(rows[1]["proc_ts"], datetime.datetime)
        assert rows[1]["proc_ts"] - rows[0]["proc_ts"] == datetime.timedelta(
            minutes=1
        )

    def test_non_row_records_rejected(self, env):
        log = PartitionLog("s")
        log.append("not-a-dict")
        with pytest.raises(QueryError):
            env.table_from_stream("t", log, Schema.of(("user", "string")))

    def test_missing_columns_read_null(self, env):
        log = PartitionLog("s")
        log.append({"other": 1})
        rows = env.table_from_stream("t", log, Schema.of(("user", "string")))
        assert rows[0]["user"] is None


class TestCatalogRoundTrip:
    def test_proctime_stored_as_plain_timestamp(self, env):
        rows = env.table_from_stream(
            "t", stream(2), Schema.of(("user", "string")),
            proctime_column="proc_ts",
        )
        env.write_to_hive("t", rows, rows[0].schema)
        schema, back = env.read_from_hive("t")
        assert schema.field("proc_ts").data_type.simple_string() == "timestamp"
        assert len(back) == 2

    def test_window_aggregate_with_live_attribute(self, env):
        rows = env.table_from_stream(
            "t", stream(6), Schema.of(("user", "string")),
            proctime_column="proc_ts",
        )
        env.write_to_hive("t", rows, rows[0].schema)
        windows = env.window_aggregate("t", window_minutes=2)
        assert sum(windows.values()) == 6
        assert len(windows) == 3  # 6 events at 1-minute spacing, 2-min windows

    def test_restarted_environment_loses_attribute(self, env):
        rows = env.table_from_stream(
            "t", stream(2), Schema.of(("user", "string")),
            proctime_column="proc_ts",
        )
        env.write_to_hive("t", rows, rows[0].schema)
        restarted = FlinkTableEnvironment(env.hive)
        with pytest.raises(ProctimeLostError):
            restarted.window_aggregate("t")

    def test_reregistration_restores(self, env):
        rows = env.table_from_stream(
            "t", stream(2), Schema.of(("user", "string")),
            proctime_column="proc_ts",
        )
        env.write_to_hive("t", rows, rows[0].schema)
        restarted = FlinkTableEnvironment(env.hive)
        restarted.register_proctime("t", "proc_ts")
        assert sum(restarted.window_aggregate("t").values()) == 2


class TestScenario:
    def test_failing_and_fixed(self):
        assert replay_flink_17189().failed
        fixed = replay_flink_17189(fixed=True)
        assert not fixed.failed
        assert fixed.metrics["window_buckets"] > 0

    def test_stored_type_is_the_collapse(self):
        outcome = replay_flink_17189()
        assert outcome.metrics["stored_type"] == "timestamp"
