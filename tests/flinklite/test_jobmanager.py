"""Unit tests for Flink JVM sizing and container arithmetic."""

from repro.flinklite.configs import (
    HEAP_CUTOFF_RATIO,
    JM_PROCESS_SIZE_MB,
    FlinkConf,
)
from repro.flinklite.jobmanager import (
    JobManagerSpec,
    expected_container_resource,
    jvm_heap_for_container,
)
from repro.yarnlite.configs import MIN_ALLOC_MB, YarnConf
from repro.yarnlite.resources import Resource


class TestHeapSizing:
    def test_default_cutoff_leaves_headroom(self):
        conf = FlinkConf()
        heap = jvm_heap_for_container(conf, 2048)
        assert heap < 2048
        # cutoff is max(ratio * size, cutoff-min=600)
        assert heap == 2048 - 600

    def test_large_container_uses_ratio(self):
        conf = FlinkConf()
        heap = jvm_heap_for_container(conf, 4000)
        assert heap == 4000 - 1000  # 25% > 600

    def test_zero_cutoff_uses_whole_container(self):
        conf = FlinkConf()
        conf.set(HEAP_CUTOFF_RATIO, "0.0")
        assert jvm_heap_for_container(conf, 2048) == 2048

    def test_spec_peak_exceeds_container_without_cutoff(self):
        conf = FlinkConf()
        conf.set(HEAP_CUTOFF_RATIO, "0.0")
        conf.set(JM_PROCESS_SIZE_MB, 1600)
        spec = JobManagerSpec(conf)
        assert spec.peak_pmem_mb() > spec.container_mb()

    def test_spec_peak_fits_with_default_cutoff(self):
        conf = FlinkConf()
        conf.set(JM_PROCESS_SIZE_MB, 1600)
        spec = JobManagerSpec(conf)
        assert spec.peak_pmem_mb() <= spec.container_mb()


class TestContainerArithmetic:
    def test_expectation_follows_min_allocation(self):
        yarn_conf = YarnConf()
        yarn_conf.set(MIN_ALLOC_MB, 1024)
        expected = expected_container_resource(
            FlinkConf(), yarn_conf, Resource(1500, 1)
        )
        assert expected == Resource(2048, 1)

    def test_expectation_ignores_increment_keys(self):
        # this *is* the FLINK-19141 bug: Flink's arithmetic never reads
        # the increment-allocation keys
        yarn_conf = YarnConf()
        yarn_conf.set(MIN_ALLOC_MB, 1024)
        yarn_conf.set(
            "yarn.resource-types.memory-mb.increment-allocation", 512
        )
        expected = expected_container_resource(
            FlinkConf(), yarn_conf, Resource(1500, 1)
        )
        assert expected == Resource(2048, 1)  # not 1536
