"""Unit tests for the Flink YARN connector loop (FLINK-12342)."""

import pytest

from repro.common.events import EventLoop
from repro.flinklite.configs import REQUEST_INTERVAL_MS, FlinkConf
from repro.flinklite.yarn_connector import FixStage, FlinkYarnResourceManager
from repro.yarnlite.resourcemanager import ResourceManager
from repro.yarnlite.resources import Resource


def build(needed=10, latency=300, interval=500, fix=FixStage.BUGGY):
    loop = EventLoop()
    yarn = ResourceManager(loop, allocation_latency_ms=latency)
    conf = FlinkConf()
    conf.set(REQUEST_INTERVAL_MS, interval)
    flink = FlinkYarnResourceManager(
        loop, yarn,
        needed_containers=needed,
        container_resource=Resource(1024, 1),
        conf=conf,
        fix_stage=fix,
    )
    return loop, yarn, flink


class TestBuggyLoop:
    def test_fast_allocation_no_snowball(self):
        # allocation completes within the interval: the sync assumption
        # happens to hold and nothing goes wrong
        loop, yarn, flink = build(needed=1, latency=100, interval=500)
        flink.start()
        loop.run_until(60_000, max_events=50_000)
        assert flink.satisfied
        assert flink.total_requested <= 2

    def test_slow_allocation_snowballs(self):
        loop, yarn, flink = build(needed=10, latency=300, interval=500)
        flink.start()
        loop.run_until(120_000, max_events=100_000)
        assert flink.total_requested > 10 * 5

    def test_requests_grow_each_tick(self):
        loop, yarn, flink = build(needed=5, latency=10_000, interval=500)
        flink.start()
        loop.run_until(2_000, max_events=10_000)
        counts = [entry.count for entry in flink.request_log]
        # Figure 1's aggregation: 5, then 5+5+... strictly increasing
        assert counts[0] == 5
        assert all(b > a for a, b in zip(counts, counts[1:]))

    def test_excess_containers_released(self):
        loop, yarn, flink = build(needed=3, latency=300, interval=100)
        flink.start()
        loop.run_to_completion(max_events=500_000)
        assert flink.satisfied
        assert len(flink.allocated) == 3
        # everything beyond the need went back to the cluster
        assert yarn.available == yarn.cluster_resource - Resource(1024, 1) * 3


class TestFixes:
    def test_workaround_interval(self):
        loop, yarn, flink = build(needed=10, latency=300, interval=10_000)
        flink.start()
        loop.run_until(120_000, max_events=100_000)
        assert flink.satisfied
        assert flink.total_requested == 10

    def test_workaround_decrement(self):
        loop, yarn, flink = build(
            needed=10, latency=300, interval=500,
            fix=FixStage.WORKAROUND_DECREMENT,
        )
        flink.start()
        loop.run_until(120_000, max_events=100_000)
        assert flink.satisfied
        assert flink.total_requested == 10

    def test_resolution_async(self):
        loop, yarn, flink = build(
            needed=10, latency=300, interval=500, fix=FixStage.RESOLUTION_ASYNC
        )
        flink.start()
        loop.run_to_completion(max_events=100_000)
        assert flink.satisfied
        assert flink.total_requested == 10
        assert len(flink.request_log) == 1  # one batch, no polling

    def test_overload_factor_metric(self):
        loop, yarn, flink = build(needed=10, latency=300, interval=500)
        flink.start()
        loop.run_until(60_000, max_events=100_000)
        assert flink.overload_factor(10) == flink.total_requested / 10

    def test_zero_need_is_trivially_satisfied(self):
        loop, yarn, flink = build(needed=0)
        flink.start()
        loop.run_to_completion(max_events=1000)
        assert flink.satisfied
        assert flink.total_requested == 0
        assert flink.overload_factor(0) == 0.0
