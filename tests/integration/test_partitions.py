"""Partitioned tables: layout, pruning, and the Address-family
discrepancy (partition values are strings in paths; each engine
re-types them on its own terms)."""

import pytest

from repro.errors import AnalysisException, MetastoreError, StorageError
from repro.hivelite.engine import HiveServer
from repro.hivelite.warehouse import parse_partition_dirname, partition_dirname
from repro.sparklite.session import SparkSession


@pytest.fixture
def deployment():
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    return spark, hive


class TestDirnames:
    def test_roundtrip(self):
        assert parse_partition_dirname(partition_dirname("p", "01")) == ("p", "01")

    def test_null_sentinel(self):
        assert partition_dirname("p", None) == "p=__HIVE_DEFAULT_PARTITION__"

    def test_unencodable_rejected(self):
        with pytest.raises(StorageError):
            partition_dirname("p", "a/b")
        with pytest.raises(StorageError):
            partition_dirname("p", "a=b")

    def test_parse_garbage_rejected(self):
        with pytest.raises(StorageError):
            parse_partition_dirname("no-separator")


class TestHivePartitionedTables:
    def test_layout_on_disk(self, deployment):
        spark, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        table = spark.metastore.get_table("t")
        assert spark.filesystem.exists(f"{table.location}/day=01")

    def test_partition_column_in_results(self, deployment):
        _, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        result = hive.execute("SELECT * FROM t")
        assert result.schema.names() == ("a", "day")
        assert result.to_tuples() == [(1, "01")]

    def test_partition_filter(self, deployment):
        _, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS orc"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        hive.execute("INSERT INTO t PARTITION (day='02') VALUES (2)")
        assert hive.execute(
            "SELECT a FROM t WHERE day = '02'"
        ).to_tuples() == [(2,)]

    def test_insert_requires_partition_spec(self, deployment):
        _, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS orc"
        )
        with pytest.raises(AnalysisException):
            hive.execute("INSERT INTO t VALUES (1)")

    def test_partition_spec_on_unpartitioned_rejected(self, deployment):
        _, hive = deployment
        hive.execute("CREATE TABLE t (a int) STORED AS orc")
        with pytest.raises(AnalysisException):
            hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")

    def test_overwrite_is_per_partition(self, deployment):
        _, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS orc"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        hive.execute("INSERT INTO t PARTITION (day='02') VALUES (2)")
        hive.execute("INSERT OVERWRITE t PARTITION (day='01') VALUES (9)")
        assert sorted(hive.execute("SELECT * FROM t").to_tuples()) == [
            (2, "02"), (9, "01"),
        ]

    def test_typed_partition_column(self, deployment):
        _, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (n int) STORED AS orc"
        )
        hive.execute("INSERT INTO t PARTITION (n=7) VALUES (1)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1, 7)]

    def test_multi_column_partitioning_unsupported(self, deployment):
        _, hive = deployment
        with pytest.raises(MetastoreError):
            hive.execute(
                "CREATE TABLE t (a int) PARTITIONED BY (x string, y string) "
                "STORED AS orc"
            )


class TestPartitionTypeInference:
    """The Address/naming discrepancy: '01' is a string to Hive and the
    INT 1 to Spark (partitionColumnTypeInference)."""

    def _make(self, deployment):
        spark, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        return spark, hive

    def test_engines_disagree_on_value_and_type(self, deployment):
        spark, hive = self._make(deployment)
        hive_result = hive.execute("SELECT * FROM t")
        spark_result = spark.sql("SELECT * FROM t")
        assert hive_result.to_tuples() == [(1, "01")]
        assert spark_result.to_tuples() == [(1, 1)]  # leading zero gone
        assert hive_result.schema.types()[1].simple_string() == "string"
        assert spark_result.schema.types()[1].simple_string() == "int"

    def test_disabling_inference_aligns_engines(self, deployment):
        spark, hive = self._make(deployment)
        spark.conf.set(
            "spark.sql.sources.partitionColumnTypeInference.enabled", "false"
        )
        assert spark.sql("SELECT * FROM t").to_tuples() == hive.execute(
            "SELECT * FROM t"
        ).to_tuples()

    def test_non_numeric_values_stay_strings(self, deployment):
        spark, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (region string) "
            "STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (region='eu-west')  VALUES (1)")
        result = spark.sql("SELECT * FROM t")
        assert result.to_tuples() == [(1, "eu-west")]
        assert result.schema.types()[1].simple_string() == "string"

    def test_date_inference(self, deployment):
        import datetime

        spark, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (day='2020-01-01') VALUES (1)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.types()[1].simple_string() == "date"
        assert result.to_tuples() == [(1, datetime.date(2020, 1, 1))]

    def test_spark_written_partitions_readable_by_hive(self, deployment):
        spark, hive = deployment
        spark.sql(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        spark.sql("INSERT INTO t PARTITION (day='07') VALUES (1)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1, "07")]

    def test_mixed_values_block_int_inference(self, deployment):
        spark, hive = deployment
        hive.execute(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) STORED AS parquet"
        )
        hive.execute("INSERT INTO t PARTITION (day='01') VALUES (1)")
        hive.execute("INSERT INTO t PARTITION (day='xx') VALUES (2)")
        result = spark.sql("SELECT * FROM t")
        # one non-numeric value keeps the whole column a string
        assert result.schema.types()[1].simple_string() == "string"
        assert sorted(result.to_tuples()) == [(1, "01"), (2, "xx")]


class TestDataFramePartitionedInsert:
    """Spark's insertInto convention: partition values are the trailing
    DataFrame columns."""

    def _table(self, deployment):
        spark, hive = deployment
        spark.sql(
            "CREATE TABLE t (a int) PARTITIONED BY (day string) "
            "STORED AS parquet"
        )
        return spark, hive

    def test_trailing_columns_route_to_partitions(self, deployment):
        from repro.common.schema import Schema

        spark, hive = self._table(deployment)
        frame = spark.create_dataframe(
            [(1, "01"), (2, "02"), (3, "01")],
            Schema.of(("a", "int"), ("day", "string")),
        )
        frame.write.insert_into("t")
        table = spark.metastore.get_table("t")
        assert spark.filesystem.exists(f"{table.location}/day=01")
        assert spark.filesystem.exists(f"{table.location}/day=02")
        rows = hive.execute("SELECT * FROM t").to_tuples()
        assert sorted(rows) == [(1, "01"), (2, "02"), (3, "01")]

    def test_wrong_arity_rejected(self, deployment):
        from repro.common.schema import Schema
        from repro.errors import AnalysisException
        import pytest as _pytest

        spark, _ = self._table(deployment)
        frame = spark.create_dataframe([(1,)], Schema.of(("a", "int")))
        with _pytest.raises(AnalysisException):
            frame.write.insert_into("t")

    def test_overwrite_is_per_partition(self, deployment):
        from repro.common.schema import Schema

        spark, hive = self._table(deployment)
        schema = Schema.of(("a", "int"), ("day", "string"))
        spark.create_dataframe([(1, "01"), (2, "02")], schema).write.insert_into("t")
        spark.create_dataframe(
            [(9, "01")], schema
        ).write.mode("overwrite").insert_into("t")
        assert sorted(hive.execute("SELECT * FROM t").to_tuples()) == [
            (2, "02"), (9, "01"),
        ]
