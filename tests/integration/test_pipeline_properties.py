"""Property-based tests over the full write→serialize→read pipeline."""

import datetime
import decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.row import values_equal
from repro.common.schema import Schema
from repro.connectors.transformers import transformer_for
from repro.errors import ReproError
from repro.formats import serializer_for
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession


_value_strategies = {
    "int": st.integers(min_value=-(2**31), max_value=2**31 - 1),
    "bigint": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "string": st.text(max_size=20),
    "boolean": st.booleans(),
    "double": st.floats(allow_nan=False, allow_infinity=False, width=64),
    "date": st.dates(
        min_value=datetime.date(1, 1, 1), max_value=datetime.date(9999, 12, 31)
    ),
    "decimal(10,2)": st.decimals(
        allow_nan=False, allow_infinity=False, places=2,
        min_value=decimal.Decimal("-99999999.99"),
        max_value=decimal.Decimal("99999999.99"),
    ),
}


class TestSerializerTransformerComposition:
    """For every format and in-lattice type: write, read, transform back
    to the logical type — the composed pipeline is the identity."""

    @given(
        st.sampled_from(sorted(_value_strategies)),
        st.sampled_from(["orc", "parquet", "avro", "unified_avro"]),
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_identity(self, type_text, fmt, data):
        value = data.draw(_value_strategies[type_text])
        serializer = serializer_for(fmt)
        schema = Schema.of(("c", type_text))
        logical = schema.types()[0]
        blob = serializer.write(schema, [(value,)])
        read = serializer.read(blob)
        physical_type = read.physical_schema.types()[0]
        try:
            transform = transformer_for(physical_type, logical, fmt)
        except ReproError:
            return  # a documented reader gap (avro byte family)
        result = transform(read.rows[0][0])
        assert values_equal(result, value)


class TestEngineLevelProperties:
    @given(
        st.lists(
            st.integers(min_value=-(2**31), max_value=2**31 - 1) | st.none(),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_spark_writes_hive_reads_ints(self, values):
        spark = SparkSession.local()
        hive = HiveServer(spark.metastore, spark.filesystem)
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        frame = spark.create_dataframe(
            [(v,) for v in values], Schema.of(("a", "int"))
        )
        frame.write.insert_into("t")
        assert hive.execute("SELECT * FROM t").to_tuples() == [
            (v,) for v in values
        ]

    @given(st.lists(st.text(max_size=10), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_hive_writes_spark_reads_strings(self, values):
        spark = SparkSession.local()
        hive = HiveServer(spark.metastore, spark.filesystem)
        hive.execute("CREATE TABLE t (s string) STORED AS orc")
        frame = spark.create_dataframe(
            [(v,) for v in values], Schema.of(("s", "string"))
        )
        frame.write.insert_into("t")
        spark_view = spark.sql("SELECT * FROM t").to_tuples()
        hive_view = hive.execute("SELECT * FROM t").to_tuples()
        assert spark_view == hive_view == [(v,) for v in values]

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_row_count_conserved_across_engines(self, n):
        spark = SparkSession.local()
        hive = HiveServer(spark.metastore, spark.filesystem)
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        if n:
            frame = spark.create_dataframe(
                [(i,) for i in range(n)], Schema.of(("a", "int"))
            )
            frame.write.insert_into("t")
        assert len(hive.execute("SELECT * FROM t")) == n
        assert len(spark.sql("SELECT * FROM t")) == n
