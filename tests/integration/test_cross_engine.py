"""Cross-engine interoperability tests beyond the 15 discrepancies."""

import decimal

import pytest

from repro.common.schema import Schema
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession


@pytest.fixture
def deployment():
    spark = SparkSession.local()
    return spark, HiveServer(spark.metastore, spark.filesystem)


class TestHappyPathInterop:
    @pytest.mark.parametrize("fmt", ["orc", "parquet"])
    def test_spark_writes_hive_reads(self, deployment, fmt):
        spark, hive = deployment
        spark.sql(f"CREATE TABLE t (a int, b string) STORED AS {fmt}")
        spark.sql("INSERT INTO t VALUES (1, 'x')")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1, "x")]

    @pytest.mark.parametrize("fmt", ["orc", "parquet"])
    def test_hive_writes_spark_reads(self, deployment, fmt):
        spark, hive = deployment
        hive.execute(f"CREATE TABLE t (a int, b string) STORED AS {fmt}")
        hive.execute("INSERT INTO t VALUES (2, 'y')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(2, "y")]

    def test_interleaved_appends_visible_to_both(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        hive.execute("INSERT INTO t VALUES (2)")
        spark.sql("INSERT INTO t VALUES (3)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1,), (2,), (3,)]
        assert spark.sql("SELECT * FROM t").to_tuples() == [(1,), (2,), (3,)]

    def test_hive_drop_invalidates_spark(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        hive.execute("DROP TABLE t")
        with pytest.raises(Exception):
            spark.sql("SELECT * FROM t")

    def test_dataframe_written_read_by_hive(self, deployment):
        spark, hive = deployment
        frame = spark.create_dataframe(
            [(1, "x")], Schema.of(("a", "int"), ("b", "string"))
        )
        frame.write.format("parquet").save_as_table("t")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1, "x")]


class TestCaseHandlingAcrossEngines:
    def test_spark_case_preserved_hive_lowered(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (MixedCase int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        assert spark.sql("SELECT * FROM t").schema.names() == ("MixedCase",)
        assert hive.execute("SELECT * FROM t").schema.names() == ("mixedcase",)

    def test_hive_created_table_never_case_preserving(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (MixedCase int) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.names() == ("mixedcase",)
        assert any("not case preserving" in w for w in result.warnings)


class TestValueFidelity:
    def test_decimal_fidelity_spark_to_hive(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (d decimal(12,4)) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (CAST('123.4567' AS decimal(12,4)))")
        assert hive.execute("SELECT * FROM t").to_tuples() == [
            (decimal.Decimal("123.4567"),)
        ]

    def test_unicode_strings_cross_engines(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (s string) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES ('数据 ✓ emoji 🙂')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("数据 ✓ emoji 🙂",)]

    def test_nested_values_cross_engines(self, deployment):
        spark, hive = deployment
        spark.sql(
            "CREATE TABLE t (xs array<int>, kv map<string,int>) STORED AS parquet"
        )
        spark.sql("INSERT INTO t VALUES (array(1, NULL), map('k', 7))")
        assert hive.execute("SELECT * FROM t").to_tuples() == [
            ([1, None], {"k": 7})
        ]

    def test_hive_lenient_insert_visible_to_spark(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (b tinyint) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (300)")  # hive nulls it
        assert spark.sql("SELECT * FROM t").to_tuples() == [(None,)]
