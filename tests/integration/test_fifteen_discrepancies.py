"""End-to-end integration tests: each of the 15 §8.2 discrepancies,
asserted directly against the engines (no harness, no classifier).

Each test is the minimal reproduction of one discrepancy, written the
way a Spark/Hive user would hit it.
"""

import decimal
import math

import pytest

from repro.common.schema import Schema
from repro.errors import (
    AnalysisException,
    ArithmeticOverflowError,
    IncompatibleSchemaException,
    QueryError,
    UnsupportedTypeError,
)
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession


@pytest.fixture
def spark():
    return SparkSession.local()


@pytest.fixture
def hive(spark):
    return HiveServer(spark.metastore, spark.filesystem)


class TestDiscrepancy1:
    """SPARK-39075: BYTE/SHORT via DataFrame+Avro cannot be read back."""

    def test_byte(self, spark):
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("avro").save_as_table("t")
        with pytest.raises(IncompatibleSchemaException):
            spark.read_table("t")

    def test_short(self, spark):
        frame = spark.create_dataframe([(5,)], Schema.of(("s", "smallint")))
        frame.write.format("avro").save_as_table("t")
        with pytest.raises(IncompatibleSchemaException):
            spark.read_table("t")

    def test_parquet_is_fine(self, spark):
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("parquet").save_as_table("t")
        assert spark.read_table("t").to_tuples() == [(5,)]


class TestDiscrepancy2:
    """SPARK-39158: DataFrame-written decimal unreadable from HiveQL."""

    def test_hive_read_fails(self, spark, hive):
        spark.sql("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        frame = spark.create_dataframe(
            [(decimal.Decimal("3.1"),)], Schema.of(("d", "decimal(10,3)"))
        )
        frame.write.insert_into("t")
        with pytest.raises(QueryError, match="scale"):
            hive.execute("SELECT * FROM t")

    def test_spark_reads_it_fine(self, spark):
        spark.sql("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        frame = spark.create_dataframe(
            [(decimal.Decimal("3.1"),)], Schema.of(("d", "decimal(10,3)"))
        )
        frame.write.insert_into("t")
        assert spark.read_table("t").to_tuples() == [(decimal.Decimal("3.1"),)]

    def test_sql_written_decimal_readable_by_hive(self, spark, hive):
        spark.sql("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (3.1)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [
            (decimal.Decimal("3.100"),)
        ]


class TestDiscrepancy3:
    """HIVE-26533/SPARK-40409: SparkSQL+Avro BYTE->INT, case lost."""

    def test_type_and_case_lost(self, spark):
        spark.sql("CREATE TABLE t (Bb tinyint) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (5)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.names() == ("bb",)
        assert result.schema.types()[0].simple_string() == "int"
        assert any("not case preserving" in w for w in result.warnings)

    def test_orc_preserves_both(self, spark):
        spark.sql("CREATE TABLE t (Bb tinyint) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (5)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.names() == ("Bb",)
        assert result.schema.types()[0].simple_string() == "tinyint"


class TestDiscrepancy4:
    """HIVE-26531: Avro rejects non-string map keys; ORC/Parquet accept."""

    def test_avro_rejects(self, spark):
        with pytest.raises(UnsupportedTypeError, match="map"):
            spark.sql("CREATE TABLE t (m map<int,string>) STORED AS avro")

    @pytest.mark.parametrize("fmt", ["orc", "parquet"])
    def test_others_accept(self, spark, fmt):
        spark.sql(f"CREATE TABLE t_{fmt} (m map<int,string>) STORED AS {fmt}")
        spark.sql(f"INSERT INTO t_{fmt} VALUES (map(1, 'x'))")
        assert spark.sql(f"SELECT * FROM t_{fmt}").to_tuples() == [({1: "x"},)]


class TestDiscrepancy5:
    """SPARK-40439: decimal overflow — SQL throws, DataFrame NULLs."""

    def test_sql_throws(self, spark):
        spark.sql("CREATE TABLE t (d decimal(5,2)) STORED AS parquet")
        with pytest.raises(ArithmeticOverflowError):
            spark.sql("INSERT INTO t VALUES (123456789.999)")

    def test_dataframe_nulls(self, spark):
        spark.sql("CREATE TABLE t (d decimal(5,2)) STORED AS parquet")
        frame = spark.create_dataframe(
            [(decimal.Decimal("123456789.999"),)],
            Schema.of(("d", "decimal(5,2)")),
        )
        frame.write.insert_into("t")
        assert spark.read_table("t").to_tuples() == [(None,)]

    def test_legacy_policy_aligns_them(self, spark):
        spark.conf.set("spark.sql.storeAssignmentPolicy", "legacy")
        spark.sql("CREATE TABLE t (d decimal(5,2)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (123456789.999)")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(None,)]


class TestDiscrepancies6And7:
    """HIVE-26528: non-finite doubles through HiveQL."""

    def _write_double(self, spark, literal):
        spark.sql("DROP TABLE IF EXISTS t")
        spark.sql("CREATE TABLE t (d double) STORED AS parquet")
        spark.sql(f"INSERT INTO t VALUES ({literal})")

    def test_nan_reads_null_via_hive(self, spark, hive):
        self._write_double(spark, "double('NaN')")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(None,)]
        assert math.isnan(spark.sql("SELECT * FROM t").rows[0][0])

    def test_infinity_errors_via_hive(self, spark, hive):
        self._write_double(spark, "double('Infinity')")
        with pytest.raises(QueryError):
            hive.execute("SELECT * FROM t")
        assert spark.sql("SELECT * FROM t").rows[0][0] == math.inf

    def test_negative_infinity_same_root_cause(self, spark, hive):
        self._write_double(spark, "double('-Infinity')")
        with pytest.raises(QueryError):
            hive.execute("SELECT * FROM t")


class TestDiscrepancy8:
    """SPARK-40616: TIMESTAMP_NTZ comes back as TIMESTAMP."""

    def test_type_changes(self, spark):
        spark.sql("CREATE TABLE t (ts timestamp_ntz) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (TIMESTAMP_NTZ '2020-06-15 12:30:00')")
        assert spark.sql("SELECT * FROM t").schema.types()[
            0
        ].simple_string() == "timestamp"

    def test_config_restores(self, spark):
        spark.sql("CREATE TABLE t (ts timestamp_ntz) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (TIMESTAMP_NTZ '2020-06-15 12:30:00')")
        spark.conf.set("spark.sql.timestampType", "TIMESTAMP_NTZ")
        assert spark.sql("SELECT * FROM t").schema.types()[
            0
        ].simple_string() == "timestamp_ntz"


class TestDiscrepancy9:
    """SPARK-40525: invalid DATE — SQL throws, DataFrame NULLs."""

    def test_sql_throws(self, spark):
        spark.sql("CREATE TABLE t (d date) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES (DATE '2021-02-30')")

    def test_dataframe_nulls(self, spark):
        spark.sql("CREATE TABLE t (d date) STORED AS parquet")
        frame = spark.create_dataframe(
            [("2021-02-30",)], Schema.of(("d", "date"))
        )
        frame.write.insert_into("t")
        assert spark.read_table("t").to_tuples() == [(None,)]


class TestDiscrepancies10And11:
    """SPARK-40624: integral overflow — SQL throws, DataFrame wraps."""

    @pytest.mark.parametrize(
        "type_text,value,wrapped",
        [
            ("int", 2**31, -(2**31)),  # #10
            ("smallint", 32768, -32768),  # #11
            ("tinyint", 128, -128),  # #11
        ],
    )
    def test_pairwise(self, spark, type_text, value, wrapped):
        spark.sql(f"CREATE TABLE t (x {type_text}) STORED AS parquet")
        with pytest.raises(ArithmeticOverflowError):
            spark.sql(f"INSERT INTO t VALUES ({value})")
        frame = spark.create_dataframe(
            [(value,)], Schema.of(("x", type_text))
        )
        frame.write.insert_into("t")
        assert spark.read_table("t").to_tuples() == [(wrapped,)]


class TestDiscrepancy12:
    """SPARK-40629: invalid boolean string — SQL throws, DataFrame NULLs."""

    def test_sql_throws(self, spark):
        spark.sql("CREATE TABLE t (b boolean) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES ('maybe')")

    def test_dataframe_nulls(self, spark):
        spark.sql("CREATE TABLE t (b boolean) STORED AS parquet")
        frame = spark.create_dataframe([("maybe",)], Schema.of(("b", "boolean")))
        frame.write.insert_into("t")
        assert spark.read_table("t").to_tuples() == [(None,)]


class TestDiscrepancy13:
    """charVarcharAsString: CHAR padding differs across interfaces."""

    def test_padding_differs(self, spark):
        spark.sql("CREATE TABLE t (c char(5)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES ('ab')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("ab   ",)]
        assert spark.read_table("t").to_tuples() == [("ab   ",)]  # SQL padded at write
        # DataFrame-written value shows the raw/padded split
        frame = spark.create_dataframe([("cd",)], Schema.of(("c", "char(5)")))
        frame.write.insert_into("t")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("ab   ",), ("cd   ",)]
        assert spark.read_table("t").to_tuples() == [("ab   ",), ("cd",)]

    def test_config_aligns(self, spark):
        spark.conf.set("spark.sql.legacy.charVarcharAsString", "true")
        spark.sql("CREATE TABLE t (c char(5)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES ('ab')")
        frame = spark.create_dataframe([("cd",)], Schema.of(("c", "char(5)")))
        frame.write.insert_into("t")
        assert spark.sql("SELECT * FROM t").to_tuples() == spark.read_table(
            "t"
        ).to_tuples() == [("ab",), ("cd",)]


class TestDiscrepancy14:
    """SPARK-40637: mixed-case struct field names lower-cased."""

    def test_avro_loses_nested_case(self, spark):
        spark.sql(
            "CREATE TABLE t (s struct<Aa:int,bB:string>) STORED AS avro"
        )
        spark.sql("INSERT INTO t VALUES (named_struct('Aa', 1, 'bB', 'x'))")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.types()[0].simple_string() == (
            "struct<aa:int,bb:string>"
        )

    def test_datasource_preserves(self, spark):
        frame = spark.create_dataframe(
            [([1, "x"],)], Schema.of(("s", "struct<Aa:int,bB:string>"))
        )
        frame.write.format("parquet").save_as_table("t")
        result = spark.read_table("t")
        assert result.schema.types()[0].simple_string() == (
            "struct<Aa:int,bB:string>"
        )


class TestDiscrepancy15:
    """SPARK-40630: overlong VARCHAR stored verbatim via DataFrame."""

    def test_eh_hole(self, spark):
        spark.sql("CREATE TABLE t (v varchar(3)) STORED AS parquet")
        frame = spark.create_dataframe(
            [("abcdef",)], Schema.of(("v", "varchar(3)"))
        )
        frame.write.insert_into("t")
        # the invalid value survives the round trip intact
        assert spark.read_table("t").to_tuples() == [("abcdef",)]

    def test_sql_rejects_the_same_value(self, spark):
        spark.sql("CREATE TABLE t (v varchar(3)) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES ('abcdef')")
