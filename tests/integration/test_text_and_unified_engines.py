"""The two extreme serialization strategies through the real engines.

Text files (everything collapses to strings) and the unified layer
(nothing collapses) bracket the three paper formats; both must work end
to end through both engines.
"""

import pytest

from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession


@pytest.fixture
def deployment():
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    return spark, hive


class TestTextTables:
    def test_hive_default_format_roundtrip(self, deployment):
        _, hive = deployment
        hive.execute("CREATE TABLE t (a int, b string)")  # text by default
        hive.execute("INSERT INTO t VALUES (1, 'x')")
        # the text round trip: Hive reads everything back via its casts
        result = hive.execute("SELECT * FROM t")
        assert result.to_tuples() == [(1, "x")]

    def test_everything_is_string_physically(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (a int)")
        hive.execute("INSERT INTO t VALUES (42)")
        table = spark.metastore.get_table("t")
        from repro.formats import serializer_for

        blob = hive.warehouse.read_segments(table)[0]
        data = serializer_for("text").read(blob)
        assert data.rows[0][0] == "42"

    def test_text_metastore_schema_keeps_declared_types(self, deployment):
        # unlike Avro (whose file schema is authoritative), text tables
        # keep their declared types in the metastore; the SerDe parses
        # the stored strings back on read
        spark, hive = deployment
        hive.execute("CREATE TABLE t (a int, b boolean)")
        table = spark.metastore.get_table("t")
        assert table.schema.simple_string() == "a int, b boolean"

    def test_unparseable_text_cell_reads_null(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (a int)")
        hive.execute("INSERT INTO t VALUES ('zzz')")  # stored as 'zzz'
        # wait: hive's write cast already nulls it; write raw instead
        table = spark.metastore.get_table("t")
        from repro.formats import serializer_for

        blob = serializer_for("text").write(
            table.schema.map_types(lambda t: t), [("zzz",)], {"writer": "x"}
        )
        hive.warehouse.write_segment(table, blob)
        rows = hive.execute("SELECT * FROM t").to_tuples()
        assert (None,) in rows
        assert spark.sql("SELECT * FROM t").to_tuples() == rows


class TestUnifiedThroughEngines:
    @pytest.mark.parametrize("base", ["avro", "orc", "parquet"])
    def test_byte_roundtrip_via_sql(self, deployment, base):
        spark, _ = deployment
        spark.sql(f"CREATE TABLE t_{base} (b tinyint) STORED AS unified_{base}")
        spark.sql(f"INSERT INTO t_{base} VALUES (5)")
        result = spark.sql(f"SELECT * FROM t_{base}")
        assert result.schema.types()[0].simple_string() == "tinyint"
        assert result.to_tuples() == [(5,)]
        assert result.warnings == ()  # no case-preservation fallback

    def test_hive_reads_unified_spark_writes(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (b tinyint, s string) STORED AS unified_avro")
        spark.sql("INSERT INTO t VALUES (5, 'x')")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(5, "x")]

    def test_non_string_map_keys_cross_engines(self, deployment):
        spark, hive = deployment
        spark.sql("CREATE TABLE t (m map<int,string>) STORED AS unified_avro")
        spark.sql("INSERT INTO t VALUES (map(1, 'x'))")
        assert spark.sql("SELECT * FROM t").to_tuples() == [({1: "x"},)]
        assert hive.execute("SELECT * FROM t").to_tuples() == [({1: "x"},)]

    def test_dataframe_writer_accepts_unified(self, deployment):
        spark, _ = deployment
        from repro.common.schema import Schema

        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("unified_avro").save_as_table("t")
        result = spark.read_table("t")
        assert result.to_tuples() == [(5,)]
        assert result.schema.types()[0].simple_string() == "tinyint"
