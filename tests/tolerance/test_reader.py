"""Tests for interaction-redundancy tolerance."""

import decimal

import pytest

from repro.common.schema import Schema
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession
from repro.tolerance import RedundantReader


@pytest.fixture
def deployment():
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    return spark, hive


@pytest.fixture
def reader(deployment):
    spark, hive = deployment
    return RedundantReader.for_pair(spark, hive)


class TestHappyPath:
    def test_primary_path_used(self, deployment, reader):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        outcome = reader.read("t")
        assert outcome.succeeded
        assert outcome.path_used == "spark-dataframe"
        assert not outcome.tolerated
        assert outcome.result.to_tuples() == [(1,)]

    def test_describe(self, deployment, reader):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        assert "spark-dataframe" in reader.read("t").describe()


class TestToleratedDiscrepancies:
    def test_tolerates_discrepancy_1(self, deployment, reader):
        # DataFrame+Avro BYTE read raises; the HiveQL path still serves
        spark, _ = deployment
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("avro").save_as_table("t")
        outcome = reader.read("t")
        assert outcome.tolerated
        assert outcome.path_used == "hiveql"
        assert outcome.result.to_tuples() == [(5,)]
        failed_paths = {f.path for f in outcome.failures}
        assert failed_paths == {"spark-dataframe", "spark-sql"}
        assert all(
            f.error_type == "IncompatibleSchemaException"
            for f in outcome.failures
        )

    def test_tolerates_discrepancy_2_reversed(self, deployment):
        # Hive's strict decimal read fails; prefer hive, fall back to spark
        spark, hive = deployment
        spark.sql("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        frame = spark.create_dataframe(
            [(decimal.Decimal("3.1"),)], Schema.of(("d", "decimal(10,3)"))
        )
        frame.write.insert_into("t")
        reader = (
            RedundantReader()
            .add_path("hiveql", lambda t: hive.execute(f"SELECT * FROM {t}"))
            .add_path("spark-sql", lambda t: spark.sql(f"SELECT * FROM {t}"))
        )
        outcome = reader.read("t")
        assert outcome.tolerated
        assert outcome.path_used == "spark-sql"

    def test_semantics_may_differ_across_paths(self, deployment, reader):
        # tolerance trades fidelity: hive returns the promoted INT type
        spark, _ = deployment
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("avro").save_as_table("t")
        outcome = reader.read("t")
        assert outcome.result.schema.types()[0].simple_string() == "int"


class TestInjectedFaultAttribution:
    def test_fault_kind_recorded_not_just_repr(self, deployment, reader):
        from repro.faults import FaultInjector, FaultPlan, FaultRule

        spark, _ = deployment
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        plan = FaultPlan(
            name="meta-down",
            rules=(FaultRule("spark->metastore", "timeout", 1.0),),
        )
        with FaultInjector(plan, seed=1, trial_key="tolerance/t"):
            outcome = reader.read("t")
        # both spark paths die on the metastore; hiveql still serves
        assert outcome.tolerated
        assert outcome.path_used == "hiveql"
        assert outcome.failures
        assert all(f.fault_kind == "timeout" for f in outcome.failures)

    def test_organic_failures_have_no_fault_kind(self, reader):
        outcome = reader.read("no_such_table")
        assert all(f.fault_kind == "" for f in outcome.failures)


class TestTotalFailure:
    def test_all_paths_fail(self, reader):
        outcome = reader.read("no_such_table")
        assert not outcome.succeeded
        assert not outcome.tolerated
        assert len(outcome.failures) == 3
        assert "all 3 read paths failed" in outcome.describe()

    def test_empty_reader(self):
        outcome = RedundantReader().read("t")
        assert not outcome.succeeded
        assert outcome.failures == ()
