"""Tests for the executable failure replays (Figures 1-5 + registry)."""

import pytest

from repro.flinklite.yarn_connector import FixStage
from repro.scenarios import (
    FIX_STAGES,
    SCENARIOS,
    by_jira,
    replay_flink_887,
    replay_flink_12342,
    replay_flink_19141,
    replay_hbase_537,
    replay_spark_16901,
    replay_spark_19361,
    replay_spark_27239,
    replay_yarn_2790,
    run_all,
    run_fix_stage,
)


class TestFigure1:
    def test_buggy_overloads(self):
        outcome = replay_flink_12342()
        assert outcome.failed
        assert outcome.plane == "control"
        assert outcome.metrics["total_requested"] > 100
        assert outcome.metrics["overload_factor"] > 5

    def test_fast_yarn_hides_the_bug(self):
        outcome = replay_flink_12342(
            allocation_latency_ms=10, needed_containers=5
        )
        assert not outcome.failed

    def test_narrative_captures_snowball(self):
        outcome = replay_flink_12342()
        assert len(outcome.narrative) > 2


class TestFigure5FixStages:
    def test_stage_order_matches_figure(self):
        assert FIX_STAGES == (
            FixStage.BUGGY,
            FixStage.WORKAROUND_INTERVAL,
            FixStage.WORKAROUND_DECREMENT,
            FixStage.RESOLUTION_ASYNC,
        )

    @pytest.mark.parametrize("stage", FIX_STAGES[1:])
    def test_every_fix_stage_resolves(self, stage):
        outcome = run_fix_stage(stage)
        assert not outcome.failed
        assert outcome.metrics["total_requested"] == outcome.metrics["needed"]

    def test_buggy_stage_fails(self):
        assert run_fix_stage(FixStage.BUGGY).failed


class TestFigure2:
    def test_compressed_file_crashes_job(self):
        outcome = replay_spark_27239()
        assert outcome.failed
        assert outcome.metrics["reported_length"] == -1
        assert "cannot be negative" in outcome.symptom

    def test_figure4_fix_reads_through(self):
        outcome = replay_spark_27239(fixed=True)
        assert not outcome.failed
        assert outcome.metrics["records_read"] > 0

    def test_uncompressed_never_failed(self):
        outcome = replay_spark_27239(compressed=False)
        assert not outcome.failed
        assert outcome.metrics["reported_length"] > 0


class TestFigure3:
    def test_fair_scheduler_mismatch(self):
        outcome = replay_flink_19141(scheduler="fair")
        assert outcome.failed
        assert outcome.metrics["expected_mb"] == 2048
        assert outcome.metrics["granted_mb"] == 1536

    def test_capacity_scheduler_agrees(self):
        assert not replay_flink_19141(scheduler="capacity").failed

    def test_aligned_increment_also_fixes(self):
        outcome = replay_flink_19141(scheduler="fair", increment_mb=1024)
        assert not outcome.failed


class TestMonitoring:
    def test_zero_cutoff_killed(self):
        outcome = replay_flink_887()
        assert outcome.failed
        assert outcome.metrics["kills"] == 1
        assert "pmem" in outcome.symptom

    def test_default_cutoff_survives(self):
        outcome = replay_flink_887(heap_cutoff_ratio=None)
        assert not outcome.failed
        assert outcome.metrics["jvm_heap_mb"] < outcome.metrics["container_mb"]


class TestOtherScenarios:
    def test_kafka_offsets(self):
        assert replay_spark_19361().failed
        assert not replay_spark_19361(fixed=True).failed
        assert not replay_spark_19361(compact=False).failed

    def test_config_overwrite(self):
        failing = replay_spark_16901()
        assert failing.failed
        assert failing.metrics["final_uri"] == "thrift://localhost:9083"
        fixed = replay_spark_16901(fixed=True)
        assert not fixed.failed
        assert fixed.metrics["provenance"] == ["operator"]

    def test_safe_mode(self):
        failing = replay_hbase_537()
        assert failing.failed
        assert failing.metrics["probe_succeeded"]  # the deceptive probe
        assert not replay_hbase_537(wait_for_safe_mode_exit=True).failed

    def test_token_expiry(self):
        assert replay_yarn_2790().failed
        assert not replay_yarn_2790(renew_close_to_use=True).failed

    def test_fix_reduces_but_window_remains(self):
        # Finding 12's point: even the fixed ordering expires if the
        # consuming operation is delayed past the lifetime again
        outcome = replay_yarn_2790(
            renew_close_to_use=True,
            token_lifetime_ms=10,
            work_before_use_ms=5,
        )
        assert not outcome.failed


class TestObservability:
    def test_buggy_am_reports_success(self):
        from repro.scenarios import replay_spark_3627

        outcome = replay_spark_3627()
        assert outcome.failed
        assert outcome.metrics["job_failed"] is True
        assert outcome.metrics["yarn_final_status"] == "SUCCEEDED"

    def test_fixed_am_reports_failure_with_diagnostics(self):
        from repro.scenarios import replay_spark_3627

        outcome = replay_spark_3627(fixed=True)
        assert not outcome.failed
        assert outcome.metrics["yarn_final_status"] == "FAILED"
        assert "executor lost" in outcome.metrics["diagnostics"]


class TestFlagshipIncident:
    def test_gcp_quota_outage(self):
        from repro.scenarios import replay_gcp_quota_incident

        failing = replay_gcp_quota_incident()
        assert failing.failed
        assert failing.metrics["final_quota"] == 10.0
        fixed = replay_gcp_quota_incident(fixed=True)
        assert not fixed.failed


class TestWrongContext:
    def test_flink_5542(self):
        from repro.scenarios import replay_flink_5542

        failing = replay_flink_5542()
        assert failing.failed
        assert failing.metrics["reported_available"] == 4
        fixed = replay_flink_5542(fixed=True)
        assert not fixed.failed
        assert fixed.metrics["reported_available"] == 64

    def test_oversubscription_is_a_correct_rejection(self):
        from repro.scenarios import replay_flink_5542

        outcome = replay_flink_5542(
            fixed=True, requested_parallelism=1000
        )
        # rejecting a job larger than the cluster is not a CSI failure
        assert not outcome.failed
        assert not outcome.metrics["accepted"]


class TestRegistry:
    def test_thirteen_scenarios(self):
        assert len(SCENARIOS) == 13

    def test_all_fail_then_all_pass(self):
        failing = run_all(fixed=False)
        assert all(o.failed for o in failing)
        fixed = run_all(fixed=True)
        assert not any(o.failed for o in fixed)

    def test_planes_covered(self):
        planes = {s.plane for s in SCENARIOS}
        assert planes == {"control", "data", "management"}

    def test_lookup(self):
        assert by_jira("SPARK-27239").downstream == "HDFS"
        with pytest.raises(KeyError):
            by_jira("NOPE-1")

    def test_describe_lines(self):
        for outcome in run_all():
            line = outcome.describe()
            assert outcome.jira in line and "FAILED" in line
