"""SPARK-3627 through the tracer: the AM→RM status report is a traced
boundary, so the swallowed failure is visible in the span even when the
reported status is SUCCEEDED (satellite for the observability seam)."""

from repro.common.events import EventLoop
from repro.scenarios.observability import (
    replay_spark_3627,
    run_yarn_application,
)
from repro.tracing.core import Tracer
from repro.yarnlite.resourcemanager import ResourceManager


def _failing_job():
    raise RuntimeError("stage 3 failed: executor lost")


def _am_rm_spans(tracer):
    return [
        s
        for s in tracer.finished
        if s.name == "am.rm.report_final_status"
    ]


class TestRunYarnApplication:
    def test_buggy_path_swallows_the_failure(self):
        rm = ResourceManager(EventLoop())
        handle, job_failed = run_yarn_application(
            rm, _failing_job, propagate_failure=False
        )
        assert job_failed
        report = rm.application_report(handle.app_id)
        assert report.final_status == "SUCCEEDED"
        assert report.diagnostics == ""

    def test_fixed_path_propagates_status_and_diagnostics(self):
        rm = ResourceManager(EventLoop())
        handle, job_failed = run_yarn_application(
            rm, _failing_job, propagate_failure=True
        )
        assert job_failed
        report = rm.application_report(handle.app_id)
        assert report.final_status == "FAILED"
        assert "executor lost" in report.diagnostics

    def test_healthy_job_reports_success_either_way(self):
        for propagate in (False, True):
            rm = ResourceManager(EventLoop())
            handle, job_failed = run_yarn_application(
                rm, lambda: None, propagate_failure=propagate
            )
            assert not job_failed
            report = rm.application_report(handle.app_id)
            assert report.final_status == "SUCCEEDED"


class TestScenarioOutcome:
    def test_default_replay_reproduces_the_misreport(self):
        outcome = replay_spark_3627()
        assert outcome.failed
        assert outcome.metrics["yarn_final_status"] == "SUCCEEDED"

    def test_fixed_replay_reports_failed(self):
        outcome = replay_spark_3627(fixed=True)
        assert not outcome.failed
        assert outcome.metrics["yarn_final_status"] == "FAILED"


class TestTracedStatusReport:
    """The am->rm boundary span records what crossed the seam."""

    def test_buggy_am_span_shows_succeeded_for_failed_job(self):
        with Tracer() as tracer:
            outcome = replay_spark_3627()
        assert outcome.failed
        spans = _am_rm_spans(tracer)
        assert len(spans) == 1
        span = spans[0]
        assert span.boundary == "am->rm"
        assert span.system == "yarn-am"
        assert span.peer_system == "yarn-rm"
        # the trace preserves the lie the RM was told
        assert span.attributes["final_status"] == "SUCCEEDED"
        assert span.status == "ok"

    def test_fixed_am_span_shows_failed_with_diagnostics(self):
        with Tracer() as tracer:
            outcome = replay_spark_3627(fixed=True)
        assert not outcome.failed
        spans = _am_rm_spans(tracer)
        assert len(spans) == 1
        span = spans[0]
        assert span.boundary == "am->rm"
        assert span.attributes["final_status"] == "FAILED"
        assert "executor lost" in span.attributes["diagnostics"]

    def test_untraced_replay_records_nothing(self):
        outcome = replay_spark_3627()
        assert outcome.failed  # behavior unchanged without a tracer
