"""Scenario: an injected Hive→HBase timeout crosses the seam gracefully.

The paper's mis-handled CSI failures are raw peer symptoms escaping a
boundary. This scenario drives the real Hive-over-HBase handler under
injection and asserts the two well-behaved outcomes: a transient
timeout under the retry budget is *masked*, and a persistent one
surfaces as a typed ``BoundaryTimeout`` — which the robustness oracle
classifies as gracefully-failed, never as a hang or an unhandled
transport error.
"""

import pytest

from repro.common.schema import Schema
from repro.connectors.hive_hbase import HBaseColumnMapping, HiveHBaseHandler
from repro.crosstest.harness import Outcome
from repro.crosstest.oracles import _classify_injected
from repro.faults import (
    BoundaryTimeout,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectionRecord,
)
from repro.hbaselite import HBaseMaster
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode

PERSISTENT_TIMEOUT = FaultPlan(
    name="hbase-down", rules=(FaultRule("hive->hbase", "timeout", 1.0),)
)
ONE_TIMEOUT = FaultPlan(
    name="hbase-blip",
    rules=(FaultRule("hive->hbase", "timeout", 1.0, max_per_trial=1),),
)


@pytest.fixture
def handler():
    master = HBaseMaster(FileSystem(NameNode(), user="hbase"))
    master.start()
    return HiveHBaseHandler(
        hbase=master,
        table="kv",
        schema=Schema.of(("k", "string"), ("n", "int")),
        mapping=HBaseColumnMapping.parse(":key,cf:n"),
    )


class TestInjectedTimeout:
    def test_transient_timeout_is_masked(self, handler):
        with FaultInjector(ONE_TIMEOUT, seed=1, trial_key="hbase/blip"):
            handler.insert([("r1", 42)])
            result = handler.select_all()
        assert result.to_tuples() == [("r1", 42)]
        assert handler.retry.stats.masked_calls >= 1
        assert handler.retry.stats.exhausted_calls == 0

    def test_persistent_timeout_fails_gracefully(self, handler):
        with FaultInjector(
            PERSISTENT_TIMEOUT, seed=1, trial_key="hbase/down"
        ) as injector:
            with pytest.raises(BoundaryTimeout) as info:
                handler.insert([("r1", 42)])
        assert info.value.site == "hive->hbase"
        assert info.value.operation == "put"
        assert info.value.attempts == handler.retry.max_attempts
        assert all(
            record.kind == "timeout" for record in injector.records
        )

    def test_oracle_classifies_it_gracefully_failed(self, handler):
        with FaultInjector(
            PERSISTENT_TIMEOUT, seed=1, trial_key="hbase/down"
        ) as injector:
            try:
                handler.insert([("r1", 42)])
            except BoundaryTimeout as exc:
                outcome = Outcome(
                    status="error",
                    stage="write",
                    error_type=type(exc).__name__,
                    error_message=str(exc),
                )
            else:  # pragma: no cover - the injection must fire
                pytest.fail("expected BoundaryTimeout")
        baseline = Outcome(status="ok", value=42, value_type="int")
        verdict = _classify_injected(
            tuple(injector.records), outcome, baseline
        )
        assert verdict.classification == "gracefully_failed"
        assert verdict.mode == "typed_boundary_error"

    def test_raw_timeout_would_be_mis_handled(self):
        # the counterfactual: without retry handling the oracle calls
        # the same injection a hang equivalent
        records = (InjectionRecord("hive->hbase", "put", "timeout", 0),)
        outcome = Outcome(
            status="error",
            stage="write",
            error_type="InjectedTimeout",
            error_message="injected timeout at hive->hbase.put",
        )
        baseline = Outcome(status="ok", value=42, value_type="int")
        verdict = _classify_injected(records, outcome, baseline)
        assert verdict.classification == "mis_handled"
        assert verdict.mode == "hang_equivalent"
