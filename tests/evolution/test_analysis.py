"""Tests for the change-analysis module."""

import pytest

from repro.evolution import (
    DEFAULT_TYPE_CORPUS,
    lattice_diff,
    lattice_signature,
    reader_gaps,
    upgrade_risks,
)
from repro.formats import serializer_for


class TestLatticeSignature:
    def test_avro_signature_shape(self):
        signature = lattice_signature(serializer_for("avro"))
        assert signature["tinyint"] == "int"
        assert signature["char(5)"] == "string"
        assert signature["map<int,string>"] == "<unsupported>"
        assert signature["int"] == "int"

    def test_parquet_mostly_identity(self):
        signature = lattice_signature(serializer_for("parquet"))
        identical = sum(1 for k, v in signature.items() if k == v)
        assert identical >= len(DEFAULT_TYPE_CORPUS) - 2

    def test_unified_fully_identity(self):
        signature = lattice_signature(serializer_for("unified_avro"))
        assert all(k == v for k, v in signature.items())


class TestLatticeDiff:
    def test_same_serializer_no_changes(self):
        assert lattice_diff(serializer_for("avro"), serializer_for("avro")) == []

    def test_upgrade_to_unified_is_safe(self):
        changes = lattice_diff(
            serializer_for("avro"), serializer_for("unified_avro")
        )
        assert changes  # plenty of differences...
        assert upgrade_risks(
            serializer_for("avro"), serializer_for("unified_avro")
        ) == []  # ...none of them risky

    def test_downgrade_is_risky(self):
        risks = upgrade_risks(
            serializer_for("unified_avro"), serializer_for("avro")
        )
        kinds = {r.kind for r in risks}
        assert "collapse_introduced" in kinds
        assert "gap_introduced" in kinds
        risky_types = {r.type_text for r in risks}
        assert "tinyint" in risky_types
        assert "map<int,string>" in risky_types

    def test_orc_vs_parquet_diff(self):
        changes = lattice_diff(serializer_for("orc"), serializer_for("parquet"))
        changed_types = {c.type_text for c in changes}
        assert changed_types == {"timestamp_ntz"}  # gap_removed direction
        assert changes[0].kind == "collapse_removed"

    def test_render(self):
        (change,) = lattice_diff(
            serializer_for("orc"), serializer_for("parquet")
        )
        assert "timestamp_ntz" in change.render()


class TestReaderGaps:
    def test_avro_flags_spark_39075(self):
        gaps = reader_gaps(serializer_for("avro"))
        gap_types = {g.type_text for g in gaps}
        assert "tinyint" in gap_types
        assert "smallint" in gap_types
        # nested occurrences flagged too
        assert "array<tinyint>" in gap_types

    @pytest.mark.parametrize("fmt", ["orc", "parquet", "unified_avro"])
    def test_complete_formats_have_no_gaps(self, fmt):
        assert reader_gaps(serializer_for(fmt)) == []

    def test_gap_render_names_the_mechanism(self):
        gap = reader_gaps(serializer_for("avro"))[0]
        text = gap.render()
        assert "stored as" in text and "read back fails" in text
