"""Tests for the quota system and the §1 incident mechanism."""

import pytest

from repro.common.events import EventLoop
from repro.metrics import (
    AbsentPolicy,
    MetricsRegistry,
    QuotaExceededError,
    QuotaSystem,
    ServiceUnderQuota,
)
from repro.scenarios.incident_gcp_quota import replay_gcp_quota_incident


def build(absent_policy):
    loop = EventLoop()
    monitoring = MetricsRegistry(system="monitoring")
    usage = monitoring.gauge("svc.usage")
    service = ServiceUnderQuota("svc", quota=100.0)
    quota_system = QuotaSystem(
        loop, service, monitoring, "svc.usage",
        interval_ms=1000, absent_policy=absent_policy,
    )
    quota_system.start()
    return loop, monitoring, usage, service, quota_system


class TestQuotaTracking:
    def test_quota_follows_usage(self):
        loop, _, usage, service, _ = build(AbsentPolicy.ZERO)
        usage.set(200)
        loop.run_until(1000)
        assert service.quota == 250.0  # 200 * 1.25 headroom

    def test_quota_floors_at_minimum(self):
        loop, _, usage, service, _ = build(AbsentPolicy.ZERO)
        usage.set(1)
        loop.run_until(1000)
        assert service.quota == 10.0

    def test_service_rejects_above_quota(self):
        service = ServiceUnderQuota("svc", quota=10.0)
        with pytest.raises(QuotaExceededError):
            service.handle_load(50)
        assert service.rejected_requests == 40

    def test_adjustment_log(self):
        loop, _, usage, _, quota_system = build(AbsentPolicy.ZERO)
        usage.set(100)
        loop.run_until(3000)
        assert len(quota_system.adjustments) == 3


class TestDeregistrationDiscrepancy:
    def test_zero_policy_slashes_quota(self):
        loop, monitoring, usage, service, _ = build(AbsentPolicy.ZERO)
        usage.set(1000)
        loop.run_until(1000)
        assert service.quota == 1250.0
        monitoring.deregister("svc.usage")
        loop.run_until(2000)
        assert service.quota == 10.0  # the outage mechanism

    def test_absent_policy_holds_quota(self):
        loop, monitoring, usage, service, quota_system = build(
            AbsentPolicy.ABSENT
        )
        usage.set(1000)
        loop.run_until(1000)
        monitoring.deregister("svc.usage")
        loop.run_until(3000)
        assert service.quota == 1250.0
        # the held adjustments are recorded as None reads
        assert any(read is None for _, read, _ in quota_system.adjustments)


class TestIncidentReplay:
    def test_failing_variant_is_an_outage(self):
        outcome = replay_gcp_quota_incident()
        assert outcome.failed
        assert outcome.metrics["final_quota"] == 10.0
        assert outcome.metrics["rejected_requests"] > 0
        assert "outage" in outcome.symptom

    def test_fixed_variant_holds(self):
        outcome = replay_gcp_quota_incident(fixed=True)
        assert not outcome.failed
        assert outcome.metrics["rejected_requests"] == 0
        assert outcome.metrics["final_quota"] == 1250.0

    def test_outage_starts_after_deregistration(self):
        outcome = replay_gcp_quota_incident(deregister_at_ms=150_000)
        first = outcome.metrics["first_outage"]
        at_ms = int(first.split("ms")[0].removeprefix("t="))
        assert at_ms > 150_000

    def test_narrative_shows_the_zero_reads(self):
        outcome = replay_gcp_quota_incident()
        assert any("usage_read=0.0" in line for line in outcome.narrative)
