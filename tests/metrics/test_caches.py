"""The process-wide cache registry: every memo is named and scrapeable."""

from repro.metrics import (
    cache_info_snapshot,
    cache_stats_registry,
    tracked_caches,
)


class TestTrackedCaches:
    def test_every_entry_exposes_cache_info(self):
        caches = tracked_caches()
        assert caches
        for fn in caches.values():
            info = fn.cache_info()
            assert info.hits >= 0 and info.misses >= 0

    def test_the_hot_path_memos_are_tracked(self):
        names = set(tracked_caches())
        assert {
            "sql.parse_statement",
            "types.parse_type",
            "spark.cast_kernel",
            "spark.store_assign_kernel",
            "hive.write_kernel",
            "hive.read_kernel",
            "connectors.transformer_for",
            "formats.serializer_instance",
        } <= names


class TestSnapshot:
    def test_snapshot_fields(self):
        snapshot = cache_info_snapshot()
        for stats in snapshot.values():
            assert set(stats) == {"hits", "misses", "maxsize", "currsize"}

    def test_usage_moves_the_counters(self):
        from repro.common.types import parse_type

        before = cache_info_snapshot()["types.parse_type"]
        parse_type("array<int>")
        parse_type("array<int>")
        after = cache_info_snapshot()["types.parse_type"]
        assert after["hits"] + after["misses"] >= before["hits"] + before["misses"] + 2


class TestRegistry:
    def test_gauges_are_scrapeable(self):
        from repro.common.types import parse_type

        parse_type("int")
        registry = cache_stats_registry()
        assert registry.read("types.parse_type.misses") >= 1
        assert "types.parse_type.hits" in registry.names()

    def test_every_cache_exports_four_gauges(self):
        registry = cache_stats_registry()
        names = registry.names()
        for cache_name in cache_info_snapshot():
            for stat in ("hits", "misses", "maxsize", "currsize"):
                assert f"{cache_name}.{stat}" in names
