"""Tests for the monitoring substrate."""

import pytest

from repro.metrics import (
    AbsentPolicy,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(system="monitoring")


class TestMetrics:
    def test_gauge_set(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5)
        assert registry.read("g") == 5.0

    def test_counter_increments(self, registry):
        counter = registry.counter("c")
        counter.increment()
        counter.increment(2.5)
        assert registry.read("c") == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c").increment(-1)

    def test_registration_idempotent(self, registry):
        first = registry.gauge("g")
        first.set(7)
        second = registry.gauge("g")
        assert second is first
        assert registry.read("g") == 7

    def test_names_sorted(self, registry):
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]

    def test_get_returns_metric_object_or_none(self, registry):
        gauge = registry.gauge("g")
        assert registry.get("g") is gauge
        assert registry.get("nope") is None
        registry.deregister("g")
        assert registry.get("g") is None

    def test_items_pairs_in_name_order(self, registry):
        gauge = registry.gauge("b")
        counter = registry.counter("a")
        assert registry.items() == [("a", counter), ("b", gauge)]


class TestAbsentPolicies:
    def test_deregistered_reads_zero_by_default(self, registry):
        registry.gauge("usage").set(1000)
        registry.deregister("usage")
        # the GCP-outage behaviour
        assert registry.read("usage") == 0.0
        assert not registry.is_registered("usage")

    def test_absent_policy_returns_none(self, registry):
        registry.gauge("usage").set(1000)
        registry.deregister("usage")
        assert registry.read("usage", AbsentPolicy.ABSENT) is None

    def test_error_policy_raises_with_history(self, registry):
        registry.gauge("usage")
        registry.deregister("usage")
        with pytest.raises(MetricError, match="deregistered"):
            registry.read("usage", AbsentPolicy.ERROR)

    def test_never_registered_error_message(self, registry):
        with pytest.raises(MetricError) as excinfo:
            registry.read("ghost", AbsentPolicy.ERROR)
        assert "deregistered" not in str(excinfo.value)

    def test_reregistration_clears_history(self, registry):
        registry.gauge("g")
        registry.deregister("g")
        registry.gauge("g").set(3)
        assert registry.read("g", AbsentPolicy.ERROR) == 3

    def test_scrape_only_registered(self, registry):
        registry.gauge("keep").set(1)
        registry.gauge("drop").set(2)
        registry.deregister("drop")
        assert registry.scrape() == {"keep": 1.0}


class TestHistogram:
    def test_observe_and_count(self):
        hist = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.05, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.value == 4.0
        assert hist.sum == pytest.approx(5.0525)
        assert hist.snapshot()["overflow"] == 1

    def test_quantiles_use_bucket_bounds(self):
        hist = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) == 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0
        assert Histogram("h").mean == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(MetricError):
            Histogram("h").quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(0.1, 0.01))

    def test_merge_folds_counts(self):
        left = Histogram("h", buckets=(1.0, 2.0))
        right = Histogram("h", buckets=(1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.count == 3
        assert left.sum == pytest.approx(11.0)
        assert left.snapshot()["overflow"] == 1

    def test_merge_requires_same_buckets(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(1.0,)).merge(Histogram("h", buckets=(2.0,)))

    def test_registry_registration_and_scrape(self):
        registry = MetricsRegistry(system="crosstest")
        hist = registry.histogram("latency")
        assert registry.histogram("latency") is hist
        hist.observe(0.001)
        hist.observe(0.002)
        # a histogram scrapes as its observation count
        assert registry.scrape()["latency"] == 2.0


class TestSnapshot:
    def test_snapshot_types_every_metric(self, registry):
        registry.counter("c").increment(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"kind": "counter", "value": 2.0}
        assert snapshot["g"] == {"kind": "gauge", "value": 7.0}
        hist = snapshot["h"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.5)
        assert "buckets" in hist

    def test_snapshot_is_json_round_trippable(self, registry):
        import json

        registry.histogram("h").observe(1.0)
        assert json.loads(json.dumps(registry.snapshot()))

    def test_quantile_from_snapshot_matches_histogram(self, registry):
        from repro.metrics import quantile_from_snapshot

        hist = registry.histogram("h")
        for value in (0.001, 0.003, 0.02, 0.4, 9.0):
            hist.observe(value)
        entry = registry.snapshot()["h"]
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_snapshot(entry, q) == hist.quantile(q)

    def test_quantile_from_snapshot_survives_json(self, registry):
        import json

        from repro.metrics import quantile_from_snapshot

        hist = registry.histogram("h")
        hist.observe(0.002)
        hist.observe(0.04)
        entry = json.loads(json.dumps(registry.snapshot()))["h"]
        assert quantile_from_snapshot(entry, 0.5) == hist.quantile(0.5)

    def test_quantile_from_snapshot_empty_and_range(self):
        from repro.metrics import quantile_from_snapshot

        empty = {"count": 0, "buckets": {}}
        assert quantile_from_snapshot(empty, 0.99) == 0.0
        with pytest.raises(MetricError):
            quantile_from_snapshot(empty, 1.5)
