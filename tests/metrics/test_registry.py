"""Tests for the monitoring substrate."""

import pytest

from repro.metrics import (
    AbsentPolicy,
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(system="monitoring")


class TestMetrics:
    def test_gauge_set(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5)
        assert registry.read("g") == 5.0

    def test_counter_increments(self, registry):
        counter = registry.counter("c")
        counter.increment()
        counter.increment(2.5)
        assert registry.read("c") == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c").increment(-1)

    def test_registration_idempotent(self, registry):
        first = registry.gauge("g")
        first.set(7)
        second = registry.gauge("g")
        assert second is first
        assert registry.read("g") == 7

    def test_names_sorted(self, registry):
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]


class TestAbsentPolicies:
    def test_deregistered_reads_zero_by_default(self, registry):
        registry.gauge("usage").set(1000)
        registry.deregister("usage")
        # the GCP-outage behaviour
        assert registry.read("usage") == 0.0
        assert not registry.is_registered("usage")

    def test_absent_policy_returns_none(self, registry):
        registry.gauge("usage").set(1000)
        registry.deregister("usage")
        assert registry.read("usage", AbsentPolicy.ABSENT) is None

    def test_error_policy_raises_with_history(self, registry):
        registry.gauge("usage")
        registry.deregister("usage")
        with pytest.raises(MetricError, match="deregistered"):
            registry.read("usage", AbsentPolicy.ERROR)

    def test_never_registered_error_message(self, registry):
        with pytest.raises(MetricError) as excinfo:
            registry.read("ghost", AbsentPolicy.ERROR)
        assert "deregistered" not in str(excinfo.value)

    def test_reregistration_clears_history(self, registry):
        registry.gauge("g")
        registry.deregister("g")
        registry.gauge("g").set(3)
        assert registry.read("g", AbsentPolicy.ERROR) == 3

    def test_scrape_only_registered(self, registry):
        registry.gauge("keep").set(1)
        registry.gauge("drop").set(2)
        registry.deregister("drop")
        assert registry.scrape() == {"keep": 1.0}
