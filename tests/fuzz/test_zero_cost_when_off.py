"""Zero-cost-when-off: fuzzing must not perturb shared telemetry.

Fuzz traffic announces itself — ``source=fuzz`` span tags and a
``crosstest.fuzz`` metrics registry — and everything downstream splits
on that, so the §8 matrix's counters and the historical ``trace
summarize`` table stay byte-identical whenever no fuzzing ran. (The
report-side guarantee is covered in
``tests/crosstest/test_report_fuzz_off.py``.)
"""

from repro.crosstest.executor import CrossTestMetrics
from repro.metrics import AbsentPolicy
from repro.tracing import split_by_source, summary_lines
from repro.tracing.core import Span


def test_matrix_metrics_registry_name_is_unchanged():
    assert CrossTestMetrics().registry.system == "crosstest"
    assert CrossTestMetrics(source="fuzz").registry.system == "crosstest.fuzz"


def _span(span_id, source=None):
    span = Span(
        name="encode",
        trace_id="t",
        span_id=span_id,
        boundary="spark->serde",
        operation="encode",
        duration_s=0.001,
    )
    if source is not None:
        span.attributes["source"] = source
    return span


def test_trace_summary_is_byte_identical_without_fuzz_spans():
    spans = [_span(1), _span(2)]
    lines = summary_lines(spans, AbsentPolicy.ABSENT)
    # the historical single-table rendering: no source headers
    assert not any(line.startswith("[source=") for line in lines)
    assert lines[0].startswith("boundary")
    assert any("spark->serde" in line for line in lines[1:])
    assert lines[-1].startswith("2 spans total")


def test_trace_summary_splits_fuzz_spans_into_their_own_table():
    spans = [_span(1), _span(2), _span(3, source="fuzz")]
    lines = summary_lines(spans, AbsentPolicy.ABSENT)
    assert "[source=matrix]" in lines
    assert "[source=fuzz]" in lines
    matrix_at = lines.index("[source=matrix]")
    fuzz_at = lines.index("[source=fuzz]")
    matrix_table = "\n".join(lines[matrix_at:fuzz_at])
    fuzz_table = "\n".join(lines[fuzz_at:])
    # the matrix table counts only the untagged spans
    assert "2 spans total" in matrix_table
    assert "1 spans total" in fuzz_table


def test_matrix_section_renders_exactly_the_untagged_table():
    untagged = [_span(1), _span(2)]
    solo = summary_lines(untagged, AbsentPolicy.ABSENT)
    mixed = summary_lines(
        untagged + [_span(3, source="fuzz")], AbsentPolicy.ABSENT
    )
    matrix_at = mixed.index("[source=matrix]")
    fuzz_at = mixed.index("[source=fuzz]")
    assert mixed[matrix_at + 1 : fuzz_at] == solo


def test_split_by_source_defaults_untagged_spans_to_matrix():
    groups = split_by_source([_span(1), _span(2, source="fuzz")])
    assert set(groups) == {"matrix", "fuzz"}
    assert [span.span_id for span in groups["matrix"]] == [1]
    assert [span.span_id for span in groups["fuzz"]] == [2]
