"""The rediscovery acceptance bar.

From generators alone — curated corpus disabled — a bounded-budget
campaign must behaviourally rediscover at least 8 of the paper's 15
known discrepancies, and the shrinker must reduce rediscovered inputs
to minimal forms that still reproduce their fingerprints.
"""

import pytest

from repro.fuzz import Baseline, FuzzConfig, run_fuzz
from repro.fuzz.shrink import input_size, reproduces


@pytest.fixture(scope="module")
def bounded_campaign():
    # the canonical smoke parameters; use_corpus stays at its default
    # (False), so every executed input came from the generators
    config = FuzzConfig(
        seed=11, budget=96, batch=16, jobs=None, shrink=False
    )
    return run_fuzz(config, Baseline.empty())


def test_generators_alone_rediscover_at_least_8_of_15(bounded_campaign):
    assert not bounded_campaign.config.use_corpus
    assert len(bounded_campaign.rediscovered) >= 8, (
        bounded_campaign.rediscovered
    )


def test_rediscovered_numbers_are_catalog_entries(bounded_campaign):
    assert all(
        1 <= number <= 15 for number in bounded_campaign.rediscovered
    )


def test_shrinker_preserves_fingerprints_of_rediscovered_inputs(
    bounded_campaign,
):
    # shrink one witness per distinct (oracle, type shape) pair — the
    # full 800+ findings would re-execute needlessly many trials
    config = bounded_campaign.config
    by_mechanism = {}
    for finding in bounded_campaign.novel_findings:
        mech = (finding.fingerprint.oracle, finding.fingerprint.type_shape)
        by_mechanism.setdefault(mech, finding)
    sample = list(by_mechanism.values())[:10]
    assert sample
    from repro.fuzz.shrink import shrink_input

    for finding in sample:
        shrunk = shrink_input(
            finding.witness,
            finding.fingerprint.key,
            config.plans,
            config.formats,
            finding.conf_overrides,
            finding.fingerprint.conf,
        )
        assert input_size(shrunk) <= input_size(finding.witness)
        assert reproduces(
            shrunk,
            finding.fingerprint.key,
            config.plans,
            config.formats,
            finding.conf_overrides,
            finding.fingerprint.conf,
        )
