"""The ``repro fuzz`` command: exit codes, artifacts, determinism."""

import json
import os

import pytest

from repro.cli import main

SMOKE = ["fuzz", "--seed", "11", "--batch", "16", "--quiet"]


def test_exit_4_on_novel_findings(tmp_path, capsys):
    code = main(
        SMOKE
        + ["--budget", "16", "--baseline", "none", "--no-shrink"]
    )
    assert code == 4
    out = capsys.readouterr().out
    assert "novel" in out
    assert "NOVEL" in out


def test_exit_0_when_baseline_knows_everything(capsys):
    # the smoke prefix of the committed baseline's own campaign
    code = main(SMOKE + ["--budget", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 novel" in out


def test_out_dir_writes_fingerprints_and_finding_dirs(tmp_path, capsys):
    out_dir = os.path.join(tmp_path, "artifacts")
    code = main(
        SMOKE
        + [
            "--budget", "16", "--baseline", "none", "--no-shrink",
            "--out-dir", out_dir,
        ]
    )
    assert code == 4
    jsonl = os.path.join(out_dir, "fingerprints.jsonl")
    with open(jsonl, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert records
    assert [r["key"] for r in records] == sorted(r["key"] for r in records)
    findings_dir = os.path.join(out_dir, "findings")
    slugs = sorted(os.listdir(findings_dir))
    assert slugs
    first = os.path.join(findings_dir, slugs[0])
    with open(os.path.join(first, "repro.json"), encoding="utf-8") as fh:
        repro_payload = json.load(fh)
    assert repro_payload["novel"] is True
    assert "shrunk" in repro_payload
    assert os.path.exists(os.path.join(first, "trace.jsonl"))


@pytest.mark.parametrize("jobs", ["2", "4"])
def test_fingerprint_jsonl_is_byte_identical_across_jobs(
    tmp_path, capsys, jobs
):
    base = os.path.join(tmp_path, "j1")
    other = os.path.join(tmp_path, f"j{jobs}")
    args = SMOKE + ["--budget", "32", "--no-shrink", "--pool", "thread"]
    assert main(args + ["--jobs", "1", "--out-dir", base]) == 0
    assert main(args + ["--jobs", jobs, "--out-dir", other]) == 0
    with open(os.path.join(base, "fingerprints.jsonl"), "rb") as handle:
        expected = handle.read()
    with open(os.path.join(other, "fingerprints.jsonl"), "rb") as handle:
        assert handle.read() == expected


def test_write_baseline_merges_and_saves(tmp_path, capsys):
    path = os.path.join(tmp_path, "baseline.json")
    code = main(
        SMOKE
        + [
            "--budget", "16", "--baseline", "none", "--no-shrink",
            "--write-baseline", path,
        ]
    )
    assert code == 4
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["count"] == len(payload["fingerprints"]) > 0
    # a rerun against the written baseline finds nothing novel
    code = main(
        SMOKE + ["--budget", "16", "--baseline", path, "--no-shrink"]
    )
    assert code == 0


def test_json_output_is_the_fuzz_section(capsys):
    code = main(SMOKE + ["--budget", "16", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 11
    assert payload["candidates"] == 16
    assert payload["novel"] == []


def test_bad_usage_exits_2(capsys):
    assert main(["fuzz", "--budget", "0", "--quiet"]) == 2
    assert main(["fuzz", "--jobs", "0", "--quiet"]) == 2
    assert (
        main(["fuzz", "--baseline", "/nonexistent/path.json", "--quiet"])
        == 2
    )
