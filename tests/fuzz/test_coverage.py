"""Coverage feature extraction: spans in, deterministic features out."""

from repro.crosstest.harness import Outcome, Trial
from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.values import TestInput
from repro.fuzz.coverage import EVENT_ATTRS, CoverageMap, trial_features
from repro.tracing.core import Span, SpanEvent


def _span(boundary="spark->serde", operation="encode", status="ok"):
    return Span(
        name=f"{operation}",
        trace_id="t",
        span_id=1,
        boundary=boundary,
        operation=operation,
        status=status,
    )


def _trial():
    test_input = TestInput(
        input_id=1,
        type_text="decimal(5,2)",
        sql_literal="1.5",
        py_value=1.5,
        valid=True,
    )
    return Trial(
        plan=ALL_PLANS[0],
        fmt="orc",
        test_input=test_input,
        outcome=Outcome(status="ok", value=1.5, row_count=1),
    )


def test_boundary_spans_become_features():
    features = trial_features(_trial(), (_span(),))
    assert "span:spark->serde:encode:ok" in features


def test_type_and_verdict_features_are_always_present():
    features = trial_features(_trial(), ())
    assert any(f.startswith("type:decimal") for f in features)
    assert any(f.startswith("verdict:") for f in features)


def test_allowlisted_event_attributes_become_features():
    span = _span()
    span.events.append(
        SpanEvent(
            "cast.store_assignment", 0.0, {"policy": "ANSI", "ansi": True}
        )
    )
    features = trial_features(_trial(), (span,))
    assert "event:cast.store_assignment:policy=ANSI,ansi=True" in features


def test_cache_and_replay_events_never_feed_coverage():
    # cache warmth depends on worker history; a feature derived from it
    # would break byte-identical replay across --jobs settings
    for name in (
        "plan_cache.hit",
        "plan_cache.miss",
        "spark.create.memo_hit",
        "create.replayed",
        "fault.injected",
    ):
        assert name not in EVENT_ATTRS
    span = _span()
    span.events.append(SpanEvent("create.replayed", 0.0, {}))
    features = trial_features(_trial(), (span,))
    assert not any("create.replayed" in f for f in features)


def test_durations_never_feed_coverage():
    fast = _span()
    slow = _span()
    slow.duration_s = 99.0
    assert trial_features(_trial(), (fast,)) == trial_features(
        _trial(), (slow,)
    )


def test_coverage_map_promotes_only_first_sightings():
    coverage = CoverageMap()
    first = coverage.observe({"a", "b"})
    assert first == {"a", "b"}
    second = coverage.observe({"b", "c"})
    assert second == {"c"}
    assert len(coverage) == 3
    assert coverage.observe({"a", "c"}) == set()
