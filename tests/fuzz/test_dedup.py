"""Baseline persistence and novelty bookkeeping."""

import json
import os

from repro.crosstest.fingerprint import Fingerprint
from repro.fuzz.dedup import Baseline, default_baseline_path


def _fp(evidence="e1", conf=""):
    return Fingerprint(
        oracle="difft",
        group="hive_spark",
        fmt="orc",
        plans=("w_hive_r_df", "w_hive_r_df"),
        type_shape="smallint",
        evidence=evidence,
        conf=conf,
    )


def test_add_reports_novelty_once():
    baseline = Baseline.empty()
    assert baseline.add(_fp())
    assert not baseline.add(_fp())
    assert baseline.add(_fp(evidence="e2"))
    assert len(baseline) == 2
    assert _fp().key in baseline


def test_novel_filters_known_keys():
    baseline = Baseline.empty()
    baseline.add(_fp())
    candidates = {_fp().key: _fp(), _fp("e2").key: _fp("e2")}
    novel = baseline.novel(candidates)
    assert list(novel) == [_fp("e2").key]


def test_save_load_roundtrip(tmp_path):
    baseline = Baseline.empty()
    baseline.add(_fp())
    baseline.add(_fp(evidence="e2", conf="k=v"))
    path = os.path.join(tmp_path, "baseline.json")
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.keys == baseline.keys
    assert loaded.fingerprints[_fp().key] == _fp()


def test_saved_file_is_sorted_and_versioned(tmp_path):
    baseline = Baseline.empty()
    baseline.add(_fp(evidence="zz"))
    baseline.add(_fp(evidence="aa"))
    path = os.path.join(tmp_path, "baseline.json")
    baseline.save(path)
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    assert payload["count"] == 2
    evidences = [record["evidence"] for record in payload["fingerprints"]]
    assert evidences == sorted(evidences)


def test_committed_baseline_loads_and_covers_known_mechanisms():
    baseline = Baseline.load(default_baseline_path())
    # the curated corpus alone yields 616 stock-conf fingerprints; the
    # committed baseline holds those plus the conf-menu and smoke
    # campaign variants
    assert len(baseline) > 600
    # spot-check one pinned known mechanism (discrepancy #13)
    key = (
        "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|char"
        "|ok:expected:char<>ok:input:string|"
    )
    assert key in baseline


def test_merge_unions_without_duplicates():
    left = Baseline.empty()
    left.add(_fp())
    right = Baseline.empty()
    right.add(_fp())
    right.add(_fp(evidence="e2"))
    left.merge(right)
    assert len(left) == 2
