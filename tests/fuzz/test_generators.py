"""Generator discipline: seeded, picklable, honest about validity."""

import pickle

import pytest

from repro.common.types import parse_type
from repro.fuzz.generators import (
    CONF_MENU,
    FAMILIES,
    FUZZ_ID_BASE,
    Draws,
    gen_candidate,
    gen_conf,
    mutate,
)


def test_draws_are_deterministic_and_tagged():
    a = Draws(seed=7, round_index=2, slot=3)
    b = Draws(seed=7, round_index=2, slot=3)
    assert a.integer("x", 0, 100) == b.integer("x", 0, 100)
    assert a.choice("y", ["p", "q", "r"]) == b.choice("y", ["p", "q", "r"])
    # the counter advances, so the same tag drawn twice may differ
    c = Draws(seed=7, round_index=2, slot=3)
    first = c.integer("x", 0, 10**6)
    second = c.integer("x", 0, 10**6)
    assert first != second


def test_draws_differ_across_slots_and_seeds():
    base = Draws(seed=1, round_index=0, slot=0).integer("v", 0, 10**9)
    other_slot = Draws(seed=1, round_index=0, slot=1).integer("v", 0, 10**9)
    other_seed = Draws(seed=2, round_index=0, slot=0).integer("v", 0, 10**9)
    assert base != other_slot
    assert base != other_seed


def test_gen_candidate_is_deterministic():
    a = gen_candidate(5, 1, 4, FUZZ_ID_BASE + 20)
    b = gen_candidate(5, 1, 4, FUZZ_ID_BASE + 20)
    assert (a.type_text, a.sql_literal, a.valid) == (
        b.type_text,
        b.sql_literal,
        b.valid,
    )


def test_gen_candidate_is_picklable():
    candidate = gen_candidate(5, 0, 0, FUZZ_ID_BASE)
    clone = pickle.loads(pickle.dumps(candidate))
    assert clone.sql_literal == candidate.sql_literal
    assert clone.type_text == candidate.type_text


@pytest.mark.parametrize("seed", [0, 9])
def test_every_family_appears_in_both_polarities(seed):
    seen: dict[tuple[str, bool], int] = {}
    for index in range(len(FAMILIES) * 2):
        candidate = gen_candidate(
            seed, index // 16, index % 16, FUZZ_ID_BASE + index
        )
        family = FAMILIES[index % len(FAMILIES)]
        seen[(family, candidate.valid)] = (
            seen.get((family, candidate.valid), 0) + 1
        )
    families_seen = {family for family, _ in seen}
    assert families_seen == set(FAMILIES)
    # polarity alternates by design; some invalid recipes degrade to
    # valid for families with no invalid spelling (e.g. string), so
    # only require that both polarities exist overall
    assert any(valid for _, valid in seen)
    assert any(not valid for _, valid in seen)


def test_validity_flag_matches_declared_type():
    for index in range(120):
        candidate = gen_candidate(
            3, index // 16, index % 16, FUZZ_ID_BASE + index
        )
        dtype = parse_type(candidate.type_text)
        if candidate.valid:
            assert dtype.accepts(candidate.py_value), (
                candidate.type_text,
                candidate.py_value,
            )


def test_mutate_is_deterministic_and_renumbers():
    parent = gen_candidate(3, 0, 0, FUZZ_ID_BASE)
    a = mutate(3, 4, 2, FUZZ_ID_BASE + 99, parent)
    b = mutate(3, 4, 2, FUZZ_ID_BASE + 99, parent)
    assert a.input_id == FUZZ_ID_BASE + 99
    assert (a.type_text, a.sql_literal) == (b.type_text, b.sql_literal)


def test_gen_conf_rounds_zero_and_one_are_stock():
    for seed in range(8):
        assert gen_conf(seed, 0) == {}
        assert gen_conf(seed, 1) == {}


def test_gen_conf_draws_only_from_menu():
    menu = [dict(conf) for conf in CONF_MENU]
    for seed in range(4):
        for round_index in range(2, 12):
            assert gen_conf(seed, round_index) in menu


def test_conf_menu_never_touches_the_plan_cache():
    # the scheduler pins repro.plan.cache.enabled=false on every batch
    # for coverage determinism; a menu entry would silently alias the
    # stock deployment
    for conf in CONF_MENU:
        assert "repro.plan.cache.enabled" not in conf
