"""Campaign determinism and scheduler bookkeeping.

The acceptance bar: a fixed ``(seed, budget, baseline)`` produces
byte-identical fingerprint JSONL at ``--jobs 1/2/4`` across pool
flavours. These tests run small campaigns through every flavour and
compare the serialized records byte for byte.
"""

import json

import pytest

from repro.fuzz import (
    FUZZ_ID_BASE,
    Baseline,
    FuzzConfig,
    default_baseline_path,
    run_fuzz,
)
from repro.fuzz.scheduler import CrossTestMetrics


def _records_bytes(result):
    return "\n".join(
        json.dumps(record, sort_keys=True)
        for record in result.fingerprint_records()
    )


def _campaign(jobs, pool="auto", seed=11, budget=24, batch=12):
    config = FuzzConfig(
        seed=seed, budget=budget, batch=batch, jobs=jobs, pool=pool,
        shrink=False,
    )
    return run_fuzz(config, Baseline.empty())


@pytest.mark.parametrize(
    "jobs,pool",
    [(2, "thread"), (4, "thread"), (2, "process"), (4, "process")],
)
def test_fingerprints_are_byte_identical_across_jobs_and_pools(jobs, pool):
    sequential = _campaign(jobs=1)
    parallel = _campaign(jobs=jobs, pool=pool)
    assert _records_bytes(parallel) == _records_bytes(sequential)
    assert parallel.coverage.seen == sequential.coverage.seen
    assert parallel.rediscovered == sequential.rediscovered


def test_rerun_is_byte_identical_even_with_warm_caches():
    first = _campaign(jobs=1)
    second = _campaign(jobs=1)
    assert _records_bytes(first) == _records_bytes(second)


def test_different_seeds_explore_differently():
    a = _campaign(jobs=1, seed=1)
    b = _campaign(jobs=1, seed=2)
    assert set(a.findings) != set(b.findings)


def test_budget_counts_candidates_and_caps_rounds():
    result = _campaign(jobs=1, budget=20, batch=8)
    assert result.candidates == 20
    assert result.rounds == 3  # 8 + 8 + 4
    assert result.trials_run > result.candidates


def test_executed_input_ids_stay_above_fuzz_id_base():
    config = FuzzConfig(
        seed=3, budget=16, batch=8, jobs=1, use_corpus=True, shrink=False
    )
    result = run_fuzz(config, Baseline.empty())
    # corpus inputs (ids 0..421) seed mutations but are never executed
    for finding in result.findings.values():
        assert finding.witness.input_id >= FUZZ_ID_BASE
    for input_id in result.spans_by_input:
        assert input_id >= FUZZ_ID_BASE


def test_metrics_land_in_their_own_fuzz_registry():
    metrics = CrossTestMetrics(source="fuzz")
    assert metrics.registry.system == "crosstest.fuzz"
    result = run_fuzz(
        FuzzConfig(seed=3, budget=8, batch=8, shrink=False),
        Baseline.empty(),
        metrics=metrics,
    )
    assert int(metrics.trials_total.value) == result.trials_run
    # the §8 matrix registry name is untouched by default
    assert CrossTestMetrics().registry.system == "crosstest"


def test_spans_are_tagged_with_fuzz_source():
    result = _campaign(jobs=1, budget=8, batch=8)
    spans = [
        span
        for spans in result.spans_by_input.values()
        for span in spans
    ]
    assert spans
    assert all(span.attributes.get("source") == "fuzz" for span in spans)


def test_committed_baseline_makes_smoke_prefix_all_known():
    # the canonical smoke campaign (seed 11, batch 16) is a prefix of
    # the baseline-generation campaign, so nothing it finds is novel
    baseline = Baseline.load(default_baseline_path())
    config = FuzzConfig(seed=11, budget=16, batch=16, jobs=1)
    result = run_fuzz(config, baseline)
    assert result.findings
    assert result.novel_findings == []


def test_novelty_follows_the_baseline():
    empty_run = _campaign(jobs=1, budget=8, batch=8)
    assert empty_run.findings
    assert all(f.novel for f in empty_run.findings.values())
    knowing = Baseline.empty()
    for finding in empty_run.findings.values():
        knowing.add(finding.fingerprint)
    rerun = run_fuzz(
        FuzzConfig(seed=11, budget=8, batch=8, shrink=False), knowing
    )
    assert rerun.novel_findings == []
    assert rerun.known_count == len(rerun.findings)


def test_fuzz_section_summarizes_the_campaign():
    result = _campaign(jobs=1, budget=8, batch=8)
    section = result.section()
    payload = section.to_json()
    assert payload["seed"] == 11
    assert payload["candidates"] == 8
    assert payload["distinct_fingerprints"] == len(result.findings)
    lines = section.summary_lines()
    assert lines[0].startswith("fuzz: seed=11")
    assert any("fingerprints:" in line for line in lines)


def test_config_rejects_nonpositive_budget_and_batch():
    with pytest.raises(ValueError):
        FuzzConfig(budget=0)
    with pytest.raises(ValueError):
        FuzzConfig(batch=0)
