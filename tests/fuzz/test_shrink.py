"""Delta-debugging shrinker: smaller inputs, same fingerprint."""

import pytest

from repro.crosstest.fingerprint import conf_label
from repro.fuzz import Baseline, FuzzConfig, run_fuzz
from repro.fuzz.shrink import input_size, reproduces, shrink_input


@pytest.fixture(scope="module")
def campaign():
    config = FuzzConfig(seed=11, budget=18, batch=18, jobs=1, shrink=True)
    return run_fuzz(config, Baseline.empty())


def test_every_novel_finding_gets_a_shrunk_repro(campaign):
    assert campaign.novel_findings
    for finding in campaign.novel_findings:
        assert finding.shrunk is not None
        assert input_size(finding.shrunk) <= input_size(finding.witness)


def test_shrunk_inputs_still_reproduce_their_fingerprint(campaign):
    config = campaign.config
    for finding in campaign.novel_findings[:12]:
        assert reproduces(
            finding.shrunk,
            finding.fingerprint.key,
            config.plans,
            config.formats,
            finding.conf_overrides,
            finding.fingerprint.conf,
        ), finding.fingerprint.key


def test_shrinker_actually_reduces_some_inputs(campaign):
    reduced = sum(
        1
        for finding in campaign.novel_findings
        if input_size(finding.shrunk) < input_size(finding.witness)
    )
    assert reduced > 0


def test_shrink_is_deterministic(campaign):
    finding = campaign.novel_findings[0]
    config = campaign.config
    again = shrink_input(
        finding.witness,
        finding.fingerprint.key,
        config.plans,
        config.formats,
        finding.conf_overrides,
        conf_label(finding.conf_overrides),
    )
    assert again.sql_literal == finding.shrunk.sql_literal
    assert again.type_text == finding.shrunk.type_text


def test_input_size_counts_type_and_literal_text():
    from repro.fuzz.generators import FUZZ_ID_BASE, gen_candidate

    witness = gen_candidate(0, 0, 0, FUZZ_ID_BASE)
    assert input_size(witness) == len(witness.type_text) + len(
        witness.sql_literal
    )
