"""Unit tests for the partition log and compaction semantics."""

import pytest

from repro.errors import OffsetOutOfRangeError, StreamError
from repro.kafkalite.broker import Broker
from repro.kafkalite.log import PartitionLog


class TestAppendRead:
    def test_offsets_monotonic(self):
        log = PartitionLog("t")
        assert [log.append(f"v{i}") for i in range(3)] == [0, 1, 2]
        assert log.log_end_offset == 3

    def test_read_exact(self):
        log = PartitionLog("t")
        log.append("a", key="k")
        assert log.read(0).value == "a"
        with pytest.raises(OffsetOutOfRangeError):
            log.read(5)

    def test_read_from_seeks_forward(self):
        log = PartitionLog("t")
        log.append("a")
        log.append("b")
        assert log.read_from(1).value == "b"
        assert log.read_from(2) is None

    def test_contiguous_before_compaction(self):
        log = PartitionLog("t")
        for i in range(5):
            log.append(i, key=str(i % 2))
        assert log.is_contiguous()


class TestCompaction:
    def test_keeps_latest_per_key(self):
        log = PartitionLog("t")
        log.append("old", key="k")
        log.append("other", key="j")
        log.append("new", key="k")
        removed = log.compact()
        assert removed == 1
        assert [r.value for r in (log.read(1), log.read(2))] == ["other", "new"]

    def test_offsets_not_renumbered(self):
        log = PartitionLog("t")
        for i in range(6):
            log.append(i, key=str(i % 2))
        log.compact()
        # survivors keep their original offsets; the log no longer
        # starts at zero
        assert log.offsets() == [4, 5]
        assert log.log_start_offset == 4

    def test_holes_raise_on_exact_read(self):
        log = PartitionLog("t")
        log.append("a", key="k")
        log.append("b", key="k")
        log.compact()
        with pytest.raises(OffsetOutOfRangeError):
            log.read(0)

    def test_end_offset_unchanged(self):
        log = PartitionLog("t")
        for i in range(4):
            log.append(i, key="same")
        log.compact()
        assert log.log_end_offset == 4
        assert log.log_start_offset == 3

    def test_null_keys_compact_together(self):
        log = PartitionLog("t")
        log.append("a")
        log.append("b")
        assert log.compact() == 1
        assert [r.value for r in [log.read_from(0)]] == ["b"]

    def test_compact_empty_log(self):
        assert PartitionLog("t").compact() == 0


class TestBroker:
    def test_create_and_produce(self):
        broker = Broker()
        broker.create_topic("events", partitions=2)
        assert broker.produce("events", "v", partition=1) == 0
        assert broker.partition("events", 1).read(0).value == "v"

    def test_duplicate_topic_rejected(self):
        broker = Broker()
        broker.create_topic("t")
        with pytest.raises(StreamError):
            broker.create_topic("t")

    def test_unknown_topic_rejected(self):
        with pytest.raises(StreamError):
            Broker().partition("ghost")

    def test_bad_partition_rejected(self):
        broker = Broker()
        broker.create_topic("t", partitions=1)
        with pytest.raises(StreamError):
            broker.partition("t", 2)

    def test_zero_partitions_rejected(self):
        with pytest.raises(StreamError):
            Broker().create_topic("t", partitions=0)

    def test_list_topics(self):
        broker = Broker()
        broker.create_topic("b")
        broker.create_topic("a")
        assert broker.list_topics() == ["a", "b"]
