"""Unit tests for the two consumers (SPARK-19361's assumption vs fix)."""

import pytest

from repro.errors import OffsetOutOfRangeError
from repro.kafkalite.consumer import NaiveOffsetConsumer, SeekingConsumer
from repro.kafkalite.log import PartitionLog


def compacted_log():
    log = PartitionLog("t")
    for i in range(6):
        log.append(f"v{i}", key=str(i % 2))
    log.compact()  # survivors: offsets 4, 5
    return log


class TestNaiveConsumer:
    def test_works_on_contiguous_log(self):
        log = PartitionLog("t")
        for i in range(4):
            log.append(i)
        consumer = NaiveOffsetConsumer(log)
        assert [r.value for r in consumer.poll_all()] == [0, 1, 2, 3]

    def test_crashes_on_compacted_log(self):
        consumer = NaiveOffsetConsumer(compacted_log())
        with pytest.raises(OffsetOutOfRangeError):
            consumer.poll_all()

    def test_crash_is_at_first_hole(self):
        log = PartitionLog("t")
        log.append("a", key="k")
        log.append("b", key="k")
        log.append("c", key="j")
        log.compact()  # offset 0 removed
        consumer = NaiveOffsetConsumer(log)
        with pytest.raises(OffsetOutOfRangeError, match="offset 0"):
            consumer.poll_all()


class TestSeekingConsumer:
    def test_reads_every_survivor(self):
        consumer = SeekingConsumer(compacted_log())
        assert [r.value for r in consumer.poll_all()] == ["v4", "v5"]

    def test_position_advances_past_holes(self):
        consumer = SeekingConsumer(compacted_log())
        consumer.poll_all()
        assert consumer.position == 6

    def test_resumes_incrementally(self):
        log = PartitionLog("t")
        log.append("a")
        consumer = SeekingConsumer(log)
        assert [r.value for r in consumer.poll_all()] == ["a"]
        log.append("b")
        assert [r.value for r in consumer.poll_all()] == ["b"]

    def test_empty_log(self):
        assert SeekingConsumer(PartitionLog("t")).poll_all() == []
