"""Tests for the campaign run ledger.

The load-bearing guarantee: with the clock injected and ``env`` pinned,
a ledger record is a pure function of the run's inputs — byte-identical
at every ``--jobs``/pool setting, for plain, fault-injected, and fuzz
runs alike.
"""

import json

import pytest

from repro.crosstest.report import run_crosstest
from repro.crosstest.smoke import smoke_inputs
from repro.faults import BUILTIN_PLANS
from repro.obs import (
    LEDGER_SCHEMA,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    campaign_record,
    canonical_record,
    check_schema,
    crosstest_record,
    fuzz_record,
    read_ledger,
    read_ledger_with_tail,
    run_env,
)

SETTINGS = [
    (1, "thread"),
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
]

FIXED_CLOCK = lambda: 1700000000.0  # noqa: E731


@pytest.fixture(scope="module")
def smoke():
    return smoke_inputs()


def _record_bytes(record) -> bytes:
    return json.dumps(record, sort_keys=True).encode("utf-8")


class TestDeterminism:
    @pytest.fixture(scope="class")
    def plain_baseline(self, smoke):
        report = run_crosstest(inputs=smoke, formats=("parquet",), jobs=1)
        return crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_plain_record_byte_identical(
        self, smoke, plain_baseline, jobs, pool
    ):
        report = run_crosstest(
            inputs=smoke, formats=("parquet",), jobs=jobs, pool=pool
        )
        record = crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )
        assert _record_bytes(record) == _record_bytes(plain_baseline)

    @pytest.fixture(scope="class")
    def faulted_baseline(self, smoke):
        report = run_crosstest(
            inputs=smoke,
            formats=("parquet",),
            jobs=1,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=1337,
        )
        return crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_faulted_record_byte_identical(
        self, smoke, faulted_baseline, jobs, pool
    ):
        report = run_crosstest(
            inputs=smoke,
            formats=("parquet",),
            jobs=jobs,
            pool=pool,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=1337,
        )
        record = crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )
        assert _record_bytes(record) == _record_bytes(faulted_baseline)

    def test_env_is_outside_the_deterministic_core(self, smoke):
        report = run_crosstest(inputs=smoke, formats=("parquet",), jobs=1)
        noisy = crosstest_record(
            report,
            corpus="smoke",
            clock=FIXED_CLOCK,
            env={"jobs": 4, "wall_s": 1.23},
        )
        quiet = crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )
        assert canonical_record(noisy) == canonical_record(quiet)
        assert noisy != quiet

    def test_ts_is_outside_the_deterministic_core(self, smoke):
        # a resumed campaign stamps later wall-clock times than the
        # uninterrupted run it must canonically match
        report = run_crosstest(inputs=smoke, formats=("parquet",), jobs=1)
        early = crosstest_record(
            report, corpus="smoke", clock=lambda: 1.0, env={}
        )
        late = crosstest_record(
            report, corpus="smoke", clock=lambda: 9999.0, env={}
        )
        assert canonical_record(early) == canonical_record(late)
        assert "ts" not in canonical_record(early)
        assert early != late


class TestFuzzRecord:
    @pytest.fixture(scope="class")
    def campaign(self):
        from repro.fuzz import Baseline, FuzzConfig, run_fuzz

        def run(jobs, pool):
            config = FuzzConfig(
                seed=3,
                budget=16,
                batch=8,
                jobs=jobs,
                pool=pool,
                shrink=False,
            )
            return run_fuzz(config, Baseline.empty())

        return run

    def test_fuzz_record_byte_identical_across_jobs(self, campaign):
        baseline = fuzz_record(
            campaign(1, "thread"), clock=FIXED_CLOCK, env={}
        )
        for jobs, pool in [(2, "thread"), (4, "process")]:
            record = fuzz_record(
                campaign(jobs, pool), clock=FIXED_CLOCK, env={}
            )
            assert _record_bytes(record) == _record_bytes(baseline)

    def test_fuzz_record_shape(self, campaign):
        record = fuzz_record(campaign(1, "thread"), clock=FIXED_CLOCK, env={})
        assert record["kind"] == "fuzz"
        assert record["schema_version"] == LEDGER_SCHEMA_VERSION
        assert record["run"]["seed"] == 3
        results = record["results"]
        assert results["trials"] > 0
        assert results["coverage_features"] > 0
        assert results["fingerprints"] == sorted(results["fingerprints"])


class TestLedgerFile:
    def test_append_then_read_round_trips(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = Ledger(path)
        first = {"schema_version": 1, "kind": "crosstest", "ts": 1.0}
        second = {"schema_version": 1, "kind": "fuzz", "ts": 2.0}
        ledger.append(first)
        ledger.append(second)
        assert ledger.read() == [first, second]

    def test_missing_file_is_an_empty_campaign(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_corrupt_line_reports_path_and_lineno(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:2"):
            read_ledger(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(LedgerError, match="expected a JSON object"):
            read_ledger(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('\n{"ok": 1}\n\n')
        assert read_ledger(str(path)) == [{"ok": 1}]


class TestTornTail:
    """A hard-killed writer leaves at most one partial trailing line;
    the ledger layer must detect it — and tolerate it only when asked,
    never silently mis-parse it."""

    def test_strict_read_still_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{"torn": tru')
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:2"):
            read_ledger(str(path))

    def test_tolerant_read_drops_only_the_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{"torn": tru')
        records = read_ledger(str(path), tolerate_truncated_tail=True)
        assert records == [{"ok": 1}]

    def test_with_tail_reports_the_tear(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{"torn": tru')
        records, truncated = read_ledger_with_tail(str(path))
        assert records == [{"ok": 1}]
        assert truncated is not None
        assert truncated[0] == 2

    def test_clean_ledger_has_no_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n')
        assert read_ledger_with_tail(str(path)) == ([{"ok": 1}], None)

    def test_mid_file_corruption_raises_even_when_tolerant(self, tmp_path):
        # damage before the tail is not an append in flight
        path = tmp_path / "ledger.jsonl"
        path.write_text('not json\n{"ok": 1}\n')
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:1"):
            read_ledger(str(path), tolerate_truncated_tail=True)

    def test_with_tail_raises_on_mid_file_corruption(self, tmp_path):
        # read_ledger_with_tail itself must distinguish the two: a bad
        # line followed by a good one is corruption, not a torn append
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:2"):
            read_ledger_with_tail(str(path))

    def test_two_bad_trailing_lines_are_corruption(self, tmp_path):
        # a hard kill tears at most ONE line; two unparseable trailing
        # lines cannot be an append in flight
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{"torn": tru\n{"also": tor')
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:2"):
            read_ledger_with_tail(str(path))

    def test_torn_sole_line_tolerated(self, tmp_path):
        # a writer killed during its very first append: empty prefix
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"torn": tru')
        records, truncated = read_ledger_with_tail(str(path))
        assert records == []
        assert truncated is not None and truncated[0] == 1

    def test_tail_report_carries_the_parse_reason(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{"torn": tru')
        _, truncated = read_ledger_with_tail(str(path))
        assert truncated is not None
        lineno, reason = truncated
        assert lineno == 2
        assert reason  # a human can see *why* the line failed to parse

    def test_missing_file_is_clean(self, tmp_path):
        assert read_ledger_with_tail(str(tmp_path / "absent.jsonl")) == (
            [],
            None,
        )


class TestMetadataCaching:
    """Ledger appends must not pay a git fork / bench-file read each
    time: both probes run once per process (PR 10 satellite), and the
    bench snapshot resolves against the repo root or REPRO_BENCH_JSON,
    never the cwd."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.obs.ledger import _clear_metadata_cache

        _clear_metadata_cache()
        yield
        _clear_metadata_cache()

    def test_git_probe_runs_once_per_process(self, monkeypatch):
        from repro.obs import ledger as ledger_mod

        calls = []

        class FakeProc:
            returncode = 0
            stdout = "abc1234\n"

        def fake_run(*args, **kwargs):
            calls.append(args)
            return FakeProc()

        monkeypatch.setattr(ledger_mod.subprocess, "run", fake_run)
        assert ledger_mod._git_metadata() == {"commit": "abc1234"}
        assert ledger_mod._git_metadata() == {"commit": "abc1234"}
        run_env(jobs=1)
        assert len(calls) == 1

    def test_failed_git_probe_is_cached_too(self, monkeypatch):
        from repro.obs import ledger as ledger_mod

        calls = []

        def fake_run(*args, **kwargs):
            calls.append(args)
            raise OSError("no git on this host")

        monkeypatch.setattr(ledger_mod.subprocess, "run", fake_run)
        assert ledger_mod._git_metadata() is None
        assert ledger_mod._git_metadata() is None
        assert len(calls) == 1

    def test_bench_env_var_overrides_path(self, tmp_path, monkeypatch):
        from repro.obs import ledger as ledger_mod

        bench = tmp_path / "elsewhere.json"
        bench.write_text(json.dumps({"jobs1": {"trials_per_s": 12345.0}}))
        monkeypatch.setenv("REPRO_BENCH_JSON", str(bench))
        assert ledger_mod._bench_metadata() == {
            "jobs1_trials_per_s": 12345.0
        }

    def test_bench_default_resolves_repo_root_not_cwd(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.obs import ledger as ledger_mod

        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        # a decoy in the cwd must NOT be picked up
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_crosstest.json").write_text(
            json.dumps({"jobs1": {"trials_per_s": 1.0}})
        )
        path = ledger_mod._bench_json_path()
        assert os.path.isabs(path)
        assert path != str(tmp_path / "BENCH_crosstest.json")
        # repo root = the directory holding src/repro
        root = os.path.dirname(
            os.path.dirname(
                os.path.dirname(os.path.dirname(ledger_mod.__file__))
            )
        )
        assert path == os.path.join(root, "BENCH_crosstest.json")

    def test_bench_cache_is_keyed_by_resolved_path(
        self, tmp_path, monkeypatch
    ):
        from repro.obs import ledger as ledger_mod

        first = tmp_path / "a.json"
        first.write_text(json.dumps({"jobs1": {"trials_per_s": 1.0}}))
        second = tmp_path / "b.json"
        second.write_text(json.dumps({"jobs1": {"trials_per_s": 2.0}}))
        monkeypatch.setenv("REPRO_BENCH_JSON", str(first))
        assert ledger_mod._bench_metadata() == {"jobs1_trials_per_s": 1.0}
        # pointing the env var elsewhere between appends re-resolves
        # rather than serving the stale cache entry
        monkeypatch.setenv("REPRO_BENCH_JSON", str(second))
        assert ledger_mod._bench_metadata() == {"jobs1_trials_per_s": 2.0}
        # ...and the first entry is still cached, not re-read
        first.unlink()
        monkeypatch.setenv("REPRO_BENCH_JSON", str(first))
        assert ledger_mod._bench_metadata() == {"jobs1_trials_per_s": 1.0}


class TestCampaignRecord:
    def test_shape_and_determinism(self):
        run = {"seed": 11, "batch": 16, "batch_index": 2}
        results = {
            "trials": 384,
            "fingerprints": ["a|x", "b|y"],
            "new_fingerprints": ["b|y"],
            "novel": [],
        }
        record = campaign_record(run, results, clock=FIXED_CLOCK, env={})
        assert record["kind"] == "campaign"
        assert record["schema_version"] == LEDGER_SCHEMA_VERSION
        assert set(record) == set(LEDGER_SCHEMA["record"])
        again = campaign_record(run, results, clock=FIXED_CLOCK, env={})
        assert _record_bytes(record) == _record_bytes(again)

    def test_clock_and_env_stay_volatile(self):
        run = {"seed": 11, "batch": 16, "batch_index": 0}
        early = campaign_record(run, {}, clock=lambda: 1.0, env={})
        late = campaign_record(
            run, {}, clock=lambda: 2.0, env={"jobs": 4}
        )
        assert early != late
        assert canonical_record(early) == canonical_record(late)


class TestSchema:
    def test_current_version_accepted(self):
        check_schema([{"schema_version": LEDGER_SCHEMA_VERSION}])

    def test_drift_names_versions(self):
        records = [
            {"schema_version": LEDGER_SCHEMA_VERSION},
            {"schema_version": 99},
        ]
        with pytest.raises(LedgerError, match="99"):
            check_schema(records, "campaign.jsonl")

    def test_schema_constant_documents_every_record_key(self, smoke):
        report = run_crosstest(inputs=smoke, formats=("parquet",), jobs=1)
        record = crosstest_record(
            report, corpus="smoke", clock=FIXED_CLOCK, env={}
        )
        assert set(record) == set(LEDGER_SCHEMA["record"])
        assert LEDGER_SCHEMA["version"] == LEDGER_SCHEMA_VERSION


class TestRunEnv:
    def test_env_carries_what_the_caller_measured(self):
        env = run_env(jobs=4, pool="thread", wall_s=1.23456789)
        assert env["jobs"] == 4
        assert env["pool"] == "thread"
        assert env["wall_s"] == pytest.approx(1.234568)

    def test_metrics_snapshot_included(self):
        from repro.crosstest import CrossTestMetrics

        metrics = CrossTestMetrics()
        metrics.trials_total.increment(3)
        env = run_env(metrics=metrics)
        assert env["metrics"]["trials_total"]["value"] == 3.0
