"""Tests for the co-occurrence analytics over the ledger."""

import random

import pytest

from repro.obs import (
    canonical_record,
    cluster_ledger,
    item_seam,
    jaccard,
    record_items,
)


def _record(ts, fingerprints=(), mis_handled=(), kind="crosstest"):
    return {
        "schema_version": 1,
        "kind": kind,
        "ts": ts,
        "run": {},
        "results": {
            "trials": 10,
            "fingerprints": list(fingerprints),
            "faults": {"mis_handled": list(mis_handled)}
            if mis_handled
            else None,
        },
        "env": {"wall_s": ts * 7},  # volatile; must not affect clustering
    }


FP_CAST = "cast|spark_hive|parquet|w_df_r_hive|tinyint|ok<>error|"
FP_TS = "difft|spark_hive|orc|w_df_r_hive|timestamp|drift|"
FP_E2E = "difft|spark_e2e|avro|w_df_r_df|char|pad|"
FAULT = {
    "trial": "t1",
    "mode": "wrong-results",
    "sites": ["spark->metastore/alter_table"],
}


class TestItems:
    def test_record_items_spans_both_families(self):
        record = _record(1.0, [FP_CAST], [FAULT])
        items = record_items(record)
        assert f"fp:{FP_CAST}" in items
        assert (
            "fault:spark->metastore/alter_table:wrong-results" in items
        )
        assert items == tuple(sorted(items))

    def test_fingerprint_seam_from_plan_group(self):
        assert item_seam(f"fp:{FP_CAST}") == "spark->hive"
        assert item_seam(f"fp:{FP_E2E}") == "spark<->spark"

    def test_fault_seam_is_the_site_boundary(self):
        assert (
            item_seam("fault:spark->metastore/alter_table:wrong-results")
            == "spark->metastore"
        )

    def test_unknown_items_degrade_gracefully(self):
        assert item_seam("fp:short") == "unknown"
        assert item_seam("garbage") == "unknown"


class TestJaccard:
    def test_always_together_is_one(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint_is_zero(self):
        assert jaccard({1}, {2}) == 0.0

    def test_empty_sets_are_unrelated(self):
        assert jaccard(set(), set()) == 0.0


class TestClustering:
    def test_co_occurring_items_cluster_with_flake_rate(self):
        # CAST and TS fail together in runs 0 and 1; E2E only in run 2
        records = [
            _record(1.0, [FP_CAST, FP_TS]),
            _record(2.0, [FP_CAST, FP_TS]),
            _record(3.0, [FP_E2E]),
        ]
        clusters = cluster_ledger(records)
        assert len(clusters) == 2
        big, small = clusters
        assert big.members == (f"fp:{FP_CAST}", f"fp:{FP_TS}")
        assert big.flake_rate == pytest.approx(2 / 3)
        assert big.runs == (0, 1)
        assert big.first_seen == 1.0 and big.last_seen == 2.0
        assert big.seams == ("spark->hive",)
        assert small.members == (f"fp:{FP_E2E}",)
        assert small.flake_rate == pytest.approx(1 / 3)
        assert small.seams == ("spark<->spark",)

    def test_faults_and_fingerprints_share_clusters(self):
        records = [
            _record(1.0, [FP_TS], [FAULT]),
            _record(2.0, [FP_TS], [FAULT]),
        ]
        (cluster,) = cluster_ledger(records)
        assert cluster.members == (
            "fault:spark->metastore/alter_table:wrong-results",
            f"fp:{FP_TS}",
        )
        assert cluster.seams == ("spark->hive", "spark->metastore")
        assert cluster.flake_rate == 1.0

    def test_threshold_splits_weak_links(self):
        # CAST fails in every run, TS in one of three: J = 1/3
        records = [
            _record(1.0, [FP_CAST, FP_TS]),
            _record(2.0, [FP_CAST]),
            _record(3.0, [FP_CAST]),
        ]
        assert len(cluster_ledger(records, threshold=0.5)) == 2
        assert len(cluster_ledger(records, threshold=0.3)) == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            cluster_ledger([], threshold=0.0)
        with pytest.raises(ValueError):
            cluster_ledger([], threshold=1.5)

    def test_empty_ledger_yields_no_clusters(self):
        assert cluster_ledger([]) == []

    def test_clusters_ignore_env(self):
        record = _record(1.0, [FP_CAST])
        stripped = {
            key: value for key, value in record.items() if key != "env"
        }
        assert cluster_ledger([record]) == cluster_ledger([stripped])

    def test_canonical_records_cluster_identically_sans_timeline(self):
        # canonical_record strips ts too (it is volatile across a
        # kill/resume); membership and seams must be unaffected — only
        # the first/last-seen timeline collapses to the default
        record = _record(1.0, [FP_CAST])
        stripped = canonical_record(record)
        assert "env" not in stripped and "ts" not in stripped
        (full,) = cluster_ledger([record])
        (canon,) = cluster_ledger([stripped])
        assert canon.members == full.members
        assert canon.seams == full.seams
        assert canon.flake_rate == full.flake_rate


class TestOrderIndependence:
    def test_shuffled_ledger_yields_identical_clusters(self):
        records = [
            _record(1.0, [FP_CAST, FP_TS]),
            _record(2.0, [FP_CAST, FP_TS], [FAULT]),
            _record(3.0, [FP_E2E]),
            _record(4.0, [FP_E2E, FP_CAST]),
            _record(5.0, [], [FAULT]),
        ]
        baseline = cluster_ledger(records)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(records)
            rng.shuffle(shuffled)
            assert cluster_ledger(shuffled) == baseline
