"""Tests for the stdlib HTTP status surface."""

import json
import urllib.error
import urllib.request

import pytest

from repro.metrics import MetricsRegistry
from repro.obs import LEDGER_SCHEMA_VERSION, Ledger, ObsServer


@pytest.fixture
def ledger_path(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = Ledger(path)
    ledger.append(
        {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "kind": "crosstest",
            "ts": 1.0,
            "run": {},
            "results": {"trials": 3, "fingerprints": ["a|spark_hive|x"]},
            "env": {},
        }
    )
    ledger.append(
        {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "kind": "crosstest",
            "ts": 2.0,
            "run": {},
            "results": {"trials": 3, "fingerprints": ["a|spark_hive|x"]},
            "env": {},
        }
    )
    return path


def _get(server, path):
    with urllib.request.urlopen(server.url(path), timeout=5) as resp:
        return resp.status, json.loads(resp.read())


class TestObsServer:
    def test_endpoints_serve_json(self, ledger_path):
        registry = MetricsRegistry(system="campaign")
        registry.counter("runs").increment(2)
        server = ObsServer(
            ledger_path=ledger_path, registries=(registry,)
        ).start()
        try:
            status, index = _get(server, "/")
            assert status == 200
            assert index["runs"] == 2
            assert index["schema_version"] == LEDGER_SCHEMA_VERSION
            assert set(index["endpoints"]) == set(server.ENDPOINTS)

            _, metrics = _get(server, "/metrics")
            assert metrics["campaign"]["runs"]["value"] == 2.0

            _, ledger = _get(server, "/ledger")
            assert len(ledger["runs"]) == 2

            _, clusters = _get(server, "/clusters")
            assert clusters["total_runs"] == 2
            assert len(clusters["clusters"]) == 1
            assert clusters["clusters"][0]["flake_rate"] == 1.0
        finally:
            server.stop()

    def test_ledger_reread_per_request(self, ledger_path):
        server = ObsServer(ledger_path=ledger_path).start()
        try:
            _, before = _get(server, "/")
            assert before["runs"] == 2
            Ledger(ledger_path).append(
                {
                    "schema_version": LEDGER_SCHEMA_VERSION,
                    "kind": "fuzz",
                    "ts": 3.0,
                    "run": {},
                    "results": {},
                    "env": {},
                }
            )
            _, after = _get(server, "/")
            assert after["runs"] == 3
        finally:
            server.stop()

    def test_unknown_path_is_404_with_endpoint_index(self):
        server = ObsServer().start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read())
            assert "/clusters" in payload["endpoints"]
        finally:
            server.stop()

    def test_corrupt_ledger_is_500_not_crash(self, tmp_path):
        # corruption before the tail is file damage, not a torn append
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"ok": 1}\n')
        server = ObsServer(ledger_path=str(path)).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/ledger")
            assert excinfo.value.code == 500
        finally:
            server.stop()

    def test_torn_tail_served_not_500(self, tmp_path):
        # a live campaign writer killed mid-append leaves one partial
        # final line; the server keeps serving the intact prefix and
        # surfaces the tear instead of failing the request
        path = tmp_path / "live.jsonl"
        path.write_text('{"ok": 1}\n{"tor')
        server = ObsServer(ledger_path=str(path)).start()
        try:
            status, payload = _get(server, "/ledger")
            assert status == 200
            assert payload["runs"] == [{"ok": 1}]
            assert payload["truncated_tail"]["lineno"] == 2
        finally:
            server.stop()

    def test_campaign_endpoint_reflects_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "campaign-checkpoint.json"
        server = ObsServer(checkpoint_path=str(checkpoint)).start()
        try:
            _, before = _get(server, "/campaign")
            assert before["active"] is False
            checkpoint.write_text(
                json.dumps(
                    {
                        "schema_version": 1,
                        "kind": "campaign-checkpoint",
                        "state": {
                            "config": {"seed": 7},
                            "round_index": 3,
                            "candidates": 48,
                            "trials_run": 1152,
                            "coverage": ["a", "b"],
                            "findings": [
                                {"key": "x", "novel": True},
                                {"key": "y", "novel": False},
                            ],
                            "rediscovered": [2],
                        },
                        "offsets": {
                            "ledger_bytes": 0,
                            "fingerprints_bytes": 0,
                        },
                        "novel_seen": True,
                        "env": {},
                    }
                )
            )
            _, after = _get(server, "/campaign")
            assert after["active"] is True
            assert after["batches"] == 3
            assert after["candidates"] == 48
            assert after["trials"] == 1152
            assert after["coverage_features"] == 2
            assert after["fingerprints"] == 2
            assert after["novel"] == 1
            assert after["novel_seen"] is True
            assert after["config"] == {"seed": 7}
        finally:
            server.stop()

    def test_no_ledger_means_empty_campaign(self):
        server = ObsServer().start()
        try:
            _, index = _get(server, "/")
            assert index["runs"] == 0
            _, clusters = _get(server, "/clusters")
            assert clusters["clusters"] == []
        finally:
            server.stop()
