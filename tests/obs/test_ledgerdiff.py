"""Tests for canonical ledger comparison (``repro.obs.ledgerdiff``).

The campaign-smoke CI job trusts ``ledgerdiff`` to say "these two runs
are the same campaign" across kill/resume and jobs/pool settings — so
the volatile ``env`` section (git commit, jobs, pool, wall clock) and
``ts`` must never produce a difference, while any drift in the
deterministic core must.
"""

import json

import pytest

from repro.obs.ledger import LedgerError
from repro.obs.ledgerdiff import compare_ledgers, main


def _record(
    *,
    ts: float = 1.0,
    commit: str = "abc1234",
    jobs: int = 1,
    pool: str = "thread",
    fingerprints: tuple[str, ...] = ("a|x",),
    trials: int = 10,
) -> dict:
    return {
        "schema_version": 1,
        "kind": "campaign",
        "ts": ts,
        "run": {"seed": 11, "batch": 16, "batch_index": 0},
        "results": {
            "trials": trials,
            "fingerprints": list(fingerprints),
        },
        "env": {
            "jobs": jobs,
            "pool": pool,
            "wall_s": ts / 7.0,
            "git": {"commit": commit},
        },
    }


def _write(path, records) -> str:
    path.write_text(
        "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)
    )
    return str(path)


class TestVolatileDrift:
    """Records whose volatile sections drifted between runs — a resume
    hours later on another commit, at another jobs/pool setting — must
    still compare as the same campaign."""

    def test_env_and_ts_drift_is_not_a_difference(self, tmp_path):
        left = _write(
            tmp_path / "a.jsonl",
            [_record(ts=1.0, commit="abc1234", jobs=2, pool="thread")],
        )
        right = _write(
            tmp_path / "b.jsonl",
            [_record(ts=9999.0, commit="def5678", jobs=4, pool="process")],
        )
        differences, notes = compare_ledgers(left, right)
        assert differences == []
        assert notes == []

    def test_commit_drift_across_many_records(self, tmp_path):
        # a multi-batch campaign straddling a commit boundary mid-run
        left = _write(
            tmp_path / "a.jsonl",
            [_record(ts=float(i), commit="abc1234") for i in range(4)],
        )
        right = _write(
            tmp_path / "b.jsonl",
            [
                _record(
                    ts=float(i) + 100.0,
                    commit="abc1234" if i < 2 else "def5678",
                )
                for i in range(4)
            ],
        )
        differences, _ = compare_ledgers(left, right)
        assert differences == []

    def test_main_exits_zero_on_volatile_drift(self, tmp_path, capsys):
        left = _write(tmp_path / "a.jsonl", [_record(jobs=1)])
        right = _write(tmp_path / "b.jsonl", [_record(jobs=8, ts=2.0)])
        assert main([left, right]) == 0
        assert "canonical match" in capsys.readouterr().out


class TestCanonicalDivergence:
    def test_core_drift_is_reported(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record(trials=10)])
        right = _write(tmp_path / "b.jsonl", [_record(trials=11)])
        differences, _ = compare_ledgers(left, right)
        assert len(differences) == 1
        assert "record 0 differs canonically" in differences[0]

    def test_fingerprint_drift_is_reported(self, tmp_path):
        left = _write(
            tmp_path / "a.jsonl", [_record(fingerprints=("a|x",))]
        )
        right = _write(
            tmp_path / "b.jsonl", [_record(fingerprints=("a|x", "b|y"))]
        )
        differences, _ = compare_ledgers(left, right)
        assert differences

    def test_count_mismatch_is_reported(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record(), _record(ts=2.0)])
        right = _write(tmp_path / "b.jsonl", [_record()])
        differences, _ = compare_ledgers(left, right)
        assert any("record count differs" in line for line in differences)

    def test_main_exits_one_on_divergence(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record(trials=10)])
        right = _write(tmp_path / "b.jsonl", [_record(trials=11)])
        assert main([left, right]) == 1

    def test_first_divergence_only(self, tmp_path):
        # every later record also differs; only the first is actionable
        left = _write(
            tmp_path / "a.jsonl",
            [_record(ts=float(i), trials=10) for i in range(3)],
        )
        right = _write(
            tmp_path / "b.jsonl",
            [_record(ts=float(i), trials=99) for i in range(3)],
        )
        differences, _ = compare_ledgers(left, right)
        assert len(differences) == 1


class TestTailsAndErrors:
    def test_torn_tail_tolerated_but_noted(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record()])
        right = tmp_path / "b.jsonl"
        right.write_text(
            json.dumps(_record(ts=5.0), sort_keys=True) + '\n{"torn": tru'
        )
        differences, notes = compare_ledgers(left, str(right))
        assert differences == []
        assert len(notes) == 1
        assert "torn trailing line tolerated" in notes[0]

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record()])
        right = tmp_path / "b.jsonl"
        right.write_text('not json\n{"ok": 1}\n')
        with pytest.raises(LedgerError):
            compare_ledgers(left, str(right))

    def test_main_exits_two_on_unreadable_input(self, tmp_path):
        left = _write(tmp_path / "a.jsonl", [_record()])
        right = tmp_path / "b.jsonl"
        right.write_text('not json\n{"ok": 1}\n')
        assert main([left, str(right)]) == 2
