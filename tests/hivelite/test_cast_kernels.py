"""Hive's compiled read/write kernels agree with the reference casts
on the full cross-test corpus (values, exception types, and messages)."""

import pytest

from repro.crosstest.oracles import canonical
from repro.crosstest.values import generate_inputs
from repro.hivelite.casts import (
    hive_read_cast,
    hive_read_cast_reference,
    hive_write_cast,
    hive_write_cast_reference,
)

CORPUS = generate_inputs()


def _outcome(fn, *args):
    try:
        return ("ok", canonical(fn(*args)))
    except Exception as exc:  # noqa: BLE001 - parity includes the type
        return ("error", type(exc).__name__, str(exc))


@pytest.mark.parametrize(
    "compiled,reference",
    [
        (hive_write_cast, hive_write_cast_reference),
        (hive_read_cast, hive_read_cast_reference),
    ],
    ids=["write", "read"],
)
def test_corpus_py_values_against_declared_type(compiled, reference):
    for test_input in CORPUS:
        dtype = test_input.column_type
        expected = _outcome(reference, test_input.py_value, dtype)
        actual = _outcome(compiled, test_input.py_value, dtype)
        assert actual == expected, (
            f"input {test_input.input_id} ({test_input.type_text}): "
            f"kernel {actual} != reference {expected}"
        )
