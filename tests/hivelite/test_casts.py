"""Unit tests for Hive's write and read coercion rules."""

import datetime
import decimal
import math

import pytest

from repro.common.types import parse_type
from repro.errors import QueryError
from repro.hivelite.casts import hive_read_cast, hive_write_cast


class TestWriteCastLenient:
    def test_overflow_becomes_null(self):
        assert hive_write_cast(300, parse_type("tinyint")) is None
        assert hive_write_cast(2**40, parse_type("int")) is None

    def test_in_range_preserved(self):
        assert hive_write_cast(127, parse_type("tinyint")) == 127

    def test_string_parsed(self):
        assert hive_write_cast("42", parse_type("int")) == 42

    def test_malformed_string_becomes_null(self):
        assert hive_write_cast("12abc", parse_type("int")) is None

    def test_decimal_quantized(self):
        out = hive_write_cast(decimal.Decimal("3.1"), parse_type("decimal(10,3)"))
        assert str(out) == "3.100"

    def test_decimal_overflow_null(self):
        assert (
            hive_write_cast(
                decimal.Decimal("123456.78"), parse_type("decimal(5,2)")
            )
            is None
        )

    def test_float_special_strings_null(self):
        # Hive's lazy parser does not recognize NaN/Infinity spellings
        assert hive_write_cast("NaN", parse_type("double")) is None
        assert hive_write_cast("Infinity", parse_type("double")) is None

    def test_float_value_preserved(self):
        assert hive_write_cast(1.5, parse_type("double")) == 1.5
        assert math.isnan(hive_write_cast(math.nan, parse_type("double")))

    def test_boolean_tokens(self):
        assert hive_write_cast("true", parse_type("boolean")) is True
        assert hive_write_cast("yes", parse_type("boolean")) is None

    def test_char_padding_and_overflow(self):
        assert hive_write_cast("ab", parse_type("char(5)")) == "ab   "
        assert hive_write_cast("abcdef", parse_type("char(5)")) is None

    def test_varchar_overflow(self):
        assert hive_write_cast("abcd", parse_type("varchar(3)")) is None
        assert hive_write_cast("ab", parse_type("varchar(3)")) == "ab"

    def test_date_parsing(self):
        assert hive_write_cast("2020-01-01", parse_type("date")) == datetime.date(
            2020, 1, 1
        )
        assert hive_write_cast("2021-02-30", parse_type("date")) is None

    def test_struct_coerced_fieldwise(self):
        out = hive_write_cast([1, "x"], parse_type("struct<a:tinyint,b:string>"))
        assert out == [1, "x"]

    def test_map_null_key_rejected(self):
        assert hive_write_cast({"a": None}, parse_type("map<string,int>")) == {
            "a": None
        }
        assert hive_write_cast({None: 1}, parse_type("map<string,int>")) is None

    def test_wrong_kind_becomes_null(self):
        assert hive_write_cast(42, parse_type("map<string,int>")) is None
        assert hive_write_cast("x", parse_type("array<int>")) is None

    def test_none_stays_none(self):
        assert hive_write_cast(None, parse_type("int")) is None


class TestReadCastStrict:
    def test_identity_in_range(self):
        assert hive_read_cast(5, parse_type("tinyint")) == 5

    def test_out_of_range_demotes_to_null(self):
        assert hive_read_cast(300, parse_type("tinyint")) is None

    def test_wrong_physical_kind_raises(self):
        with pytest.raises(QueryError):
            hive_read_cast("5", parse_type("int"))

    def test_nan_reads_as_null(self):
        assert hive_read_cast(math.nan, parse_type("double")) is None

    def test_infinity_raises(self):
        with pytest.raises(QueryError):
            hive_read_cast(math.inf, parse_type("double"))
        with pytest.raises(QueryError):
            hive_read_cast(-math.inf, parse_type("float"))

    def test_finite_float_passes(self):
        assert hive_read_cast(2.5, parse_type("double")) == 2.5

    def test_decimal_matching_scale_passes(self):
        value = decimal.Decimal("3.100")
        assert hive_read_cast(value, parse_type("decimal(10,3)")) == value

    def test_decimal_scale_mismatch_raises(self):
        # the SPARK-39158 mechanism
        with pytest.raises(QueryError, match="scale"):
            hive_read_cast(decimal.Decimal("3.1"), parse_type("decimal(10,3)"))

    def test_char_padded_on_read(self):
        assert hive_read_cast("ab", parse_type("char(5)")) == "ab   "

    def test_array_elements_recursed(self):
        with pytest.raises(QueryError):
            hive_read_cast([math.inf], parse_type("array<double>"))
        assert hive_read_cast([math.nan], parse_type("array<double>")) == [None]

    def test_null_passthrough(self):
        assert hive_read_cast(None, parse_type("double")) is None
