"""Unit tests for the HiveQL engine."""

import decimal

import pytest

from repro.errors import (
    AnalysisException,
    QueryError,
    TableNotFoundError,
    UnsupportedTypeError,
)
from repro.formats import serializer_for
from repro.formats.orc import HIVE_POSITIONAL_PROPERTY
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import HiveMetastore
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def hive():
    return HiveServer(HiveMetastore(), FileSystem(NameNode()))


class TestDDL:
    def test_create_registers_lowercased(self, hive):
        hive.execute("CREATE TABLE T1 (Id int, Name string) STORED AS orc")
        table = hive.metastore.get_table("t1")
        assert table.schema.names() == ("id", "name")

    def test_default_format_is_text(self, hive):
        hive.execute("CREATE TABLE t (a int)")
        assert hive.metastore.get_table("t").storage_format == "text"

    def test_avro_map_int_key_rejected_at_create(self, hive):
        with pytest.raises(UnsupportedTypeError):
            hive.execute("CREATE TABLE t (m map<int,string>) STORED AS avro")

    def test_drop_removes_data(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1)")
        location = hive.metastore.get_table("t").location
        hive.execute("DROP TABLE t")
        assert not hive.filesystem.exists(location)
        with pytest.raises(TableNotFoundError):
            hive.metastore.get_table("t")

    def test_drop_if_exists(self, hive):
        hive.execute("DROP TABLE IF EXISTS missing")


class TestInsertSelect:
    def test_roundtrip(self, hive):
        hive.execute("CREATE TABLE t (a int, b string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        result = hive.execute("SELECT * FROM t")
        assert result.to_tuples() == [(1, "x"), (2, "y")]

    def test_append_across_inserts(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1)")
        hive.execute("INSERT INTO t VALUES (2)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(1,), (2,)]

    def test_overwrite_truncates(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1)")
        hive.execute("INSERT OVERWRITE TABLE t VALUES (9)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(9,)]

    def test_arity_checked(self, hive):
        hive.execute("CREATE TABLE t (a int, b int) STORED AS orc")
        with pytest.raises(AnalysisException):
            hive.execute("INSERT INTO t VALUES (1)")

    def test_lenient_overflow_insert(self, hive):
        hive.execute("CREATE TABLE t (a tinyint) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (300)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [(None,)]

    def test_projection_case_insensitive(self, hive):
        hive.execute("CREATE TABLE t (Aa int, Bb string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1, 'z')")
        result = hive.execute("SELECT BB, AA FROM t")
        assert result.to_tuples() == [("z", 1)]

    def test_where_filter(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1), (5), (10)")
        assert hive.execute("SELECT * FROM t WHERE a >= 5").to_tuples() == [
            (5,),
            (10,),
        ]

    def test_unknown_column_raises(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS orc")
        with pytest.raises(Exception):
            hive.execute("SELECT nope FROM t")

    def test_decimal_quantized_on_insert(self, hive):
        hive.execute("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (3.1)")
        assert hive.execute("SELECT * FROM t").to_tuples() == [
            (decimal.Decimal("3.100"),)
        ]


class TestOrcConvention:
    def test_orc_files_written_positionally(self, hive):
        hive.execute("CREATE TABLE t (a int, b string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1, 'x')")
        table = hive.metastore.get_table("t")
        blob = hive.warehouse.read_segments(table)[0]
        data = serializer_for("orc").read(blob)
        assert data.physical_schema.names() == ("_col0", "_col1")
        assert data.properties[HIVE_POSITIONAL_PROPERTY] == "true"

    def test_orc_read_back_by_position(self, hive):
        hive.execute("CREATE TABLE t (a int, b string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (7, 'q')")
        result = hive.execute("SELECT a, b FROM t")
        assert result.to_tuples() == [(7, "q")]

    def test_parquet_keeps_real_names(self, hive):
        hive.execute("CREATE TABLE t (a int) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1)")
        table = hive.metastore.get_table("t")
        blob = hive.warehouse.read_segments(table)[0]
        data = serializer_for("parquet").read(blob)
        assert data.physical_schema.names() == ("a",)


class TestReadStrictness:
    def test_infinity_read_raises(self, hive):
        hive.execute("CREATE TABLE t (d double) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1.5)")
        # write Infinity through the raw warehouse path (as Spark would)
        table = hive.metastore.get_table("t")
        blob = serializer_for("parquet").write(
            table.schema, [(float("inf"),)], {"writer": "spark"}
        )
        hive.warehouse.write_segment(table, blob)
        with pytest.raises(QueryError):
            hive.execute("SELECT * FROM t")
