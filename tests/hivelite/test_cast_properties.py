"""Property-based invariants of Hive's coercion (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import parse_type
from repro.errors import QueryError
from repro.hivelite.casts import hive_read_cast, hive_write_cast

_ATOMIC_TARGETS = [
    "boolean", "tinyint", "smallint", "int", "bigint", "float", "double",
    "decimal(10,2)", "string", "char(5)", "varchar(8)", "date",
    "timestamp", "binary",
]

_scalars = st.one_of(
    st.none(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
    st.booleans(),
    st.binary(max_size=8),
    st.decimals(allow_nan=True, allow_infinity=False, places=4,
                min_value=-(10**15), max_value=10**15),
)


class TestWriteCastTotality:
    @given(_scalars, st.sampled_from(_ATOMIC_TARGETS))
    @settings(max_examples=300, deadline=None)
    def test_never_raises(self, value, target_text):
        """Hive's lenient insert path must degrade, never crash."""
        target = parse_type(target_text)
        result = hive_write_cast(value, target)
        if result is not None and not isinstance(value, float):
            # whatever it produced is a valid instance of the column type
            assert target.accepts(result) or isinstance(result, float)

    @given(st.lists(_scalars, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_array_coercion_total(self, values):
        hive_write_cast(values, parse_type("array<int>"))

    @given(st.dictionaries(st.text(max_size=4), _scalars, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_map_coercion_total(self, values):
        hive_write_cast(values, parse_type("map<string,int>"))


class TestWriteReadConsistency:
    @given(st.integers(min_value=-128, max_value=127))
    def test_in_range_integral_roundtrip(self, value):
        target = parse_type("tinyint")
        written = hive_write_cast(value, target)
        assert hive_read_cast(written, target) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_finite_double_roundtrip(self, value):
        target = parse_type("double")
        written = hive_write_cast(value, target)
        assert hive_read_cast(written, target) == written

    @given(st.text(max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_string_family_roundtrip(self, value):
        target = parse_type("varchar(5)")
        written = hive_write_cast(value, target)
        if written is not None:
            assert hive_read_cast(written, target) == written

    @given(
        st.decimals(allow_nan=False, allow_infinity=False, places=2,
                    min_value=-(10**6), max_value=10**6)
    )
    def test_write_quantizes_so_read_accepts(self, value):
        """The SPARK-39158 asymmetry inverted: values Hive itself wrote
        always pass Hive's strict read-side scale check."""
        import decimal

        target = parse_type("decimal(10,2)")
        written = hive_write_cast(decimal.Decimal(value), target)
        assert written is not None
        assert hive_read_cast(written, target) == written
