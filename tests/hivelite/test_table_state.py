"""Interned table-state tokens and the register_table replay fast path."""

import pytest

from repro.common.schema import Schema
from repro.errors import MetastoreError, TableAlreadyExistsError
from repro.hivelite.metastore import HiveMetastore


@pytest.fixture
def metastore():
    return HiveMetastore()


def _schema():
    return Schema.of(("a", "int"), case_sensitive=False)


class TestTableState:
    def test_absent_table_has_no_state(self, metastore):
        assert metastore.table_state("t") is None

    def test_create_assigns_a_token(self, metastore):
        metastore.create_table("t", _schema(), "orc")
        assert isinstance(metastore.table_state("t"), int)

    def test_drop_clears_the_state(self, metastore):
        metastore.create_table("t", _schema(), "orc")
        metastore.drop_table("t")
        assert metastore.table_state("t") is None

    def test_identical_recreate_reuses_the_token(self, metastore):
        metastore.create_table("t", _schema(), "orc")
        token = metastore.table_state("t")
        metastore.drop_table("t")
        metastore.create_table("t", _schema(), "orc")
        assert metastore.table_state("t") == token

    def test_different_recreate_gets_a_new_token(self, metastore):
        metastore.create_table("t", _schema(), "orc")
        token = metastore.table_state("t")
        metastore.drop_table("t")
        metastore.create_table(
            "t", Schema.of(("a", "string"), case_sensitive=False), "orc"
        )
        assert metastore.table_state("t") != token

    def test_property_change_moves_the_state(self, metastore):
        metastore.create_table("t", _schema(), "orc")
        token = metastore.table_state("t")
        metastore.alter_table_properties("t", {"k": "v"})
        assert metastore.table_state("t") != token

    def test_distinct_tables_have_distinct_tokens(self, metastore):
        metastore.create_table("a", _schema(), "orc")
        metastore.create_table("b", _schema(), "orc")
        assert metastore.table_state("a") != metastore.table_state("b")


class TestRegisterTable:
    def test_replays_a_previously_created_table(self, metastore):
        created = metastore.create_table("t", _schema(), "orc")
        metastore.drop_table("t")
        version = metastore.catalog_version
        replayed = metastore.register_table(created)
        assert replayed == created
        assert metastore.get_table("t") == created
        assert metastore.catalog_version == version + 1

    def test_existing_table_rejected(self, metastore):
        created = metastore.create_table("t", _schema(), "orc")
        with pytest.raises(TableAlreadyExistsError):
            metastore.register_table(created)

    def test_if_not_exists_returns_existing(self, metastore):
        created = metastore.create_table("t", _schema(), "orc")
        assert metastore.register_table(created, if_not_exists=True) == created

    def test_unknown_database_rejected(self, metastore):
        from dataclasses import replace

        created = metastore.create_table("t", _schema(), "orc")
        metastore.drop_table("t")
        ghost = replace(created, database="nowhere")
        with pytest.raises(MetastoreError):
            metastore.register_table(ghost)
