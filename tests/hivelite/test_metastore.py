"""Unit tests for the Hive metastore."""

import pytest

from repro.common.schema import Schema
from repro.errors import (
    MetastoreError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from repro.hivelite.metastore import HiveMetastore


@pytest.fixture
def metastore():
    return HiveMetastore()


def lowered(*cols):
    return Schema.of(*cols).lower_cased()


class TestDatabases:
    def test_default_exists(self, metastore):
        assert metastore.database_exists("default")
        assert metastore.database_exists("DEFAULT")

    def test_create_and_list(self, metastore):
        metastore.create_database("Analytics")
        assert metastore.database_exists("analytics")
        assert "analytics" in metastore.list_databases()

    def test_unknown_database_rejected(self, metastore):
        with pytest.raises(MetastoreError):
            metastore.create_table("t", lowered(("a", "int")), "orc", database="nope")


class TestTables:
    def test_create_lowercases_name(self, metastore):
        table = metastore.create_table("MyTable", lowered(("a", "int")), "ORC")
        assert table.name == "mytable"
        assert table.storage_format == "orc"
        assert table.qualified_name == "default.mytable"

    def test_case_insensitive_lookup(self, metastore):
        metastore.create_table("t", lowered(("a", "int")), "orc")
        assert metastore.get_table("T").name == "t"
        assert metastore.table_exists("T")

    def test_uppercase_columns_rejected(self, metastore):
        with pytest.raises(MetastoreError):
            metastore.create_table("t", Schema.of(("Aa", "int")), "orc")

    def test_duplicate_rejected(self, metastore):
        metastore.create_table("t", lowered(("a", "int")), "orc")
        with pytest.raises(TableAlreadyExistsError):
            metastore.create_table("T", lowered(("a", "int")), "orc")

    def test_if_not_exists_returns_existing(self, metastore):
        first = metastore.create_table("t", lowered(("a", "int")), "orc")
        second = metastore.create_table(
            "t", lowered(("b", "string")), "avro", if_not_exists=True
        )
        assert second is first

    def test_drop(self, metastore):
        metastore.create_table("t", lowered(("a", "int")), "orc")
        assert metastore.drop_table("t")
        with pytest.raises(TableNotFoundError):
            metastore.get_table("t")

    def test_drop_missing(self, metastore):
        with pytest.raises(TableNotFoundError):
            metastore.drop_table("nope")
        assert metastore.drop_table("nope", if_exists=True) is False

    def test_location_layout(self, metastore):
        table = metastore.create_table("T1", lowered(("a", "int")), "orc")
        assert table.location == "/warehouse/default.db/t1"

    def test_list_tables_per_database(self, metastore):
        metastore.create_database("other")
        metastore.create_table("b", lowered(("a", "int")), "orc")
        metastore.create_table("a", lowered(("a", "int")), "orc")
        metastore.create_table("c", lowered(("a", "int")), "orc", database="other")
        assert metastore.list_tables() == ["a", "b"]
        assert metastore.list_tables("other") == ["c"]


class TestProperties:
    def test_property_access(self, metastore):
        table = metastore.create_table(
            "t", lowered(("a", "int")), "orc", properties={"k": "v"}
        )
        assert table.property("k") == "v"
        assert table.property("missing") is None
        assert table.property("missing", "d") == "d"

    def test_alter_properties_persists(self, metastore):
        metastore.create_table("t", lowered(("a", "int")), "orc")
        metastore.alter_table_properties("t", {"x": "1"})
        assert metastore.get_table("t").property("x") == "1"

    def test_with_properties_is_functional(self, metastore):
        table = metastore.create_table("t", lowered(("a", "int")), "orc")
        updated = table.with_properties({"k": "v"})
        assert updated.property("k") == "v"
        assert table.property("k") is None
