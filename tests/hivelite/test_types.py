"""Unit tests for Hive's type collapses (the metastore's normalization)."""

import pytest

from repro.common.schema import Schema
from repro.common.types import TimestampType, parse_type
from repro.errors import MetastoreError
from repro.formats import AvroSerializer, OrcSerializer, ParquetSerializer
from repro.hivelite.types import hive_schema, hive_type, metastore_schema_for


class TestHiveType:
    def test_ntz_collapses(self):
        assert hive_type(parse_type("timestamp_ntz")) == TimestampType()

    def test_interval_rejected(self):
        with pytest.raises(MetastoreError):
            hive_type(parse_type("interval"))

    def test_narrow_ints_preserved(self):
        assert hive_type(parse_type("tinyint")) == parse_type("tinyint")

    def test_nested_struct_names_lowercased(self):
        collapsed = hive_type(parse_type("struct<Aa:int,bB:string>"))
        assert collapsed.simple_string() == "struct<aa:int,bb:string>"

    def test_nested_collections_recursed(self):
        collapsed = hive_type(parse_type("map<string,array<timestamp_ntz>>"))
        assert collapsed.simple_string() == "map<string,array<timestamp>>"


class TestHiveSchema:
    def test_names_lowercased_and_insensitive(self):
        schema = hive_schema(Schema.of(("Id", "int"), ("Name", "string")))
        assert schema.names() == ("id", "name")
        assert not schema.case_sensitive

    def test_type_collapse_applied(self):
        schema = hive_schema(Schema.of(("T", "timestamp_ntz")))
        assert schema.types() == (TimestampType(),)


class TestMetastoreSchemaFor:
    def test_orc_keeps_declared_types(self):
        declared = Schema.of(("B", "tinyint"))
        schema = metastore_schema_for(declared, OrcSerializer())
        assert schema.types() == (parse_type("tinyint"),)
        assert schema.names() == ("b",)

    def test_parquet_keeps_declared_types(self):
        declared = Schema.of(("B", "smallint"))
        schema = metastore_schema_for(declared, ParquetSerializer())
        assert schema.types() == (parse_type("smallint"),)

    def test_avro_registers_physical_schema(self):
        # the HIVE-26533 mechanism: the metastore declaration is already
        # the promoted INT before any row is written
        declared = Schema.of(("B", "tinyint"), ("S", "char(4)"))
        schema = metastore_schema_for(declared, AvroSerializer())
        assert schema.types() == (parse_type("int"), parse_type("string"))
