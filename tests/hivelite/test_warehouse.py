"""Unit tests for the warehouse layout helper."""

import pytest

from repro.common.schema import Schema
from repro.hivelite.metastore import HiveMetastore
from repro.hivelite.warehouse import Warehouse
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def setup():
    metastore = HiveMetastore()
    filesystem = FileSystem(NameNode())
    table = metastore.create_table(
        "t", Schema.of(("a", "int")).lower_cased(), "orc"
    )
    return Warehouse(filesystem), table


class TestWarehouse:
    def test_empty_table_has_no_parts(self, setup):
        warehouse, table = setup
        assert warehouse.part_paths(table) == []
        assert warehouse.read_segments(table) == []

    def test_segment_naming(self, setup):
        warehouse, table = setup
        path = warehouse.write_segment(table, b"one")
        assert path == f"{table.location}/part-00000.orc"
        path = warehouse.write_segment(table, b"two")
        assert path.endswith("part-00001.orc")

    def test_read_in_order(self, setup):
        warehouse, table = setup
        warehouse.write_segment(table, b"one")
        warehouse.write_segment(table, b"two")
        assert warehouse.read_segments(table) == [b"one", b"two"]

    def test_truncate(self, setup):
        warehouse, table = setup
        warehouse.write_segment(table, b"one")
        warehouse.write_segment(table, b"two")
        assert warehouse.truncate(table) == 2
        assert warehouse.part_paths(table) == []
        # numbering restarts after truncate
        assert warehouse.write_segment(table, b"x").endswith("part-00000.orc")

    def test_drop_data(self, setup):
        warehouse, table = setup
        warehouse.write_segment(table, b"one")
        warehouse.drop_data(table)
        assert not warehouse.filesystem.exists(table.location)
        warehouse.drop_data(table)  # idempotent
