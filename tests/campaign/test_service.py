"""Tests for the always-on campaign service.

The load-bearing guarantee — the acceptance criterion of the campaign
PR: a campaign killed mid-run and resumed from its checkpoint emits
**byte-identical** fingerprint JSONL and **canonically identical**
ledger records to an uninterrupted run of the same seed, at any
``--jobs``/pool setting. The grid here interrupts after batch 1 and
resumes under every worker configuration; the hard-kill tests tear the
output files the way SIGKILL would and check the truncate-on-resume
protocol heals them.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignService, CheckpointError, load_checkpoint
from repro.fuzz import Baseline, FuzzConfig
from repro.obs import canonical_record, read_ledger

SETTINGS = [
    (1, "thread"),
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
]

FIXED_CLOCK = lambda: 1700000000.0  # noqa: E731

SEED = 3
BATCH = 8
TOTAL_BATCHES = 3


def _config(jobs=1, pool="auto"):
    return FuzzConfig(
        seed=SEED,
        budget=BATCH,
        batch=BATCH,
        jobs=jobs,
        pool=pool,
        shrink=False,
    )


def _paths(directory, tag):
    return {
        "checkpoint_path": str(directory / f"{tag}.ckpt.json"),
        "fingerprints_path": str(directory / f"{tag}.fp.jsonl"),
        "ledger_path": str(directory / f"{tag}.ledger.jsonl"),
    }


def _run(paths, *, jobs=1, pool="auto", max_batches=None, duration=None):
    service = CampaignService(
        _config(jobs, pool),
        Baseline.empty(),
        max_batches=max_batches,
        duration=duration,
        clock=FIXED_CLOCK,
        **paths,
    )
    return asyncio.run(service.run())


def _fingerprint_bytes(paths):
    with open(paths["fingerprints_path"], "rb") as handle:
        return handle.read()


def _canonical_ledger(paths):
    return [
        canonical_record(record)
        for record in read_ledger(paths["ledger_path"])
    ]


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """One clean 3-batch run: the oracle every resumed run must match."""
    paths = _paths(tmp_path_factory.mktemp("baseline"), "clean")
    summary = _run(paths, jobs=1, max_batches=TOTAL_BATCHES)
    assert summary.batches_total == TOTAL_BATCHES
    return {
        "fingerprints": _fingerprint_bytes(paths),
        "ledger": _canonical_ledger(paths),
        "summary": summary,
    }


class TestKillResumeByteIdentity:
    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_interrupt_after_one_batch_then_resume(
        self, tmp_path, uninterrupted, jobs, pool
    ):
        paths = _paths(tmp_path, "resumed")
        first = _run(paths, jobs=jobs, pool=pool, max_batches=1)
        assert first.batches_run == 1
        assert not first.resumed
        second = _run(
            paths, jobs=jobs, pool=pool, max_batches=TOTAL_BATCHES
        )
        assert second.resumed
        # --max-batches counts global batches: 1 done + 2 remaining
        assert second.batches_run == TOTAL_BATCHES - 1
        assert second.batches_total == TOTAL_BATCHES
        assert _fingerprint_bytes(paths) == uninterrupted["fingerprints"]
        assert _canonical_ledger(paths) == uninterrupted["ledger"]

    def test_resume_at_different_jobs_than_the_interrupt(
        self, tmp_path, uninterrupted
    ):
        paths = _paths(tmp_path, "mixed")
        _run(paths, jobs=1, max_batches=1)
        _run(paths, jobs=4, pool="process", max_batches=TOTAL_BATCHES)
        assert _fingerprint_bytes(paths) == uninterrupted["fingerprints"]
        assert _canonical_ledger(paths) == uninterrupted["ledger"]


class TestHardKillRecovery:
    def test_torn_appends_are_truncated_and_rewritten(
        self, tmp_path, uninterrupted
    ):
        # simulate SIGKILL between the appends and the checkpoint: the
        # files carry bytes the checkpoint never committed
        paths = _paths(tmp_path, "torn")
        _run(paths, max_batches=1)
        with open(paths["fingerprints_path"], "ab") as handle:
            handle.write(b'{"key": "torn-and-uncomm')
        with open(paths["ledger_path"], "ab") as handle:
            handle.write(b'{"schema_version": 1, "kind": "campa')
        _run(paths, max_batches=TOTAL_BATCHES)
        assert _fingerprint_bytes(paths) == uninterrupted["fingerprints"]
        assert _canonical_ledger(paths) == uninterrupted["ledger"]

    def test_output_shorter_than_checkpoint_refuses_resume(self, tmp_path):
        paths = _paths(tmp_path, "lost")
        _run(paths, max_batches=1)
        with open(paths["fingerprints_path"], "wb"):
            pass  # the committed fingerprints vanished
        with pytest.raises(CheckpointError, match="refusing to resume"):
            _run(paths, max_batches=TOTAL_BATCHES)

    def test_config_mismatch_refuses_resume(self, tmp_path):
        paths = _paths(tmp_path, "drift")
        _run(paths, max_batches=1)
        service = CampaignService(
            FuzzConfig(seed=SEED + 1, budget=BATCH, batch=BATCH, shrink=False),
            Baseline.empty(),
            max_batches=TOTAL_BATCHES,
            **paths,
        )
        with pytest.raises(CheckpointError, match="different campaign"):
            asyncio.run(service.run())


class TestBoundsAndExitContract:
    def test_max_batches_already_reached_runs_nothing(self, tmp_path):
        paths = _paths(tmp_path, "done")
        _run(paths, max_batches=1)
        again = _run(paths, max_batches=1)
        assert again.resumed
        assert again.batches_run == 0
        assert again.batches_total == 1

    def test_novel_seen_survives_resume(self, tmp_path):
        # exit 4 must not be forgotten just because the novel finding
        # landed before the kill (empty baseline → everything is novel)
        paths = _paths(tmp_path, "novel")
        first = _run(paths, max_batches=1)
        assert first.novel_seen
        assert first.exit_code == 4
        again = _run(paths, max_batches=1)
        assert again.batches_run == 0
        assert again.novel_seen
        assert again.exit_code == 4

    def test_duration_bound_stops_between_batches(self, tmp_path):
        paths = _paths(tmp_path, "timed")
        summary = _run(paths, max_batches=TOTAL_BATCHES, duration=1e-9)
        assert summary.batches_total == 0
        assert summary.stop_reason == "duration"

    def test_checkpoint_matches_summary(self, tmp_path):
        paths = _paths(tmp_path, "ckpt")
        summary = _run(paths, max_batches=2)
        checkpoint = load_checkpoint(paths["checkpoint_path"])
        assert checkpoint.state["round_index"] == summary.batches_total == 2
        assert checkpoint.novel_seen == summary.novel_seen
        assert checkpoint.fingerprints_bytes == os.path.getsize(
            paths["fingerprints_path"]
        )
        assert checkpoint.ledger_bytes == os.path.getsize(
            paths["ledger_path"]
        )

    def test_fingerprint_lines_are_per_batch_deltas(self, tmp_path):
        paths = _paths(tmp_path, "delta")
        _run(paths, max_batches=2)
        batches = set()
        with open(paths["fingerprints_path"], encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert set(record) == {
                    "key",
                    "fingerprint",
                    "novel",
                    "failures",
                    "batch",
                }
                batches.add(record["batch"])
        assert batches == {0, 1}


class TestSignalDrain:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM") or os.name == "nt",
        reason="unix signal semantics",
    )
    def test_sigterm_drains_commits_and_exits_cleanly(self, tmp_path):
        # a real process, a real signal: the in-flight batch must
        # commit and the checkpoint must be resumable afterwards
        checkpoint = tmp_path / "ckpt.json"
        fingerprints = tmp_path / "fp.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "--seed",
                str(SEED),
                "--batch",
                str(BATCH),
                "--baseline",
                "none",
                "--checkpoint",
                str(checkpoint),
                "--fingerprints",
                str(fingerprints),
                "--quiet",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        try:
            deadline = time.monotonic() + 120
            while not checkpoint.exists():
                assert proc.poll() is None, "campaign died before batch 1"
                assert time.monotonic() < deadline, "no checkpoint in 120s"
                time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # empty baseline → every fingerprint is novel → exit 4, and the
        # drained batch must have left a loadable, consistent checkpoint
        assert rc == 4
        loaded = load_checkpoint(str(checkpoint))
        assert loaded.state["round_index"] >= 1
        assert loaded.fingerprints_bytes == os.path.getsize(fingerprints)
