"""Tests for the campaign checkpoint file format and atomicity."""

import json
import os

import pytest

from repro.campaign import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

STATE = {
    "config": {"seed": 11, "batch": 16},
    "round_index": 2,
    "candidates": 32,
    "trials_run": 768,
    "coverage": ["a", "b"],
    "promoted": [],
    "findings": [],
    "rediscovered": [],
}


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        saved = Checkpoint(
            state=STATE,
            ledger_bytes=123,
            fingerprints_bytes=456,
            novel_seen=True,
            env={"ts": 1.0},
        )
        save_checkpoint(path, saved)
        loaded = load_checkpoint(path)
        assert loaded.state == STATE
        assert loaded.ledger_bytes == 123
        assert loaded.fingerprints_bytes == 456
        assert loaded.novel_seen is True
        assert loaded.env == {"ts": 1.0}

    def test_write_is_atomic(self, tmp_path):
        # no tmp file survives, and a rewrite replaces in one step
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, Checkpoint(state=STATE))
        save_checkpoint(
            path, Checkpoint(state=STATE, fingerprints_bytes=99)
        )
        assert not os.path.exists(path + ".tmp")
        assert load_checkpoint(path).fingerprints_bytes == 99

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(str(path), Checkpoint(state=STATE))
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        assert payload["kind"] == "campaign-checkpoint"


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "absent.json"))

    def test_torn_json(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"schema_version": 1, "state"')
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(str(path))

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "ckpt.json"
        payload = Checkpoint(state=STATE).to_json()
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="99"):
            load_checkpoint(str(path))

    def test_missing_state(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": CHECKPOINT_SCHEMA_VERSION,
                    "offsets": {
                        "ledger_bytes": 0,
                        "fingerprints_bytes": 0,
                    },
                }
            )
        )
        with pytest.raises(CheckpointError, match="missing campaign state"):
            load_checkpoint(str(path))

    def test_missing_offsets(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": CHECKPOINT_SCHEMA_VERSION,
                    "state": STATE,
                }
            )
        )
        with pytest.raises(CheckpointError, match="byte offsets"):
            load_checkpoint(str(path))

    def test_negative_offsets(self, tmp_path):
        path = tmp_path / "ckpt.json"
        payload = Checkpoint(state=STATE).to_json()
        payload["offsets"]["ledger_bytes"] = -1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="negative"):
            load_checkpoint(str(path))

    def test_non_object(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2]\n")
        with pytest.raises(CheckpointError, match="JSON object"):
            load_checkpoint(str(path))
