"""Unit tests for Spark's read/scan reconciliation path."""

import pytest

from repro.common.schema import Schema
from repro.errors import IncompatibleSchemaException
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession


@pytest.fixture
def deployment():
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    return spark, hive


class TestHiveOrcInterop:
    def test_modern_spark_reads_hive_orc(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (a int, b string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1, 'x')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(1, "x")]

    def test_legacy_flag_replays_spark_21686(self, deployment):
        spark, hive = deployment
        hive.execute("CREATE TABLE t (a int, b string) STORED AS orc")
        hive.execute("INSERT INTO t VALUES (1, 'x')")
        spark.conf.set("spark.sql.legacy.orc.positionalNames", "true")
        # pre-fix behaviour: `_col0` never matches, every column is NULL
        assert spark.sql("SELECT * FROM t").to_tuples() == [(None, None)]

    def test_spark_written_orc_reads_by_name(self, deployment):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (a int, b string) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (2, 'y')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(2, "y")]


class TestAvroReconciliation:
    def test_dataframe_avro_byte_raises(self, deployment):
        spark, _ = deployment
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("avro").save_as_table("t")
        with pytest.raises(IncompatibleSchemaException):
            spark.read_table("t")

    def test_sql_avro_byte_becomes_int(self, deployment):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (b tinyint) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (5)")
        result = spark.sql("SELECT * FROM t")
        assert result.to_tuples() == [(5,)]
        assert result.schema.types()[0].simple_string() == "int"

    def test_orc_byte_roundtrips_exactly(self, deployment):
        spark, _ = deployment
        frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
        frame.write.format("orc").save_as_table("t")
        result = spark.read_table("t")
        assert result.schema.types()[0].simple_string() == "tinyint"
        assert result.to_tuples() == [(5,)]


class TestCharReadPath:
    def test_sql_read_pads_char(self, deployment):
        spark, _ = deployment
        frame = spark.create_dataframe([("ab",)], Schema.of(("c", "char(5)")))
        frame.write.format("parquet").save_as_table("t")
        # DataFrame wrote it raw; SQL read pads, DataFrame read does not
        assert spark.sql("SELECT * FROM t").to_tuples() == [("ab   ",)]
        assert spark.read_table("t").to_tuples() == [("ab",)]

    def test_char_as_string_disables_padding(self, deployment):
        spark, _ = deployment
        frame = spark.create_dataframe([("ab",)], Schema.of(("c", "char(5)")))
        frame.write.format("parquet").save_as_table("t")
        spark.conf.set("spark.sql.legacy.charVarcharAsString", "true")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("ab",)]
        assert spark.sql("SELECT * FROM t").schema.types()[0].simple_string() == (
            "string"
        )


class TestTimestampResolution:
    def test_ntz_falls_back_to_ltz(self, deployment):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (ts timestamp_ntz) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (TIMESTAMP_NTZ '2020-06-15 12:30:00')")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.types()[0].simple_string() == "timestamp"

    def test_timestamp_type_config_restores_ntz(self, deployment):
        spark, _ = deployment
        spark.sql("CREATE TABLE t (ts timestamp_ntz) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (TIMESTAMP_NTZ '2020-06-15 12:30:00')")
        spark.conf.set("spark.sql.timestampType", "TIMESTAMP_NTZ")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.types()[0].simple_string() == "timestamp_ntz"


class TestMissingColumns:
    def test_unmatched_physical_column_reads_null(self, deployment):
        spark, hive = deployment
        # hive writes parquet with lower-cased names; make spark expect a
        # column the file does not have by recreating the table
        hive.execute("CREATE TABLE t (a int) STORED AS parquet")
        hive.execute("INSERT INTO t VALUES (1)")
        hive.execute("DROP TABLE IF EXISTS u")
        spark.sql("CREATE TABLE u (a int, extra string) STORED AS parquet")
        table_t = spark.metastore.get_table("t")
        table_u = spark.metastore.get_table("u")
        blob = spark.warehouse.read_segments(table_t)
        # splice t's data under u's location
        spark.warehouse.write_segment(table_u, blob[0])
        assert spark.sql("SELECT * FROM u").to_tuples() == [(1, None)]
