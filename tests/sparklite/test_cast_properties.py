"""Property-based invariants of Spark's cast engine (hypothesis)."""

import decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import (
    ByteType,
    DecimalType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    parse_type,
)
from repro.errors import AnalysisException, ArithmeticOverflowError, CastError
from repro.sparklite.casts import spark_cast, store_assign, wrap_integral
from repro.sparklite.conf import StoreAssignmentPolicy

_INTEGRAL_TARGETS = [ByteType(), ShortType(), IntegerType(), LongType()]

_scalars = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
    st.booleans(),
    st.decimals(allow_nan=False, allow_infinity=False, places=3,
                min_value=-(10**20), max_value=10**20),
)


class TestLegacyCastTotality:
    @given(_scalars, st.sampled_from(_INTEGRAL_TARGETS))
    @settings(max_examples=200, deadline=None)
    def test_legacy_never_raises_and_stays_in_range(self, value, target):
        result = spark_cast(value, StringType(), target, ansi=False)
        assert result is None or target.accepts(result)

    @given(_scalars)
    @settings(max_examples=150, deadline=None)
    def test_legacy_decimal_fits_or_null(self, value):
        target = DecimalType(10, 2)
        result = spark_cast(value, StringType(), target, ansi=False)
        assert result is None or target.accepts(result)

    @given(_scalars, st.sampled_from(
        ["boolean", "string", "date", "timestamp", "double"]
    ))
    @settings(max_examples=200, deadline=None)
    def test_legacy_total_for_every_atomic_target(self, value, target_text):
        target = parse_type(target_text)
        result = spark_cast(value, StringType(), target, ansi=False)
        del result  # no exception is the property


class TestAnsiCastSoundness:
    @given(_scalars, st.sampled_from(_INTEGRAL_TARGETS))
    @settings(max_examples=200, deadline=None)
    def test_ansi_result_always_fits(self, value, target):
        """ANSI either raises or returns an in-range value — it never
        silently wraps (the property whose absence is legacy mode)."""
        try:
            result = spark_cast(value, StringType(), target, ansi=True)
        except (CastError, ArithmeticOverflowError):
            return
        assert result is None or target.accepts(result)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=150, deadline=None)
    def test_ansi_and_legacy_agree_when_no_failure(self, value):
        target = IntegerType()
        try:
            ansi_result = spark_cast(value, StringType(), target, ansi=True)
        except ArithmeticOverflowError:
            # legacy wraps exactly where ANSI raised
            legacy = spark_cast(value, StringType(), target, ansi=False)
            assert legacy == wrap_integral(value, target)
            return
        assert ansi_result == spark_cast(
            value, StringType(), target, ansi=False
        )


class TestWrapProperties:
    @given(st.integers(), st.sampled_from(_INTEGRAL_TARGETS))
    def test_wrap_lands_in_range(self, value, target):
        assert target.accepts(wrap_integral(value, target))

    @given(st.integers(), st.sampled_from(_INTEGRAL_TARGETS))
    def test_wrap_idempotent(self, value, target):
        once = wrap_integral(value, target)
        assert wrap_integral(once, target) == once

    @given(st.integers(min_value=-128, max_value=127))
    def test_wrap_identity_in_range(self, value):
        assert wrap_integral(value, ByteType()) == value

    @given(st.integers(), st.sampled_from(_INTEGRAL_TARGETS))
    def test_wrap_congruent_modulo_width(self, value, target):
        width = target.max_value - target.min_value + 1
        assert (wrap_integral(value, target) - value) % width == 0


class TestStoreAssignmentProperties:
    @given(_scalars, st.sampled_from(_INTEGRAL_TARGETS))
    @settings(max_examples=150, deadline=None)
    def test_legacy_policy_is_total(self, value, target):
        source = StringType()  # worst case for ANSI, irrelevant to legacy
        result = store_assign(
            value, source, target, StoreAssignmentPolicy.LEGACY
        )
        assert result is None or target.accepts(result)

    @given(st.integers(min_value=-(2**40), max_value=2**40),
           st.sampled_from(_INTEGRAL_TARGETS))
    @settings(max_examples=150, deadline=None)
    def test_strict_implies_ansi_accepts(self, value, target):
        """Anything STRICT accepts, ANSI accepts with the same result."""
        source = IntegerType() if IntegerType().accepts(value) else LongType()
        if not source.accepts(value):
            return
        try:
            strict = store_assign(
                value, source, target, StoreAssignmentPolicy.STRICT
            )
        except (AnalysisException, ArithmeticOverflowError):
            return
        ansi = store_assign(value, source, target, StoreAssignmentPolicy.ANSI)
        assert ansi == strict


class TestStringRoundTrip:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_int_through_string(self, value):
        text = spark_cast(value, IntegerType(), StringType(), ansi=True)
        back = spark_cast(text, StringType(), IntegerType(), ansi=True)
        assert back == value

    @given(st.decimals(allow_nan=False, allow_infinity=False, places=2,
                       min_value=-(10**6), max_value=10**6))
    def test_decimal_through_string(self, value):
        value = decimal.Decimal(value)
        text = spark_cast(value, DecimalType(10, 2), StringType(), ansi=True)
        back = spark_cast(text, StringType(), DecimalType(10, 2), ansi=True)
        assert back == value.quantize(decimal.Decimal("0.01"))
