"""Compiled cast kernels agree with the reference casts — everywhere.

The §8 discrepancy catalog lives in the cast semantics, so the compiled
kernels are held to exact agreement with the uncompiled references on
the full 422-input cross-test corpus: same values (NaN-aware), same
exception types, same messages.
"""

import pytest

from repro.common.types import parse_type
from repro.crosstest.oracles import canonical
from repro.crosstest.values import generate_inputs
from repro.sparklite.casts import (
    spark_cast,
    spark_cast_reference,
    store_assign,
    store_assign_reference,
)
from repro.sparklite.conf import StoreAssignmentPolicy

CORPUS = generate_inputs()
TYPE_TEXTS = sorted({i.type_text for i in CORPUS})


def _outcome(fn, *args, **kwargs):
    """(status, payload) for a call: comparable across implementations."""
    try:
        return ("ok", canonical(fn(*args, **kwargs)))
    except Exception as exc:  # noqa: BLE001 - parity includes the type
        return ("error", type(exc).__name__, str(exc))


class TestSparkCastKernels:
    @pytest.mark.parametrize("ansi", [False, True])
    def test_corpus_py_values_against_declared_type(self, ansi):
        for test_input in CORPUS:
            target = test_input.column_type
            expected = _outcome(
                spark_cast_reference,
                test_input.py_value,
                None,
                target,
                ansi=ansi,
            )
            actual = _outcome(
                spark_cast, test_input.py_value, None, target, ansi=ansi
            )
            assert actual == expected, (
                f"input {test_input.input_id} ({test_input.type_text}): "
                f"kernel {actual} != reference {expected}"
            )

    @pytest.mark.parametrize("target_text", ["string", "double", "int"])
    def test_corpus_cross_type(self, target_text):
        target = parse_type(target_text)
        for test_input in CORPUS:
            expected = _outcome(
                spark_cast_reference,
                test_input.py_value,
                None,
                target,
                ansi=False,
            )
            actual = _outcome(
                spark_cast, test_input.py_value, None, target, ansi=False
            )
            assert actual == expected, (
                f"input {test_input.input_id} -> {target_text}: "
                f"kernel {actual} != reference {expected}"
            )


class TestStoreAssignKernels:
    @pytest.mark.parametrize("policy", list(StoreAssignmentPolicy))
    def test_corpus_identity_source(self, policy):
        for test_input in CORPUS:
            dtype = test_input.column_type
            expected = _outcome(
                store_assign_reference,
                test_input.py_value,
                dtype,
                dtype,
                policy,
            )
            actual = _outcome(
                store_assign, test_input.py_value, dtype, dtype, policy
            )
            assert actual == expected, (
                f"input {test_input.input_id} ({test_input.type_text}, "
                f"{policy}): kernel {actual} != reference {expected}"
            )

    @pytest.mark.parametrize("policy", list(StoreAssignmentPolicy))
    @pytest.mark.parametrize("source_text", ["string", "int", "double"])
    def test_corpus_cross_source(self, policy, source_text):
        source = parse_type(source_text)
        for test_input in CORPUS:
            target = test_input.column_type
            expected = _outcome(
                store_assign_reference,
                test_input.py_value,
                source,
                target,
                policy,
            )
            actual = _outcome(
                store_assign, test_input.py_value, source, target, policy
            )
            assert actual == expected, (
                f"input {test_input.input_id} {source_text}->"
                f"{test_input.type_text} ({policy}): "
                f"kernel {actual} != reference {expected}"
            )
