"""Session-level plan-cache behaviour: DDL invalidation, conf flips,
the disable flag — the guarantees that keep cached analysis from ever
masking a §8 discrepancy."""

import pytest

from repro.sparklite.session import SparkSession


@pytest.fixture
def spark():
    return SparkSession.local()


class TestDdlInvalidation:
    def test_drop_create_different_schema_recompiles(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (1)")
        assert spark.sql("SELECT * FROM t").rows[0][0] == 1
        spark.sql("DROP TABLE t")
        spark.sql("CREATE TABLE t (a string) STORED AS orc")
        spark.sql("INSERT INTO t VALUES ('x')")
        # the SELECT text is identical; a stale plan would decode the
        # old column type
        result = spark.sql("SELECT * FROM t")
        assert result.rows[0][0] == "x"
        assert result.schema.fields[0].data_type.simple_string() == "string"

    def test_identical_drop_create_hits_cache(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (1)")
        spark.sql("SELECT * FROM t")
        spark.sql("SELECT * FROM t")
        hits_before = spark.plan_cache.stats.hits
        spark.sql("DROP TABLE t")
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (1)")
        spark.sql("SELECT * FROM t")
        # the recreated table is value-identical, so INSERT and SELECT
        # replay their cached plans instead of recompiling
        assert spark.plan_cache.stats.hits > hits_before

    def test_alternating_schemas_both_stay_cached(self, spark):
        def roundtrip(type_text, literal):
            spark.sql(f"CREATE TABLE t (a {type_text}) STORED AS orc")
            spark.sql(f"INSERT INTO t VALUES ({literal})")
            value = spark.sql("SELECT * FROM t").rows[0][0]
            spark.sql("DROP TABLE t")
            return value

        for _ in range(3):
            assert roundtrip("int", "7") == 7
            assert roundtrip("string", "'s'") == "s"
        stats = spark.plan_cache.stats
        # after the first int/string cycle every statement is a variant
        # hit; thrash would show up as one invalidation per cycle
        assert stats.hits > stats.invalidations


class TestConfFlips:
    def test_policy_flip_recompiles_and_flip_back_hits(self, spark):
        from repro.errors import ArithmeticOverflowError

        spark.sql("CREATE TABLE t (a tinyint) STORED AS orc")
        overflow = "INSERT INTO t VALUES (9999)"

        spark.conf.set("spark.sql.storeAssignmentPolicy", "LEGACY")
        spark.sql(overflow)  # legacy wraps the overflowing literal
        assert spark.sql("SELECT * FROM t").rows[0][0] is not None

        spark.conf.set("spark.sql.storeAssignmentPolicy", "ANSI")
        with pytest.raises(ArithmeticOverflowError):
            spark.sql(overflow)

        # flip back: the LEGACY fingerprint's plan is still cached
        spark.conf.set("spark.sql.storeAssignmentPolicy", "LEGACY")
        misses_before = spark.plan_cache.stats.misses
        spark.sql(overflow)
        assert spark.plan_cache.stats.misses == misses_before

        # and the ANSI fingerprint's cached *failure* replays too
        spark.conf.set("spark.sql.storeAssignmentPolicy", "ANSI")
        with pytest.raises(ArithmeticOverflowError):
            spark.sql(overflow)
        assert spark.plan_cache.stats.misses == misses_before

    def test_ansi_cast_flip_changes_select_behaviour(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (1)")
        spark.sql("SELECT * FROM t")
        spark.conf.set("spark.sql.ansi.enabled", "true")
        # a new fingerprint: the cached plan for the old conf must not
        # be served
        misses_before = spark.plan_cache.stats.misses
        spark.sql("SELECT * FROM t")
        assert spark.plan_cache.stats.misses == misses_before + 1


class TestDisableFlag:
    def test_flag_bypasses_the_cache(self, spark):
        spark.conf.set("repro.plan.cache.enabled", "false")
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("INSERT INTO t VALUES (1)")
        spark.sql("SELECT * FROM t")
        spark.sql("SELECT * FROM t")
        assert len(spark.plan_cache) == 0
        assert spark.plan_cache.stats.lookups == 0

    def test_results_identical_with_and_without_cache(self):
        def run(enabled):
            session = SparkSession.local()
            session.conf.set("repro.plan.cache.enabled", enabled)
            session.sql("CREATE TABLE t (a decimal(10,2)) STORED AS orc")
            session.sql("INSERT INTO t VALUES (12.34)")
            out = []
            for _ in range(3):
                result = session.sql("SELECT * FROM t")
                out.append((result.schema.simple_string(), result.rows))
            return out

        assert run("true") == run("false")
