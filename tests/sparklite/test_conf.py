"""Unit tests for the Spark configuration surface."""

import pytest

from repro.sparklite.conf import SparkConf, StoreAssignmentPolicy


@pytest.fixture
def conf():
    return SparkConf()


class TestDefaults:
    def test_store_assignment_default_ansi(self, conf):
        assert conf.store_assignment_policy is StoreAssignmentPolicy.ANSI

    def test_case_insensitive_by_default(self, conf):
        assert conf.case_sensitive is False

    def test_char_varchar_enforced_by_default(self, conf):
        assert conf.char_varchar_as_string is False

    def test_timestamp_type_default_ltz(self, conf):
        assert conf.timestamp_type == "TIMESTAMP_LTZ"

    def test_inference_mode_default(self, conf):
        assert conf.case_sensitive_inference_mode == "INFER_AND_SAVE"

    def test_warehouse_dir(self, conf):
        assert conf.warehouse_dir == "/warehouse"

    def test_legacy_orc_off(self, conf):
        assert conf.legacy_orc_positional_names is False

    def test_declared_surface_is_substantial(self, conf):
        # §8.2 notes SparkSQL alone has 350+ parameters; we declare the
        # mechanism-relevant subset plus representative surface
        assert len(conf.declared) >= 25


class TestOverrides:
    def test_policy_parse(self, conf):
        conf.set("spark.sql.storeAssignmentPolicy", "LEGACY")
        assert conf.store_assignment_policy is StoreAssignmentPolicy.LEGACY

    def test_bool_keys_parse_strings(self, conf):
        conf.set("spark.sql.legacy.charVarcharAsString", "true")
        assert conf.char_varchar_as_string is True

    def test_memory_parse(self, conf):
        conf.set("spark.executor.memory", "2g")
        assert conf.get("spark.executor.memory") == 2048

    def test_duration_parse(self, conf):
        conf.set("spark.network.timeout", "2min")
        assert conf.get("spark.network.timeout") == 120000
