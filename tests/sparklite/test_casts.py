"""Unit tests for Spark's cast engine and store assignment."""

import datetime
import decimal
import math

import pytest

from repro.common.types import NullType, StringType, parse_type
from repro.errors import AnalysisException, ArithmeticOverflowError, CastError
from repro.sparklite.casts import spark_cast, store_assign, wrap_integral
from repro.sparklite.conf import StoreAssignmentPolicy


def cast(value, target_text, *, ansi):
    target = parse_type(target_text)
    return spark_cast(value, StringType(), target, ansi=ansi)


class TestWrapIntegral:
    def test_wraps_like_java(self):
        assert wrap_integral(2**31, parse_type("int")) == -(2**31)
        assert wrap_integral(128, parse_type("tinyint")) == -128
        assert wrap_integral(-129, parse_type("tinyint")) == 127

    def test_identity_in_range(self):
        assert wrap_integral(100, parse_type("tinyint")) == 100


class TestIntegralCasts:
    def test_ansi_overflow_raises(self):
        with pytest.raises(ArithmeticOverflowError):
            cast(2**31, "int", ansi=True)

    def test_legacy_overflow_wraps(self):
        assert cast(2**31, "int", ansi=False) == -(2**31)

    def test_string_parse(self):
        assert cast("42", "int", ansi=True) == 42

    def test_malformed_string_ansi_raises(self):
        with pytest.raises(CastError):
            cast("12abc", "int", ansi=True)

    def test_malformed_string_legacy_nulls(self):
        assert cast("12abc", "int", ansi=False) is None

    def test_float_truncates(self):
        assert cast(3.9, "int", ansi=True) == 3
        assert cast(-3.9, "int", ansi=True) == -3

    def test_nonfinite_float_to_int(self):
        with pytest.raises(ArithmeticOverflowError):
            cast(math.inf, "int", ansi=True)
        assert cast(math.nan, "int", ansi=False) is None

    def test_bool_to_int(self):
        assert cast(True, "int", ansi=True) == 1


class TestDecimalCasts:
    def test_quantizes_to_scale(self):
        out = cast(decimal.Decimal("3.1"), "decimal(10,3)", ansi=True)
        assert str(out) == "3.100"

    def test_rounds_half_up(self):
        out = cast(decimal.Decimal("1.005"), "decimal(10,2)", ansi=True)
        assert str(out) == "1.01"

    def test_precision_overflow_ansi(self):
        with pytest.raises(ArithmeticOverflowError):
            cast(decimal.Decimal("123456.78"), "decimal(5,2)", ansi=True)

    def test_precision_overflow_legacy_nulls(self):
        assert cast(decimal.Decimal("123456.78"), "decimal(5,2)", ansi=False) is None

    def test_string_to_decimal(self):
        assert cast("1.5", "decimal(5,2)", ansi=True) == decimal.Decimal("1.50")

    def test_bool_to_decimal_rejected(self):
        with pytest.raises(CastError):
            cast(True, "decimal(5,2)", ansi=True)


class TestBooleanCasts:
    @pytest.mark.parametrize("token", ["true", "T", "yes", "Y", "1"])
    def test_truthy_tokens(self, token):
        assert cast(token, "boolean", ansi=True) is True

    @pytest.mark.parametrize("token", ["false", "F", "no", "N", "0"])
    def test_falsy_tokens(self, token):
        assert cast(token, "boolean", ansi=True) is False

    def test_invalid_ansi_raises(self):
        with pytest.raises(CastError):
            cast("maybe", "boolean", ansi=True)

    def test_invalid_legacy_nulls(self):
        assert cast("maybe", "boolean", ansi=False) is None

    def test_int_to_boolean(self):
        assert cast(2, "boolean", ansi=True) is True
        assert cast(0, "boolean", ansi=True) is False


class TestStringAndTemporalCasts:
    def test_float_special_spellings(self):
        assert math.isnan(cast("NaN", "double", ansi=True))
        assert cast("-Infinity", "float", ansi=True) == -math.inf

    def test_numeric_to_string(self):
        assert cast(1.5, "string", ansi=True) == "1.5"
        assert cast(math.nan, "string", ansi=True) == "NaN"

    def test_date_parse(self):
        assert cast("2020-01-01", "date", ansi=True) == datetime.date(2020, 1, 1)

    def test_invalid_date(self):
        with pytest.raises(CastError):
            cast("2021-02-30", "date", ansi=True)
        assert cast("2021-02-30", "date", ansi=False) is None

    def test_timestamp_parse(self):
        out = cast("2020-01-01 10:00:00", "timestamp", ansi=True)
        assert out == datetime.datetime(2020, 1, 1, 10)

    def test_date_to_timestamp(self):
        out = spark_cast(
            datetime.date(2020, 1, 2),
            parse_type("date"),
            parse_type("timestamp"),
            ansi=True,
        )
        assert out == datetime.datetime(2020, 1, 2)

    def test_string_to_binary(self):
        assert cast("ab", "binary", ansi=True) == b"ab"


class TestNestedCasts:
    def test_array_elements(self):
        out = spark_cast(
            ["1", "2"], parse_type("array<string>"),
            parse_type("array<int>"), ansi=True,
        )
        assert out == [1, 2]

    def test_array_null_elements_preserved(self):
        out = spark_cast(
            [1, None], parse_type("array<int>"),
            parse_type("array<bigint>"), ansi=False,
        )
        assert out == [1, None]

    def test_wrong_kind_legacy_nulls(self):
        assert (
            spark_cast("x", StringType(), parse_type("array<int>"), ansi=False)
            is None
        )


class TestStoreAssignment:
    def test_ansi_numeric_overflow_raises(self):
        with pytest.raises(ArithmeticOverflowError):
            store_assign(
                2**31, parse_type("bigint"), parse_type("int"),
                StoreAssignmentPolicy.ANSI,
            )

    def test_ansi_rejects_string_to_numeric(self):
        with pytest.raises(AnalysisException):
            store_assign(
                "5", StringType(), parse_type("int"),
                StoreAssignmentPolicy.ANSI,
            )

    def test_ansi_rejects_string_to_boolean(self):
        with pytest.raises(AnalysisException):
            store_assign(
                "true", StringType(), parse_type("boolean"),
                StoreAssignmentPolicy.ANSI,
            )

    def test_ansi_allows_widening(self):
        out = store_assign(
            5, parse_type("tinyint"), parse_type("int"),
            StoreAssignmentPolicy.ANSI,
        )
        assert out == 5

    def test_legacy_allows_anything(self):
        out = store_assign(
            "5", StringType(), parse_type("int"),
            StoreAssignmentPolicy.LEGACY,
        )
        assert out == 5
        assert (
            store_assign(
                "junk", StringType(), parse_type("int"),
                StoreAssignmentPolicy.LEGACY,
            )
            is None
        )

    def test_legacy_wraps_overflow(self):
        out = store_assign(
            128, parse_type("int"), parse_type("tinyint"),
            StoreAssignmentPolicy.LEGACY,
        )
        assert out == -128

    def test_strict_rejects_narrowing(self):
        with pytest.raises(AnalysisException):
            store_assign(
                5, parse_type("int"), parse_type("tinyint"),
                StoreAssignmentPolicy.STRICT,
            )

    def test_strict_allows_widening(self):
        assert (
            store_assign(
                5, parse_type("smallint"), parse_type("bigint"),
                StoreAssignmentPolicy.STRICT,
            )
            == 5
        )

    def test_null_always_assignable(self):
        for policy in StoreAssignmentPolicy:
            assert (
                store_assign(None, NullType(), parse_type("int"), policy)
                is None
            )

    def test_ansi_date_to_timestamp(self):
        out = store_assign(
            datetime.date(2020, 1, 1), parse_type("date"),
            parse_type("timestamp"), StoreAssignmentPolicy.ANSI,
        )
        assert out == datetime.datetime(2020, 1, 1)
