"""Unit tests for the DataFrame interface and its legacy coercion."""

import datetime
import decimal

import pytest

from repro.common.schema import Schema
from repro.common.types import parse_type
from repro.errors import AnalysisException, TableAlreadyExistsError
from repro.sparklite.dataframe import dataframe_store_value
from repro.sparklite.session import SparkSession


@pytest.fixture
def spark():
    return SparkSession.local()


class TestStoreValue:
    def test_overflow_wraps(self):
        assert dataframe_store_value(128, parse_type("tinyint")) == -128

    def test_invalid_string_nulls(self):
        assert dataframe_store_value("junk", parse_type("int")) is None

    def test_char_not_enforced(self):
        # SPARK-40630 shape: no length check, no padding
        assert dataframe_store_value("abcdefgh", parse_type("char(5)")) == "abcdefgh"
        assert dataframe_store_value("ab", parse_type("char(5)")) == "ab"

    def test_varchar_not_enforced(self):
        assert dataframe_store_value("abcdef", parse_type("varchar(3)")) == "abcdef"

    def test_decimal_kept_unquantized(self):
        # SPARK-39158 shape
        out = dataframe_store_value(decimal.Decimal("3.1"), parse_type("decimal(10,3)"))
        assert str(out) == "3.1"

    def test_decimal_overflow_nulls(self):
        out = dataframe_store_value(
            decimal.Decimal("123456.78"), parse_type("decimal(5,2)")
        )
        assert out is None

    def test_string_to_date_legacy(self):
        assert dataframe_store_value("2021-02-30", parse_type("date")) is None
        assert dataframe_store_value(
            "2020-01-01", parse_type("date")
        ) == datetime.date(2020, 1, 1)


class TestDataFrame:
    def test_create_and_collect(self, spark):
        frame = spark.create_dataframe(
            [(1, "a"), (2, "b")], Schema.of(("id", "int"), ("s", "string"))
        )
        assert frame.count() == 2
        assert [tuple(r) for r in frame.collect()] == [(1, "a"), (2, "b")]

    def test_creation_coerces(self, spark):
        frame = spark.create_dataframe(
            [("300",)], Schema.of(("b", "tinyint"))
        )
        assert frame.collect()[0][0] == 44  # 300 wraps into tinyint

    def test_arity_checked(self, spark):
        with pytest.raises(AnalysisException):
            spark.create_dataframe([(1, 2)], Schema.of(("a", "int")))

    def test_select(self, spark):
        frame = spark.create_dataframe(
            [(1, "a")], Schema.of(("id", "int"), ("s", "string"))
        )
        assert [tuple(r) for r in frame.select("s").collect()] == [("a",)]

    def test_filter(self, spark):
        frame = spark.create_dataframe(
            [(1,), (5,)], Schema.of(("id", "int"))
        )
        assert frame.filter(lambda row: row[0] > 2).count() == 1


class TestWriter:
    def test_save_as_table_roundtrip(self, spark):
        frame = spark.create_dataframe([(1,)], Schema.of(("Id", "int")))
        frame.write.format("parquet").save_as_table("t")
        result = spark.read_table("t")
        assert result.to_tuples() == [(1,)]
        assert result.schema.names() == ("Id",)  # datasource keeps case

    def test_default_format(self, spark):
        frame = spark.create_dataframe([(1,)], Schema.of(("a", "int")))
        frame.write.save_as_table("t")
        assert spark.metastore.get_table("t").storage_format == "parquet"

    def test_append_mode(self, spark):
        frame = spark.create_dataframe([(1,)], Schema.of(("a", "int")))
        frame.write.format("orc").save_as_table("t")
        frame.write.format("orc").mode("append").save_as_table("t")
        assert spark.read_table("t").to_tuples() == [(1,), (1,)]

    def test_overwrite_mode(self, spark):
        spark.create_dataframe([(1,)], Schema.of(("a", "int"))).write.format(
            "orc"
        ).save_as_table("t")
        spark.create_dataframe([(9,)], Schema.of(("a", "int"))).write.format(
            "orc"
        ).mode("overwrite").save_as_table("t")
        assert spark.read_table("t").to_tuples() == [(9,)]

    def test_errorifexists(self, spark):
        spark.create_dataframe([(1,)], Schema.of(("a", "int"))).write.format(
            "orc"
        ).save_as_table("t")
        with pytest.raises(TableAlreadyExistsError):
            spark.create_dataframe(
                [(2,)], Schema.of(("a", "int"))
            ).write.format("orc").mode("errorifexists").save_as_table("t")

    def test_unknown_mode_rejected(self, spark):
        frame = spark.create_dataframe([(1,)], Schema.of(("a", "int")))
        with pytest.raises(AnalysisException):
            frame.write.mode("replace")

    def test_insert_into_existing_table(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        frame = spark.create_dataframe([(3,)], Schema.of(("a", "int")))
        frame.write.insert_into("t")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(3,)]

    def test_insert_into_arity_checked(self, spark):
        spark.sql("CREATE TABLE t (a int, b int) STORED AS parquet")
        frame = spark.create_dataframe([(3,)], Schema.of(("a", "int")))
        with pytest.raises(AnalysisException):
            frame.write.insert_into("t")

    def test_table_reads_back_dataframe(self, spark):
        spark.create_dataframe(
            [(1, "x")], Schema.of(("a", "int"), ("b", "string"))
        ).write.format("parquet").save_as_table("t")
        frame = spark.table("t")
        assert frame.count() == 1
        assert frame.schema.names() == ("a", "b")
