"""Unit tests for the SparkSQL interface of the session."""

import decimal

import pytest

from repro.connectors.spark_hive import NATIVE_SCHEMA_PROPERTY
from repro.errors import (
    AnalysisException,
    ArithmeticOverflowError,
    TableNotFoundError,
)
from repro.sparklite.session import SparkSession


@pytest.fixture
def spark():
    return SparkSession.local()


class TestCreate:
    def test_hive_serde_parquet_keeps_native_schema(self, spark):
        spark.sql("CREATE TABLE t (Id int) STORED AS parquet")
        table = spark.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is not None
        assert table.schema.names() == ("id",)

    def test_hive_serde_avro_loses_native_schema(self, spark):
        spark.sql("CREATE TABLE t (Id tinyint) STORED AS avro")
        table = spark.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is None
        assert table.schema.simple_string() == "id int"

    def test_datasource_avro_keeps_native_schema(self, spark):
        spark.sql("CREATE TABLE t (Id tinyint) USING avro")
        table = spark.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is not None

    def test_never_infer_mode_drops_property(self, spark):
        spark.conf.set(
            "spark.sql.hive.caseSensitiveInferenceMode", "NEVER_INFER"
        )
        spark.sql("CREATE TABLE t (Id int) STORED AS parquet")
        assert (
            spark.metastore.get_table("t").property(NATIVE_SCHEMA_PROPERTY)
            is None
        )

    def test_default_format_from_conf(self, spark):
        spark.sql("CREATE TABLE t (a int)")
        assert spark.metastore.get_table("t").storage_format == "parquet"

    def test_if_not_exists(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("CREATE TABLE IF NOT EXISTS t (a int) STORED AS orc")

    def test_drop(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS orc")
        spark.sql("DROP TABLE t")
        with pytest.raises(TableNotFoundError):
            spark.metastore.get_table("t")


class TestInsertSelect:
    def test_roundtrip_preserves_case_for_parquet(self, spark):
        spark.sql("CREATE TABLE t (Id int, Name string) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1, 'a')")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.names() == ("Id", "Name")
        assert result.to_tuples() == [(1, "a")]
        assert result.warnings == ()

    def test_avro_falls_back_with_warning(self, spark):
        spark.sql("CREATE TABLE t (Bb tinyint) STORED AS avro")
        spark.sql("INSERT INTO t VALUES (5)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.names() == ("bb",)
        assert result.schema.types()[0].simple_string() == "int"
        assert any("not case preserving" in w for w in result.warnings)

    def test_ansi_overflow_raises(self, spark):
        spark.sql("CREATE TABLE t (i int) STORED AS parquet")
        with pytest.raises(ArithmeticOverflowError):
            spark.sql("INSERT INTO t VALUES (2147483648)")

    def test_legacy_policy_wraps(self, spark):
        spark.conf.set("spark.sql.storeAssignmentPolicy", "legacy")
        spark.sql("CREATE TABLE t (i int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (2147483648)")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(-(2**31),)]

    def test_decimal_quantized_on_sql_insert(self, spark):
        spark.sql("CREATE TABLE t (d decimal(10,3)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (3.1)")
        assert spark.sql("SELECT * FROM t").to_tuples() == [
            (decimal.Decimal("3.100"),)
        ]

    def test_char_padded_and_enforced(self, spark):
        spark.sql("CREATE TABLE t (c char(5)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES ('ab')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("ab   ",)]
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES ('toolongvalue')")

    def test_varchar_enforced(self, spark):
        spark.sql("CREATE TABLE t (v varchar(3)) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES ('abcd')")

    def test_char_as_string_disables_enforcement(self, spark):
        spark.conf.set("spark.sql.legacy.charVarcharAsString", "true")
        spark.sql("CREATE TABLE t (c char(5)) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES ('toolongvalue')")
        assert spark.sql("SELECT * FROM t").to_tuples() == [("toolongvalue",)]

    def test_invalid_date_literal_raises(self, spark):
        spark.sql("CREATE TABLE t (d date) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES (DATE '2021-02-30')")

    def test_insert_arity_checked(self, spark):
        spark.sql("CREATE TABLE t (a int, b int) STORED AS parquet")
        with pytest.raises(AnalysisException):
            spark.sql("INSERT INTO t VALUES (1, 2, 3)")

    def test_overwrite(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        spark.sql("INSERT OVERWRITE TABLE t VALUES (2)")
        assert spark.sql("SELECT * FROM t").to_tuples() == [(2,)]

    def test_projection_case_insensitive_by_default(self, spark):
        spark.sql("CREATE TABLE t (Aa int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        assert spark.sql("SELECT aa FROM t").to_tuples() == [(1,)]

    def test_projection_case_sensitive_mode(self, spark):
        spark.conf.set("spark.sql.caseSensitive", "true")
        spark.sql("CREATE TABLE t (Aa int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1)")
        with pytest.raises(AnalysisException):
            spark.sql("SELECT aa FROM t")

    def test_where(self, spark):
        spark.sql("CREATE TABLE t (a int) STORED AS parquet")
        spark.sql("INSERT INTO t VALUES (1), (7)")
        assert spark.sql("SELECT * FROM t WHERE a > 3").to_tuples() == [(7,)]
