"""Unit tests of the conf- and catalog-aware plan cache."""

import pytest

from repro.sql.plancache import (
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    PlanCache,
    PreparedFailure,
)


def _resolver(catalog):
    """A resolve callable over a dict catalog, counting its calls."""
    calls = []

    def resolve(dep_key):
        calls.append(dep_key)
        return catalog.get(dep_key)

    resolve.calls = calls
    return resolve


class TestLookupStore:
    def test_cold_lookup_misses(self):
        cache = PlanCache()
        assert cache.lookup("SELECT 1", (), 0, _resolver({})) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_store_then_hit(self):
        cache = PlanCache()
        catalog = {("default", "t"): 7}
        cache.store("Q", (), 0, ((("default", "t"), 7),), "plan")
        resolve = _resolver(catalog)
        assert cache.lookup("Q", (), 0, resolve) == "plan"
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_conf_fingerprint_separates_entries(self):
        cache = PlanCache()
        cache.store("Q", ("ansi=true",), 0, (), "ansi-plan")
        cache.store("Q", ("ansi=false",), 0, (), "legacy-plan")
        assert cache.lookup("Q", ("ansi=true",), 0, _resolver({})) == "ansi-plan"
        assert (
            cache.lookup("Q", ("ansi=false",), 0, _resolver({})) == "legacy-plan"
        )
        assert len(cache) == 2

    def test_dependency_change_is_invalidation_not_stale_serve(self):
        cache = PlanCache()
        dep = ("default", "t")
        cache.store("Q", (), 0, ((dep, 7),), "old-plan")
        # the catalog moved: the table now has state 8
        assert cache.lookup("Q", (), 1, _resolver({dep: 8})) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1

    def test_identical_recreate_revalidates(self):
        """DROP + CREATE of an identical table serves the cached plan."""
        cache = PlanCache()
        dep = ("default", "t")
        cache.store("Q", (), 0, ((dep, 7),), "plan")
        # two version bumps later the table resolves to the same state
        assert cache.lookup("Q", (), 2, _resolver({dep: 7})) == "plan"
        assert cache.stats.hits == 1
        assert cache.stats.invalidations == 0


class TestStateVariants:
    def test_each_seen_state_keeps_its_own_plan(self):
        cache = PlanCache()
        dep = ("default", "ct")
        cache.store("SELECT * FROM ct", (), 0, ((dep, 1),), "int-plan")
        cache.store("SELECT * FROM ct", (), 1, ((dep, 2),), "str-plan")
        assert (
            cache.lookup("SELECT * FROM ct", (), 2, _resolver({dep: 1}))
            == "int-plan"
        )
        assert (
            cache.lookup("SELECT * FROM ct", (), 3, _resolver({dep: 2}))
            == "str-plan"
        )
        assert cache.stats.hits == 2
        assert len(cache) == 2

    def test_unchanged_version_skips_resolution(self):
        cache = PlanCache()
        dep = ("default", "t")
        cache.store("Q", (), 5, ((dep, 7),), "plan")
        resolve = _resolver({dep: 7})
        assert cache.lookup("Q", (), 5, resolve) == "plan"
        # version matched the validated one: no dependency resolution
        assert resolve.calls == []

    def test_moved_version_resolves_again(self):
        cache = PlanCache()
        dep = ("default", "t")
        cache.store("Q", (), 5, ((dep, 7),), "plan")
        resolve = _resolver({dep: 7})
        assert cache.lookup("Q", (), 6, resolve) == "plan"
        assert resolve.calls == [dep]


class TestEviction:
    def test_bounded_lru_evicts_oldest_statement(self):
        cache = PlanCache(max_entries=2)
        cache.store("A", (), 0, (), "a")
        cache.store("B", (), 0, (), "b")
        cache.store("C", (), 0, (), "c")
        assert cache.lookup("A", (), 0, _resolver({})) is None
        assert cache.lookup("C", (), 0, _resolver({})) == "c"
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_default_bound(self):
        assert PlanCache().max_entries == DEFAULT_MAX_ENTRIES

    def test_clear_resets_size(self):
        cache = PlanCache()
        cache.store("A", (), 0, (), "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("A", (), 0, _resolver({})) is None


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["hit_rate"] == 0.75

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0


class TestPreparedFailure:
    def test_execute_reraises_the_original_exception(self):
        error = ValueError("arity mismatch")
        plan = PreparedFailure(error)
        with pytest.raises(ValueError) as excinfo:
            plan.execute(object())
        assert excinfo.value is error
