"""Unit tests for literal evaluation and dialect policies."""

import datetime
import decimal
import math

import pytest

from repro.common.types import (
    BooleanType,
    ByteType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    NullType,
    ShortType,
    StringType,
)
from repro.errors import AnalysisException, ParseError
from repro.sql.literals import DialectOptions, LiteralEvaluator
from repro.sql.parser import parse_statement


def evaluate(expr_sql, **options):
    defaults = dict(name="test", cast_fn=lambda v, s, t: v)
    defaults.update(options)
    evaluator = LiteralEvaluator(DialectOptions(**defaults))
    statement = parse_statement(f"INSERT INTO t VALUES ({expr_sql})")
    return evaluator.evaluate(statement.rows[0][0])


class TestNumbers:
    def test_plain_int(self):
        typed = evaluate("42")
        assert typed.value == 42 and typed.data_type == IntegerType()

    def test_int_promotes_to_bigint(self):
        typed = evaluate("3000000000")
        assert typed.data_type == LongType()

    def test_huge_literal_becomes_decimal(self):
        typed = evaluate("99999999999999999999")
        assert isinstance(typed.data_type, DecimalType)

    @pytest.mark.parametrize(
        "sql,dtype",
        [("1Y", ByteType()), ("1S", ShortType()), ("1L", LongType()),
         ("1.5D", DoubleType()), ("1.5F", FloatType())],
    )
    def test_suffixes(self, sql, dtype):
        assert evaluate(sql).data_type == dtype

    def test_suffix_out_of_range_raises(self):
        with pytest.raises(ParseError):
            evaluate("300Y")

    def test_negative_suffix(self):
        typed = evaluate("-128Y")
        assert typed.value == -128 and typed.data_type == ByteType()

    def test_fractional_default_decimal(self):
        typed = evaluate("3.14")
        assert typed.value == decimal.Decimal("3.14")
        assert typed.data_type == DecimalType(3, 2)

    def test_fractional_double_dialect(self):
        typed = evaluate("3.14", fractional_literal="double")
        assert typed.data_type == DoubleType()
        assert typed.value == pytest.approx(3.14)

    def test_exponent_is_double(self):
        assert evaluate("1e3").data_type == DoubleType()

    def test_bd_suffix(self):
        typed = evaluate("1.50BD")
        assert typed.value == decimal.Decimal("1.50")
        assert typed.data_type == DecimalType(3, 2)


class TestBasicLiterals:
    def test_null(self):
        typed = evaluate("NULL")
        assert typed.value is None and typed.data_type == NullType()

    def test_booleans(self):
        assert evaluate("TRUE").value is True
        assert evaluate("FALSE").data_type == BooleanType()

    def test_string(self):
        typed = evaluate("'hi'")
        assert typed.value == "hi" and typed.data_type == StringType()


class TestTypedLiterals:
    def test_valid_date(self):
        typed = evaluate("DATE '2020-02-29'")
        assert typed.value == datetime.date(2020, 2, 29)
        assert typed.data_type == DateType()

    def test_invalid_date_strict_raises(self):
        with pytest.raises(AnalysisException):
            evaluate("DATE '2021-02-30'", strict_datetime_literals=True)

    def test_invalid_date_lenient_nulls(self):
        typed = evaluate("DATE '2021-02-30'", strict_datetime_literals=False)
        assert typed.value is None
        assert typed.data_type == DateType()

    def test_timestamp(self):
        typed = evaluate("TIMESTAMP '2020-01-01 12:00:00'")
        assert typed.value == datetime.datetime(2020, 1, 1, 12)

    def test_binary_hex(self):
        assert evaluate("X'00FF'").value == b"\x00\xff"

    def test_cast_uses_dialect_fn(self):
        calls = []

        def cast_fn(value, source, target):
            calls.append((value, target.simple_string()))
            return value

        evaluate("CAST('5' AS int)", cast_fn=cast_fn)
        assert calls == [("5", "int")]

    def test_cast_without_fn_raises(self):
        with pytest.raises(AnalysisException):
            evaluate("CAST(1 AS int)", cast_fn=None)


class TestConstructors:
    def test_array(self):
        typed = evaluate("array(1, 2, 3)")
        assert typed.value == [1, 2, 3]
        assert typed.data_type.element_type == IntegerType()

    def test_array_widens_integrals(self):
        typed = evaluate("array(1, 3000000000)")
        assert typed.data_type.element_type == LongType()

    def test_map(self):
        typed = evaluate("map('a', 1, 'b', 2)")
        assert typed.value == {"a": 1, "b": 2}

    def test_map_odd_args_raises(self):
        with pytest.raises(AnalysisException):
            evaluate("map('a')")

    def test_map_null_key_raises(self):
        with pytest.raises(AnalysisException):
            evaluate("map(NULL, 1)")

    def test_named_struct(self):
        typed = evaluate("named_struct('Aa', 1, 'bB', 'x')")
        assert typed.value == [1, "x"]
        assert typed.data_type.field_names() == ("Aa", "bB")

    def test_float_special_values(self):
        assert math.isnan(evaluate("double('NaN')").value)
        assert evaluate("float('Infinity')").value == math.inf
        assert evaluate("double('-Infinity')").value == -math.inf

    def test_unknown_function_raises(self):
        with pytest.raises(AnalysisException):
            evaluate("frobnicate(1)")
