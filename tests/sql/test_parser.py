"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    CreateTable,
    DropTable,
    FunctionCall,
    Insert,
    Literal,
    Select,
    Star,
    TypedLiteral,
)
from repro.sql.parser import parse_statement


class TestCreateTable:
    def test_basic(self):
        statement = parse_statement(
            "CREATE TABLE t (a int, b string) STORED AS orc"
        )
        assert isinstance(statement, CreateTable)
        assert statement.table == "t"
        assert [c.name for c in statement.columns] == ["a", "b"]
        assert statement.stored_as == "orc"
        assert not statement.datasource

    def test_using_marks_datasource(self):
        statement = parse_statement("CREATE TABLE t (a int) USING parquet")
        assert statement.datasource
        assert statement.stored_as == "parquet"

    def test_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert statement.if_not_exists

    def test_nested_types_survive(self):
        statement = parse_statement(
            "CREATE TABLE t (m map<string, array<int>>, "
            "s struct<Aa:int, bB:string>)"
        )
        assert statement.columns[0].type_text == "map<string,array<int>>"
        assert statement.columns[1].type_text == "struct<Aa:int,bB:string>"

    def test_decimal_params(self):
        statement = parse_statement("CREATE TABLE t (d decimal(10, 2))")
        assert statement.columns[0].type_text == "decimal(10,2)"

    def test_tblproperties(self):
        statement = parse_statement(
            "CREATE TABLE t (a int) STORED AS orc "
            "TBLPROPERTIES ('k' = 'v')"
        )
        assert statement.properties == (("k", "v"),)

    def test_case_insensitive_keywords(self):
        statement = parse_statement("create table T (A INT) stored as AVRO")
        assert statement.stored_as == "avro"


class TestDropTable:
    def test_basic(self):
        statement = parse_statement("DROP TABLE t")
        assert statement == DropTable("t", False)

    def test_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists


class TestInsert:
    def test_multi_row(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, Insert)
        assert len(statement.rows) == 2
        assert len(statement.rows[0]) == 2

    def test_overwrite(self):
        assert parse_statement("INSERT OVERWRITE TABLE t VALUES (1)").overwrite

    def test_negative_number(self):
        statement = parse_statement("INSERT INTO t VALUES (-5)")
        literal = statement.rows[0][0]
        assert isinstance(literal, Literal)
        assert literal.text == "-5"

    def test_typed_literals(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (DATE '2020-01-01', TIMESTAMP '2020-01-01 00:00:00')"
        )
        date_lit, ts_lit = statement.rows[0]
        assert isinstance(date_lit, TypedLiteral) and date_lit.type_name == "date"
        assert isinstance(ts_lit, TypedLiteral) and ts_lit.type_name == "timestamp"

    def test_cast(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (CAST('1.5' AS decimal(5,2)))"
        )
        cast = statement.rows[0][0]
        assert isinstance(cast, TypedLiteral)
        assert cast.type_name == "decimal(5,2)"

    def test_constructor_functions(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (array(1, 2), map('a', 1), "
            "named_struct('x', 1))"
        )
        names = [expr.name for expr in statement.rows[0]]
        assert names == ["array", "map", "named_struct"]

    def test_empty_function_call(self):
        statement = parse_statement("INSERT INTO t VALUES (array())")
        assert statement.rows[0][0] == FunctionCall("array", ())

    def test_null_true_false(self):
        statement = parse_statement("INSERT INTO t VALUES (NULL, TRUE, false)")
        null, yes, no = statement.rows[0]
        assert null.text == "NULL"
        assert yes.value is True
        assert no.value is False


class TestSelect:
    def test_star(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement, Select)
        assert isinstance(statement.projections[0], Star)

    def test_columns(self):
        statement = parse_statement("SELECT a, b FROM t")
        assert statement.projections == (ColumnRef("a"), ColumnRef("b"))

    def test_where(self):
        statement = parse_statement("SELECT * FROM t WHERE a >= 10")
        assert isinstance(statement.where, Comparison)
        assert statement.where.op == ">="

    def test_where_requires_operator(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t WHERE a")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "UPDATE t SET a = 1",
            "CREATE TABLE t",
            "INSERT INTO t",
            "SELECT * FROM t garbage",
            "CREATE TABLE t (a int",
        ],
    )
    def test_rejected(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)
