"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


class TestStrings:
    def test_simple_string(self):
        assert kinds("'abc'") == [(TokenType.STRING, "abc")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_unterminated_raises(self):
        with pytest.raises(ParseError):
            tokenize("'abc")

    def test_unicode_content(self):
        assert kinds("'héllo'") == [(TokenType.STRING, "héllo")]


class TestNumbers:
    @pytest.mark.parametrize(
        "text",
        ["0", "42", "3.14", ".5", "1e10", "1E-3", "2.5e+2"],
    )
    def test_plain_numbers(self, text):
        ((kind, value),) = kinds(text)
        assert kind is TokenType.NUMBER
        assert value == text

    @pytest.mark.parametrize("text", ["1Y", "2S", "3L", "4.5D", "6.7F", "8.9BD"])
    def test_typed_suffixes(self, text):
        ((kind, value),) = kinds(text)
        assert kind is TokenType.NUMBER
        assert value == text

    def test_number_then_ident(self):
        tokens = kinds("123 abc")
        assert tokens[0][0] is TokenType.NUMBER
        assert tokens[1][0] is TokenType.IDENT


class TestIdentifiers:
    def test_plain(self):
        assert kinds("select_from t1")[0] == (TokenType.IDENT, "select_from")

    def test_backquoted(self):
        assert kinds("`weird name`") == [(TokenType.IDENT, "weird name")]

    def test_unterminated_backquote(self):
        with pytest.raises(ParseError):
            tokenize("`oops")


class TestSymbols:
    def test_multi_char_operators(self):
        texts = [t for _, t in kinds("a <= b >= c <> d != e")]
        assert "<=" in texts and ">=" in texts and "<>" in texts and "!=" in texts

    def test_parens_and_commas(self):
        texts = [t for _, t in kinds("(a, b)")]
        assert texts == ["(", "a", ",", "b", ")"]

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF
