"""Tests for cluster drift detection.

The acceptance bar (ISSUE 10): a synthetic two-commit ledger with a
rate shift must produce a drift flag, deterministically across record
shuffle order.
"""

import random

import pytest

from repro.analytics.drift import (
    DEFAULT_MIN_DELTA,
    analyze_ledger,
    detect_drift,
)


def _record(ts: float, commit: str, keys: list[str]) -> dict:
    return {
        "schema_version": 1,
        "kind": "crosstest",
        "ts": ts,
        "run": {},
        "results": {"fingerprints": keys},
        "env": {"git": {"commit": commit}},
    }


def _two_commit_ledger(
    before_hits: int = 1, after_hits: int = 5, runs: int = 5
) -> list[dict]:
    """``runs`` records per commit; the fingerprint fires in the first
    ``*_hits`` of each side."""
    records = []
    for i in range(runs):
        keys = ["drifter|spark_hive|parquet"] if i < before_hits else []
        records.append(_record(100.0 + i, "aaa1111", keys))
    for i in range(runs):
        keys = ["drifter|spark_hive|parquet"] if i < after_hits else []
        records.append(_record(200.0 + i, "bbb2222", keys))
    return records


class TestDetectDrift:
    def test_rate_shift_is_flagged(self):
        drifts = detect_drift(_two_commit_ledger(1, 5))
        assert len(drifts) == 1
        drift = drifts[0]
        assert drift.direction == "regressed"
        assert drift.boundary == ("aaa1111", "bbb2222")
        assert drift.before_rate == pytest.approx(0.2)
        assert drift.after_rate == pytest.approx(1.0)
        assert drift.delta == pytest.approx(0.8)
        assert drift.cluster == ("fp:drifter|spark_hive|parquet",)
        assert drift.seams == ("spark->hive",)

    def test_recovery_is_flagged_with_direction(self):
        drifts = detect_drift(_two_commit_ledger(5, 1))
        assert len(drifts) == 1
        assert drifts[0].direction == "recovered"
        assert drifts[0].delta == pytest.approx(-0.8)

    def test_stable_rate_is_not_flagged(self):
        assert detect_drift(_two_commit_ledger(3, 3)) == []

    def test_sub_threshold_shift_is_not_flagged(self):
        # 0.2 -> 0.4 is a 0.2 delta, under the default 0.25
        assert DEFAULT_MIN_DELTA == 0.25
        assert detect_drift(_two_commit_ledger(1, 2)) == []

    def test_min_delta_is_configurable(self):
        drifts = detect_drift(_two_commit_ledger(1, 2), min_delta=0.1)
        assert len(drifts) == 1

    def test_bad_min_delta_rejected(self):
        with pytest.raises(ValueError, match="min_delta"):
            detect_drift(_two_commit_ledger(), min_delta=0.0)
        with pytest.raises(ValueError, match="min_delta"):
            detect_drift(_two_commit_ledger(), min_delta=1.5)

    def test_single_window_cannot_drift(self):
        records = [
            _record(float(i), "onlycommit", ["k"]) for i in range(5)
        ]
        assert detect_drift(records) == []

    def test_empty_ledger(self):
        assert detect_drift([]) == []

    def test_shuffle_determinism(self):
        records = _two_commit_ledger(1, 5)
        baseline = detect_drift(records)
        for seed in range(5):
            shuffled = list(records)
            random.Random(seed).shuffle(shuffled)
            assert detect_drift(shuffled) == baseline

    def test_cluster_identity_is_global(self):
        # the cluster fails only after the boundary; drift must still
        # see it in the before-window (rate 0.0) rather than treating
        # the two windows' clusterings as unrelated
        records = []
        for i in range(4):
            records.append(_record(100.0 + i, "aaa1111", []))
        for i in range(4):
            records.append(_record(200.0 + i, "bbb2222", ["born|g|f"]))
        drifts = detect_drift(records)
        assert len(drifts) == 1
        assert drifts[0].before_rate == 0.0
        assert drifts[0].after_rate == pytest.approx(1.0)

    def test_three_windows_flag_each_boundary(self):
        records = []
        for i in range(4):
            records.append(_record(100.0 + i, "aaa", ["k|g|f"]))
        for i in range(4):
            records.append(_record(200.0 + i, "bbb", []))
        for i in range(4):
            records.append(_record(300.0 + i, "ccc", ["k|g|f"]))
        drifts = detect_drift(records)
        assert [(d.boundary, d.direction) for d in drifts] == [
            (("aaa", "bbb"), "recovered"),
            (("bbb", "ccc"), "regressed"),
        ]

    def test_ordering_by_descending_delta_within_boundary(self):
        # two disjoint clusters drift at the same boundary by 1.0
        # and 0.5 — the bigger move is reported first
        records = []
        for i in range(4):
            keys = ["small|g|f"] if i < 2 else []
            records.append(_record(100.0 + i, "aaa", keys))
        for i in range(4):
            records.append(
                _record(200.0 + i, "bbb", ["big|g|f"])
            )
        drifts = detect_drift(records)
        assert [abs(d.delta) for d in drifts] == sorted(
            [abs(d.delta) for d in drifts], reverse=True
        )
        assert drifts[0].cluster == ("fp:big|g|f",)


class TestAnalyzeLedger:
    def test_report_bundles_all_three_analyses(self):
        report = analyze_ledger(_two_commit_ledger(1, 5))
        assert report.by == "commit"
        assert len(report.windows) == 2
        assert len(report.clusters) == 1
        assert len(report.drifts) == 1
        payload = report.to_json()
        assert set(payload) == {
            "by",
            "windows",
            "clusters",
            "drifts",
            "evolution",
        }

    def test_report_shuffle_determinism(self):
        records = _two_commit_ledger(2, 5)
        baseline = analyze_ledger(records).to_json()
        shuffled = list(records)
        random.Random(42).shuffle(shuffled)
        assert analyze_ledger(shuffled).to_json() == baseline

    def test_time_axis(self):
        records = [
            _record(10.0, "aaa", ["k|g|f"]),
            _record(20.0, "aaa", ["k|g|f"]),
            _record(110.0, "aaa", []),
            _record(120.0, "aaa", []),
        ]
        report = analyze_ledger(records, by="time", window_seconds=100.0)
        assert report.by == "time"
        assert len(report.windows) == 2
        assert len(report.drifts) == 1
        assert report.drifts[0].direction == "recovered"

    def test_empty_ledger_renders_empty_report(self):
        report = analyze_ledger([])
        assert report.windows == ()
        assert report.clusters == ()
        assert report.drifts == ()
        assert report.evolution == ()
