"""Shared fixture: a checkpointed campaign with one seeded novelty.

Built once per session — one seed-3 batch through the real scheduler
is the cheapest campaign that witnesses fingerprints, and holding the
last key out of the baseline turns it into the exact artifact set a
nightly exit-4 leaves behind: checkpoint + fingerprint JSONL + a
baseline that doesn't know one key.
"""

import json

import pytest

from repro.campaign.checkpoint import Checkpoint, save_checkpoint
from repro.fuzz.dedup import Baseline
from repro.fuzz.scheduler import CampaignState, FuzzConfig, run_round

SEED = 3
BATCH = 8


@pytest.fixture(scope="session")
def seeded_campaign(tmp_path_factory):
    """A one-batch campaign whose last fingerprint key is novel.

    Returns a dict: ``checkpoint`` / ``fingerprints`` / ``baseline``
    paths, the ``held_out`` key, and ``all_keys``.
    """
    workdir = tmp_path_factory.mktemp("seeded-campaign")

    # learning pass: which keys does this batch witness?
    config = FuzzConfig(seed=SEED, budget=BATCH, batch=BATCH, shrink=False)
    probe = CampaignState.fresh(config)
    run_round(probe, Baseline.empty())
    all_keys = sorted(probe.findings)
    assert all_keys, "seed-3 batch must witness fingerprints"
    held_out = all_keys[-1]

    pruned = Baseline(
        {
            key: finding.fingerprint
            for key, finding in probe.findings.items()
            if key != held_out
        }
    )
    baseline_path = str(workdir / "pruned-baseline.json")
    pruned.save(baseline_path)

    # the campaign a nightly would have run: same batch, novel key seen
    state = CampaignState.fresh(config)
    outcome = run_round(state, pruned)
    assert outcome.novel_keys == (held_out,)

    checkpoint_path = str(workdir / "campaign.ckpt.json")
    save_checkpoint(
        checkpoint_path,
        Checkpoint(state=state.to_json(), novel_seen=True),
    )

    fingerprints_path = str(workdir / "campaign.fp.jsonl")
    with open(fingerprints_path, "w", encoding="utf-8") as handle:
        for key in sorted(state.findings):
            finding = state.findings[key]
            handle.write(
                json.dumps(
                    {
                        "key": key,
                        "fingerprint": finding.fingerprint.to_json(),
                        "novel": finding.novel,
                        "failures": finding.failure_count,
                        "batch": finding.round_index,
                    },
                    sort_keys=True,
                )
                + "\n"
            )

    return {
        "checkpoint": checkpoint_path,
        "fingerprints": fingerprints_path,
        "baseline": baseline_path,
        "held_out": held_out,
        "all_keys": all_keys,
    }
