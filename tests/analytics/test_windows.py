"""Tests for ledger windowing and cluster evolution.

The load-bearing guarantee mirrors the clustering's: window boundaries
and evolution events are functions of the record *set*, never of the
order the ledger lines happened to be concatenated in.
"""

import random

import pytest

from repro.analytics.windows import (
    Window,
    cluster_evolution,
    cluster_windows,
    commit_windows,
    partition_ledger,
    record_commit,
    time_windows,
)


def _record(
    ts: float, commit: str | None, keys: list[str] | None = None
) -> dict:
    record = {
        "schema_version": 1,
        "kind": "crosstest",
        "ts": ts,
        "run": {},
        "results": {"fingerprints": keys or []},
        "env": {},
    }
    if commit is not None:
        record["env"]["git"] = {"commit": commit}
    return record


class TestRecordCommit:
    def test_reads_the_env_commit(self):
        assert record_commit(_record(1.0, "abc1234")) == "abc1234"

    def test_missing_commit_is_none(self):
        assert record_commit(_record(1.0, None)) is None
        assert record_commit({"env": {"git": "not a dict"}}) is None
        assert record_commit({}) is None


class TestCommitWindows:
    def test_partitions_by_commit_in_first_seen_order(self):
        records = [
            _record(1.0, "aaa"),
            _record(2.0, "aaa"),
            _record(3.0, "bbb"),
            _record(4.0, "bbb"),
            _record(5.0, "ccc"),
        ]
        windows = commit_windows(records)
        assert [window.label for window in windows] == ["aaa", "bbb", "ccc"]
        assert [len(window.records) for window in windows] == [2, 2, 1]
        assert [window.index for window in windows] == [0, 1, 2]

    def test_order_is_by_timestamp_not_line_order(self):
        records = [
            _record(5.0, "newer"),
            _record(1.0, "older"),
        ]
        windows = commit_windows(records)
        assert [window.label for window in windows] == ["older", "newer"]

    def test_shuffle_invariance(self):
        records = [
            _record(float(i), "aaa" if i < 3 else "bbb", [f"fp:{i % 2}"])
            for i in range(6)
        ]
        baseline = commit_windows(records)
        shuffled = list(records)
        random.Random(7).shuffle(shuffled)
        assert commit_windows(shuffled) == baseline

    def test_commitless_records_share_the_unknown_window(self):
        records = [_record(1.0, None), _record(2.0, None), _record(3.0, "aaa")]
        windows = commit_windows(records)
        assert [window.label for window in windows] == ["unknown", "aaa"]
        assert len(windows[0].records) == 2

    def test_empty_ledger_has_no_windows(self):
        assert commit_windows([]) == []


class TestTimeWindows:
    def test_buckets_align_to_width(self):
        records = [
            _record(10.0, None),
            _record(95.0, None),
            _record(105.0, None),
        ]
        windows = time_windows(records, width_seconds=100.0)
        assert len(windows) == 2
        assert len(windows[0].records) == 2  # ts 10 and 95
        assert len(windows[1].records) == 1  # ts 105

    def test_gap_buckets_are_not_emitted(self):
        records = [_record(10.0, None), _record(1000.0, None)]
        windows = time_windows(records, width_seconds=100.0)
        assert len(windows) == 2
        assert [window.index for window in windows] == [0, 1]

    def test_labels_are_utc_bucket_starts(self):
        windows = time_windows([_record(86400.0, None)], width_seconds=86400.0)
        assert windows[0].label == "1970-01-02T00:00:00Z"

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            time_windows([_record(1.0, None)], width_seconds=0.0)


class TestPartitionLedger:
    def test_dispatches_both_axes(self):
        records = [_record(1.0, "aaa")]
        assert partition_ledger(records, by="commit")[0].kind == "commit"
        assert partition_ledger(records, by="time")[0].kind == "time"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown window axis"):
            partition_ledger([], by="phase-of-moon")


class TestWindowItems:
    def test_item_rate_counts_member_hits(self):
        window = Window(
            label="aaa",
            kind="commit",
            index=0,
            records=tuple(
                [
                    _record(1.0, "aaa", ["k1"]),
                    _record(2.0, "aaa", ["k2"]),
                    _record(3.0, "aaa", []),
                    _record(4.0, "aaa", ["k1", "k2"]),
                ]
            ),
        )
        assert window.item_rate(("fp:k1",)) == pytest.approx(0.5)
        # any-member semantics: a run counts once however many fire
        assert window.item_rate(("fp:k1", "fp:k2")) == pytest.approx(0.75)
        assert window.item_rate(("fp:absent",)) == 0.0

    def test_empty_window_rate_is_zero(self):
        window = Window(label="x", kind="commit", index=0, records=())
        assert window.item_rate(("fp:k1",)) == 0.0


class TestClusterEvolution:
    def _windows(self, *window_keys: list[list[str]]) -> list[Window]:
        windows = []
        ts = 0.0
        for index, runs in enumerate(window_keys):
            records = []
            for keys in runs:
                records.append(_record(ts, f"commit{index}", keys))
                ts += 1.0
            windows.append(
                Window(
                    label=f"commit{index}",
                    kind="commit",
                    index=index,
                    records=tuple(records),
                )
            )
        return windows

    def test_birth_requires_members_unseen_before(self):
        windows = self._windows(
            [["old"], ["old"]],
            [["old"], ["fresh"], ["fresh"]],
        )
        events = cluster_evolution(windows)
        births = [event for event in events if event.kind == "birth"]
        assert [event.cluster for event in births] == [("fp:fresh",)]

    def test_no_birth_when_member_was_loose_before(self):
        # "fresh" failed once in the before window without clustering
        # into anything there — that is not a new failure mode
        windows = self._windows(
            [["old"], ["old"], ["fresh"]],
            [["fresh"], ["fresh"]],
        )
        events = cluster_evolution(windows)
        assert not any(event.kind == "birth" for event in events)

    def test_death_requires_members_gone_after(self):
        windows = self._windows(
            [["doomed"], ["doomed"]],
            [["other"], ["other"]],
        )
        events = cluster_evolution(windows)
        deaths = [event for event in events if event.kind == "death"]
        assert [event.cluster for event in deaths] == [("fp:doomed",)]
        births = [event for event in events if event.kind == "birth"]
        assert [event.cluster for event in births] == [("fp:other",)]

    def test_merge_lists_the_fused_parents(self):
        # before: a and b fail in disjoint runs (two clusters);
        # after: always together (one cluster)
        windows = self._windows(
            [["a"], ["a"], ["b"], ["b"]],
            [["a", "b"], ["a", "b"]],
        )
        events = cluster_evolution(windows)
        merges = [event for event in events if event.kind == "merge"]
        assert len(merges) == 1
        assert merges[0].cluster == ("fp:a", "fp:b")
        assert merges[0].related == (("fp:a",), ("fp:b",))

    def test_split_lists_the_fragments(self):
        windows = self._windows(
            [["a", "b"], ["a", "b"]],
            [["a"], ["a"], ["b"], ["b"]],
        )
        events = cluster_evolution(windows)
        splits = [event for event in events if event.kind == "split"]
        assert len(splits) == 1
        assert splits[0].cluster == ("fp:a", "fp:b")
        assert splits[0].related == (("fp:a",), ("fp:b",))

    def test_boundary_labels_and_ordering(self):
        windows = self._windows(
            [["a"]],
            [["a"], ["b"], ["b"]],
            [["a"]],
        )
        events = cluster_evolution(windows)
        assert [event.boundary for event in events] == [
            ("commit0", "commit1"),
            ("commit1", "commit2"),
        ]
        assert [event.kind for event in events] == ["birth", "death"]

    def test_shuffle_invariance_of_events(self):
        records = []
        for i in range(8):
            commit = "aaa" if i < 4 else "bbb"
            keys = ["x"] if i % 2 == 0 else ["y"]
            records.append(_record(float(i), commit, keys))
        baseline = cluster_evolution(commit_windows(records))
        shuffled = list(records)
        random.Random(3).shuffle(shuffled)
        assert cluster_evolution(commit_windows(shuffled)) == baseline

    def test_per_window_clustering_shapes(self):
        windows = self._windows([["a"]], [["b"]])
        per_window = cluster_windows(windows)
        assert len(per_window) == 2
        assert per_window[0][0].members == ("fp:a",)
        assert per_window[1][0].members == ("fp:b",)
