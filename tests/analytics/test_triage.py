"""Tests for auto-triage: provenance → reproduction → shrink → delta.

The acceptance bar (ISSUE 10): a seeded novel fingerprint must
reproduce from its ``(round, slot, input_id)`` checkpoint coordinates
and yield a baseline delta that, once applied, silences the novelty.
"""

import json

import pytest

from repro.analytics.triage import (
    TriageError,
    novel_keys_from_jsonl,
    triage_checkpoint,
    write_triage,
)
from repro.fuzz.dedup import Baseline
from repro.fuzz.scheduler import CampaignState, FuzzConfig, run_round
from repro.fuzz.shrink import input_size


class TestNovelKeysFromJsonl:
    def test_reads_only_novel_keys(self, seeded_campaign):
        keys = novel_keys_from_jsonl(seeded_campaign["fingerprints"])
        assert keys == [seeded_campaign["held_out"]]

    def test_bad_json_line_reports_position(self, tmp_path):
        path = tmp_path / "fp.jsonl"
        path.write_text('{"key": "a", "novel": true}\nnot json\n')
        with pytest.raises(TriageError, match=r"fp\.jsonl:2"):
            novel_keys_from_jsonl(str(path))

    def test_keyless_record_rejected(self, tmp_path):
        path = tmp_path / "fp.jsonl"
        path.write_text('{"novel": true}\n')
        with pytest.raises(TriageError, match="not a fingerprint record"):
            novel_keys_from_jsonl(str(path))

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(TriageError):
            novel_keys_from_jsonl(str(tmp_path / "absent.jsonl"))


class TestTriageCheckpoint:
    def test_novel_key_reproduces_from_provenance(self, seeded_campaign):
        report, delta, proposed = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            fingerprints_path=seeded_campaign["fingerprints"],
            shrink=False,
        )
        assert [f.key for f in report.findings] == [
            seeded_campaign["held_out"]
        ]
        finding = report.findings[0]
        assert finding.reproduced
        assert report.all_reproduced
        # provenance coordinates point into the recorded batch
        round_index, slot, input_id = finding.provenance
        assert round_index == 0
        assert 0 <= slot < 8
        assert finding.seam in ("spark->hive", "hive->spark", "spark<->spark")

    def test_delta_and_proposed_shapes(self, seeded_campaign):
        baseline = Baseline.load(seeded_campaign["baseline"])
        report, delta, proposed = triage_checkpoint(
            seeded_campaign["checkpoint"],
            baseline,
            shrink=False,
        )
        held_out = seeded_campaign["held_out"]
        assert set(delta.fingerprints) == {held_out}
        assert proposed.keys == set(seeded_campaign["all_keys"])
        assert report.baseline_before == len(baseline)
        assert report.baseline_after == len(proposed)
        # the input baseline object is not mutated
        assert held_out not in baseline

    def test_applied_delta_silences_the_novelty(self, seeded_campaign):
        # the round-trip the nightly auto-triage step relies on: re-run
        # the same campaign batch against the proposed baseline and the
        # novel set must be empty
        _, _, proposed = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            shrink=False,
        )
        config = FuzzConfig(seed=3, budget=8, batch=8, shrink=False)
        state = CampaignState.fresh(config)
        outcome = run_round(state, proposed)
        assert outcome.novel_keys == ()

    def test_shrink_never_grows_the_witness(self, seeded_campaign):
        report, _, _ = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            shrink=True,
        )
        finding = report.findings[0]
        assert input_size(finding.minimal) <= input_size(finding.witness)

    def test_without_jsonl_uses_checkpoint_novel_flags(
        self, seeded_campaign
    ):
        report, _, _ = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            shrink=False,
        )
        assert [f.key for f in report.findings] == [
            seeded_campaign["held_out"]
        ]

    def test_foreign_jsonl_key_is_rejected(
        self, seeded_campaign, tmp_path
    ):
        path = tmp_path / "foreign.jsonl"
        path.write_text(
            json.dumps({"key": "not|a|real|key", "novel": True}) + "\n"
        )
        with pytest.raises(TriageError, match="never witnessed"):
            triage_checkpoint(
                seeded_campaign["checkpoint"],
                Baseline.empty(),
                fingerprints_path=str(path),
                shrink=False,
            )

    def test_report_text_names_coordinates(self, seeded_campaign):
        report, _, _ = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            shrink=False,
        )
        text = report.to_text()
        assert seeded_campaign["held_out"] in text
        assert "provenance: round 0" in text
        assert "[ok]" in text


class TestWriteTriage:
    def test_artifact_set_round_trips(self, seeded_campaign, tmp_path):
        report, delta, proposed = triage_checkpoint(
            seeded_campaign["checkpoint"],
            Baseline.load(seeded_campaign["baseline"]),
            shrink=False,
        )
        out_dir = str(tmp_path / "triage-out")
        paths = write_triage(out_dir, report, delta, proposed)
        assert set(paths) == {"report", "summary", "delta", "proposed"}

        reloaded_delta = Baseline.load(paths["delta"])
        assert reloaded_delta.keys == {seeded_campaign["held_out"]}
        reloaded_proposed = Baseline.load(paths["proposed"])
        assert reloaded_proposed.keys == set(seeded_campaign["all_keys"])

        with open(paths["report"], encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["kind"] == "triage-report"
        assert payload["all_reproduced"] is True
        assert payload["novel"] == 1
        with open(paths["summary"], encoding="utf-8") as handle:
            assert seeded_campaign["held_out"] in handle.read()
