"""Tests for the analytics CLI surface and status-server endpoint.

``repro analyze`` / ``repro triage`` exit codes, the ``/analytics``
endpoint, and the ``repro status`` drift panel.
"""

import json

import pytest

from repro import cli


def _record(ts: float, commit: str, keys: list[str]) -> dict:
    return {
        "schema_version": 1,
        "kind": "crosstest",
        "ts": ts,
        "run": {},
        "results": {"fingerprints": keys},
        "env": {"git": {"commit": commit}},
    }


@pytest.fixture
def drifting_ledger(tmp_path):
    """Two commits; the fingerprint's rate jumps 0.2 -> 1.0."""
    path = tmp_path / "ledger.jsonl"
    records = []
    for i in range(5):
        keys = ["k|spark_hive|parquet"] if i == 0 else []
        records.append(_record(100.0 + i, "aaa1111", keys))
    for i in range(5):
        records.append(_record(200.0 + i, "bbb2222", ["k|spark_hive|parquet"]))
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    return str(path)


@pytest.fixture
def stable_ledger(tmp_path):
    path = tmp_path / "stable.jsonl"
    records = [
        _record(100.0 + i, "aaa1111" if i < 3 else "bbb2222", ["k|g|f"])
        for i in range(6)
    ]
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    return str(path)


class TestAnalyzeCommand:
    def test_text_report_names_the_drift(self, drifting_ledger, capsys):
        assert cli.main(["analyze", "--ledger", drifting_ledger]) == 0
        out = capsys.readouterr().out
        assert "2 commit window(s)" in out
        assert "REGRESSED" in out
        assert "aaa1111 -> bbb2222" in out
        assert "20% -> 100%" in out

    def test_json_report_shape(self, drifting_ledger, capsys):
        assert (
            cli.main(["analyze", "--ledger", drifting_ledger, "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["by"] == "commit"
        assert len(payload["windows"]) == 2
        assert len(payload["drifts"]) == 1
        assert payload["drifts"][0]["direction"] == "regressed"

    def test_gate_exits_five_on_drift(self, drifting_ledger):
        assert (
            cli.main(
                ["analyze", "--ledger", drifting_ledger, "--gate", "--quiet"]
            )
            == 5
        )

    def test_gate_passes_a_stable_ledger(self, stable_ledger):
        assert (
            cli.main(
                ["analyze", "--ledger", stable_ledger, "--gate", "--quiet"]
            )
            == 0
        )

    def test_time_axis(self, drifting_ledger, capsys):
        assert (
            cli.main(
                [
                    "analyze",
                    "--ledger", drifting_ledger,
                    "--by", "time",
                    "--window-seconds", "100",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["by"] == "time"
        assert len(payload["windows"]) == 2

    def test_bad_min_delta_exits_two(self, drifting_ledger):
        assert (
            cli.main(
                ["analyze", "--ledger", drifting_ledger, "--min-delta", "2"]
            )
            == 2
        )

    def test_bad_window_seconds_exits_two(self, drifting_ledger):
        assert (
            cli.main(
                [
                    "analyze",
                    "--ledger", drifting_ledger,
                    "--by", "time",
                    "--window-seconds", "0",
                ]
            )
            == 2
        )

    def test_schema_drift_exits_two(self, tmp_path):
        path = tmp_path / "drifted.jsonl"
        path.write_text(json.dumps({"schema_version": 99, "ts": 1.0}) + "\n")
        assert cli.main(["analyze", "--ledger", str(path)]) == 2

    def test_torn_tail_tolerated(self, drifting_ledger):
        with open(drifting_ledger, "a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')
        assert cli.main(["analyze", "--ledger", drifting_ledger]) == 0

    def test_missing_ledger_is_empty_not_an_error(self, tmp_path, capsys):
        assert (
            cli.main(
                ["analyze", "--ledger", str(tmp_path / "absent.jsonl")]
            )
            == 0
        )
        assert "0 runs" in capsys.readouterr().out


class TestTriageCommand:
    def test_round_trip_exits_zero_and_writes_artifacts(
        self, seeded_campaign, tmp_path, capsys
    ):
        out_dir = str(tmp_path / "out")
        code = cli.main(
            [
                "triage",
                "--checkpoint", seeded_campaign["checkpoint"],
                "--fingerprints", seeded_campaign["fingerprints"],
                "--baseline", seeded_campaign["baseline"],
                "--out-dir", out_dir,
                "--no-shrink",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert seeded_campaign["held_out"] in out
        assert "baseline delta" in out
        from repro.fuzz.dedup import Baseline

        delta = Baseline.load(f"{out_dir}/baseline-delta.json")
        assert delta.keys == {seeded_campaign["held_out"]}

    def test_json_output(self, seeded_campaign, tmp_path, capsys):
        code = cli.main(
            [
                "triage",
                "--checkpoint", seeded_campaign["checkpoint"],
                "--baseline", seeded_campaign["baseline"],
                "--out-dir", str(tmp_path / "out"),
                "--no-shrink",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_reproduced"] is True
        assert payload["novel"] == 1
        assert "artifacts" in payload

    def test_missing_checkpoint_exits_two(self, tmp_path):
        assert (
            cli.main(
                [
                    "triage",
                    "--checkpoint", str(tmp_path / "absent.json"),
                    "--out-dir", str(tmp_path / "out"),
                ]
            )
            == 2
        )

    def test_bad_baseline_path_exits_two(self, seeded_campaign, tmp_path):
        assert (
            cli.main(
                [
                    "triage",
                    "--checkpoint", seeded_campaign["checkpoint"],
                    "--baseline", str(tmp_path / "absent.json"),
                    "--out-dir", str(tmp_path / "out"),
                ]
            )
            == 2
        )

    def test_foreign_fingerprints_exit_two(
        self, seeded_campaign, tmp_path
    ):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text(
            json.dumps({"key": "no|such|key", "novel": True}) + "\n"
        )
        assert (
            cli.main(
                [
                    "triage",
                    "--checkpoint", seeded_campaign["checkpoint"],
                    "--fingerprints", str(foreign),
                    "--out-dir", str(tmp_path / "out"),
                ]
            )
            == 2
        )


class TestStatusDriftPanel:
    def test_two_commit_ledger_shows_drift_panel(
        self, drifting_ledger, capsys
    ):
        assert cli.main(["status", "--ledger", drifting_ledger]) == 0
        out = capsys.readouterr().out
        assert "commit drift: 1 flagged cluster(s)" in out
        assert "regressed at aaa1111 -> bbb2222" in out

    def test_stable_ledger_says_so(self, stable_ledger, capsys):
        assert cli.main(["status", "--ledger", stable_ledger]) == 0
        assert "commit drift: none" in capsys.readouterr().out

    def test_single_commit_ledger_has_no_panel(self, tmp_path, capsys):
        path = tmp_path / "one.jsonl"
        path.write_text(
            json.dumps(_record(1.0, "aaa", ["k|g|f"]), sort_keys=True) + "\n"
        )
        assert cli.main(["status", "--ledger", str(path)]) == 0
        assert "commit drift" not in capsys.readouterr().out

    def test_status_json_carries_analytics(self, drifting_ledger, capsys):
        assert (
            cli.main(["status", "--ledger", drifting_ledger, "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["analytics"]["drifts"]) == 1


class TestAnalyticsEndpoint:
    def test_payload_shape(self, drifting_ledger):
        from repro.obs import ObsServer

        # .start() before .stop(): shutdown() blocks unless the serve
        # loop is running
        server = ObsServer(ledger_path=drifting_ledger, port=0).start()
        try:
            assert "/analytics" in server.ENDPOINTS
            payload = server.payload("/analytics")
            assert payload["total_runs"] == 10
            assert len(payload["drifts"]) == 1
            assert payload["drifts"][0]["direction"] == "regressed"
        finally:
            server.stop()

    def test_served_over_http(self, drifting_ledger):
        import urllib.request

        from repro.obs import ObsServer

        server = ObsServer(ledger_path=drifting_ledger, port=0).start()
        try:
            with urllib.request.urlopen(server.url("/analytics")) as reply:
                payload = json.loads(reply.read())
            assert len(payload["drifts"]) == 1
            with urllib.request.urlopen(server.url("/")) as reply:
                index = json.loads(reply.read())
            assert "/analytics" in index["endpoints"]
        finally:
            server.stop()
