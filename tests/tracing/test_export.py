"""JSONL and Chrome trace exporters."""

import json

from repro.tracing.core import Tracer, event, span
from repro.tracing.export import (
    read_jsonl,
    read_jsonl_dir,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _sample_spans():
    with Tracer(trace_id="sample") as tracer:
        with span(
            "spark.sql", system="spark", operation="sql"
        ):
            with span(
                "spark.serde.encode",
                system="spark",
                peer_system="serde",
                operation="encode",
                boundary="spark->serde",
            ):
                event("plan_cache.miss", conf_fingerprint="()")
    return tracer.finished


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "trace.jsonl"
        write_jsonl(spans, str(path))
        # timing floats are rounded on export, so compare the payloads
        assert [s.to_json() for s in read_jsonl(str(path))] == [
            s.to_json() for s in spans
        ]

    def test_one_json_object_per_line(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "trace.jsonl"
        write_jsonl(spans, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(spans)
        for line in lines:
            json.loads(line)

    def test_read_dir_aggregates_sorted_jsonl_files(self, tmp_path):
        first = _sample_spans()
        second = _sample_spans()
        write_jsonl(first, str(tmp_path / "a.jsonl"))
        write_jsonl(second, str(tmp_path / "b.jsonl"))
        (tmp_path / "ignored.chrome.json").write_text("{}")
        merged = read_jsonl_dir(str(tmp_path))
        assert [s.to_json() for s in merged] == [
            s.to_json() for s in first + second
        ]


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(_sample_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {evt["ph"] for evt in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_complete_events_carry_boundary_args(self):
        doc = to_chrome_trace(_sample_spans())
        encode = next(
            evt
            for evt in doc["traceEvents"]
            if evt["ph"] == "X" and evt["name"] == "spark.serde.encode"
        )
        assert encode["cat"] == "spark->serde"
        assert encode["args"]["boundary"] == "spark->serde"
        assert encode["args"]["event:plan_cache.miss"] == {
            "conf_fingerprint": "()"
        }
        assert encode["ts"] >= 0.0
        assert encode["dur"] >= 0.0

    def test_one_pid_per_trace_one_tid_per_system(self):
        with Tracer(trace_id="t1") as one:
            with span("a", system="spark"):
                pass
        with Tracer(trace_id="t2") as two:
            with span("b", system="hive"):
                pass
        doc = to_chrome_trace(one.finished + two.finished)
        xs = [evt for evt in doc["traceEvents"] if evt["ph"] == "X"]
        assert len({evt["pid"] for evt in xs}) == 2
        assert len({evt["tid"] for evt in xs}) == 2
        names = {
            evt["args"]["name"]
            for evt in doc["traceEvents"]
            if evt["ph"] == "M" and evt["name"] == "process_name"
        }
        assert names == {"t1", "t2"}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(_sample_spans(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_empty_input(self):
        assert to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
