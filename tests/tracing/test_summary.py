"""Per-boundary summaries and the AbsentPolicy routing (satellite 2)."""

import pytest

from repro.metrics import AbsentPolicy, MetricError
from repro.tracing.core import Tracer, span
from repro.tracing.summary import (
    KNOWN_BOUNDARIES,
    KNOWN_STAGES,
    scrape_spans,
    summarize_spans,
    summarize_stages,
    summary_lines,
)


def _spans_crossing(*boundaries, fail=()):
    with Tracer(trace_id="t") as tracer:
        for boundary in boundaries:
            writer, _, reader = boundary.partition("->")
            try:
                with span(
                    f"{writer}.{reader}.op",
                    system=writer,
                    peer_system=reader,
                    operation="op",
                    boundary=boundary,
                ):
                    if boundary in fail:
                        raise RuntimeError("seam broke")
            except RuntimeError:
                pass
        with span("internal.bookkeeping", system="crosstest"):
            pass  # no boundary: must not count as a crossing
    return tracer.finished


class TestScrape:
    def test_counts_only_boundary_spans(self):
        spans = _spans_crossing("spark->hdfs", "spark->hdfs", "hive->serde")
        registry = scrape_spans(spans)
        assert registry.read("boundary_spans:spark->hdfs") == 2
        assert registry.read("boundary_spans:hive->serde") == 1

    def test_errors_counted_separately(self):
        spans = _spans_crossing(
            "am->rm", "am->rm", fail=("am->rm",)
        )
        registry = scrape_spans(spans)
        assert registry.read("boundary_spans:am->rm") == 2
        assert registry.read("boundary_errors:am->rm") == 2


class TestAbsentPolicy:
    def test_absent_reads_none_not_zero(self):
        spans = _spans_crossing("spark->hdfs")
        rows = {
            row.boundary: row
            for row in summarize_spans(spans, AbsentPolicy.ABSENT)
        }
        assert rows["hive->hbase"].absent
        assert rows["hive->hbase"].count is None
        assert rows["spark->hdfs"].count == 1

    def test_zero_policy_reads_zero(self):
        rows = {
            row.boundary: row
            for row in summarize_spans(
                _spans_crossing("spark->hdfs"), AbsentPolicy.ZERO
            )
        }
        assert rows["hive->hbase"].count == 0
        assert not rows["hive->hbase"].absent

    def test_error_policy_refuses_the_scrape(self):
        with pytest.raises(MetricError):
            summarize_spans(_spans_crossing("spark->hdfs"), AbsentPolicy.ERROR)

    def test_error_policy_passes_when_all_boundaries_crossed(self):
        spans = _spans_crossing(*KNOWN_BOUNDARIES)
        rows = summarize_spans(spans, AbsentPolicy.ERROR)
        assert all(row.count == 1 for row in rows)


class TestSummaries:
    def test_known_boundaries_always_reported_in_order(self):
        rows = summarize_spans(_spans_crossing("hive->hdfs"))
        assert tuple(row.boundary for row in rows) == KNOWN_BOUNDARIES

    def test_unknown_boundary_appended_after_known(self):
        rows = summarize_spans(_spans_crossing("zk->quorum"))
        assert [row.boundary for row in rows] == [
            *KNOWN_BOUNDARIES,
            "zk->quorum",
        ]
        assert rows[-1].count == 1

    def test_quantiles_cover_observed_latencies(self):
        spans = _spans_crossing(*["spark->serde"] * 20)
        row = next(
            r
            for r in summarize_spans(spans)
            if r.boundary == "spark->serde"
        )
        durations = sorted(
            s.duration_s for s in spans if s.boundary == "spark->serde"
        )
        assert row.p50_s <= row.p99_s
        assert durations[0] <= row.p99_s


def _stage_spans(*stages, fail=()):
    """Spans shaped exactly like the harness's per-stage emissions."""
    with Tracer(trace_id="t") as tracer:
        for index, stage in enumerate(stages):
            try:
                with span(
                    f"crosstest.{stage}",
                    system="crosstest",
                    operation=stage,
                ):
                    if index in fail:
                        raise RuntimeError("stage broke")
            except RuntimeError:
                pass
    return tracer.finished


class TestStageSummaries:
    def test_counts_and_errors_per_stage(self):
        spans = _stage_spans(
            "create", "write", "write", "read", fail=(2,)
        )
        rows = {row.stage: row for row in summarize_stages(spans)}
        assert rows["create"].count == 1
        assert rows["write"].count == 2
        assert rows["write"].errors == 1
        assert rows["read"].count == 1
        assert rows["read"].errors == 0

    def test_stage_order_is_fixed(self):
        rows = summarize_stages(_stage_spans("read", "create"))
        assert tuple(row.stage for row in rows) == KNOWN_STAGES

    def test_reset_reads_absent_under_default_policy(self):
        # reset is deliberately untraced; a real harness trace never
        # contains it and the summary must say ABSENT, not 0
        rows = {
            row.stage: row
            for row in summarize_stages(
                _stage_spans("create", "write", "read")
            )
        }
        assert rows["reset"].absent
        assert rows["reset"].count is None

    def test_zero_policy_reads_reset_as_zero(self):
        rows = {
            row.stage: row
            for row in summarize_stages(
                _stage_spans("create"), AbsentPolicy.ZERO
            )
        }
        assert rows["reset"].count == 0
        assert not rows["reset"].absent

    def test_error_policy_refuses_a_real_harness_trace(self):
        with pytest.raises(MetricError):
            summarize_stages(
                _stage_spans("create", "write", "read"), AbsentPolicy.ERROR
            )

    def test_lookalike_spans_are_not_stage_spans(self):
        # same operation, wrong system or wrong name shape: the scrape
        # must only count the harness's own crosstest.<stage> spans
        with Tracer(trace_id="t") as tracer:
            with span("spark.create", system="spark", operation="create"):
                pass
            with span(
                "crosstest.bookkeeping",
                system="crosstest",
                operation="create",
            ):
                pass
        rows = {row.stage: row for row in summarize_stages(tracer.finished)}
        assert rows["create"].absent

    def test_quantiles_ordered(self):
        spans = _stage_spans(*["write"] * 20)
        row = next(
            r for r in summarize_stages(spans) if r.stage == "write"
        )
        assert 0.0 <= row.p50_s <= row.p99_s


class TestStageRendering:
    def test_stage_table_rendered_when_stage_spans_exist(self):
        spans = _stage_spans("create", "write", "read")
        lines = summary_lines(spans)
        assert "[trial stages]" in lines
        stage_block = lines[lines.index("[trial stages]"):]
        create_line = next(
            line for line in stage_block if line.startswith("create")
        )
        assert "us" in create_line
        reset_line = next(
            line for line in stage_block if line.startswith("reset")
        )
        assert "ABSENT" in reset_line

    def test_no_stage_table_without_stage_spans(self):
        lines = summary_lines(_spans_crossing("spark->hdfs"))
        assert "[trial stages]" not in lines


class TestRendering:
    def test_absent_rows_render_as_absent(self):
        lines = summary_lines(_spans_crossing("spark->metastore"))
        body = "\n".join(lines)
        assert "ABSENT" in body
        hbase_line = next(l for l in lines if l.startswith("hive->hbase"))
        assert "ABSENT" in hbase_line
        assert "0" not in hbase_line.split("hive->hbase", 1)[1]

    def test_counted_rows_render_quantiles(self):
        lines = summary_lines(_spans_crossing("spark->metastore"))
        row = next(l for l in lines if l.startswith("spark->metastore"))
        assert row.count("us") == 2  # p50 and p99 columns

    def test_trailer_states_totals_and_policy(self):
        spans = _spans_crossing("spark->hdfs", "hive->hdfs")
        lines = summary_lines(spans, AbsentPolicy.ABSENT)
        # 2 boundary spans + 1 internal span
        assert lines[-1] == (
            "3 spans total, 2 boundary crossings, absent_policy=absent"
        )
