"""The span/tracer substrate: nesting, errors, isolation, pickling."""

import pickle
import threading

import pytest

from repro.tracing.core import (
    Span,
    Tracer,
    current_span,
    current_tracer,
    event,
    span,
    tracing_enabled,
)


class TestDisabledPath:
    def test_span_is_shared_noop_when_off(self):
        first = span("anything", system="spark")
        second = span("else", boundary="spark->hdfs")
        assert first is second  # the shared no-op singleton

    def test_noop_context_yields_none(self):
        with span("x") as sp:
            assert sp is None

    def test_event_is_silent_when_off(self):
        event("plan_cache.hit", key="value")  # must not raise

    def test_introspection_when_off(self):
        assert not tracing_enabled()
        assert current_tracer() is None
        assert current_span() is None


class TestSpanRecording:
    def test_span_records_into_active_tracer(self):
        with Tracer() as tracer:
            with span("hive.execute", system="hive", operation="execute"):
                pass
        assert len(tracer.finished) == 1
        recorded = tracer.finished[0]
        assert recorded.name == "hive.execute"
        assert recorded.system == "hive"
        assert recorded.status == "ok"
        assert recorded.duration_s >= 0.0

    def test_nesting_sets_parent_ids(self):
        with Tracer() as tracer:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                with span("sibling") as sibling:
                    assert sibling.parent_id == outer.span_id
            assert outer.parent_id is None
        # children finish before parents
        assert [s.name for s in tracer.finished] == [
            "inner",
            "sibling",
            "outer",
        ]

    def test_trace_id_stamped_on_every_span(self):
        with Tracer(trace_id="plan/fmt/7") as tracer:
            with span("a"):
                with span("b"):
                    pass
        assert {s.trace_id for s in tracer.finished} == {"plan/fmt/7"}

    def test_exception_marks_span_error_and_propagates(self):
        with Tracer() as tracer:
            with pytest.raises(ValueError, match="boom"):
                with span("create"):
                    raise ValueError("boom")
        recorded = tracer.finished[0]
        assert recorded.status == "error"
        assert recorded.error == "ValueError: boom"

    def test_event_attaches_to_innermost_span(self):
        with Tracer() as tracer:
            with span("outer"):
                with span("inner"):
                    event("plan_cache.hit", conf="x")
        inner = next(s for s in tracer.finished if s.name == "inner")
        outer = next(s for s in tracer.finished if s.name == "outer")
        assert [e.name for e in inner.events] == ["plan_cache.hit"]
        assert inner.events[0].attributes == {"conf": "x"}
        assert outer.events == []

    def test_boundary_and_peer_recorded(self):
        with Tracer() as tracer:
            with span(
                "spark.metastore.resolve",
                system="spark",
                peer_system="hive-metastore",
                operation="resolve",
                boundary="spark->metastore",
            ):
                pass
        recorded = tracer.finished[0]
        assert recorded.boundary == "spark->metastore"
        assert recorded.peer_system == "hive-metastore"


class TestIsolation:
    def test_fresh_tracer_does_not_adopt_outer_parent(self):
        with Tracer() as outer_tracer:
            with span("outer"):
                with Tracer() as inner_tracer:
                    with span("inner") as inner:
                        assert inner.parent_id is None
                # the outer stack is restored after the inner tracer exits
                assert current_tracer() is outer_tracer
        assert [s.name for s in inner_tracer.finished] == ["inner"]
        assert [s.name for s in outer_tracer.finished] == ["outer"]

    def test_other_threads_do_not_record(self):
        seen = []

        def probe():
            seen.append(tracing_enabled())
            with span("elsewhere") as sp:
                seen.append(sp)

        with Tracer() as tracer:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        # contextvars do not leak into new threads: the worker saw no
        # tracer and recorded nothing
        assert seen == [False, None]
        assert tracer.finished == []

    def test_disabled_again_after_exit(self):
        with Tracer():
            assert tracing_enabled()
        assert not tracing_enabled()
        with span("after") as sp:
            assert sp is None


class TestSerialization:
    def _make_span(self):
        with Tracer(trace_id="t") as tracer:
            with span(
                "x",
                system="spark",
                peer_system="serde",
                operation="encode",
                boundary="spark->serde",
                attributes={"fmt": "orc"},
            ):
                event("orc.positional_rename", prefix="_col")
        return tracer.finished[0]

    def test_pickle_round_trip(self):
        original = self._make_span()
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original

    def test_json_round_trip(self):
        original = self._make_span()
        clone = Span.from_json(original.to_json())
        assert clone.name == original.name
        assert clone.boundary == original.boundary
        assert clone.attributes == original.attributes
        assert [e.name for e in clone.events] == ["orc.positional_rename"]

    def test_error_json_round_trip(self):
        with Tracer() as tracer:
            try:
                with span("y"):
                    raise KeyError("gone")
            except KeyError:
                pass
        clone = Span.from_json(tracer.finished[0].to_json())
        assert clone.status == "error"
        assert "KeyError" in clone.error
