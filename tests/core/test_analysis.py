"""The analysis engine must regenerate every table and finding."""

import pytest

from repro.core.analysis import (
    cbs_statistics,
    compute_findings,
    incident_statistics,
    table1_interactions,
    table2_planes,
    table3_symptoms,
    table4_data_properties,
    table5_abstractions,
    table6_patterns,
    table7_config_patterns,
    table8_control_patterns,
    table9_fixes,
)
from repro.dataset.cbs import load_cbs_issues
from repro.dataset.incidents import load_incidents
from repro.dataset.opensource import load_failures


@pytest.fixture(scope="module")
def failures():
    return load_failures()


class TestTables:
    def test_table1(self, failures):
        table = table1_interactions(failures)
        assert table.total == 120
        assert table.rows[0][1] == 26  # Spark->Hive is the largest pair

    def test_table2(self, failures):
        assert table2_planes(failures).as_dict() == {
            "Control": 20, "Data": 61, "Management": 39,
        }

    def test_table3(self, failures):
        table = table3_symptoms(failures)
        assert table.total == 120
        assert sum(count for _, count in table.rows) == 120
        assert ("[job] Job/task failure", 47) in table.rows

    def test_table4(self, failures):
        rows = table4_data_properties(failures).as_dict()
        assert rows["Address"] == 10
        assert rows["Schema"] == 32
        assert rows["  Structure"] == 14
        assert rows["  Value"] == 18
        assert rows["Custom property"] == 8
        assert rows["API semantics"] == 11

    def test_table5_matches_paper(self, failures):
        matrix = table5_abstractions(failures)
        assert matrix["Table"]["Total"] == 35
        assert matrix["File"]["Total"] == 18
        assert matrix["Stream"]["Total"] == 8
        assert matrix["KV Tuple"]["Total"] == 0
        assert matrix["Table"]["Value"] == 16
        assert matrix["File"]["Custom prop."] == 8

    def test_table6(self, failures):
        rows = table6_patterns(failures).as_dict()
        assert rows["Type confusion"] == 12
        assert rows["Wrong API assumptions"] == 18
        assert table6_patterns(failures).total == 61

    def test_table7(self, failures):
        table = table7_config_patterns(failures)
        assert table.total == 30
        assert table.as_dict()["Ignorance"] == 12

    def test_table8(self, failures):
        table = table8_control_patterns(failures)
        assert table.total == 20
        assert table.as_dict()["API semantic violation"] == 13

    def test_table9(self, failures):
        table = table9_fixes(failures)
        assert table.total == 120
        assert table.as_dict()["Interaction"] == 69

    def test_render_produces_text(self, failures):
        text = table2_planes(failures).render()
        assert "Table 2" in text and "Total" in text and "51%" in text


class TestStatistics:
    def test_incident_statistics(self):
        stats = incident_statistics(load_incidents())
        assert stats["csi"] == 11
        assert stats["csi_fraction"] == 0.2
        assert stats["median_duration_minutes"] == 106
        assert stats["impaired_external"] == 8
        assert stats["mention_interaction_fix"] == 4

    def test_cbs_statistics(self):
        stats = cbs_statistics(load_cbs_issues())
        assert stats["csi"] == 39
        assert stats["dependency"] == 15
        assert stats["not_cross_system"] == 51
        assert stats["control_plane_csi"] == 27


class TestFindings:
    @pytest.fixture(scope="class")
    def findings(self):
        return compute_findings(
            load_failures(), load_incidents(), load_cbs_issues()
        )

    def test_thirteen_findings(self, findings):
        assert [f.number for f in findings] == list(range(1, 14))

    def test_all_reproduce(self, findings):
        not_reproduced = [f.number for f in findings if not f.holds]
        assert not_reproduced == []

    def test_observed_values_present(self, findings):
        for finding in findings:
            assert finding.observed, f"finding {finding.number} is empty"

    def test_render(self, findings):
        assert "REPRODUCED" in findings[0].render()
