"""Tests for the CSIFailure record invariants and the taxonomy."""

import pytest

from repro.core.failure import CSIFailure
from repro.core.taxonomy import (
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Severity,
    Symptom,
    SymptomGroup,
)
from repro.errors import DatasetError


def make_failure(**overrides):
    base = dict(
        case_id="CSI-X",
        issue_id="TEST-1",
        upstream="Spark",
        downstream="Hive",
        interaction="Data (Hive tables)",
        plane=Plane.DATA,
        symptom=Symptom.JOB_TASK_FAILURE,
        severity=Severity.MAJOR,
        fix_pattern=FixPattern.CHECKING,
        fix_location=FixLocation.CONNECTOR,
        data_abstraction=DataAbstraction.TABLE,
        data_property=DataProperty.SCHEMA_VALUE,
        data_pattern=DataPattern.TYPE_CONFUSION,
    )
    base.update(overrides)
    return CSIFailure(**base)


class TestInvariants:
    def test_valid_data_case(self):
        failure = make_failure()
        assert failure.has_merged_fix
        assert failure.pair == ("Spark", "Hive")

    def test_data_case_needs_data_labels(self):
        with pytest.raises(DatasetError):
            make_failure(data_pattern=None)

    def test_mgmt_case_needs_kind(self):
        with pytest.raises(DatasetError):
            make_failure(
                plane=Plane.MANAGEMENT,
                data_abstraction=None,
                data_property=None,
                data_pattern=None,
            )

    def test_monitoring_case_needs_no_config_labels(self):
        failure = make_failure(
            plane=Plane.MANAGEMENT,
            mgmt_kind=MgmtKind.MONITORING,
            data_abstraction=None,
            data_property=None,
            data_pattern=None,
        )
        assert failure.mgmt_kind is MgmtKind.MONITORING

    def test_config_case_needs_labels(self):
        with pytest.raises(DatasetError):
            make_failure(
                plane=Plane.MANAGEMENT,
                mgmt_kind=MgmtKind.CONFIGURATION,
                data_abstraction=None,
                data_property=None,
                data_pattern=None,
            )

    def test_control_api_misuse_needs_kind(self):
        with pytest.raises(DatasetError):
            make_failure(
                plane=Plane.CONTROL,
                control_pattern=ControlPattern.API_SEMANTIC_VIOLATION,
                data_abstraction=None,
                data_property=None,
                data_pattern=None,
            )

    def test_control_state_pattern_is_fine_alone(self):
        failure = make_failure(
            plane=Plane.CONTROL,
            control_pattern=ControlPattern.STATE_RESOURCE_INCONSISTENCY,
            data_abstraction=None,
            data_property=None,
            data_pattern=None,
        )
        assert failure.api_misuse_kind is None

    def test_unfixed_case_has_no_location(self):
        with pytest.raises(DatasetError):
            make_failure(fix_pattern=FixPattern.OTHER)
        failure = make_failure(
            fix_pattern=FixPattern.OTHER, fix_location=None
        )
        assert not failure.has_merged_fix

    def test_fixed_case_needs_location(self):
        with pytest.raises(DatasetError):
            make_failure(fix_location=None)


class TestTaxonomy:
    def test_symptom_crashing_flags(self):
        crashing = [s for s in Symptom if s.crashing]
        assert Symptom.JOB_TASK_FAILURE in crashing
        assert Symptom.REDUCED_OBSERVABILITY not in crashing
        assert len(crashing) == 5

    def test_symptom_groups_cover_all(self):
        for symptom in Symptom:
            assert symptom.group in SymptomGroup

    def test_metadata_predicates(self):
        assert DataProperty.ADDRESS.is_typical_metadata
        assert DataProperty.SCHEMA_VALUE.is_typical_metadata
        assert DataProperty.CUSTOM_PROPERTY.is_metadata
        assert not DataProperty.CUSTOM_PROPERTY.is_typical_metadata
        assert not DataProperty.API_SEMANTICS.is_metadata

    def test_schema_predicate(self):
        assert DataProperty.SCHEMA_STRUCTURE.is_schema
        assert not DataProperty.ADDRESS.is_schema
