"""Unit tests for the asynchronous ResourceManager."""

import pytest

from repro.common.events import EventLoop
from repro.errors import SchedulerOverloadError
from repro.yarnlite.resourcemanager import ResourceManager
from repro.yarnlite.resources import Resource


@pytest.fixture
def setup():
    loop = EventLoop()
    rm = ResourceManager(loop, allocation_latency_ms=100)
    return loop, rm


class TestAllocation:
    def test_request_returns_immediately(self, setup):
        loop, rm = setup
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 3, Resource(1024, 1))
        assert allocated == []  # nothing yet: async
        assert rm.pending_requests == 3

    def test_containers_arrive_with_latency(self, setup):
        loop, rm = setup
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 3, Resource(1024, 1))
        loop.run_until(100)
        assert len(allocated) == 1
        loop.run_until(300)
        assert len(allocated) == 3
        assert rm.pending_requests == 0

    def test_allocation_time_scales_with_count(self, setup):
        loop, rm = setup
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 10, Resource(1024, 1))
        loop.run_to_completion()
        assert loop.now_ms == 10 * 100

    def test_requests_normalized(self, setup):
        loop, rm = setup
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 1, Resource(1500, 1))
        loop.run_to_completion()
        assert allocated[0].resource == Resource(2048, 1)  # min-alloc 1024

    def test_unique_container_ids(self, setup):
        loop, rm = setup
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 5, Resource(1024, 1))
        loop.run_to_completion()
        ids = [c.container_id for c in allocated]
        assert len(set(ids)) == 5

    def test_metrics_track_totals(self, setup):
        loop, rm = setup
        handle = rm.register(lambda cs: None)
        rm.request_containers(handle, 4, Resource(1024, 1))
        loop.run_to_completion()
        assert rm.total_requests_received == 4
        assert rm.total_containers_allocated == 4
        assert handle.requested_total == 4
        assert handle.allocated_total == 4


class TestCapacity:
    def test_exhausted_cluster_blocks_until_release(self):
        loop = EventLoop()
        rm = ResourceManager(
            loop,
            cluster_resource=Resource(2048, 4),
            allocation_latency_ms=10,
        )
        allocated = []
        handle = rm.register(allocated.extend)
        rm.request_containers(handle, 3, Resource(1024, 1))
        loop.run_until(1000)
        assert len(allocated) == 2  # third does not fit
        rm.release(allocated[0])
        loop.run_until(2000)
        assert len(allocated) == 3

    def test_available_accounting(self):
        loop = EventLoop()
        rm = ResourceManager(
            loop, cluster_resource=Resource(4096, 8), allocation_latency_ms=10
        )
        handle = rm.register(lambda cs: None)
        rm.request_containers(handle, 2, Resource(1024, 1))
        loop.run_to_completion()
        assert rm.available == Resource(2048, 6)


class TestOverloadGuard:
    def test_queue_cap_enforced(self):
        loop = EventLoop()
        rm = ResourceManager(loop, max_queued_requests=10)
        handle = rm.register(lambda cs: None)
        with pytest.raises(SchedulerOverloadError):
            rm.request_containers(handle, 11, Resource(1024, 1))

    def test_two_applications_share_queue(self, setup):
        loop, rm = setup
        a_containers, b_containers = [], []
        a = rm.register(a_containers.extend)
        b = rm.register(b_containers.extend)
        rm.request_containers(a, 1, Resource(1024, 1))
        rm.request_containers(b, 1, Resource(1024, 1))
        loop.run_to_completion()
        assert len(a_containers) == 1 and len(b_containers) == 1


class TestExportedMetrics:
    def test_pending_gauge_tracks_queue(self, setup):
        loop, rm = setup
        handle = rm.register(lambda cs: None)
        rm.request_containers(handle, 3, Resource(1024, 1))
        assert rm.metrics.read("yarn.pending_requests") == 3
        loop.run_to_completion()
        assert rm.metrics.read("yarn.pending_requests") == 0

    def test_allocated_counter(self, setup):
        loop, rm = setup
        handle = rm.register(lambda cs: None)
        rm.request_containers(handle, 2, Resource(1024, 1))
        loop.run_to_completion()
        assert rm.metrics.read("yarn.containers_allocated") == 2

    def test_available_memory_gauge(self):
        loop = EventLoop()
        rm = ResourceManager(
            loop, cluster_resource=Resource(4096, 8), allocation_latency_ms=10
        )
        assert rm.metrics.read("yarn.available_memory_mb") == 4096
        handle = rm.register(lambda cs: None)
        rm.request_containers(handle, 1, Resource(1024, 1))
        loop.run_to_completion()
        assert rm.metrics.read("yarn.available_memory_mb") == 3072

    def test_scrape_surface(self, setup):
        _, rm = setup
        assert set(rm.metrics.scrape()) == {
            "yarn.pending_requests",
            "yarn.containers_allocated",
            "yarn.available_memory_mb",
        }
