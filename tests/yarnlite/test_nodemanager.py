"""Unit tests for the NodeManager pmem monitor."""

import pytest

from repro.common.events import EventLoop
from repro.errors import ContainerKilledError
from repro.yarnlite.configs import PMEM_CHECK_ENABLED, YarnConf
from repro.yarnlite.nodemanager import NodeManager
from repro.yarnlite.resourcemanager import Container
from repro.yarnlite.resources import Resource


def make_nm(check_interval_ms=100, pmem_enabled=True):
    loop = EventLoop()
    conf = YarnConf()
    conf.set(PMEM_CHECK_ENABLED, pmem_enabled)
    return loop, NodeManager(loop, conf, check_interval_ms=check_interval_ms)


class TestPmemMonitor:
    def test_within_limit_survives(self):
        loop, nm = make_nm()
        running = nm.launch(Container(1, Resource(1024, 1)))
        nm.report_usage(1, 900)
        loop.run_until(1000)
        assert not running.killed
        assert nm.is_running(1)

    def test_over_limit_killed(self):
        loop, nm = make_nm()
        reasons = []
        running = nm.launch(Container(1, Resource(1024, 1)), on_kill=reasons.append)
        nm.report_usage(1, 1200)
        loop.run_until(1000)
        assert running.killed
        assert "beyond physical memory" in running.kill_reason
        assert reasons and not nm.is_running(1)
        assert nm.kills == [(1, running.kill_reason)]

    def test_kill_happens_at_check_interval(self):
        loop, nm = make_nm(check_interval_ms=500)
        running = nm.launch(Container(1, Resource(100, 1)))
        nm.report_usage(1, 200)
        loop.run_until(499)
        assert not running.killed
        loop.run_until(500)
        assert running.killed

    def test_disabled_monitor_never_kills(self):
        loop, nm = make_nm(pmem_enabled=False)
        running = nm.launch(Container(1, Resource(100, 1)))
        nm.report_usage(1, 10_000)
        loop.run_until(5000)
        assert not running.killed

    def test_report_after_kill_raises(self):
        loop, nm = make_nm()
        nm.launch(Container(1, Resource(100, 1)))
        nm.report_usage(1, 200)
        loop.run_until(200)
        with pytest.raises(ContainerKilledError):
            nm.report_usage(1, 50)

    def test_usage_can_drop_before_check(self):
        loop, nm = make_nm(check_interval_ms=100)
        running = nm.launch(Container(1, Resource(100, 1)))
        nm.report_usage(1, 200)
        nm.report_usage(1, 50)  # GC before the monitor looked
        loop.run_until(1000)
        assert not running.killed

    def test_multiple_containers_independent(self):
        loop, nm = make_nm()
        good = nm.launch(Container(1, Resource(1000, 1)))
        bad = nm.launch(Container(2, Resource(100, 1)))
        nm.report_usage(1, 500)
        nm.report_usage(2, 500)
        loop.run_until(1000)
        assert not good.killed and bad.killed
