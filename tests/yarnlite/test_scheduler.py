"""Unit tests for the two YARN schedulers and their config semantics."""

import pytest

from repro.errors import AllocationError
from repro.yarnlite.configs import (
    INCREMENT_MB,
    MAX_ALLOC_MB,
    MIN_ALLOC_MB,
    SCHEDULER_CLASS,
    YarnConf,
)
from repro.yarnlite.resources import Resource
from repro.yarnlite.scheduler import (
    CapacityScheduler,
    FairScheduler,
    scheduler_for,
)


@pytest.fixture
def conf():
    conf = YarnConf()
    conf.set(MIN_ALLOC_MB, 1024)
    conf.set(INCREMENT_MB, 512)
    return conf


class TestResource:
    def test_arithmetic(self):
        assert Resource(100, 1) + Resource(50, 2) == Resource(150, 3)
        assert Resource(100, 3) - Resource(40, 1) == Resource(60, 2)
        assert Resource(10, 1) * 3 == Resource(30, 3)

    def test_fits_within(self):
        assert Resource(100, 1).fits_within(Resource(100, 1))
        assert not Resource(101, 1).fits_within(Resource(100, 2))

    def test_round_up(self):
        assert Resource(1500, 1).round_up_to(Resource(1024, 1)) == Resource(2048, 1)
        assert Resource(1024, 1).round_up_to(Resource(1024, 1)) == Resource(1024, 1)


class TestNormalization:
    def test_capacity_uses_min_allocation(self, conf):
        scheduler = CapacityScheduler(conf)
        assert scheduler.normalize(Resource(1536, 1)) == Resource(2048, 1)

    def test_fair_uses_increment(self, conf):
        scheduler = FairScheduler(conf)
        assert scheduler.normalize(Resource(1536, 1)) == Resource(1536, 1)

    def test_schedulers_disagree_on_same_request(self, conf):
        # the FLINK-19141 mechanism in one assertion
        request = Resource(1100, 1)
        capacity = CapacityScheduler(conf).normalize(request)
        fair = FairScheduler(conf).normalize(request)
        assert capacity != fair

    def test_agreement_when_keys_align(self, conf):
        conf.set(INCREMENT_MB, 1024)
        request = Resource(1100, 1)
        assert CapacityScheduler(conf).normalize(request) == FairScheduler(
            conf
        ).normalize(request)


class TestValidation:
    def test_exceeding_max_rejected(self, conf):
        conf.set(MAX_ALLOC_MB, 4096)
        scheduler = CapacityScheduler(conf)
        with pytest.raises(AllocationError):
            scheduler.validate(Resource(8192, 1))

    def test_zero_memory_rejected(self, conf):
        with pytest.raises(AllocationError):
            CapacityScheduler(conf).validate(Resource(0, 1))

    def test_in_range_passes(self, conf):
        CapacityScheduler(conf).validate(Resource(1024, 1))


class TestFactory:
    def test_capacity_default(self):
        assert scheduler_for(YarnConf()).name == "capacity"

    def test_fair_selectable(self):
        conf = YarnConf()
        conf.set(SCHEDULER_CLASS, "fair")
        assert scheduler_for(conf).name == "fair"

    def test_unknown_rejected(self):
        conf = YarnConf()
        conf.set(SCHEDULER_CLASS, "mystery")
        with pytest.raises(AllocationError):
            scheduler_for(conf)
