"""Tests for the HBase substrate: WAL, regions, master, recovery."""

import pytest

from repro.errors import SafeModeException, StorageError
from repro.hbaselite import HBaseMaster, Region, WriteAheadLog
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def filesystem():
    return FileSystem(NameNode(), user="hbase")


@pytest.fixture
def master(filesystem):
    master = HBaseMaster(filesystem)
    master.start()
    return master


class TestWal:
    def test_append_and_replay(self, filesystem):
        wal = WriteAheadLog(filesystem, "/hbase/WALs/t.wal")
        wal.append("put", "r1", {"cf:a": "1"})
        wal.append("delete", "r1", {})
        entries = wal.replay()
        assert [(e.operation, e.row) for e in entries] == [
            ("put", "r1"), ("delete", "r1"),
        ]
        assert [e.sequence for e in entries] == [0, 1]

    def test_sequence_recovered_from_disk(self, filesystem):
        wal = WriteAheadLog(filesystem, "/hbase/WALs/t.wal")
        wal.append("put", "r1", {})
        again = WriteAheadLog(filesystem, "/hbase/WALs/t.wal")
        entry = again.append("put", "r2", {})
        assert entry.sequence == 1

    def test_truncate(self, filesystem):
        wal = WriteAheadLog(filesystem, "/hbase/WALs/t.wal")
        wal.append("put", "r1", {})
        wal.truncate()
        assert wal.replay() == []


class TestRegion:
    def test_put_get(self, filesystem):
        region = Region("t", filesystem)
        region.put("row1", {"cf:a": "1", "cf:b": "x"})
        assert region.get("row1") == {"cf:a": "1", "cf:b": "x"}
        assert region.get("missing") is None

    def test_put_merges_columns(self, filesystem):
        region = Region("t", filesystem)
        region.put("r", {"cf:a": "1"})
        region.put("r", {"cf:b": "2"})
        assert region.get("r") == {"cf:a": "1", "cf:b": "2"}

    def test_empty_row_key_rejected(self, filesystem):
        with pytest.raises(StorageError):
            Region("t", filesystem).put("", {})

    def test_delete(self, filesystem):
        region = Region("t", filesystem)
        region.put("r", {"cf:a": "1"})
        region.delete("r")
        assert region.get("r") is None

    def test_scan_sorted_and_ranged(self, filesystem):
        region = Region("t", filesystem)
        for key in ("b", "a", "c", "d"):
            region.put(key, {"cf:v": key})
        assert [k for k, _ in region.scan()] == ["a", "b", "c", "d"]
        assert [k for k, _ in region.scan(start="b", stop="d")] == ["b", "c"]

    def test_flush_then_read(self, filesystem):
        region = Region("t", filesystem)
        region.put("r", {"cf:a": "1"})
        path = region.flush()
        assert filesystem.exists(path)
        assert region.get("r") == {"cf:a": "1"}

    def test_crash_recovery_from_wal(self, filesystem):
        region = Region("t", filesystem)
        region.put("r1", {"cf:a": "1"})
        region.flush()
        region.put("r2", {"cf:a": "2"})  # only in WAL + memstore
        # simulate a crash: build a new region over the same filesystem
        recovered = Region("t", filesystem)
        assert recovered.get("r1") == {"cf:a": "1"}
        assert recovered.get("r2") == {"cf:a": "2"}

    def test_delete_survives_recovery(self, filesystem):
        region = Region("t", filesystem)
        region.put("r", {"cf:a": "1"})
        region.flush()
        region.delete("r")
        recovered = Region("t", filesystem)
        assert recovered.get("r") is None


class TestMaster:
    def test_startup_layout(self, master, filesystem):
        assert filesystem.exists("/hbase/WALs")
        assert filesystem.exists("/hbase/data")
        assert master.started

    def test_startup_fails_in_safe_mode(self, filesystem):
        filesystem.namenode.enter_safe_mode()
        master = HBaseMaster(filesystem)
        with pytest.raises(SafeModeException):
            master.start()
        assert not master.started

    def test_startup_waits_out_safe_mode_when_fixed(self, filesystem):
        filesystem.namenode.enter_safe_mode()
        master = HBaseMaster(filesystem)
        master.start(wait_for_writes=True)
        assert master.started

    def test_table_lifecycle(self, master):
        master.create_table("t")
        assert master.list_tables() == ["t"]
        master.table("t").put("r", {"cf:a": "1"})
        master.drop_table("t")
        assert master.list_tables() == []
        with pytest.raises(StorageError):
            master.table("t")

    def test_duplicate_table_rejected(self, master):
        master.create_table("t")
        with pytest.raises(StorageError):
            master.create_table("t")

    def test_operations_require_start(self, filesystem):
        master = HBaseMaster(filesystem)
        with pytest.raises(StorageError):
            master.create_table("t")

    def test_recovery_reopens_tables(self, filesystem, master):
        master.create_table("t")
        master.table("t").put("r", {"cf:a": "1"})
        master.table("t").flush()
        restarted = HBaseMaster(filesystem)
        restarted.start()
        assert restarted.table_exists("t")
        assert restarted.table("t").get("r") == {"cf:a": "1"}
