"""Smoke tests: every shipped example must run to completion.

Examples are user-facing entry points; a release where they rot is
broken regardless of unit-test status. Each test runs the script the
way a user would (as ``__main__``) and checks its key output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=(), capsys=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "two engines, two answers" in out
        assert "SPARK-27239" in out or "job completed" in out

    def test_failure_replays(self, capsys):
        out = run_example("failure_replays.py", capsys=capsys)
        assert "FLINK-12342" in out
        assert "OVERLOAD" in out
        assert "resolved" in out
        assert "STILL FAILING" not in out

    def test_study_report(self, capsys):
        out = run_example("study_report.py", capsys=capsys)
        assert "13/13 findings reproduced" in out
        assert "Table 9" in out

    def test_spark_hive_crosstest(self, tmp_path, capsys):
        out = run_example(
            "spark_hive_crosstest.py", argv=[str(tmp_path)], capsys=capsys
        )
        assert "all 15 discrepancies of §8.2 were exposed." in out
        assert (tmp_path / "crosstest_summary.json").exists()
        assert (tmp_path / "ss_difft_failed.json").exists()

    def test_deployment_config_audit(self, capsys):
        out = run_example("deployment_config_audit.py", capsys=capsys)
        assert "no configuration resolves" in out
        assert "resolved   #8" in out

    def test_hive_over_hbase(self, capsys):
        out = run_example("hive_over_hbase.py", capsys=capsys)
        assert "('order-002', 7, 'gizmo')" in out
        assert "('order-002', '007', 'gizmo')" in out
        assert "NULL" in out
