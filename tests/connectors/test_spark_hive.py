"""Unit tests for the Spark-Hive connector's registration/resolution."""

import pytest

from repro.common.schema import Schema
from repro.connectors.spark_hive import (
    NATIVE_SCHEMA_PROPERTY,
    NOT_CASE_PRESERVING_WARNING,
    SparkHiveConnector,
    schema_from_property,
    schema_to_property,
)
from repro.errors import SchemaError
from repro.hivelite.metastore import HiveMetastore
from repro.sparklite.conf import SparkConf


@pytest.fixture
def connector():
    return SparkHiveConnector(HiveMetastore(), SparkConf())


class TestSchemaProperty:
    def test_roundtrip(self):
        schema = Schema.of(("Id", "int"), ("Nested", "struct<Aa:int>"))
        assert schema_from_property(schema_to_property(schema)).equivalent(
            schema, case_sensitive=True
        )

    def test_nullable_preserved(self):
        from repro.common.schema import Field
        from repro.common.types import IntegerType

        schema = Schema((Field("a", IntegerType(), nullable=False),))
        recovered = schema_from_property(schema_to_property(schema))
        assert recovered.fields[0].nullable is False

    def test_corrupt_property_raises(self):
        with pytest.raises(SchemaError):
            schema_from_property("{not json")
        with pytest.raises(SchemaError):
            schema_from_property('[{"no_name": 1}]')


class TestCreateTable:
    def test_datasource_always_keeps_native(self, connector):
        connector.create_table(
            "t", Schema.of(("Bb", "tinyint")), "avro",
            database="default", datasource=True,
        )
        table = connector.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is not None
        # hive side is still the promoted, lower-cased schema
        assert table.schema.simple_string() == "bb int"

    def test_hive_serde_orc_keeps_native(self, connector):
        connector.create_table(
            "t", Schema.of(("Bb", "tinyint")), "orc",
            database="default", datasource=False,
        )
        table = connector.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is not None
        assert table.schema.simple_string() == "bb tinyint"

    def test_hive_serde_avro_drops_native(self, connector):
        connector.create_table(
            "t", Schema.of(("Bb", "tinyint")), "avro",
            database="default", datasource=False,
        )
        table = connector.metastore.get_table("t")
        assert table.property(NATIVE_SCHEMA_PROPERTY) is None


class TestResolve:
    def test_native_resolution_preserves_case(self, connector):
        connector.create_table(
            "t", Schema.of(("Id", "int")), "parquet",
            database="default", datasource=False,
        )
        resolved = connector.resolve("t", "default")
        assert resolved.used_native_schema
        assert resolved.schema.names() == ("Id",)
        assert resolved.warnings == ()

    def test_fallback_warns(self, connector):
        connector.create_table(
            "t", Schema.of(("Id", "int")), "avro",
            database="default", datasource=False,
        )
        resolved = connector.resolve("t", "default")
        assert not resolved.used_native_schema
        assert resolved.schema.names() == ("id",)
        assert NOT_CASE_PRESERVING_WARNING in resolved.warnings

    def test_timestamp_type_applies_to_fallback_only(self, connector):
        connector.conf.set("spark.sql.timestampType", "TIMESTAMP_NTZ")
        connector.create_table(
            "fallback", Schema.of(("ts", "timestamp_ntz")), "avro",
            database="default", datasource=False,
        )
        resolved = connector.resolve("fallback", "default")
        assert resolved.schema.types()[0].simple_string() == "timestamp_ntz"

    def test_char_varchar_as_string_rewrites(self, connector):
        connector.conf.set("spark.sql.legacy.charVarcharAsString", "true")
        connector.create_table(
            "t", Schema.of(("c", "char(5)"), ("v", "varchar(3)")), "parquet",
            database="default", datasource=True,
        )
        resolved = connector.resolve("t", "default")
        assert [t.simple_string() for t in resolved.schema.types()] == [
            "string", "string",
        ]
