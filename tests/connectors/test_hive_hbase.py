"""Tests for the Hive-over-HBase storage handler."""

import decimal

import pytest

from repro.common.schema import Schema
from repro.connectors.hive_hbase import HBaseColumnMapping, HiveHBaseHandler
from repro.errors import SchemaError
from repro.hbaselite import HBaseMaster
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def hbase():
    master = HBaseMaster(FileSystem(NameNode(), user="hbase"))
    master.start()
    return master


def make_handler(hbase, columns, mapping):
    return HiveHBaseHandler(
        hbase=hbase,
        table="kv",
        schema=Schema.of(*columns),
        mapping=HBaseColumnMapping.parse(mapping),
    )


class TestMapping:
    def test_parse(self):
        mapping = HBaseColumnMapping.parse(":key, cf:a ,cf:b")
        assert mapping.entries == (":key", "cf:a", "cf:b")

    def test_bad_mapping_rejected(self):
        with pytest.raises(SchemaError):
            HBaseColumnMapping.parse(":key,,cf:a")

    def test_arity_validated(self, hbase):
        with pytest.raises(SchemaError):
            make_handler(hbase, [("k", "string")], ":key,cf:a")


class TestRoundTrip:
    def test_typed_roundtrip(self, hbase):
        handler = make_handler(
            hbase,
            [("k", "string"), ("n", "int"), ("price", "decimal(10,2)")],
            ":key,cf:n,cf:price",
        )
        handler.insert([("r1", 42, decimal.Decimal("9.99"))])
        result = handler.select_all()
        assert result.to_tuples() == [("r1", 42, decimal.Decimal("9.99"))]

    def test_everything_stored_as_strings(self, hbase):
        handler = make_handler(
            hbase, [("k", "string"), ("n", "int")], ":key,cf:n"
        )
        handler.insert([("r1", 42)])
        # the untyped substrate: the cell is the string "42"
        assert hbase.table("kv").get("r1") == {"cf:n": "42"}

    def test_rows_come_back_in_key_order(self, hbase):
        handler = make_handler(hbase, [("k", "string"), ("v", "int")], ":key,cf:v")
        handler.insert([("b", 2), ("a", 1)])
        assert [r[0] for r in handler.select_all().rows] == ["a", "b"]

    def test_null_becomes_empty_string_cell(self, hbase):
        # a genuine KV-over-typed discrepancy: NULL and "" collapse
        handler = make_handler(
            hbase, [("k", "string"), ("s", "string")], ":key,cf:s"
        )
        handler.insert([("r1", None)])
        assert handler.select_all().to_tuples() == [("r1", "")]


class TestTypeConfusionSurface:
    def test_unparseable_cell_reads_null(self, hbase):
        # another writer put a non-numeric value in the column
        handler = make_handler(hbase, [("k", "string"), ("n", "int")], ":key,cf:n")
        hbase.table("kv").put("r1", {"cf:n": "not-a-number"})
        assert handler.select_all().to_tuples() == [("r1", None)]

    def test_two_handlers_disagree_on_one_cell(self, hbase):
        # the same bytes under two schemas: int vs string
        as_int = make_handler(hbase, [("k", "string"), ("v", "int")], ":key,cf:v")
        hbase.table("kv").put("r1", {"cf:v": "007"})
        as_string = HiveHBaseHandler(
            hbase=hbase,
            table="kv",
            schema=Schema.of(("k", "string"), ("v", "string")),
            mapping=HBaseColumnMapping.parse(":key,cf:v"),
        )
        assert as_int.select_all().to_tuples() == [("r1", 7)]
        assert as_string.select_all().to_tuples() == [("r1", "007")]

    def test_missing_column_reads_null(self, hbase):
        handler = make_handler(
            hbase, [("k", "string"), ("a", "int"), ("b", "int")],
            ":key,cf:a,cf:b",
        )
        hbase.table("kv").put("r1", {"cf:a": "1"})
        assert handler.select_all().to_tuples() == [("r1", 1, None)]

    def test_row_key_cannot_be_null(self, hbase):
        handler = make_handler(hbase, [("k", "string"), ("v", "int")], ":key,cf:v")
        with pytest.raises(SchemaError):
            handler.insert([(None, 1)])
