"""Unit tests for the object-transformer layer."""

import datetime
import decimal

import pytest

from repro.common.types import parse_type
from repro.connectors.transformers import (
    TRANSFORMER_COUNT,
    transform_value,
    transformer_for,
)
from repro.errors import IncompatibleSchemaException


def t(physical, expected, fmt="parquet"):
    return transformer_for(parse_type(physical), parse_type(expected), fmt)


class TestIdentityAndWidening:
    def test_identity(self):
        assert t("int", "int")(5) == 5

    def test_integral_widening(self):
        assert t("tinyint", "bigint")(5) == 5

    def test_integral_to_float(self):
        assert t("int", "double")(5) == 5.0

    def test_string_family(self):
        assert t("string", "char(5)")("ab") == "ab"
        assert t("varchar(3)", "string")("ab") == "ab"


class TestDemotion:
    def test_parquet_demotes_in_range(self):
        assert t("int", "tinyint")(5) == 5

    def test_parquet_demotes_out_of_range_to_null(self):
        assert t("int", "tinyint")(300) is None

    def test_avro_demotion_raises(self):
        # SPARK-39075: the Avro reader has no INT -> BYTE transformer
        with pytest.raises(IncompatibleSchemaException):
            t("int", "tinyint", fmt="avro")

    def test_avro_widening_fine(self):
        assert t("int", "bigint", fmt="avro")(5) == 5


class TestDecimal:
    def test_requantize_to_declared_scale(self):
        out = t("decimal(10,1)", "decimal(10,3)")(decimal.Decimal("3.1"))
        assert str(out) == "3.100"

    def test_requantize_overflow_nulls(self):
        out = t("decimal(20,2)", "decimal(5,2)")(decimal.Decimal("123456.78"))
        assert out is None

    def test_int_to_decimal(self):
        out = t("int", "decimal(10,2)")(5)
        assert out == decimal.Decimal("5.00")


class TestTemporal:
    def test_timestamp_to_ntz(self):
        aware = datetime.datetime(
            2020, 1, 1, tzinfo=datetime.timezone.utc
        )
        assert t("timestamp", "timestamp_ntz")(aware).tzinfo is None

    def test_date_to_timestamp(self):
        out = t("date", "timestamp")(datetime.date(2020, 1, 2))
        assert out == datetime.datetime(2020, 1, 2)


class TestNested:
    def test_array_element_transform(self):
        out = t("array<int>", "array<bigint>")([1, None, 3])
        assert out == [1, None, 3]

    def test_array_avro_demotion_raises(self):
        with pytest.raises(IncompatibleSchemaException):
            t("array<int>", "array<tinyint>", fmt="avro")

    def test_map_transforms_keys_and_values(self):
        out = t("map<int,int>", "map<bigint,double>")({1: 2})
        assert out == {1: 2.0}

    def test_struct_positional(self):
        out = t("struct<aa:int>", "struct<Aa:int>")([1])
        assert out == [1]

    def test_struct_arity_mismatch_raises(self):
        with pytest.raises(IncompatibleSchemaException):
            t("struct<a:int>", "struct<a:int,b:int>")

    def test_null_passthrough(self):
        assert transform_value(
            None, parse_type("int"), parse_type("tinyint"), "avro"
        ) is None


class TestUnconvertible:
    def test_string_to_int_raises(self):
        with pytest.raises(IncompatibleSchemaException):
            t("string", "int")

    def test_breadth_constant(self):
        # §6.1: Spark implements 45 unique object transformers; ours has
        # a documented, asserted breadth too
        assert TRANSFORMER_COUNT >= 15
