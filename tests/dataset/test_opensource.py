"""The 120-case dataset must reproduce every published marginal."""

from collections import Counter

import pytest

from repro.core.taxonomy import (
    ApiMisuseKind,
    ConfigKind,
    ConfigPattern,
    ControlPattern,
    DataAbstraction,
    DataPattern,
    DataProperty,
    FixLocation,
    FixPattern,
    MgmtKind,
    Plane,
    Symptom,
)
from repro.dataset.opensource import PAIRS, load_failures


@pytest.fixture(scope="module")
def failures():
    return load_failures()


class TestTable1:
    def test_total(self, failures):
        assert len(failures) == 120

    def test_pair_counts(self, failures):
        counts = Counter((f.upstream, f.downstream) for f in failures)
        expected = {
            ("Spark", "Hive"): 26, ("Spark", "YARN"): 19,
            ("Spark", "HDFS"): 8, ("Spark", "Kafka"): 5,
            ("Flink", "Kafka"): 12, ("Flink", "YARN"): 14,
            ("Flink", "Hive"): 8, ("Flink", "HDFS"): 3,
            ("Hive", "Spark"): 6, ("Hive", "HBase"): 3,
            ("Hive", "HDFS"): 6, ("Hive", "Kafka"): 1,
            ("Hive", "YARN"): 2, ("HBase", "HDFS"): 4,
            ("YARN", "HDFS"): 3,
        }
        assert dict(counts) == expected

    def test_pairspec_totals_consistent(self):
        assert sum(p.total for p in PAIRS) == 120

    def test_interaction_labels(self, failures):
        for failure in failures:
            assert failure.interaction.startswith(("Data", "Control"))


class TestTable2:
    def test_plane_split(self, failures):
        counts = Counter(f.plane for f in failures)
        assert counts[Plane.DATA] == 61
        assert counts[Plane.MANAGEMENT] == 39
        assert counts[Plane.CONTROL] == 20


class TestTable3:
    def test_crashing_majority(self, failures):
        assert sum(1 for f in failures if f.symptom.crashing) == 89

    def test_row_counts(self, failures):
        counts = Counter(f.symptom for f in failures)
        assert counts[Symptom.JOB_TASK_FAILURE] == 47
        assert counts[Symptom.JOB_TASK_CRASH_HANG] == 24
        assert counts[Symptom.RUNTIME_CRASH_HANG] == 8
        assert counts[Symptom.REDUCED_OBSERVABILITY] == 8
        assert counts[Symptom.JOB_TASK_STARTUP] == 6
        assert counts[Symptom.STARTUP_FAILURE] == 4
        assert counts[Symptom.USABILITY_ISSUE] == 1


class TestTables4To6:
    def test_property_marginals(self, failures):
        data = [f for f in failures if f.plane is Plane.DATA]
        counts = Counter(f.data_property for f in data)
        assert counts[DataProperty.ADDRESS] == 10
        assert counts[DataProperty.SCHEMA_STRUCTURE] == 14
        assert counts[DataProperty.SCHEMA_VALUE] == 18
        assert counts[DataProperty.CUSTOM_PROPERTY] == 8
        assert counts[DataProperty.API_SEMANTICS] == 11

    def test_table5_matrix(self, failures):
        data = [f for f in failures if f.plane is Plane.DATA]
        matrix = Counter((f.data_abstraction, f.data_property) for f in data)
        assert matrix[(DataAbstraction.TABLE, DataProperty.ADDRESS)] == 1
        assert matrix[(DataAbstraction.TABLE, DataProperty.SCHEMA_STRUCTURE)] == 13
        assert matrix[(DataAbstraction.TABLE, DataProperty.SCHEMA_VALUE)] == 16
        assert matrix[(DataAbstraction.TABLE, DataProperty.CUSTOM_PROPERTY)] == 0
        assert matrix[(DataAbstraction.TABLE, DataProperty.API_SEMANTICS)] == 5
        assert matrix[(DataAbstraction.FILE, DataProperty.ADDRESS)] == 8
        assert matrix[(DataAbstraction.FILE, DataProperty.CUSTOM_PROPERTY)] == 8
        assert matrix[(DataAbstraction.FILE, DataProperty.API_SEMANTICS)] == 2
        assert matrix[(DataAbstraction.STREAM, DataProperty.API_SEMANTICS)] == 4
        assert not any(
            f.data_abstraction is DataAbstraction.KV_TUPLE for f in data
        )

    def test_table6_patterns(self, failures):
        data = [f for f in failures if f.plane is Plane.DATA]
        counts = Counter(f.data_pattern for f in data)
        assert counts[DataPattern.TYPE_CONFUSION] == 12
        assert counts[DataPattern.UNSUPPORTED_OPERATIONS] == 15
        assert counts[DataPattern.UNSPOKEN_CONVENTION] == 9
        assert counts[DataPattern.UNDEFINED_VALUES] == 7
        assert counts[DataPattern.WRONG_API_ASSUMPTIONS] == 18

    def test_serialization_count(self, failures):
        data = [f for f in failures if f.plane is Plane.DATA]
        assert sum(1 for f in data if f.serialization_rooted) == 15
        assert not any(
            f.serialization_rooted
            for f in failures
            if f.plane is not Plane.DATA
        )


class TestTables7And8:
    def test_config_patterns(self, failures):
        config = [
            f for f in failures
            if f.mgmt_kind is MgmtKind.CONFIGURATION
        ]
        assert len(config) == 30
        counts = Counter(f.config_pattern for f in config)
        assert counts[ConfigPattern.IGNORANCE] == 12
        assert counts[ConfigPattern.UNEXPECTED_OVERRIDE] == 6
        assert counts[ConfigPattern.INCONSISTENT_CONTEXT] == 10
        assert counts[ConfigPattern.MISHANDLING_VALUES] == 2
        kinds = Counter(f.config_kind for f in config)
        assert kinds[ConfigKind.PARAMETER] == 21
        assert kinds[ConfigKind.COMPONENT] == 9

    def test_monitoring_count(self, failures):
        assert sum(
            1 for f in failures if f.mgmt_kind is MgmtKind.MONITORING
        ) == 9

    def test_control_patterns(self, failures):
        control = [f for f in failures if f.plane is Plane.CONTROL]
        counts = Counter(f.control_pattern for f in control)
        assert counts[ControlPattern.API_SEMANTIC_VIOLATION] == 13
        assert counts[ControlPattern.STATE_RESOURCE_INCONSISTENCY] == 5
        assert counts[ControlPattern.FEATURE_INCONSISTENCY] == 2
        misuse = Counter(
            f.api_misuse_kind for f in control if f.api_misuse_kind
        )
        assert misuse[ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION] == 8
        assert misuse[ApiMisuseKind.WRONG_INVOCATION_CONTEXT] == 5


class TestTable9:
    def test_fix_patterns(self, failures):
        counts = Counter(f.fix_pattern for f in failures)
        assert counts[FixPattern.CHECKING] == 38
        assert counts[FixPattern.ERROR_HANDLING] == 8
        assert counts[FixPattern.INTERACTION] == 69
        assert counts[FixPattern.OTHER] == 5

    def test_fix_locations(self, failures):
        locations = Counter(
            f.fix_location for f in failures if f.fix_location
        )
        assert locations[FixLocation.CONNECTOR] == 68
        assert locations[FixLocation.SYSTEM_SPECIFIC] == 11
        assert locations[FixLocation.GENERIC] == 36

    def test_single_downstream_fix(self, failures):
        downstream = [f for f in failures if f.fixed_by_downstream]
        assert len(downstream) == 1
        assert downstream[0].issue_id == "YARN-9724"


class TestPins:
    def test_pinned_cases_present(self, failures):
        real = {f.issue_id for f in failures if not f.synthetic}
        for issue in (
            "FLINK-12342", "SPARK-27239", "FLINK-19141", "SPARK-21686",
            "SPARK-19361", "SPARK-16901", "FLINK-887", "HBASE-537",
            "YARN-9724", "HIVE-11250", "FLINK-17189",
        ):
            assert issue in real

    def test_pins_have_documented_labels(self, failures):
        by_id = {f.issue_id: f for f in failures}
        fig1 = by_id["FLINK-12342"]
        assert fig1.plane is Plane.CONTROL
        assert fig1.api_misuse_kind is ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION
        fig2 = by_id["SPARK-27239"]
        assert fig2.data_pattern is DataPattern.UNDEFINED_VALUES
        assert fig2.data_property is DataProperty.CUSTOM_PROPERTY
        fig3 = by_id["FLINK-19141"]
        assert fig3.config_pattern is ConfigPattern.INCONSISTENT_CONTEXT

    def test_synthetic_ids_disjoint_from_real(self, failures):
        synthetic = {f.issue_id for f in failures if f.synthetic}
        real = {f.issue_id for f in failures if not f.synthetic}
        assert not synthetic & real
        assert all("-9" in issue for issue in synthetic)

    def test_case_ids_unique(self, failures):
        ids = [f.case_id for f in failures]
        assert len(set(ids)) == 120

    def test_deterministic(self, failures):
        load_failures.cache_clear()
        again = load_failures()
        assert [f.issue_id for f in again] == [f.issue_id for f in failures]
        assert [f.symptom for f in again] == [f.symptom for f in failures]
