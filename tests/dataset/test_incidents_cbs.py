"""Tests for the incident (§3) and CBS (§4) datasets."""

import statistics
from collections import Counter

import pytest

from repro.core.failure import CBSIssue
from repro.core.taxonomy import Plane
from repro.dataset.cbs import load_cbs_issues
from repro.dataset.incidents import load_incidents
from repro.dataset.testsuites import (
    cross_test_fraction,
    load_spark_integration_tests,
)
from repro.errors import DatasetError


class TestIncidents:
    @pytest.fixture(scope="class")
    def incidents(self):
        return load_incidents()

    def test_totals(self, incidents):
        assert len(incidents) == 55
        assert sum(1 for i in incidents if i.is_csi) == 11

    def test_provider_sample_sizes(self, incidents):
        counts = Counter(i.provider for i in incidents)
        assert counts == {"gcp": 20, "azure": 20, "aws": 15}

    def test_duration_statistics(self, incidents):
        durations = sorted(
            i.duration_minutes for i in incidents if i.is_csi
        )
        assert durations[0] == 10
        assert durations[-1] == 1140  # 19 hours
        assert statistics.median(durations) == 106

    def test_external_impact(self, incidents):
        csi = [i for i in incidents if i.is_csi]
        assert sum(1 for i in csi if i.impaired_external_services) == 8

    def test_interaction_fixes_mentioned(self, incidents):
        csi = [i for i in incidents if i.is_csi]
        assert sum(1 for i in csi if i.mentions_interaction_fix) == 4

    def test_csi_incidents_span_planes(self, incidents):
        planes = {i.plane for i in incidents if i.is_csi}
        assert planes == {Plane.CONTROL, Plane.DATA, Plane.MANAGEMENT}

    def test_non_csi_carry_no_duration(self, incidents):
        for incident in incidents:
            if not incident.is_csi:
                assert incident.duration_minutes is None


class TestCBS:
    @pytest.fixture(scope="class")
    def issues(self):
        return load_cbs_issues()

    def test_totals(self, issues):
        assert len(issues) == 105
        assert sum(1 for i in issues if i.is_csi) == 39
        assert sum(1 for i in issues if i.is_dependency) == 15

    def test_control_plane_fraction(self, issues):
        csi = [i for i in issues if i.is_csi]
        control = sum(1 for i in csi if i.plane is Plane.CONTROL)
        assert control == 27
        assert abs(control / len(csi) - 0.69) < 0.01

    def test_systems_are_hadoop_era(self, issues):
        systems = {i.system for i in issues}
        assert systems == {
            "MapReduce", "HDFS", "HBase", "Cassandra", "ZooKeeper", "Flume",
        }

    def test_record_invariants_enforced(self):
        with pytest.raises(DatasetError):
            CBSIssue("X-1", "HDFS", is_csi=True, is_dependency=True)
        with pytest.raises(DatasetError):
            CBSIssue("X-2", "HDFS", is_csi=True)  # plane missing


class TestSparkTestSuiteAudit:
    def test_six_percent_cross_test(self):
        assert cross_test_fraction() == pytest.approx(0.06)

    def test_cross_tests_pin_versions(self):
        for test in load_spark_integration_tests():
            if test.cross_system:
                assert test.downstream is not None
                assert test.pinned_version is not None
            else:
                assert test.downstream is None

    def test_cross_tested_downstreams(self):
        downstreams = {
            t.downstream
            for t in load_spark_integration_tests()
            if t.cross_system
        }
        assert {"Hive", "Kafka", "YARN", "HDFS"} <= downstreams
