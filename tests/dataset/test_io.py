"""Tests for dataset export/import."""

import json

import pytest

from repro.core.analysis import compute_findings, table2_planes
from repro.dataset.cbs import load_cbs_issues
from repro.dataset.incidents import load_incidents
from repro.dataset.io import (
    dump_failures,
    failure_from_dict,
    failure_to_dict,
    incident_to_dict,
    load_failures_from_file,
)
from repro.dataset.opensource import load_failures
from repro.errors import DatasetError


class TestRoundTrip:
    def test_single_record(self):
        failure = load_failures()[0]
        assert failure_from_dict(failure_to_dict(failure)) == failure

    def test_full_dataset_roundtrip(self, tmp_path):
        failures = load_failures()
        path = dump_failures(failures, tmp_path / "csi.json")
        reloaded = load_failures_from_file(path)
        assert reloaded == failures

    def test_reloaded_dataset_reproduces_the_study(self, tmp_path):
        path = dump_failures(load_failures(), tmp_path / "csi.json")
        reloaded = load_failures_from_file(path)
        assert table2_planes(reloaded).as_dict() == {
            "Control": 20, "Data": 61, "Management": 39,
        }
        findings = compute_findings(
            reloaded, load_incidents(), load_cbs_issues()
        )
        assert all(f.holds for f in findings)

    def test_file_is_plain_json(self, tmp_path):
        path = dump_failures(load_failures(), tmp_path / "csi.json")
        payload = json.loads(path.read_text())
        assert len(payload) == 120
        assert payload[0]["case_id"] == "CSI-001"
        assert all(isinstance(r["plane"], str) for r in payload)


class TestErrors:
    def test_malformed_record_rejected(self):
        with pytest.raises(DatasetError):
            failure_from_dict({"case_id": "X"})

    def test_bad_enum_rejected(self):
        record = failure_to_dict(load_failures()[0])
        record["plane"] = "HYPERSPACE"
        with pytest.raises(DatasetError):
            failure_from_dict(record)

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(DatasetError):
            load_failures_from_file(path)


def test_incident_export():
    record = incident_to_dict(load_incidents()[0])
    assert record["is_csi"] is True
    assert record["plane"] in ("CONTROL", "DATA", "MANAGEMENT")
