"""Unit tests for the four storage formats and their type lattices."""

import datetime
import decimal

import pytest

from repro.common.schema import Schema
from repro.common.types import (
    IntegerType,
    StringType,
    TimestampType,
    parse_type,
)
from repro.errors import SerializationError, UnsupportedTypeError
from repro.formats import (
    AvroSerializer,
    OrcSerializer,
    ParquetSerializer,
    TextSerializer,
    serializer_for,
)
from repro.formats.textfile import NULL_MARKER


class TestRegistry:
    @pytest.mark.parametrize("name", ["avro", "ORC", "Parquet", "text"])
    def test_lookup(self, name):
        assert serializer_for(name).format_name == name.lower()

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            serializer_for("csv")


class TestAvroLattice:
    def setup_method(self):
        self.avro = AvroSerializer()

    @pytest.mark.parametrize("text", ["tinyint", "smallint"])
    def test_narrow_ints_promote(self, text):
        assert self.avro.physical_type(parse_type(text)) == IntegerType()

    @pytest.mark.parametrize("text", ["int", "bigint", "double", "string", "date"])
    def test_other_types_preserved(self, text):
        assert self.avro.physical_type(parse_type(text)) == parse_type(text)

    def test_char_varchar_collapse(self):
        assert self.avro.physical_type(parse_type("char(5)")) == StringType()
        assert self.avro.physical_type(parse_type("varchar(3)")) == StringType()

    def test_ntz_collapses_to_timestamp(self):
        assert self.avro.physical_type(parse_type("timestamp_ntz")) == TimestampType()

    def test_non_string_map_key_rejected(self):
        with pytest.raises(UnsupportedTypeError):
            self.avro.physical_type(parse_type("map<int,string>"))

    def test_string_map_key_allowed(self):
        self.avro.physical_type(parse_type("map<string,int>"))

    def test_nested_promotion(self):
        physical = self.avro.physical_type(parse_type("array<tinyint>"))
        assert physical == parse_type("array<int>")

    def test_struct_promotion(self):
        physical = self.avro.physical_type(parse_type("struct<a:smallint>"))
        assert physical.simple_string() == "struct<a:int>"

    def test_interval_unsupported(self):
        with pytest.raises(UnsupportedTypeError):
            self.avro.physical_type(parse_type("interval"))

    def test_no_native_schema_inference(self):
        assert not self.avro.supports_native_schema_inference


class TestOrcParquetLattices:
    def test_orc_preserves_narrow_ints(self):
        orc = OrcSerializer()
        assert orc.physical_type(parse_type("tinyint")) == parse_type("tinyint")

    def test_orc_allows_int_map_keys(self):
        OrcSerializer().physical_type(parse_type("map<int,string>"))

    def test_orc_collapses_ntz(self):
        assert OrcSerializer().physical_type(
            parse_type("timestamp_ntz")
        ) == TimestampType()

    def test_parquet_preserves_ntz(self):
        assert ParquetSerializer().physical_type(
            parse_type("timestamp_ntz")
        ) == parse_type("timestamp_ntz")

    def test_both_support_native_inference(self):
        assert OrcSerializer().supports_native_schema_inference
        assert ParquetSerializer().supports_native_schema_inference


class TestWriteRead:
    @pytest.mark.parametrize("fmt", ["orc", "parquet"])
    def test_roundtrip_preserves_values(self, fmt):
        serializer = serializer_for(fmt)
        schema = Schema.of(("a", "tinyint"), ("b", "decimal(5,2)"), ("c", "string"))
        rows = [(1, decimal.Decimal("1.50"), "x"), (None, None, None)]
        data = serializer.read(serializer.write(schema, rows))
        assert data.rows[0] == (1, decimal.Decimal("1.50"), "x")
        assert data.rows[1] == (None, None, None)
        assert data.physical_schema.names() == ("a", "b", "c")

    def test_avro_writes_promoted_values(self):
        avro = AvroSerializer()
        schema = Schema.of(("b", "tinyint"))
        data = avro.read(avro.write(schema, [(5,)]))
        assert data.physical_schema.types() == (IntegerType(),)
        assert data.rows[0][0] == 5

    def test_writer_properties_roundtrip(self):
        orc = OrcSerializer()
        blob = orc.write(Schema.of(("a", "int")), [(1,)], {"writer": "hive"})
        assert orc.read(blob).properties == {"writer": "hive"}

    def test_arity_mismatch_rejected(self):
        orc = OrcSerializer()
        with pytest.raises(SerializationError):
            orc.write(Schema.of(("a", "int")), [(1, 2)])

    def test_wrong_reader_rejected(self):
        blob = OrcSerializer().write(Schema.of(("a", "int")), [(1,)])
        with pytest.raises(SerializationError):
            ParquetSerializer().read(blob)

    def test_sniff_format(self):
        blob = AvroSerializer().write(Schema.of(("a", "int")), [])
        assert AvroSerializer.sniff_format(blob) == "avro"

    def test_dates_and_timestamps(self):
        parquet = ParquetSerializer()
        schema = Schema.of(("d", "date"), ("t", "timestamp"))
        row = (datetime.date(2020, 1, 1), datetime.datetime(2020, 1, 1, 8))
        data = parquet.read(parquet.write(schema, [row]))
        assert data.rows[0] == row

    def test_nested_values_roundtrip(self):
        orc = OrcSerializer()
        schema = Schema.of(("m", "map<int,string>"), ("s", "struct<x:int>"))
        data = orc.read(orc.write(schema, [({1: "a"}, [7])]))
        assert data.rows[0][0] == {1: "a"}
        assert data.rows[0][1] == [7]


class TestText:
    def test_everything_becomes_string(self):
        text = TextSerializer()
        schema = Schema.of(("a", "int"), ("b", "boolean"), ("c", "double"))
        data = text.read(text.write(schema, [(1, True, float("nan"))]))
        assert data.rows[0] == ("1", "true", "NaN")
        assert all(t == StringType() for t in data.physical_schema.types())

    def test_null_marker(self):
        text = TextSerializer()
        data = text.read(text.write(Schema.of(("a", "int")), [(None,)]))
        assert data.rows[0][0] == NULL_MARKER

    def test_binary_unsupported(self):
        with pytest.raises(UnsupportedTypeError):
            TextSerializer().physical_type(parse_type("binary"))

    def test_collections_flatten(self):
        text = TextSerializer()
        schema = Schema.of(("xs", "array<int>"), ("kv", "map<string,int>"))
        data = text.read(text.write(schema, [([1, 2], {"k": 3})]))
        assert data.rows[0] == ("1,2", "k:3")
