"""Unit tests for the tagged byte codec."""

import datetime
import decimal
import math

import pytest

from repro.errors import SerializationError
from repro.formats import encoding


ROUNDTRIP_VALUES = [
    None,
    True,
    False,
    0,
    -42,
    2**62,
    "text",
    "",
    "unicode ✓ 数据",
    1.5,
    -0.0,
    decimal.Decimal("3.14"),
    decimal.Decimal("-0.001"),
    b"\x00\xff",
    b"",
    datetime.date(2020, 2, 29),
    datetime.datetime(2020, 1, 1, 12, 30, 45, 123456),
    datetime.timedelta(seconds=90),
    [1, 2, None],
    [],
    {"a": 1, "b": None},
    {1: "x", 2: "y"},  # non-string keys
    [[1], [2, [3]]],
    {"nested": {"k": [decimal.Decimal("1.0")]}},
]


@pytest.mark.parametrize("value", ROUNDTRIP_VALUES, ids=repr)
def test_roundtrip(value):
    encoded = encoding.encode_value(value)
    blob = encoding.dumps({"v": encoded})
    decoded = encoding.decode_value(encoding.loads(blob)["v"])
    if isinstance(value, tuple):
        value = list(value)
    assert decoded == value
    # kind preserved: Decimal stays Decimal, bytes stay bytes
    assert type(decoded) is type(value) or isinstance(value, (list, dict))


def test_nan_roundtrip():
    decoded = encoding.decode_value(encoding.encode_value(math.nan))
    assert math.isnan(decoded)


def test_infinities_roundtrip():
    assert encoding.decode_value(encoding.encode_value(math.inf)) == math.inf
    assert encoding.decode_value(encoding.encode_value(-math.inf)) == -math.inf


def test_decimal_scale_preserved():
    value = decimal.Decimal("3.100")
    decoded = encoding.decode_value(encoding.encode_value(value))
    assert str(decoded) == "3.100"


def test_unencodable_type_raises():
    with pytest.raises(SerializationError):
        encoding.encode_value(object())


def test_corrupt_blob_raises():
    with pytest.raises(SerializationError):
        encoding.loads(b"\xff\xfenot json")


def test_unknown_tag_raises():
    with pytest.raises(SerializationError):
        encoding.decode_value({"$t": "wat", "v": 1})


def test_malformed_encoded_value_raises():
    with pytest.raises(SerializationError):
        encoding.decode_value({"no_tag": True})
