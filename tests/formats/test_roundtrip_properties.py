"""Property-based round-trip laws for the serializers."""

import datetime
import decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Schema
from repro.formats import OrcSerializer, ParquetSerializer, serializer_for

_scalar_columns = st.sampled_from(
    [
        ("int", st.integers(min_value=-(2**31), max_value=2**31 - 1)),
        ("bigint", st.integers(min_value=-(2**63), max_value=2**63 - 1)),
        ("string", st.text(max_size=30)),
        ("boolean", st.booleans()),
        (
            "double",
            st.floats(allow_nan=False, allow_infinity=False, width=64),
        ),
        (
            "date",
            st.dates(
                min_value=datetime.date(1, 1, 1),
                max_value=datetime.date(9999, 12, 31),
            ),
        ),
    ]
)


@st.composite
def table_case(draw):
    columns = draw(st.lists(_scalar_columns, min_size=1, max_size=4))
    schema = Schema.of(
        *[(f"c{i}", type_text) for i, (type_text, _) in enumerate(columns)]
    )
    n_rows = draw(st.integers(min_value=0, max_value=5))
    rows = []
    for _ in range(n_rows):
        row = []
        for _, strategy in columns:
            row.append(draw(st.one_of(st.none(), strategy)))
        rows.append(tuple(row))
    return schema, rows


class TestRoundTripLaws:
    @given(table_case())
    @settings(max_examples=60, deadline=None)
    def test_orc_identity_on_scalars(self, case):
        schema, rows = case
        orc = OrcSerializer()
        data = orc.read(orc.write(schema, rows))
        assert [tuple(r) for r in data.rows] == rows
        assert data.physical_schema.names() == schema.names()

    @given(table_case())
    @settings(max_examples=60, deadline=None)
    def test_parquet_identity_on_scalars(self, case):
        schema, rows = case
        parquet = ParquetSerializer()
        data = parquet.read(parquet.write(schema, rows))
        assert [tuple(r) for r in data.rows] == rows

    @given(
        st.lists(
            st.integers(min_value=-128, max_value=127) | st.none(),
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_avro_promotes_but_preserves_byte_values(self, values):
        avro = serializer_for("avro")
        schema = Schema.of(("b", "tinyint"))
        data = avro.read(avro.write(schema, [(v,) for v in values]))
        assert [r[0] for r in data.rows] == values
        assert data.physical_schema.types()[0].simple_string() == "int"

    @given(
        st.decimals(
            allow_nan=False,
            allow_infinity=False,
            places=2,
            min_value=decimal.Decimal("-999.99"),
            max_value=decimal.Decimal("999.99"),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_decimal_scale_survives_every_format(self, value):
        schema = Schema.of(("d", "decimal(5,2)"))
        for fmt in ("orc", "parquet", "avro"):
            serializer = serializer_for(fmt)
            data = serializer.read(serializer.write(schema, [(value,)]))
            assert data.rows[0][0] == value
            assert str(data.rows[0][0]) == str(value)
