"""Tests for the unified serialization layer (§10 mitigation)."""

import datetime
import decimal

import pytest

from repro.common.schema import Schema
from repro.common.types import parse_type
from repro.errors import SerializationError
from repro.formats import UnifiedSerializer, serializer_for
from repro.formats.unified import LOGICAL_SCHEMA_PROPERTY


@pytest.fixture(params=["avro", "orc", "parquet"])
def unified(request):
    return serializer_for(f"unified_{request.param}")


class TestRegistry:
    def test_prefix_dispatch(self):
        serializer = serializer_for("unified_avro")
        assert isinstance(serializer, UnifiedSerializer)
        assert serializer.format_name == "unified_avro"
        assert serializer.base.format_name == "avro"

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError):
            serializer_for("unified_csv")

    def test_supports_inference(self, unified):
        assert unified.supports_native_schema_inference


class TestLatticeClosure:
    def test_no_collapses(self, unified):
        for text in ("tinyint", "smallint", "char(5)", "timestamp_ntz"):
            assert unified.physical_type(parse_type(text)) == parse_type(text)

    def test_byte_roundtrip(self, unified):
        schema = Schema.of(("b", "tinyint"))
        data = unified.read(unified.write(schema, [(5,), (None,)]))
        assert data.physical_schema.types()[0].simple_string() == "tinyint"
        assert [r[0] for r in data.rows] == [5, None]

    def test_ntz_roundtrip(self, unified):
        schema = Schema.of(("ts", "timestamp_ntz"))
        value = datetime.datetime(2020, 6, 15, 12, 30)
        data = unified.read(unified.write(schema, [(value,)]))
        assert data.physical_schema.types()[0].simple_string() == "timestamp_ntz"
        assert data.rows[0][0] == value

    def test_non_string_map_keys_roundtrip(self, unified):
        schema = Schema.of(("m", "map<int,string>"))
        data = unified.read(unified.write(schema, [({1: "x", -2: "y"},)]))
        assert data.rows[0][0] == {1: "x", -2: "y"}
        assert data.physical_schema.types()[0].simple_string() == (
            "map<int,string>"
        )

    def test_nested_map_keys(self, unified):
        schema = Schema.of(("m", "array<map<bigint,double>>"))
        data = unified.read(unified.write(schema, [([{10: 0.5}],)]))
        assert data.rows[0][0] == [{10: 0.5}]

    def test_decimal_and_string_untouched(self, unified):
        schema = Schema.of(("d", "decimal(5,2)"), ("s", "string"))
        row = (decimal.Decimal("1.50"), "x")
        data = unified.read(unified.write(schema, [row]))
        assert tuple(data.rows[0]) == row

    def test_properties_carry_through_without_internal_key(self, unified):
        schema = Schema.of(("a", "int"))
        blob = unified.write(schema, [(1,)], {"writer": "spark"})
        data = unified.read(blob)
        assert data.properties["writer"] == "spark"
        assert LOGICAL_SCHEMA_PROPERTY not in data.properties


class TestDispatchSafety:
    def test_base_reader_rejects_unified_blob(self):
        unified = serializer_for("unified_orc")
        blob = unified.write(Schema.of(("a", "int")), [(1,)])
        with pytest.raises(SerializationError):
            serializer_for("orc").read(blob)

    def test_unified_reader_rejects_plain_blob(self):
        plain = serializer_for("orc").write(Schema.of(("a", "int")), [(1,)])
        with pytest.raises(SerializationError):
            serializer_for("unified_orc").read(plain)

    def test_sql_ddl_accepts_unified_formats(self):
        from repro.sparklite.session import SparkSession

        spark = SparkSession.local()
        spark.sql("CREATE TABLE t (b tinyint) STORED AS unified_avro")
        spark.sql("INSERT INTO t VALUES (5)")
        result = spark.sql("SELECT * FROM t")
        assert result.schema.types()[0].simple_string() == "tinyint"
        assert result.to_tuples() == [(5,)]


class TestMitigationEffect:
    def test_unified_avro_has_no_reader_gaps(self):
        from repro.evolution import reader_gaps

        assert reader_gaps(serializer_for("unified_avro")) == []
        assert reader_gaps(serializer_for("avro")) != []

    def test_crosstest_lattice_discrepancies_removed(self):
        from repro.crosstest import CrossTester, found_discrepancies, generate_inputs

        inputs = [
            i
            for i in generate_inputs()
            if i.column_type.name in ("tinyint", "map")
        ]
        plain = CrossTester(inputs=inputs).run()
        unified = CrossTester(
            inputs=inputs,
            formats=("unified_avro", "unified_orc", "unified_parquet"),
        ).run()
        assert {1, 3, 4} <= found_discrepancies(plain)
        assert not {1, 3, 4} & found_discrepancies(unified)
