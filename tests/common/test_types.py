"""Unit tests for the logical type system."""

import datetime
import decimal

import pytest

from repro.common.types import (
    ArrayType,
    BinaryType,
    BooleanType,
    ByteType,
    CharType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    IntegerType,
    IntervalType,
    LongType,
    MapType,
    NullType,
    ShortType,
    StringType,
    StructField,
    StructType,
    TimestampNTZType,
    TimestampType,
    VarcharType,
    is_fractional,
    is_integral,
    is_numeric,
    parse_type,
)
from repro.errors import SchemaError


class TestIntegralRanges:
    @pytest.mark.parametrize(
        "dtype,lo,hi",
        [
            (ByteType(), -128, 127),
            (ShortType(), -32768, 32767),
            (IntegerType(), -(2**31), 2**31 - 1),
            (LongType(), -(2**63), 2**63 - 1),
        ],
    )
    def test_bounds_accepted(self, dtype, lo, hi):
        assert dtype.accepts(lo)
        assert dtype.accepts(hi)
        assert not dtype.accepts(lo - 1)
        assert not dtype.accepts(hi + 1)

    def test_bool_is_not_integral_value(self):
        assert not IntegerType().accepts(True)

    def test_none_always_accepted(self):
        for dtype in (ByteType(), StringType(), MapType()):
            assert dtype.accepts(None)

    def test_float_rejected_by_integral(self):
        assert not IntegerType().accepts(1.0)


class TestDecimal:
    def test_fits_scale_and_precision(self):
        dtype = DecimalType(5, 2)
        assert dtype.accepts(decimal.Decimal("123.45"))
        assert not dtype.accepts(decimal.Decimal("1234.5"))

    def test_sub_scale_value_fits(self):
        assert DecimalType(10, 3).accepts(decimal.Decimal("3.1"))

    def test_excess_scale_rejected(self):
        assert not DecimalType(10, 1).accepts(decimal.Decimal("3.14"))

    def test_invalid_precision_raises(self):
        with pytest.raises(SchemaError):
            DecimalType(0, 0)
        with pytest.raises(SchemaError):
            DecimalType(39, 0)

    def test_scale_greater_than_precision_raises(self):
        with pytest.raises(SchemaError):
            DecimalType(3, 4)

    def test_nan_not_accepted(self):
        assert not DecimalType(10, 2).accepts(decimal.Decimal("NaN"))

    def test_simple_string(self):
        assert DecimalType(10, 2).simple_string() == "decimal(10,2)"


class TestCharVarchar:
    def test_char_pads(self):
        assert CharType(5).pad("ab") == "ab   "

    def test_char_length_enforced(self):
        assert CharType(3).accepts("abc")
        assert not CharType(3).accepts("abcd")

    def test_varchar_length_enforced(self):
        assert VarcharType(3).accepts("ab")
        assert not VarcharType(3).accepts("abcd")

    def test_zero_length_rejected(self):
        with pytest.raises(SchemaError):
            CharType(0)
        with pytest.raises(SchemaError):
            VarcharType(0)


class TestTemporal:
    def test_date_rejects_datetime(self):
        assert DateType().accepts(datetime.date(2020, 1, 1))
        assert not DateType().accepts(datetime.datetime(2020, 1, 1))

    def test_timestamp_accepts_datetime(self):
        assert TimestampType().accepts(datetime.datetime(2020, 1, 1, 12))

    def test_ntz_rejects_aware(self):
        aware = datetime.datetime(2020, 1, 1, tzinfo=datetime.timezone.utc)
        assert not TimestampNTZType().accepts(aware)
        assert TimestampNTZType().accepts(datetime.datetime(2020, 1, 1))

    def test_interval(self):
        assert IntervalType().accepts(datetime.timedelta(seconds=5))
        assert not IntervalType().accepts(5)


class TestComplex:
    def test_array_element_validation(self):
        assert ArrayType(IntegerType()).accepts([1, 2, None])
        assert not ArrayType(IntegerType()).accepts([1, "x"])

    def test_array_no_nulls(self):
        dtype = ArrayType(IntegerType(), contains_null=False)
        assert not dtype.accepts([1, None])

    def test_map_key_cannot_be_null(self):
        assert not MapType(StringType(), IntegerType()).accepts({None: 1})

    def test_map_types_validated(self):
        dtype = MapType(StringType(), IntegerType())
        assert dtype.accepts({"a": 1})
        assert not dtype.accepts({1: 1})

    def test_struct_by_position_and_name(self):
        dtype = StructType(
            (StructField("a", IntegerType()), StructField("b", StringType()))
        )
        assert dtype.accepts([1, "x"])
        assert dtype.accepts({"a": 1, "b": "x"})
        assert not dtype.accepts([1])
        assert not dtype.accepts({"a": 1})

    def test_struct_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            StructType((StructField("a", IntegerType()),) * 2)

    def test_nested_simple_string(self):
        dtype = MapType(StringType(), ArrayType(IntegerType()))
        assert dtype.simple_string() == "map<string,array<int>>"


class TestPredicates:
    def test_is_integral(self):
        assert is_integral(ByteType())
        assert not is_integral(FloatType())

    def test_is_fractional(self):
        assert is_fractional(DoubleType())
        assert is_fractional(DecimalType(5, 2))
        assert not is_fractional(LongType())

    def test_is_numeric(self):
        assert is_numeric(ShortType())
        assert is_numeric(FloatType())
        assert not is_numeric(StringType())
        assert not is_numeric(BooleanType())


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("int", IntegerType()),
            ("INT", IntegerType()),
            ("bigint", LongType()),
            ("tinyint", ByteType()),
            ("string", StringType()),
            ("binary", BinaryType()),
            ("double", DoubleType()),
            ("timestamp_ntz", TimestampNTZType()),
            ("decimal(10,2)", DecimalType(10, 2)),
            ("decimal", DecimalType()),
            ("char(5)", CharType(5)),
            ("varchar(3)", VarcharType(3)),
            ("array<int>", ArrayType(IntegerType())),
            ("map<int,string>", MapType(IntegerType(), StringType())),
        ],
    )
    def test_atomic_and_parameterized(self, text, expected):
        assert parse_type(text) == expected

    def test_struct(self):
        dtype = parse_type("struct<Aa:int,bB:string>")
        assert isinstance(dtype, StructType)
        assert dtype.field_names() == ("Aa", "bB")

    def test_nested(self):
        dtype = parse_type("map<string,array<decimal(5,2)>>")
        assert dtype == MapType(StringType(), ArrayType(DecimalType(5, 2)))

    def test_deeply_nested_struct(self):
        dtype = parse_type("struct<a:map<string,int>,b:array<string>>")
        assert isinstance(dtype, StructType)
        assert len(dtype.fields) == 2

    def test_garbage_raises(self):
        with pytest.raises(SchemaError):
            parse_type("frobnicate")

    def test_roundtrip_through_simple_string(self):
        for text in ("decimal(10,2)", "array<map<string,int>>", "char(7)"):
            dtype = parse_type(text)
            assert parse_type(dtype.simple_string()) == dtype

    def test_null_type_accepts_nothing(self):
        assert not NullType().accepts(0)
        assert NullType().accepts(None)
