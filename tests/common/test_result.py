"""Unit tests for QueryResult."""

from repro.common.result import QueryResult
from repro.common.row import Row
from repro.common.schema import Schema


def make_result(rows, interface="test"):
    schema = Schema.of(("a", "int"), ("b", "string"))
    return QueryResult(
        schema=schema,
        rows=tuple(Row(r, schema) for r in rows),
        interface=interface,
    )


class TestQueryResult:
    def test_len_and_iter(self):
        result = make_result([(1, "x"), (2, "y")])
        assert len(result) == 2
        assert [tuple(r) for r in result] == [(1, "x"), (2, "y")]

    def test_first(self):
        assert make_result([]).first() is None
        assert tuple(make_result([(1, "x")]).first()) == (1, "x")

    def test_column(self):
        result = make_result([(1, "x"), (2, "y")])
        assert result.column("b") == ["x", "y"]
        assert result.column("a") == [1, 2]

    def test_same_rows(self):
        left = make_result([(1, "x")])
        right = make_result([(1, "x")], interface="other")
        assert left.same_rows(right)
        assert not left.same_rows(make_result([(2, "x")]))
        assert not left.same_rows(make_result([]))

    def test_to_tuples(self):
        assert make_result([(1, "x")]).to_tuples() == [(1, "x")]

    def test_empty_result_defaults(self):
        result = QueryResult(schema=Schema(()))
        assert len(result) == 0
        assert result.warnings == ()
