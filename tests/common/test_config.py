"""Unit tests for the configuration plane: provenance and merging."""

import pytest

from repro.common.config import (
    ConfigKey,
    Configuration,
    MergePolicy,
    parse_bool,
    parse_duration_ms,
    parse_int,
    parse_memory_mb,
)
from repro.errors import ConfigValueError, UnknownConfigKeyError


class TestParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [("true", True), ("1", True), ("on", True), ("FALSE", False), ("no", False)],
    )
    def test_parse_bool(self, text, expected):
        assert parse_bool(text) is expected

    def test_parse_bool_invalid(self):
        with pytest.raises(ConfigValueError):
            parse_bool("maybe")

    def test_parse_int(self):
        assert parse_int(" 42 ") == 42
        with pytest.raises(ConfigValueError):
            parse_int("4x")

    @pytest.mark.parametrize(
        "text,expected",
        [("1024", 1024), ("1024m", 1024), ("2g", 2048), ("1GB", 1024)],
    )
    def test_parse_memory(self, text, expected):
        assert parse_memory_mb(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [("500", 500), ("500ms", 500), ("2s", 2000), ("1min", 60000)],
    )
    def test_parse_duration(self, text, expected):
        assert parse_duration_ms(text) == expected


@pytest.fixture
def conf():
    conf = Configuration(system="test")
    conf.declare(ConfigKey("a.flag", default=False, parser=parse_bool))
    conf.declare(ConfigKey("a.size", default=10, parser=parse_int))
    return conf


class TestConfiguration:
    def test_defaults(self, conf):
        assert conf.get("a.flag") is False
        assert conf.get("a.size") == 10
        assert conf.get("unknown", "fallback") == "fallback"

    def test_set_parses_strings(self, conf):
        conf.set("a.flag", "true")
        assert conf.get("a.flag") is True

    def test_set_keeps_typed_values(self, conf):
        conf.set("a.size", 42)
        assert conf.get("a.size") == 42

    def test_strict_rejects_unknown(self):
        conf = Configuration(system="strict", strict=True)
        with pytest.raises(UnknownConfigKeyError):
            conf.set("nope", 1)

    def test_provenance_chain(self, conf):
        conf.set("a.size", 1, source="file")
        conf.set("a.size", 2, source="cli")
        entry = conf.entry("a.size")
        assert entry.provenance_chain() == ["cli", "file"]

    def test_audit_trail(self, conf):
        conf.set("a.size", 1)
        conf.set("a.flag", "true")
        assert [e.key for e in conf.audit_trail] == ["a.size", "a.flag"]

    def test_unset(self, conf):
        conf.set("a.size", 1)
        conf.unset("a.size")
        assert conf.get("a.size") == 10  # back to default
        assert not conf.is_set("a.size")

    def test_effective_items_include_defaults(self, conf):
        conf.set("a.size", 1)
        effective = dict(conf.effective_items())
        assert effective == {"a.size": 1, "a.flag": False}

    def test_copy_is_independent(self, conf):
        conf.set("a.size", 1)
        clone = conf.copy()
        clone.set("a.size", 2)
        assert conf.get("a.size") == 1


class TestMerge:
    def _pair(self):
        left = Configuration(system="left")
        left.set("k", "left-value", source="operator")
        right = Configuration(system="right")
        right.set("k", "right-value", source="default")
        right.set("only-right", 1)
        return left, right

    def test_prefer_self_keeps_and_reports(self):
        left, right = self._pair()
        losers = left.merge(right, MergePolicy.PREFER_SELF)
        assert left.get("k") == "left-value"
        assert left.get("only-right") == 1
        assert [l.value for l in losers] == ["right-value"]

    def test_prefer_other_overwrites_with_provenance(self):
        left, right = self._pair()
        left.merge(right, MergePolicy.PREFER_OTHER)
        assert left.get("k") == "right-value"
        # the overwrite is recorded: old entry reachable in the chain
        assert left.entry("k").provenance_chain() == ["right", "operator"]

    def test_silent_overwrite_scrubs_history(self):
        left, right = self._pair()
        losers = left.merge(right, MergePolicy.SILENT_OVERWRITE)
        assert left.get("k") == "right-value"
        # SPARK-16901 shape: the losing value is gone from the chain
        assert left.entry("k").provenance_chain() == ["right"]
        assert losers and losers[0].value == "left-value"

    def test_merge_of_disjoint_keys_has_no_losers(self):
        left = Configuration(system="l")
        left.set("x", 1)
        right = Configuration(system="r")
        right.set("y", 2)
        assert left.merge(right) == []
        assert dict(left.explicit_items())["y"] == 2
        # a second merge collides on the now-present key
        assert len(left.merge(right)) == 1
