"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.events import EventLoop, Process, SimClock


class TestSimClock:
    def test_monotonic(self):
        clock = SimClock()
        clock.advance_to(10)
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_start_offset(self):
        assert SimClock(100).now_ms == 100


class TestEventLoop:
    def test_fifo_within_same_time(self):
        loop = EventLoop()
        order = []
        loop.call_at(5, lambda: order.append("a"))
        loop.call_at(5, lambda: order.append("b"))
        loop.run_until(10)
        assert order == ["a", "b"]

    def test_time_ordering(self):
        loop = EventLoop()
        order = []
        loop.call_at(20, lambda: order.append("late"))
        loop.call_at(10, lambda: order.append("early"))
        loop.run_until(30)
        assert order == ["early", "late"]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.call_at(10, lambda: fired.append(1))
        loop.call_at(50, lambda: fired.append(2))
        loop.run_until(20)
        assert fired == [1]
        assert loop.now_ms == 20
        assert loop.pending == 1

    def test_cancelled_events_skipped(self):
        loop = EventLoop()
        fired = []
        event = loop.call_at(5, lambda: fired.append(1))
        event.cancel()
        loop.run_until(10)
        assert fired == []

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.run_until(100)
        with pytest.raises(ValueError):
            loop.call_at(50, lambda: None)

    def test_call_after_relative(self):
        loop = EventLoop()
        loop.run_until(100)
        times = []
        loop.call_after(25, lambda: times.append(loop.now_ms))
        loop.run_until(200)
        assert times == [125]

    def test_self_rescheduling_chain(self):
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                loop.call_after(10, tick)

        loop.call_after(10, tick)
        loop.run_to_completion()
        assert count[0] == 5
        assert loop.now_ms == 50

    def test_livelock_guard(self):
        loop = EventLoop()

        def forever():
            loop.call_after(0, forever)

        loop.call_after(0, forever)
        with pytest.raises(RuntimeError):
            loop.run_to_completion(max_events=100)

    def test_determinism(self):
        def run_once():
            loop = EventLoop()
            seen = []
            for delay in (30, 10, 20, 10):
                loop.call_after(
                    delay, lambda d=delay: seen.append((loop.now_ms, d))
                )
            loop.run_to_completion()
            return seen

        assert run_once() == run_once()

    def test_processed_counter(self):
        loop = EventLoop()
        for i in range(4):
            loop.call_at(i, lambda: None)
        loop.run_to_completion()
        assert loop.processed == 4


class TestProcess:
    def test_schedule_uses_loop(self):
        loop = EventLoop()
        process = Process(loop, "p")
        fired = []
        process.schedule(15, lambda: fired.append(process.now_ms))
        loop.run_to_completion()
        assert fired == [15]
