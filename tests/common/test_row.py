"""Unit tests for Row and the value-equality used by the WR oracle."""

import decimal
import math

from repro.common.row import Row, rows_equal, values_equal
from repro.common.schema import Schema


class TestRow:
    def test_indexing(self):
        row = Row((1, "a"))
        assert row[0] == 1
        assert row[1] == "a"
        assert len(row) == 2

    def test_name_indexing_with_schema(self):
        schema = Schema.of(("id", "int"), ("name", "string"))
        row = Row((1, "a"), schema)
        assert row["name"] == "a"

    def test_name_indexing_without_schema_raises(self):
        try:
            Row((1,))["x"]
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_equality_with_tuple(self):
        assert Row((1, 2)) == (1, 2)

    def test_hashable(self):
        assert hash(Row((1, 2))) == hash((1, 2))

    def test_with_schema(self):
        schema = Schema.of(("a", "int"))
        assert Row((1,)).with_schema(schema)["a"] == 1


class TestValuesEqual:
    def test_nan_equals_nan(self):
        assert values_equal(math.nan, math.nan)

    def test_infinities(self):
        assert values_equal(math.inf, math.inf)
        assert not values_equal(math.inf, -math.inf)

    def test_none_only_equals_none(self):
        assert values_equal(None, None)
        assert not values_equal(None, 0)
        assert not values_equal("", None)

    def test_bool_never_equals_int(self):
        assert not values_equal(True, 1)
        assert not values_equal(0, False)

    def test_int_never_equals_float(self):
        assert not values_equal(1, 1.0)

    def test_decimal_scale_matters(self):
        # the type is the same; plain Decimal equality applies
        assert values_equal(decimal.Decimal("3.1"), decimal.Decimal("3.10"))

    def test_decimal_vs_float_differ(self):
        assert not values_equal(decimal.Decimal("1.5"), 1.5)

    def test_nested_lists(self):
        assert values_equal([1, [2, None]], [1, [2, None]])
        assert not values_equal([1, [2]], [1, [3]])

    def test_list_equals_tuple(self):
        assert values_equal([1, 2], (1, 2))

    def test_dicts(self):
        assert values_equal({"a": math.nan}, {"a": math.nan})
        assert not values_equal({"a": 1}, {"b": 1})

    def test_bytes_vs_str(self):
        assert not values_equal(b"a", "a")


class TestRowsEqual:
    def test_equal_rows(self):
        assert rows_equal(Row((math.nan, 1)), Row((math.nan, 1)))

    def test_arity_mismatch(self):
        assert not rows_equal(Row((1,)), Row((1, 2)))
