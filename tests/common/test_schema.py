"""Unit tests for schemas and their case semantics."""

import pytest

from repro.common.schema import Field, Schema
from repro.common.types import IntegerType, StringType, parse_type
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema.of(("Id", "int"), ("Name", "string"))


class TestConstruction:
    def test_of_builder(self, schema):
        assert schema.names() == ("Id", "Name")
        assert schema.types() == (IntegerType(), StringType())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Field("a", IntegerType()), Field("a", StringType())))

    def test_case_insensitive_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                (Field("Aa", IntegerType()), Field("aa", StringType())),
                case_sensitive=False,
            )

    def test_case_sensitive_near_duplicates_allowed(self):
        schema = Schema(
            (Field("Aa", IntegerType()), Field("aa", StringType())),
            case_sensitive=True,
        )
        assert len(schema) == 2


class TestLookup:
    def test_index_of_exact(self, schema):
        assert schema.index_of("Name") == 1

    def test_case_sensitive_lookup_misses(self, schema):
        with pytest.raises(SchemaError):
            schema.index_of("name")

    def test_case_insensitive_lookup(self, schema):
        insensitive = schema.with_case_sensitivity(False)
        assert insensitive.index_of("name") == 1
        assert insensitive.has_column("ID")

    def test_field_accessor(self, schema):
        assert schema.field("Id").data_type == IntegerType()


class TestTransforms:
    def test_lower_cased_is_lossy(self, schema):
        lowered = schema.lower_cased()
        assert lowered.names() == ("id", "name")
        assert not lowered.case_sensitive

    def test_rename_positional(self, schema):
        renamed = schema.rename_positional()
        assert renamed.names() == ("_col0", "_col1")
        assert renamed.types() == schema.types()

    def test_map_types(self, schema):
        mapped = schema.map_types(lambda t: StringType())
        assert all(t == StringType() for t in mapped.types())
        assert mapped.names() == schema.names()

    def test_simple_string(self, schema):
        assert schema.simple_string() == "Id int, Name string"

    def test_not_nullable_rendering(self):
        schema = Schema((Field("a", IntegerType(), nullable=False),))
        assert "not null" in schema.simple_string()


class TestComparison:
    def test_same_shape_ignores_names(self, schema):
        other = Schema.of(("x", "int"), ("y", "string"))
        assert schema.same_shape(other)

    def test_equivalent_case_modes(self, schema):
        lowered = schema.lower_cased()
        assert schema.equivalent(lowered, case_sensitive=False)
        assert not schema.equivalent(lowered, case_sensitive=True)

    def test_equivalent_requires_same_types(self, schema):
        other = Schema.of(("Id", "bigint"), ("Name", "string"))
        assert not schema.equivalent(other, case_sensitive=True)

    def test_length_mismatch(self, schema):
        assert not schema.equivalent(Schema.of(("Id", "int")))


def test_nested_types_parse_in_of():
    schema = Schema.of(("m", "map<string,array<int>>"))
    assert schema.field("m").data_type == parse_type("map<string,array<int>>")
