"""Property-based tests (hypothesis) on the shared substrate."""

import decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import Configuration, MergePolicy
from repro.common.events import EventLoop
from repro.common.row import values_equal
from repro.common.types import (
    INTEGRAL_RANGES,
    ByteType,
    DecimalType,
    IntegerType,
    LongType,
    ShortType,
    parse_type,
)

_INTEGRALS = [ByteType(), ShortType(), IntegerType(), LongType()]


class TestTypeProperties:
    @given(st.integers())
    def test_integral_acceptance_matches_range(self, value):
        for dtype in _INTEGRALS:
            lo, hi = INTEGRAL_RANGES[dtype.name]
            assert dtype.accepts(value) == (lo <= value <= hi)

    @given(st.integers(min_value=1, max_value=38), st.data())
    def test_decimal_scale_never_exceeds_precision(self, precision, data):
        scale = data.draw(st.integers(min_value=0, max_value=precision))
        dtype = DecimalType(precision, scale)
        assert dtype.precision >= dtype.scale

    @given(
        st.decimals(
            allow_nan=False, allow_infinity=False, places=2,
            min_value=-10**6, max_value=10**6,
        )
    )
    def test_decimal_fits_is_consistent_with_accepts(self, value):
        dtype = DecimalType(10, 2)
        assert dtype.accepts(decimal.Decimal(value)) == dtype.fits(
            decimal.Decimal(value)
        )

    @given(
        st.sampled_from(
            [
                "int", "bigint", "decimal(12,4)", "char(9)",
                "array<smallint>", "map<string,double>",
                "struct<x:int,y:array<string>>",
            ]
        )
    )
    def test_parse_simple_string_roundtrip(self, text):
        dtype = parse_type(text)
        assert parse_type(dtype.simple_string()) == dtype


class TestValueEqualityProperties:
    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.floats(allow_nan=True),
                st.text(max_size=20),
            ),
            lambda children: st.lists(children, max_size=4),
            max_leaves=10,
        )
    )
    def test_reflexive(self, value):
        assert values_equal(value, value)

    @given(st.integers(), st.integers())
    def test_symmetric(self, a, b):
        assert values_equal(a, b) == values_equal(b, a)


class TestConfigProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["k1", "k2", "k3", "k4"]),
            st.integers(),
            max_size=4,
        ),
        st.dictionaries(
            st.sampled_from(["k1", "k2", "k3", "k4"]),
            st.integers(),
            max_size=4,
        ),
    )
    def test_prefer_self_never_changes_existing(self, mine, theirs):
        left = Configuration(system="l")
        for key, value in mine.items():
            left.set(key, value)
        right = Configuration(system="r")
        for key, value in theirs.items():
            right.set(key, value)
        left.merge(right, MergePolicy.PREFER_SELF)
        for key, value in mine.items():
            assert left.get(key) == value
        for key, value in theirs.items():
            if key not in mine:
                assert left.get(key) == value

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    def test_event_loop_fires_in_sorted_order(self, delays):
        loop = EventLoop()
        fired = []
        for delay in delays:
            loop.call_at(delay, lambda d=delay: fired.append(d))
        loop.run_to_completion()
        assert fired == sorted(delays)
