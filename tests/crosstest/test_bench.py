"""The benchmark harness: honest parallel legs on any host."""

import os

from repro.crosstest.bench import PR1_BASELINE_JOBS1_S, run_benchmark
from repro.crosstest.values import generate_inputs

#: a sliver of the corpus — bench math, not bench numbers, is under test
BENCH_INPUTS = generate_inputs()[:6]


def _fake_cores(monkeypatch, cores):
    monkeypatch.setattr(os, "cpu_count", lambda: cores)


class TestParallelLeg:
    def test_degenerate_single_core_host(self, monkeypatch):
        _fake_cores(monkeypatch, 1)
        document = run_benchmark(repeats=1, inputs=BENCH_INPUTS)
        parallel = document["parallel"]
        # never jobs=1-vs-jobs=1: the parallel leg runs a real pool
        assert parallel["jobs"] == 2
        assert parallel["pool"] == "process"
        assert parallel["degenerate"] is True

    def test_multi_core_host_not_degenerate(self, monkeypatch):
        _fake_cores(monkeypatch, 4)
        document = run_benchmark(repeats=1, inputs=BENCH_INPUTS)
        parallel = document["parallel"]
        assert parallel["jobs"] == 4
        assert parallel["pool"] == "process"
        assert parallel["degenerate"] is False

    def test_document_shape(self, monkeypatch):
        _fake_cores(monkeypatch, 1)
        document = run_benchmark(repeats=1, inputs=BENCH_INPUTS)
        assert document["benchmark"] == "crosstest-trial-matrix"
        assert document["baseline_jobs1_s"] == PR1_BASELINE_JOBS1_S
        for leg in ("jobs1", "jobs1_batch", "parallel"):
            section = document[leg]
            assert section["best_s"] > 0
            assert section["trials"] == 24 * len(BENCH_INPUTS)
            assert len(section["runs_s"]) == 1
        assert document["jobs1"]["jobs"] == 1
        assert document["parallel_speedup"] > 0

    def test_both_legs_run_the_same_matrix(self, monkeypatch):
        _fake_cores(monkeypatch, 1)
        document = run_benchmark(repeats=1, inputs=BENCH_INPUTS)
        assert document["jobs1"]["trials"] == document["parallel"]["trials"]
        assert document["jobs1"]["trials"] == document["jobs1_batch"]["trials"]


class TestBatchLeg:
    def test_batch_leg_flags_and_speedup(self, monkeypatch):
        _fake_cores(monkeypatch, 1)
        document = run_benchmark(repeats=1, inputs=BENCH_INPUTS)
        assert document["jobs1"]["batch"] is False
        assert document["parallel"]["batch"] is False
        assert document["jobs1_batch"]["batch"] is True
        assert document["jobs1_batch"]["jobs"] == 1
        assert document["batch_speedup"] > 0
