"""Tests for report shaping (log naming, JSON payload)."""

from repro.crosstest.oracles import OracleFailure
from repro.crosstest.report import CrossTestReport


def make_report(failures):
    return CrossTestReport(trials=[], failures=failures, evidence={})


def failure(group, oracle="wr"):
    return OracleFailure(
        oracle=oracle,
        group=group,
        input_id=1,
        fmt="orc",
        plans=("w_sql_r_sql",),
        detail="detail",
    )


class TestFailuresByLog:
    def test_builtin_groups_use_short_names(self):
        report = make_report(
            {
                "wr": [failure("spark_e2e"), failure("spark_hive")],
                "eh": [failure("hive_spark", oracle="eh")],
            }
        )
        logs = report.failures_by_log()
        assert set(logs) == {"ss_wr", "sh_wr", "hs_eh"}

    def test_custom_group_falls_back_to_raw_name(self):
        # regression: Plan(..., group="custom") used to KeyError here
        report = make_report({"wr": [failure("custom")]})
        logs = report.failures_by_log()
        assert set(logs) == {"custom_wr"}
        assert len(logs["custom_wr"]) == 1

    def test_mixed_builtin_and_custom_groups(self):
        report = make_report(
            {"difft": [failure("spark_e2e", "difft"), failure("team_x", "difft")]}
        )
        assert set(report.failures_by_log()) == {"ss_difft", "team_x_difft"}

    def test_to_json_with_custom_group_does_not_crash(self):
        report = make_report({"wr": [failure("custom")]})
        payload = report.to_json()
        assert "custom_wr" in payload["failures"]
