"""Unit tests for the three oracles over synthetic trials."""

import math

from repro.crosstest.harness import NO_ROWS, Outcome, Trial
from repro.crosstest.oracles import (
    all_failures,
    canonical,
    difft_failures,
    eh_failures,
    signature,
    wr_failures,
)
from repro.crosstest.plans import ALL_PLANS, Plan
from repro.crosstest.values import TestInput

TestInput.__test__ = False

PLAN_A = ALL_PLANS[0]  # w_sql_r_sql, spark_e2e
PLAN_B = ALL_PLANS[3]  # w_df_r_df, spark_e2e
PLAN_HIVE = ALL_PLANS[4]  # spark_hive group


def make_input(valid=True, value=5, expected=None):
    return TestInput(
        input_id=0,
        type_text="int",
        sql_literal=str(value),
        py_value=value,
        valid=valid,
        description="test",
        expected=expected,
    )


def ok(value, value_type="int", warnings=()):
    return Outcome(
        status="ok", value=value, value_type=value_type,
        row_count=1, warnings=tuple(warnings),
    )


def error(stage="write", error_type="CastError"):
    return Outcome(status="error", stage=stage, error_type=error_type,
                   error_message="boom")


class TestCanonicalAndSignature:
    def test_nan_canonical(self):
        assert canonical(math.nan) == "double:NaN"

    def test_bool_int_distinct(self):
        assert canonical(True) != canonical(1)

    def test_no_rows_distinct_from_null(self):
        assert canonical(NO_ROWS) != canonical(None)

    def test_signature_includes_type(self):
        assert signature(ok(5, "int")) != signature(ok(5, "bigint"))

    def test_signature_error_includes_stage(self):
        assert signature(error("write")) != signature(error("read"))

    def test_map_canonical_order_independent(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})


class TestWROracle:
    def test_pass_on_matching_value(self):
        trials = [Trial(PLAN_A, "orc", make_input(), ok(5))]
        assert wr_failures(trials) == []

    def test_fail_on_value_change(self):
        trials = [Trial(PLAN_A, "orc", make_input(), ok(6))]
        failures = wr_failures(trials)
        assert len(failures) == 1 and failures[0].oracle == "wr"

    def test_fail_on_error(self):
        trials = [Trial(PLAN_A, "orc", make_input(), error())]
        assert len(wr_failures(trials)) == 1

    def test_fail_on_vanished_row(self):
        trials = [Trial(PLAN_A, "orc", make_input(), ok(NO_ROWS))]
        failures = wr_failures(trials)
        assert "vanished" in failures[0].detail

    def test_expected_value_used_when_set(self):
        padded = make_input(value="ab", expected="ab   ")
        assert wr_failures([Trial(PLAN_A, "orc", padded, ok("ab   "))]) == []
        assert len(wr_failures([Trial(PLAN_A, "orc", padded, ok("ab"))])) == 1

    def test_invalid_inputs_ignored(self):
        trials = [Trial(PLAN_A, "orc", make_input(valid=False), error())]
        assert wr_failures(trials) == []


class TestEHOracle:
    def test_rejection_passes(self):
        trials = [Trial(PLAN_A, "orc", make_input(valid=False), error())]
        assert eh_failures(trials) == []

    def test_null_correction_passes(self):
        trials = [Trial(PLAN_A, "orc", make_input(valid=False), ok(None))]
        assert eh_failures(trials) == []

    def test_verbatim_storage_fails(self):
        trials = [Trial(PLAN_A, "orc", make_input(valid=False, value=300), ok(300))]
        failures = eh_failures(trials)
        assert len(failures) == 1 and failures[0].oracle == "eh"

    def test_mangled_storage_tolerated(self):
        # a wrapped value is not "the invalid value read back verbatim"
        trials = [Trial(PLAN_A, "orc", make_input(valid=False, value=300), ok(44))]
        assert eh_failures(trials) == []

    def test_valid_inputs_ignored(self):
        trials = [Trial(PLAN_A, "orc", make_input(valid=True), ok(5))]
        assert eh_failures(trials) == []


class TestDiffOracle:
    def test_agreement_passes(self):
        trials = [
            Trial(PLAN_A, "orc", make_input(), ok(5)),
            Trial(PLAN_B, "orc", make_input(), ok(5)),
        ]
        assert difft_failures(trials) == []

    def test_value_disagreement_fails(self):
        trials = [
            Trial(PLAN_A, "orc", make_input(), ok(5)),
            Trial(PLAN_B, "orc", make_input(), ok(6)),
        ]
        failures = difft_failures(trials)
        assert len(failures) == 1
        assert set(failures[0].plans) == {PLAN_A.name, PLAN_B.name}

    def test_error_vs_value_fails(self):
        trials = [
            Trial(PLAN_A, "orc", make_input(), error()),
            Trial(PLAN_B, "orc", make_input(), ok(None)),
        ]
        assert len(difft_failures(trials)) == 1

    def test_cross_format_disagreement_fails(self):
        trials = [
            Trial(PLAN_A, "orc", make_input(), ok(5)),
            Trial(PLAN_A, "avro", make_input(), error()),
        ]
        failures = difft_failures(trials)
        assert len(failures) == 1
        assert failures[0].fmt == "*"

    def test_groups_compared_independently(self):
        # spark_e2e and spark_hive disagreeing is not an intra-group diff
        trials = [
            Trial(PLAN_A, "orc", make_input(), ok(5)),
            Trial(PLAN_HIVE, "orc", make_input(), ok(6)),
        ]
        assert difft_failures(trials) == []

    def test_type_violation_is_a_diff(self):
        trials = [
            Trial(PLAN_A, "orc", make_input(), ok(5, "tinyint")),
            Trial(PLAN_B, "orc", make_input(), ok(5, "int")),
        ]
        assert len(difft_failures(trials)) == 1


def test_all_failures_shape():
    trials = [Trial(PLAN_A, "orc", make_input(), ok(5))]
    result = all_failures(trials)
    assert set(result) == {"wr", "eh", "difft"}
