"""Report byte-identity of batched lanes vs isolated execution.

The lane layer's acceptance bar: ``--batch`` (the default) must render
a report byte-identical to ``--no-batch`` at every jobs/pool setting,
with tracing and fault injection both on and off. Traced and
fault-injected runs keep the isolated path by construction (lanes
would perturb span trees and fault visit counters), so their identity
is the gate that the gating itself works; the plain runs are where
lanes actually engage. Runs on the distilled smoke corpus so the full
grid stays cheap.
"""

import pytest

from repro.crosstest.report import run_crosstest
from repro.crosstest.smoke import smoke_inputs
from repro.faults import BUILTIN_PLANS

SETTINGS = [
    (1, "auto"),
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
]

#: span content depends on plan-cache warmth; pinned off exactly as in
#: test_parallel_identity so traced comparisons are deterministic
NO_CACHE = {"repro.plan.cache.enabled": "false"}


@pytest.fixture(scope="module")
def smoke():
    return smoke_inputs()


@pytest.fixture(scope="module")
def isolated_plain(smoke):
    return run_crosstest(inputs=smoke, jobs=1, batch=False).to_json()


@pytest.fixture(scope="module")
def isolated_traced(smoke):
    return run_crosstest(
        inputs=smoke, conf_overrides=NO_CACHE, jobs=1,
        tracing=True, batch=False,
    ).to_json()


@pytest.fixture(scope="module")
def isolated_faulted(smoke):
    return run_crosstest(
        inputs=smoke,
        jobs=1,
        fault_plan=BUILTIN_PLANS["smoke"],
        fault_seed=7,
        batch=False,
    ).to_json()


class TestBatchIdentity:
    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_plain_report_identical(self, smoke, isolated_plain, jobs, pool):
        report = run_crosstest(
            inputs=smoke, jobs=jobs, pool=pool, batch=True
        )
        assert report.to_json() == isolated_plain

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_traced_report_identical(self, smoke, isolated_traced, jobs, pool):
        report = run_crosstest(
            inputs=smoke,
            conf_overrides=NO_CACHE,
            jobs=jobs,
            pool=pool,
            tracing=True,
            batch=True,
        )
        assert report.to_json() == isolated_traced

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_faulted_report_identical(
        self, smoke, isolated_faulted, jobs, pool
    ):
        report = run_crosstest(
            inputs=smoke,
            jobs=jobs,
            pool=pool,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=7,
            batch=True,
        )
        assert report.to_json() == isolated_faulted

    def test_batch_is_the_default(self, smoke, isolated_plain):
        report = run_crosstest(inputs=smoke, jobs=1)
        assert report.to_json() == isolated_plain
