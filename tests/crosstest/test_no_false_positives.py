"""Soundness of the harness: the oracles fire on discrepancies, not on
the engines' happy path."""

from repro.crosstest.harness import CrossTester
from repro.crosstest.oracles import difft_failures, wr_failures
from repro.crosstest.plans import Interface, Plan


class TestBestCaseIsClean:
    """The least-discrepant slice — SparkSQL to SparkSQL over Parquet —
    must round-trip every valid input: WR failures here would be harness
    false positives, not cross-system findings."""

    def test_zero_wr_failures(self):
        plan = Plan(Interface.SPARKSQL, Interface.SPARKSQL, "spark_e2e")
        trials = CrossTester(plans=(plan,), formats=("parquet",)).run()
        failures = wr_failures(trials)
        assert failures == [], [f.detail for f in failures[:5]]

    def test_single_plan_single_format_no_diffs(self):
        # with one plan and one format there is nothing to differ from
        plan = Plan(Interface.SPARKSQL, Interface.SPARKSQL, "spark_e2e")
        trials = CrossTester(plans=(plan,), formats=("parquet",)).run()
        assert difft_failures(trials) == []

    def test_hive_to_hive_is_also_clean_for_its_own_writes(self):
        # Hive reading what Hive wrote (same interface, no crossing):
        # lenient writes may NULL invalid inputs, but valid ones that
        # Hive accepted must read back — modulo Hive's documented NaN
        # degradation, which is a read-side property of the engine.
        plan = Plan(Interface.HIVEQL, Interface.HIVEQL, "hive_hive")
        trials = CrossTester(plans=(plan,), formats=("parquet",)).run()
        failures = [
            f
            for f in wr_failures(trials)
            if "nan" not in f.detail.lower() and "inf" not in f.detail.lower()
        ]
        # nothing beyond the documented non-finite-double semantics fails
        assert failures == [], [f.detail for f in failures[:5]]
