"""Classification of the full cross-test run — the §8.2 results."""

from repro.crosstest.catalog import CATEGORY_MEMBERS, Category
from repro.crosstest.classify import found_discrepancies


class TestAllFifteenFound:
    def test_every_catalog_entry_discovered(self, full_report):
        assert full_report.found_numbers == set(range(1, 16))

    def test_every_entry_has_concrete_evidence(self, full_report):
        for number, evidence in full_report.evidence.items():
            assert evidence.found, f"discrepancy #{number} has no evidence"
            assert all(
                t.test_input is not None for t in evidence.trials
            )

    def test_category_counts_match_section_8_2(self, full_report):
        counts = full_report.category_counts_found()
        assert counts[Category.CANNOT_READ] == 2
        assert counts[Category.TYPE_VIOLATION] == 2
        assert counts[Category.INTERNAL_CONFIG] == 5
        assert counts[Category.INCONSISTENT_ERROR] == 7
        assert counts[Category.CUSTOM_CONFIG] == 8


class TestEvidenceShapes:
    def test_discrepancy_1_is_avro_read_error(self, full_report):
        for trial in full_report.evidence[1].trials:
            assert trial.fmt == "avro"
            assert trial.outcome.error_type == "IncompatibleSchemaException"

    def test_discrepancy_2_is_hive_read_error(self, full_report):
        for trial in full_report.evidence[2].trials:
            assert trial.plan.reader == "hiveql"
            assert trial.plan.writer == "dataframe"
            assert "scale" in trial.outcome.error_message

    def test_discrepancy_3_carries_warning(self, full_report):
        for trial in full_report.evidence[3].trials:
            assert any(
                "not case preserving" in w for w in trial.outcome.warnings
            )
            assert trial.outcome.value_type == "int"

    def test_discrepancy_4_spans_formats(self, full_report):
        # evidence is the avro failures; the predicate required ORC or
        # Parquet to succeed on the same input
        assert all(t.fmt == "avro" for t in full_report.evidence[4].trials)

    def test_discrepancy_6_and_7_share_inputs_kind(self, full_report):
        nan_trials = full_report.evidence[6].trials
        inf_trials = full_report.evidence[7].trials
        assert all(t.outcome.value is None for t in nan_trials)
        assert all(not t.outcome.ok for t in inf_trials)

    def test_discrepancy_8_type_changed(self, full_report):
        for trial in full_report.evidence[8].trials:
            assert trial.test_input.type_text == "timestamp_ntz"
            assert trial.outcome.value_type == "timestamp"

    def test_discrepancy_15_is_eh_hole(self, full_report):
        for trial in full_report.evidence[15].trials:
            assert trial.plan.writer == "dataframe"
            assert trial.outcome.value == trial.test_input.py_value


class TestFailureLogs:
    def test_paper_log_names_present(self, full_report):
        logs = full_report.failures_by_log()
        for name in ("ss_difft", "ss_wr", "ss_eh", "sh_difft", "hs_difft"):
            assert name in logs and logs[name], f"missing failures in {name}"

    def test_failures_reference_real_inputs(self, full_report):
        logs = full_report.failures_by_log()
        max_id = max(t.test_input.input_id for t in full_report.trials)
        for failures in logs.values():
            for failure in failures:
                assert 0 <= failure.input_id <= max_id

    def test_json_export_is_plain_data(self, full_report):
        import json

        blob = json.dumps(full_report.to_json())
        assert "found_discrepancies" in blob

    def test_summary_mentions_fifteen(self, full_report):
        text = "\n".join(full_report.summary_lines())
        assert "15/15" in text
