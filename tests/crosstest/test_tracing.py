"""Traced cross-test runs: byte-identical reports, process-pool span
shipping, and two-sided discrepancy traces."""

import json

from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs

#: operations on the writer side of a cross-system seam
WRITER_OPS = ("encode", "write_segment", "write", "create_table", "put")
#: operations on the reader side
READER_OPS = (
    "decode",
    "read_segments",
    "read_partitioned_segments",
    "resolve",
    "get_table",
    "scan",
)


def _subset_inputs(count=12):
    return generate_inputs()[:count]


class TestReportByteIdentity:
    """Tracing must never change the rendered report (acceptance 5)."""

    def _render(self, report):
        return (
            json.dumps(report.to_json(), sort_keys=True),
            "\n".join(report.summary_lines()),
        )

    def test_traced_equals_untraced_sequential(self):
        inputs = _subset_inputs()
        plain = run_crosstest(inputs=inputs, jobs=1)
        traced = run_crosstest(inputs=inputs, jobs=1, tracing=True)
        assert self._render(plain) == self._render(traced)

    def test_traced_equals_untraced_process_pool(self):
        inputs = _subset_inputs()
        plain = run_crosstest(inputs=inputs, jobs=1)
        traced = run_crosstest(
            inputs=inputs, jobs=4, pool="process", tracing=True
        )
        assert self._render(plain) == self._render(traced)

    def test_full_traced_report_matches_untraced(
        self, full_report, full_traced_report
    ):
        assert self._render(full_report) == self._render(full_traced_report)


class TestTraceCapture:
    def test_every_trial_has_a_span_tree(self):
        inputs = _subset_inputs()
        report = run_crosstest(inputs=inputs, jobs=1, tracing=True)
        assert report.traces is not None
        assert set(report.traces) == set(range(len(report.trials)))
        assert all(report.traces[i] for i in report.traces)

    def test_untraced_run_attaches_nothing(self):
        report = run_crosstest(inputs=_subset_inputs(4), jobs=1)
        assert report.traces is None
        assert report.oracle_spans == ()

    def test_root_span_names_the_trial(self):
        inputs = _subset_inputs(4)
        report = run_crosstest(inputs=inputs, jobs=1, tracing=True)
        for index, trial in enumerate(report.trials):
            spans = report.traces[index]
            root = next(s for s in spans if s.name == "crosstest.trial")
            assert root.attributes["plan"] == trial.plan.name
            assert root.attributes["fmt"] == trial.fmt
            assert root.attributes["input_id"] == trial.test_input.input_id
            assert root.trace_id == (
                f"{trial.plan.name}/{trial.fmt}/{trial.test_input.input_id}"
            )

    def test_spans_ship_back_from_process_workers(self):
        inputs = _subset_inputs()
        report = run_crosstest(
            inputs=inputs, jobs=4, pool="process", tracing=True
        )
        expected = len(ALL_PLANS) * 3 * len(inputs)
        assert len(report.trials) == expected
        assert set(report.traces) == set(range(expected))
        for index, trial in enumerate(report.trials):
            root = next(
                s
                for s in report.traces[index]
                if s.name == "crosstest.trial"
            )
            assert root.attributes["input_id"] == trial.test_input.input_id

    def test_oracle_phase_is_traced(self):
        report = run_crosstest(inputs=_subset_inputs(4), jobs=1, tracing=True)
        names = {s.name for s in report.oracle_spans}
        assert {"oracle.wr", "oracle.eh", "oracle.difft"} <= names
        assert all(
            s.boundary == "crosstest->oracle"
            for s in report.oracle_spans
            if s.name.startswith("oracle.")
        )


class TestDiscrepancyTraces:
    """Acceptance 3: every discrepancy trace shows both sides of the
    seam — at least one writer-side and one reader-side boundary span."""

    def test_all_fifteen_found_with_tracing_on(self, full_traced_report):
        assert len(full_traced_report.found_numbers) == 15

    def test_every_trace_has_writer_and_reader_spans(
        self, full_traced_report
    ):
        traces = full_traced_report.discrepancy_traces()
        assert sorted(traces) == sorted(full_traced_report.found_numbers)
        for number, spans in traces.items():
            boundary_spans = [s for s in spans if s.boundary]
            writers = [
                s for s in boundary_spans if s.operation in WRITER_OPS
            ]
            readers = [
                s for s in boundary_spans if s.operation in READER_OPS
            ]
            assert writers, f"discrepancy #{number}: no writer-side span"
            assert readers, f"discrepancy #{number}: no reader-side span"

    def test_trace_covers_the_full_differential_bucket(
        self, full_traced_report
    ):
        number = min(full_traced_report.found_numbers)
        spans = full_traced_report.discrepancy_trace(number)
        witness = full_traced_report.evidence[number].trials[0]
        input_id = witness.test_input.input_id
        trace_ids = {s.trace_id for s in spans}
        expected = {
            f"{t.plan.name}/{t.fmt}/{t.test_input.input_id}"
            for t in full_traced_report.trials
            if t.test_input.input_id == input_id
        }
        assert trace_ids == expected

    def test_untraced_report_yields_empty_traces(self, full_report):
        number = min(full_report.found_numbers)
        assert full_report.discrepancy_trace(number) == []
