"""Fault-injected cross-test runs: byte identity, reproducibility,
robustness classification, and process-pool record shipping."""

import json

from repro.crosstest import CrossTestMetrics
from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs
from repro.faults import BUILTIN_PLANS, EMPTY_PLAN, FaultPlan, FaultRule


def _subset_inputs(count=12):
    return generate_inputs()[:count]


def _render(report):
    return (
        json.dumps(report.to_json(), sort_keys=True),
        "\n".join(report.summary_lines()),
    )


def _fault_render(report):
    assert report.faults is not None
    return json.dumps(report.faults.to_json(), sort_keys=True)


class TestEmptyPlanByteIdentity:
    """An empty plan must be indistinguishable from no plan at all."""

    def test_jobs1(self):
        inputs = _subset_inputs()
        plain = run_crosstest(inputs=inputs, jobs=1)
        empty = run_crosstest(inputs=inputs, jobs=1, fault_plan=EMPTY_PLAN)
        assert empty.faults is None
        assert _render(plain) == _render(empty)

    def test_jobs4(self):
        inputs = _subset_inputs()
        plain = run_crosstest(inputs=inputs, jobs=1)
        empty = run_crosstest(inputs=inputs, jobs=4, fault_plan=EMPTY_PLAN)
        assert _render(plain) == _render(empty)

    def test_no_fault_keys_in_metrics(self):
        metrics = CrossTestMetrics()
        run_crosstest(inputs=_subset_inputs(4), jobs=1, metrics=metrics)
        assert metrics.fault_counters["faults_injected"].value == 0
        assert "fault" not in "\n".join(metrics.summary_lines()).lower()


class TestReproducibility:
    """Fixed (plan, seed) -> identical schedule and classifications."""

    def test_same_seed_same_report(self):
        inputs = _subset_inputs()
        plan = BUILTIN_PLANS["smoke"]
        first = run_crosstest(
            inputs=inputs, jobs=1, fault_plan=plan, fault_seed=1337
        )
        second = run_crosstest(
            inputs=inputs, jobs=1, fault_plan=plan, fault_seed=1337
        )
        assert _fault_render(first) == _fault_render(second)
        assert _render(first) == _render(second)

    def test_jobs_invariant(self):
        inputs = _subset_inputs()
        plan = BUILTIN_PLANS["chaos"]
        sequential = run_crosstest(
            inputs=inputs, jobs=1, fault_plan=plan, fault_seed=7
        )
        threaded = run_crosstest(
            inputs=inputs, jobs=4, pool="thread", fault_plan=plan,
            fault_seed=7,
        )
        assert _fault_render(sequential) == _fault_render(threaded)

    def test_process_pool_ships_records(self):
        inputs = _subset_inputs()
        plan = BUILTIN_PLANS["chaos"]
        sequential = run_crosstest(
            inputs=inputs, jobs=1, fault_plan=plan, fault_seed=7
        )
        pooled = run_crosstest(
            inputs=inputs, jobs=4, pool="process", fault_plan=plan,
            fault_seed=7,
        )
        assert pooled.faults.injected_trials > 0
        assert _fault_render(sequential) == _fault_render(pooled)

    def test_seed_changes_schedule(self):
        inputs = _subset_inputs()
        plan = BUILTIN_PLANS["smoke"]
        a = run_crosstest(inputs=inputs, jobs=1, fault_plan=plan, fault_seed=1)
        b = run_crosstest(inputs=inputs, jobs=1, fault_plan=plan, fault_seed=2)
        assert _fault_render(a) != _fault_render(b)


class TestRobustness:
    def test_smoke_plan_has_no_mis_handled(self):
        # smoke only hits retry-guarded spark->metastore calls: every
        # injection is masked or becomes a typed boundary error
        report = run_crosstest(
            inputs=_subset_inputs(),
            jobs=1,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=1337,
        )
        counts = report.faults.counts()
        assert report.faults.injected_trials > 0
        assert counts["mis_handled"] == 0
        assert counts["masked"] + counts["gracefully_failed"] > 0

    def test_torn_writes_surface_wrong_system_errors(self):
        plan = FaultPlan(
            name="tear",
            rules=(
                FaultRule(
                    "*->hdfs", "torn_write", 0.6, operation="write_segment"
                ),
            ),
        )
        report = run_crosstest(
            inputs=_subset_inputs(), jobs=1, fault_plan=plan, fault_seed=3
        )
        modes = report.faults.mode_counts()
        assert report.faults.injected_trials > 0
        # a truncated blob is only noticed at read time, in the reader's
        # system — the paper's cross-the-cracks shape
        assert (
            modes.get("wrong_system_error", 0)
            + modes.get("silent_corruption", 0)
            > 0
        )

    def test_stale_metastore_mis_handled(self):
        report = run_crosstest(
            inputs=_subset_inputs(),
            jobs=1,
            fault_plan=BUILTIN_PLANS["stale-metastore"],
            fault_seed=5,
        )
        assert report.faults.injected_trials > 0
        assert report.faults.counts()["mis_handled"] > 0

    def test_unguarded_timeouts_are_hang_equivalent(self):
        # hive's metastore calls carry no retry policy on purpose:
        # a raw injected timeout escapes to the trial outcome
        plan = FaultPlan(
            name="hive-hang",
            rules=(FaultRule("hive->metastore", "timeout", 1.0),),
        )
        report = run_crosstest(
            inputs=_subset_inputs(4), jobs=1, fault_plan=plan, fault_seed=1
        )
        modes = report.faults.mode_counts()
        assert modes.get("hang_equivalent", 0) > 0

    def test_fault_metrics_counted(self):
        metrics = CrossTestMetrics()
        run_crosstest(
            inputs=_subset_inputs(),
            jobs=1,
            metrics=metrics,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=1337,
        )
        assert metrics.fault_counters["faults_injected"].value > 0
        assert metrics.fault_counters["boundary_attempts"].value > 0
        assert metrics.fault_counters["boundary_masked_calls"].value > 0
        summary = "\n".join(metrics.summary_lines())
        assert "faults" in summary

    def test_report_json_shape(self):
        report = run_crosstest(
            inputs=_subset_inputs(4),
            jobs=1,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=1337,
        )
        payload = report.to_json()["fault_robustness"]
        assert payload["plan"]["name"] == "smoke"
        assert payload["seed"] == 1337
        assert payload["injected_trials"] == len(payload["trials"])
        for entry in payload["trials"]:
            assert entry["classification"] in (
                "masked",
                "gracefully_failed",
                "mis_handled",
            )
            assert entry["injections"]
            assert entry["trial"].count("/") == 2

    def test_summary_names_mis_handled_trials(self):
        report = run_crosstest(
            inputs=_subset_inputs(4),
            jobs=1,
            fault_plan=BUILTIN_PLANS["stale-metastore"],
            fault_seed=5,
        )
        lines = report.summary_lines()
        assert any("fault plan: stale-metastore" in line for line in lines)
        if report.faults.mis_handled():
            assert any("MIS-HANDLED" in line for line in lines)
