"""Report byte-identity across jobs x pool x tracing x faults.

The acceptance bar for the batched result shipping: the rendered
report — and, for traced runs, every span payload — is identical at
jobs 1/2/4 on thread and process pools, with tracing and fault
injection both on and off. Runs on the distilled smoke corpus so the
full grid stays cheap.
"""

import pytest

from repro.crosstest.report import run_crosstest
from repro.crosstest.smoke import smoke_inputs
from repro.faults import BUILTIN_PLANS

SETTINGS = [
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
]


#: trace content that depends on what a worker executed before, not on
#: the input under test — the same exclusions
#: :mod:`repro.fuzz.coverage` documents for its feature extraction
_SCHEDULING_EVENT_TOKENS = ("memo", "plan_cache", "replayed")


def _span_payloads(report):
    """Traces as comparable JSON payloads, keyed by global trial index.

    Wall-clock fields (``start_s``, ``duration_s``, event offsets) are
    stripped — they legitimately differ between *runs* — and so is
    memo/cache traffic (``memo_hit`` attributes, ``*.memo_*`` /
    ``plan_cache.*`` events): prepare-memo warmth depends on which
    pooled deployment a trial happened to land on. Everything else —
    ids, structure, boundaries, statuses, errors, attributes — must be
    identical at every jobs/pool setting.
    """

    def strip(payload):
        payload = {
            key: value
            for key, value in payload.items()
            if key not in ("start_s", "duration_s")
        }
        attributes = dict(payload.get("attributes", {}))
        attributes.pop("memo_hit", None)
        payload["attributes"] = attributes
        payload["events"] = [
            {k: v for k, v in event.items() if k != "offset_s"}
            for event in payload.get("events", [])
            if not any(
                token in event["name"] for token in _SCHEDULING_EVENT_TOKENS
            )
        ]
        return payload

    return {
        index: [strip(span.to_json()) for span in spans]
        for index, spans in report.traces.items()
    }


@pytest.fixture(scope="module")
def smoke():
    return smoke_inputs()


@pytest.fixture(scope="module")
def plain_sequential(smoke):
    return run_crosstest(inputs=smoke, jobs=1).to_json()


#: span *content* depends on plan-cache warmth (a cache hit replays the
#: create instead of re-analyzing it), and warmth depends on worker
#: history — so span-level identity is asserted the way fuzz campaigns
#: run: with the plan cache pinned off. Outcome-neutral per the PR 2
#: cache-on/off byte-identity guarantee.
NO_CACHE = {"repro.plan.cache.enabled": "false"}


@pytest.fixture(scope="module")
def traced_sequential(smoke):
    return run_crosstest(
        inputs=smoke, conf_overrides=NO_CACHE, jobs=1, tracing=True
    )


@pytest.fixture(scope="module")
def faulted_sequential(smoke):
    return run_crosstest(
        inputs=smoke,
        jobs=1,
        fault_plan=BUILTIN_PLANS["smoke"],
        fault_seed=7,
    ).to_json()


class TestIdentity:
    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_plain_report_identical(self, smoke, plain_sequential, jobs, pool):
        report = run_crosstest(inputs=smoke, jobs=jobs, pool=pool)
        assert report.to_json() == plain_sequential

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_traced_report_and_spans_identical(
        self, smoke, traced_sequential, jobs, pool
    ):
        report = run_crosstest(
            inputs=smoke,
            conf_overrides=NO_CACHE,
            jobs=jobs,
            pool=pool,
            tracing=True,
        )
        assert report.to_json() == traced_sequential.to_json()
        assert _span_payloads(report) == _span_payloads(traced_sequential)

    @pytest.mark.parametrize("jobs,pool", SETTINGS)
    def test_faulted_report_identical(
        self, smoke, faulted_sequential, jobs, pool
    ):
        report = run_crosstest(
            inputs=smoke,
            jobs=jobs,
            pool=pool,
            fault_plan=BUILTIN_PLANS["smoke"],
            fault_seed=7,
        )
        assert report.to_json() == faulted_sequential

    def test_tracing_does_not_change_the_rendered_report(
        self, plain_sequential, traced_sequential
    ):
        assert traced_sequential.to_json() == plain_sequential
