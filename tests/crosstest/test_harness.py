"""Unit tests for the trial harness."""

import pytest

from repro.crosstest.harness import NO_ROWS, CrossTester, Deployment
from repro.crosstest.plans import ALL_PLANS, FORMATS, Plan
from repro.crosstest.values import TestInput

TestInput.__test__ = False


def make_input(type_text="int", sql="5", py=5, valid=True, input_id=0):
    return TestInput(input_id, type_text, sql, py, valid, "test")


PLANS_BY_NAME = {p.name: p for p in ALL_PLANS}


class TestRunTrial:
    def test_happy_path(self):
        tester = CrossTester(inputs=[make_input()])
        trial = tester.run_trial(PLANS_BY_NAME["w_sql_r_sql"], "parquet", make_input())
        assert trial.outcome.ok
        assert trial.outcome.value == 5
        assert trial.outcome.value_type == "int"
        assert trial.outcome.row_count == 1

    def test_all_interfaces_drive(self):
        for plan in ALL_PLANS:
            trial = CrossTester(inputs=[]).run_trial(plan, "parquet", make_input())
            assert trial.outcome.ok, (plan.name, trial.outcome)

    def test_write_error_recorded(self):
        bad = make_input(type_text="int", sql="2147483648", py=2**31, valid=False)
        trial = CrossTester(inputs=[]).run_trial(
            PLANS_BY_NAME["w_sql_r_sql"], "parquet", bad
        )
        assert not trial.outcome.ok
        assert trial.outcome.stage == "write"
        assert trial.outcome.error_type == "ArithmeticOverflowError"

    def test_create_error_recorded(self):
        bad_type = make_input(type_text="map<int,string>", sql="map(1,'x')", py={1: "x"})
        trial = CrossTester(inputs=[]).run_trial(
            PLANS_BY_NAME["w_sql_r_sql"], "avro", bad_type
        )
        assert trial.outcome.stage == "create"
        assert trial.outcome.error_type == "UnsupportedTypeError"

    def test_dataframe_create_error_lands_in_write_stage(self):
        # the DataFrame path creates during save, so the same failure
        # surfaces at the write stage — itself an interface discrepancy
        bad_type = make_input(type_text="map<int,string>", sql="map(1,'x')", py={1: "x"})
        trial = CrossTester(inputs=[]).run_trial(
            PLANS_BY_NAME["w_df_r_df"], "avro", bad_type
        )
        assert trial.outcome.stage == "write"

    def test_read_error_recorded(self):
        byte_input = make_input(type_text="tinyint", sql="5", py=5)
        trial = CrossTester(inputs=[]).run_trial(
            PLANS_BY_NAME["w_df_r_df"], "avro", byte_input
        )
        assert trial.outcome.stage == "read"
        assert trial.outcome.error_type == "IncompatibleSchemaException"

    def test_conf_overrides_applied(self):
        overflow = make_input(sql="2147483648", py=2**31, valid=False)
        tester = CrossTester(
            inputs=[],
            conf_overrides={"spark.sql.storeAssignmentPolicy": "legacy"},
        )
        trial = tester.run_trial(PLANS_BY_NAME["w_sql_r_sql"], "parquet", overflow)
        assert trial.outcome.ok
        assert trial.outcome.value == -(2**31)

    def test_trials_isolated(self):
        # the same table name is reused across trials: isolation matters
        tester = CrossTester(inputs=[])
        first = tester.run_trial(PLANS_BY_NAME["w_sql_r_sql"], "orc", make_input())
        second = tester.run_trial(PLANS_BY_NAME["w_sql_r_sql"], "orc", make_input(py=9, sql="9"))
        assert first.outcome.value == 5
        assert second.outcome.value == 9
        assert second.outcome.row_count == 1


class TestRunMatrix:
    def test_cartesian_size(self):
        inputs = [make_input(input_id=i) for i in range(3)]
        tester = CrossTester(inputs=inputs, plans=ALL_PLANS[:2], formats=("orc",))
        trials = tester.run()
        assert len(trials) == 3 * 2 * 1

    def test_default_corpus_size(self):
        tester = CrossTester()
        assert len(tester.inputs) == 422
        assert tester.plans == ALL_PLANS
        assert tester.formats == FORMATS


class TestDeployment:
    def test_shared_metastore(self):
        deployment = Deployment()
        deployment.spark.sql("CREATE TABLE t (a int) STORED AS orc")
        assert deployment.hive.metastore.table_exists("t")

    def test_unknown_interface_rejected(self):
        deployment = Deployment()
        with pytest.raises(ValueError):
            deployment.read("grpc", "t")
