"""Session-scoped cross-test run shared by classification/report tests."""

import pytest

from repro.crosstest.report import run_crosstest


@pytest.fixture(scope="session")
def full_report():
    """One full 10k-trial run of the §8 pipeline (a few seconds)."""
    return run_crosstest()


@pytest.fixture(scope="session")
def full_traced_report():
    """The same full run with per-trial span trees attached."""
    return run_crosstest(tracing=True)
