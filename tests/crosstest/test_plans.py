"""Unit tests for the Figure 6 test-plan matrix."""

import pytest

from repro.crosstest.plans import (
    ALL_PLANS,
    FORMATS,
    HIVE_TO_SPARK,
    SPARK_E2E,
    SPARK_TO_HIVE,
    Interface,
    plans_in_group,
)


class TestMatrix:
    def test_eight_plans(self):
        assert len(ALL_PLANS) == 8

    def test_group_sizes_match_figure6(self):
        assert len(SPARK_E2E) == 4
        assert len(SPARK_TO_HIVE) == 2
        assert len(HIVE_TO_SPARK) == 2

    def test_three_formats(self):
        assert FORMATS == ("orc", "parquet", "avro")

    def test_spark_e2e_covers_all_pairs(self):
        pairs = {(p.writer, p.reader) for p in SPARK_E2E}
        spark_ifaces = {Interface.SPARKSQL, Interface.DATAFRAME}
        assert pairs == {(w, r) for w in spark_ifaces for r in spark_ifaces}

    def test_hive_never_writes_in_spark_to_hive(self):
        assert all(p.writer != Interface.HIVEQL for p in SPARK_TO_HIVE)
        assert all(p.reader == Interface.HIVEQL for p in SPARK_TO_HIVE)

    def test_hive_always_writes_in_hive_to_spark(self):
        assert all(p.writer == Interface.HIVEQL for p in HIVE_TO_SPARK)

    def test_plan_names(self):
        names = {p.name for p in ALL_PLANS}
        assert "w_sql_r_sql" in names
        assert "w_df_r_hive" in names
        assert "w_hive_r_df" in names
        assert len(names) == 8

    def test_group_lookup(self):
        assert plans_in_group("spark_e2e") == SPARK_E2E
        with pytest.raises(ValueError):
            plans_in_group("nope")
