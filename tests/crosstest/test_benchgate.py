"""The bench-regression gate: threshold math and CLI behaviour."""

import json

import pytest

from repro.crosstest.benchgate import GateError, check, main


def _doc(best_s):
    return {"benchmark": "crosstest-trial-matrix", "jobs1": {"best_s": best_s}}


class TestCheck:
    def test_within_threshold_passes(self):
        ok, message = check(_doc(1.2), _doc(1.0), threshold=0.25)
        assert ok
        assert "1.20x" in message

    def test_improvement_passes(self):
        ok, _ = check(_doc(0.5), _doc(1.0), threshold=0.25)
        assert ok

    def test_regression_fails(self):
        ok, message = check(_doc(1.3), _doc(1.0), threshold=0.25)
        assert not ok
        assert "limit 1.25x" in message

    def test_exact_limit_passes(self):
        ok, _ = check(_doc(1.25), _doc(1.0), threshold=0.25)
        assert ok

    @pytest.mark.parametrize(
        "document", [{}, {"jobs1": {}}, {"jobs1": {"best_s": 0}}]
    )
    def test_malformed_document_rejected(self, document):
        with pytest.raises(GateError):
            check(document, _doc(1.0))


class TestMain:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _doc(2.0))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.9))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base, "--threshold", "1.0"]) == 0

    def test_missing_file_exit_two(self, tmp_path):
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([str(tmp_path / "nope.json"), "--baseline", base]) == 2

    def test_bad_json_exit_two(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text("{nope")
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([str(fresh), "--baseline", base]) == 2

    def test_negative_threshold_exit_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        assert main([fresh, "--threshold", "-1"]) == 2

    def test_committed_baseline_is_valid(self):
        with open("BENCH_crosstest.json", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["jobs1"]["best_s"] > 0
