"""The bench-regression gate: threshold math and CLI behaviour."""

import json

import pytest

from repro.crosstest.benchgate import GateError, check, main


def _doc(
    best_s,
    parallel_best_s=None,
    jobs=4,
    degenerate=False,
    key="parallel",
    batch_best_s=None,
):
    """A minimal bench document; the parallel leg defaults to a healthy
    2x speedup on a 4-worker process pool, the batch leg likewise."""
    if parallel_best_s is None:
        parallel_best_s = best_s / 2
    if batch_best_s is None:
        batch_best_s = best_s / 2
    return {
        "benchmark": "crosstest-trial-matrix",
        "jobs1": {"best_s": best_s},
        "jobs1_batch": {"best_s": batch_best_s, "batch": True},
        key: {
            "best_s": parallel_best_s,
            "jobs": jobs,
            "pool": "process",
            "degenerate": degenerate,
        },
    }


class TestCheck:
    def test_within_threshold_passes(self):
        ok, message = check(_doc(1.2), _doc(1.0), threshold=0.25)
        assert ok
        assert "1.20x" in message

    def test_improvement_passes(self):
        ok, _ = check(_doc(0.5), _doc(1.0), threshold=0.25)
        assert ok

    def test_regression_fails(self):
        ok, message = check(_doc(1.3), _doc(1.0), threshold=0.25)
        assert not ok
        assert "limit 1.25x" in message

    def test_exact_limit_passes(self):
        ok, _ = check(_doc(1.25), _doc(1.0), threshold=0.25)
        assert ok

    @pytest.mark.parametrize(
        "document", [{}, {"jobs1": {}}, {"jobs1": {"best_s": 0}}]
    )
    def test_malformed_document_rejected(self, document):
        with pytest.raises(GateError):
            check(document, _doc(1.0))


class TestParallelGate:
    def test_slower_parallel_fails_on_healthy_host(self):
        fresh = _doc(1.0, parallel_best_s=1.3)
        ok, message = check(fresh, _doc(1.0))
        assert not ok
        assert "speedup 0.77x" in message

    def test_break_even_parallel_passes(self):
        ok, _ = check(_doc(1.0, parallel_best_s=1.0), _doc(1.0))
        assert ok

    def test_custom_min_speedup(self):
        fresh = _doc(1.0, parallel_best_s=0.8)  # 1.25x
        ok, _ = check(fresh, _doc(1.0), min_parallel_speedup=1.5)
        assert not ok
        ok, _ = check(fresh, _doc(1.0), min_parallel_speedup=1.2)
        assert ok

    def test_degenerate_host_skips_speedup(self):
        fresh = _doc(1.0, parallel_best_s=2.0, jobs=2, degenerate=True)
        ok, message = check(fresh, _doc(1.0))
        assert ok
        assert "degenerate" in message and "not gated" in message

    def test_fresh_missing_parallel_section_rejected(self):
        fresh = {"jobs1": {"best_s": 1.0}}
        with pytest.raises(GateError, match="missing parallel"):
            check(fresh, _doc(1.0))

    def test_baseline_missing_parallel_section_rejected(self):
        with pytest.raises(GateError, match="missing parallel"):
            check(_doc(1.0), {"jobs1": {"best_s": 1.0}})

    @pytest.mark.parametrize(
        "section",
        [
            {"jobs": 4},
            {"best_s": 0, "jobs": 4},
            {"best_s": 1.0},
            {"best_s": 1.0, "jobs": 0},
            "not-a-dict",
        ],
    )
    def test_malformed_parallel_section_rejected(self, section):
        fresh = {"jobs1": {"best_s": 1.0}, "parallel": section}
        with pytest.raises(GateError):
            check(fresh, _doc(1.0))

    def test_legacy_jobs_auto_single_worker_not_gated(self):
        # pre-PR-6 documents: "jobs_auto" section, no degenerate flag.
        # jobs=1 means the leg never ran a real pool — skip the gate.
        legacy = _doc(1.0, parallel_best_s=1.1, jobs=1, key="jobs_auto")
        del legacy["jobs_auto"]["degenerate"]
        ok, message = check(legacy, _doc(1.0))
        assert ok
        assert "not gated" in message

    def test_legacy_jobs_auto_multi_worker_still_gated(self):
        legacy = _doc(1.0, parallel_best_s=1.5, jobs=4, key="jobs_auto")
        del legacy["jobs_auto"]["degenerate"]
        ok, _ = check(legacy, _doc(1.0))
        assert not ok


class TestBatchGate:
    def test_break_even_batch_passes(self):
        ok, message = check(_doc(1.0, batch_best_s=1.0), _doc(1.0))
        assert ok
        assert "batch leg 1.0000s speedup 1.00x" in message

    def test_slower_batch_fails(self):
        ok, message = check(_doc(1.0, batch_best_s=1.3), _doc(1.0))
        assert not ok
        assert "speedup 0.77x" in message

    def test_custom_min_batch_speedup(self):
        fresh = _doc(1.0, batch_best_s=0.5)  # 2.0x
        ok, _ = check(fresh, _doc(1.0), min_batch_speedup=2.5)
        assert not ok
        ok, _ = check(fresh, _doc(1.0), min_batch_speedup=2.0)
        assert ok

    def test_fresh_missing_batch_section_rejected(self):
        fresh = _doc(1.0)
        del fresh["jobs1_batch"]
        with pytest.raises(GateError, match="missing jobs1_batch"):
            check(fresh, _doc(1.0))

    def test_baseline_may_predate_the_batch_leg(self):
        baseline = _doc(1.0)
        del baseline["jobs1_batch"]
        ok, _ = check(_doc(1.0), baseline)
        assert ok

    @pytest.mark.parametrize(
        "section", [{}, {"best_s": 0}, {"best_s": -1.0}, "not-a-dict"]
    )
    def test_malformed_batch_section_rejected(self, section):
        fresh = _doc(1.0)
        fresh["jobs1_batch"] = section
        with pytest.raises(GateError):
            check(fresh, _doc(1.0))

    def test_batch_gated_even_on_degenerate_hosts(self):
        # a 1-core runner skips the parallel comparison but lanes run
        # at jobs=1 — the batch bar applies everywhere
        fresh = _doc(1.0, jobs=2, degenerate=True, batch_best_s=1.5)
        ok, _ = check(fresh, _doc(1.0))
        assert not ok


class TestMain:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _doc(2.0))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_parallel_regression_exit_one(self, tmp_path, capsys):
        fresh = self._write(
            tmp_path / "fresh.json", _doc(1.0, parallel_best_s=2.0)
        )
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_min_parallel_speedup_flag(self, tmp_path):
        fresh = self._write(
            tmp_path / "fresh.json", _doc(1.0, parallel_best_s=0.9)
        )
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert (
            main([fresh, "--baseline", base, "--min-parallel-speedup", "2.0"])
            == 1
        )
        assert (
            main([fresh, "--baseline", base, "--min-parallel-speedup", "1.0"])
            == 0
        )

    def test_bad_min_parallel_speedup_exit_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        assert main([fresh, "--min-parallel-speedup", "0"]) == 2

    def test_min_batch_speedup_flag(self, tmp_path):
        fresh = self._write(
            tmp_path / "fresh.json", _doc(1.0, batch_best_s=0.5)
        )
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert (
            main([fresh, "--baseline", base, "--min-batch-speedup", "3.0"])
            == 1
        )
        assert (
            main([fresh, "--baseline", base, "--min-batch-speedup", "2.0"])
            == 0
        )

    def test_bad_min_batch_speedup_exit_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        assert main([fresh, "--min-batch-speedup", "-1"]) == 2

    def test_missing_batch_section_exit_two(self, tmp_path, capsys):
        document = _doc(1.0)
        del document["jobs1_batch"]
        fresh = self._write(tmp_path / "fresh.json", document)
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 2
        assert "missing jobs1_batch" in capsys.readouterr().err

    def test_missing_parallel_section_exit_two(self, tmp_path, capsys):
        fresh = self._write(
            tmp_path / "fresh.json", {"jobs1": {"best_s": 1.0}}
        )
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base]) == 2
        assert "missing parallel" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.9))
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([fresh, "--baseline", base, "--threshold", "1.0"]) == 0

    def test_missing_file_exit_two(self, tmp_path):
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([str(tmp_path / "nope.json"), "--baseline", base]) == 2

    def test_bad_json_exit_two(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text("{nope")
        base = self._write(tmp_path / "base.json", _doc(1.0))
        assert main([str(fresh), "--baseline", base]) == 2

    def test_negative_threshold_exit_two(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _doc(1.0))
        assert main([fresh, "--threshold", "-1"]) == 2

    def test_committed_baseline_is_valid(self):
        with open("BENCH_crosstest.json", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["jobs1"]["best_s"] > 0
        parallel = document["parallel"]
        assert parallel["best_s"] > 0
        assert parallel["jobs"] >= 2
        assert parallel["pool"] == "process"
        assert isinstance(parallel["degenerate"], bool)
        batched = document["jobs1_batch"]
        assert batched["best_s"] > 0
        assert batched["batch"] is True
        # the lane layer's acceptance bar: the committed document must
        # show lanes at least halving the isolated jobs=1 wall time
        assert document["batch_speedup"] >= 2.0
