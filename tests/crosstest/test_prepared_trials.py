"""Prepared-trial machinery: pooled single trials, cache counters in the
metrics, and the plan-cache disable flag leaving the report untouched."""

import json

from repro.crosstest import CrossTestMetrics
from repro.crosstest.executor import worker_pool
from repro.crosstest.harness import CrossTester
from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs


def _plan(name):
    return next(plan for plan in ALL_PLANS if plan.name == name)


class TestPooledRunTrial:
    def test_single_trials_reuse_the_worker_pool(self):
        tester = CrossTester()
        test_input = generate_inputs()[0]
        plan = ALL_PLANS[0]
        first = tester.run_trial(plan, "orc", test_input)
        pool = worker_pool(tester.conf_overrides)
        pooled = len(pool._idle)
        second = tester.run_trial(plan, "orc", test_input)
        assert len(worker_pool(tester.conf_overrides)._idle) == pooled
        assert first.outcome == second.outcome

    def test_pool_is_keyed_by_conf_overrides(self):
        assert worker_pool({}) is worker_pool({})
        assert worker_pool({}) is not worker_pool({"spark.sql.ansi.enabled": "true"})
        assert worker_pool({"a": "1", "b": "2"}) is worker_pool(
            {"b": "2", "a": "1"}
        )


class TestCacheCounters:
    def test_metrics_report_plan_cache_traffic(self):
        metrics = CrossTestMetrics()
        run_crosstest(formats=("orc",), jobs=1, metrics=metrics)
        counts = {
            name: int(counter.value)
            for name, counter in metrics.cache_counters.items()
        }
        assert counts["plan_cache_hits"] > 0
        assert counts["deployments_created"] + counts["deployments_reused"] > 0

    def test_cache_summary_line(self):
        metrics = CrossTestMetrics()
        run_crosstest(formats=("orc",), jobs=1, metrics=metrics)
        line = metrics.cache_summary()
        assert "plan cache:" in line
        assert "hit_rate=" in line
        assert "deployments:" in line
        assert line in "\n".join(metrics.summary_lines())


class TestDisableFlag:
    def test_report_byte_identical_with_cache_disabled(self):
        baseline = run_crosstest(formats=("orc",), jobs=1)
        disabled = run_crosstest(
            formats=("orc",),
            jobs=1,
            conf_overrides={"repro.plan.cache.enabled": "false"},
        )
        assert json.dumps(disabled.to_json(), sort_keys=True) == json.dumps(
            baseline.to_json(), sort_keys=True
        )

    def test_disabled_deployments_skip_the_cache(self):
        metrics = CrossTestMetrics()
        run_crosstest(
            formats=("orc",),
            jobs=1,
            conf_overrides={"repro.plan.cache.enabled": "false"},
            metrics=metrics,
        )
        counts = {
            name: int(counter.value)
            for name, counter in metrics.cache_counters.items()
        }
        assert counts["plan_cache_hits"] == 0
        assert counts["plan_cache_misses"] == 0
