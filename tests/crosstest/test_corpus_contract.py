"""The validated contract every cross-test input must satisfy.

The curated §8 corpus and the fuzzer's generated candidates feed the
same harness, so they share one contract: the SQL literal must embed in
an ``INSERT ... VALUES`` statement the shared parser accepts, and the
declared type text must round-trip through ``parse_type`` — otherwise a
"discrepancy" could just be one engine choking on text the repo itself
produced malformed.
"""

import pytest

from repro.common.types import parse_type
from repro.crosstest.values import generate_inputs
from repro.fuzz.generators import FUZZ_ID_BASE, gen_candidate
from repro.sql.parser import parse_statement

CORPUS = generate_inputs()


def _assert_contract(test_input):
    statement = parse_statement(
        f"INSERT INTO t VALUES ({test_input.sql_literal})"
    )
    assert statement is not None
    parsed = parse_type(test_input.type_text)
    assert str(parse_type(str(parsed))) == str(parsed)


@pytest.mark.parametrize(
    "test_input", CORPUS, ids=[t.input_id for t in CORPUS]
)
def test_corpus_input_satisfies_contract(test_input):
    _assert_contract(test_input)


def test_corpus_declared_types_match_column_type():
    for test_input in CORPUS:
        assert str(test_input.column_type) == str(
            parse_type(test_input.type_text)
        )


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_generated_candidates_satisfy_corpus_contract(seed):
    for index in range(160):
        candidate = gen_candidate(
            seed, index // 16, index % 16, FUZZ_ID_BASE + index
        )
        _assert_contract(candidate)
