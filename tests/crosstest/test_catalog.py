"""Unit tests for the discrepancy catalog (§8.2 / artifact appendix)."""

import pytest

from repro.crosstest.catalog import (
    CATALOG,
    CATEGORY_MEMBERS,
    Category,
    by_number,
    category_counts,
)


class TestCatalogShape:
    def test_fifteen_entries(self):
        assert len(CATALOG) == 15
        assert [d.number for d in CATALOG] == list(range(1, 16))

    def test_lookup(self):
        assert by_number(1).jira == "SPARK-39075"
        with pytest.raises(KeyError):
            by_number(16)

    def test_every_entry_has_mechanism(self):
        for entry in CATALOG:
            assert entry.mechanism
            assert entry.title


class TestCategories:
    def test_paper_counts(self):
        counts = category_counts()
        assert counts[Category.CANNOT_READ] == 2
        assert counts[Category.TYPE_VIOLATION] == 2
        assert counts[Category.INTERNAL_CONFIG] == 5
        assert counts[Category.INCONSISTENT_ERROR] == 7
        assert counts[Category.CUSTOM_CONFIG] == 8

    def test_appendix_memberships(self):
        assert CATEGORY_MEMBERS[Category.CANNOT_READ] == {1, 2}
        assert CATEGORY_MEMBERS[Category.TYPE_VIOLATION] == {3, 8}
        assert CATEGORY_MEMBERS[Category.INTERNAL_CONFIG] == {1, 2, 3, 4, 6}
        assert CATEGORY_MEMBERS[Category.INCONSISTENT_ERROR] == {
            1, 5, 9, 10, 11, 12, 13,
        }
        assert CATEGORY_MEMBERS[Category.CUSTOM_CONFIG] == {
            5, 8, 9, 10, 11, 12, 13, 15,
        }

    def test_entry_categories_derived(self):
        assert Category.CANNOT_READ in by_number(1).categories
        assert Category.INCONSISTENT_ERROR in by_number(1).categories
        # 7 and 14 are uncategorized, exactly as in the appendix
        assert by_number(7).categories == frozenset()
        assert by_number(14).categories == frozenset()

    def test_custom_config_entries_name_a_config(self):
        # 8/15 rely on custom configuration; the resolvable ones carry it
        resolvable = [d for d in CATALOG if d.resolving_config is not None]
        assert {d.number for d in resolvable} <= CATEGORY_MEMBERS[
            Category.CUSTOM_CONFIG
        ]
        for entry in resolvable:
            key, value = entry.resolving_config
            assert key.startswith("spark.sql.")
            assert value
