"""Unit tests for the §8 input corpus."""

import pytest

from repro.common.types import DataType
from repro.crosstest.values import (
    INVALID_COUNT,
    VALID_COUNT,
    TestInput,
    generate_inputs,
)

# pytest would otherwise try to collect the dataclass as a test class
TestInput.__test__ = False


@pytest.fixture(scope="module")
def inputs():
    return generate_inputs()


class TestCorpusShape:
    def test_paper_counts(self, inputs):
        assert len(inputs) == 422
        assert sum(1 for i in inputs if i.valid) == VALID_COUNT == 210
        assert sum(1 for i in inputs if not i.valid) == INVALID_COUNT == 212

    def test_ids_unique_and_dense(self, inputs):
        ids = [i.input_id for i in inputs]
        assert ids == list(range(422))

    def test_deterministic(self, inputs):
        again = generate_inputs()
        assert [(i.type_text, i.sql_literal) for i in inputs] == [
            (i.type_text, i.sql_literal) for i in again
        ]

    def test_all_types_parse(self, inputs):
        for test_input in inputs:
            assert isinstance(test_input.column_type, DataType)

    def test_type_coverage(self, inputs):
        covered = {i.column_type.name for i in inputs}
        for required in (
            "boolean", "tinyint", "smallint", "int", "bigint", "float",
            "double", "decimal", "string", "char", "varchar", "binary",
            "date", "timestamp", "timestamp_ntz", "array", "map", "struct",
        ):
            assert required in covered, f"no inputs for {required}"

    def test_valid_values_accepted_by_their_type(self, inputs):
        for test_input in inputs:
            if not test_input.valid:
                continue
            if isinstance(test_input.py_value, float):
                continue  # NaN/Inf are valid doubles but accepts() is strict
            dtype = test_input.column_type
            if dtype.name in ("char", "timestamp", "timestamp_ntz", "struct"):
                continue  # representation differs from the declared check
            assert dtype.accepts(test_input.py_value), test_input.description


class TestInterestingShapes:
    def test_char_expected_padded(self, inputs):
        char_short = next(i for i in inputs if "char(5) short" in i.description)
        assert char_short.py_value == "ab"
        assert char_short.expected_value == "ab   "

    def test_non_string_map_key_present(self, inputs):
        assert any(
            i.type_text == "map<int,string>" and i.valid for i in inputs
        )

    def test_mixed_case_struct_present(self, inputs):
        assert any("Aa" in i.type_text and i.valid for i in inputs)

    def test_invalid_overflow_per_integral(self, inputs):
        for text in ("tinyint", "smallint", "int", "bigint"):
            assert any(
                i.type_text == text and not i.valid
                and isinstance(i.py_value, int)
                for i in inputs
            )

    def test_sql_and_py_spellings_both_present(self, inputs):
        for test_input in inputs:
            assert test_input.sql_literal
            # py_value may legitimately be None only for... nothing: every
            # input carries a concrete value
            assert test_input.py_value is not None
