"""Tests for the parallel cross-test execution engine."""

import os
import pickle

import pytest

from repro.crosstest.executor import (
    CrossTestMetrics,
    DeploymentPool,
    build_shards,
    corpus_texts,
    execute,
    prewarm_worker,
    resolve_jobs,
    resolve_pool,
    run_shard,
    worker_pool,
)
from repro.crosstest.harness import NO_ROWS, CrossTester
from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs
from repro.formats import UnknownFormatError

SMALL_INPUTS = generate_inputs()[:30] + generate_inputs()[210:230]


def trial_reprs(trials):
    """Order-sensitive canonical form; NaN-safe unlike dataclass ==."""
    return [repr(t) for t in trials]


class TestBuildShards:
    def test_indexes_are_contiguous_and_ordered(self):
        shards = build_shards(ALL_PLANS, ("orc", "avro"), SMALL_INPUTS)
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_concatenation_reproduces_sequential_nesting(self):
        shards = build_shards(
            ALL_PLANS[:3], ("orc", "parquet"), SMALL_INPUTS, shard_inputs=7
        )
        flattened = [
            (s.plan.name, s.fmt, i.input_id) for s in shards for i in s.inputs
        ]
        expected = [
            (plan.name, fmt, i.input_id)
            for plan in ALL_PLANS[:3]
            for fmt in ("orc", "parquet")
            for i in SMALL_INPUTS
        ]
        assert flattened == expected

    def test_chunking_splits_within_a_cell(self):
        shards = build_shards(
            ALL_PLANS[:1], ("orc",), SMALL_INPUTS, shard_inputs=20
        )
        assert len(shards) == 3  # 50 inputs -> 20 + 20 + 10
        assert [len(s.inputs) for s in shards] == [20, 20, 10]

    def test_empty_inputs_yield_no_shards(self):
        assert build_shards(ALL_PLANS[:2], ("orc",), []) == []

    def test_empty_plans_or_formats_yield_no_shards(self):
        assert build_shards([], ("orc",), SMALL_INPUTS) == []
        assert build_shards(ALL_PLANS[:2], (), SMALL_INPUTS) == []

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            build_shards(ALL_PLANS, ("orc",), SMALL_INPUTS, shard_inputs=0)


class TestResolve:
    def test_auto_sizes_to_host(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_pool_flavours(self):
        assert resolve_pool("auto", 1) == "thread"
        assert resolve_pool("auto", 4) == "process"
        assert resolve_pool("thread", 4) == "thread"
        with pytest.raises(ValueError):
            resolve_pool("fibers", 2)


class TestDeploymentPool:
    def test_reuses_released_deployments(self):
        pool = DeploymentPool()
        first = pool.lease()
        pool.release(first)
        second = pool.lease()
        assert second is first
        assert pool.created == 1 and pool.reused == 1

    def test_released_deployment_is_pristine(self):
        pool = DeploymentPool()
        deployment = pool.lease()
        deployment.spark.sql("CREATE TABLE ct (c int) STORED AS orc")
        deployment.spark.sql("INSERT INTO ct VALUES (5)")
        pool.release(deployment)
        leased = pool.lease()
        assert leased is deployment
        assert not leased.metastore.table_exists("ct")
        location = leased.metastore.table_location("default", "ct")
        assert not leased.filesystem.exists(location)


class TestRunShard:
    def test_pooled_and_fresh_deployments_agree(self):
        shard = build_shards(ALL_PLANS[:1], ("parquet",), SMALL_INPUTS)[0]
        pooled = run_shard(shard, reuse_deployments=True)
        fresh = run_shard(shard, reuse_deployments=False)
        assert trial_reprs(pooled.to_trials(shard)) == trial_reprs(
            fresh.to_trials(shard)
        )

    def test_durations_cover_every_trial(self):
        shard = build_shards(ALL_PLANS[:1], ("orc",), SMALL_INPUTS[:5])[0]
        result = run_shard(shard)
        assert len(result.durations) == len(result.to_trials(shard)) == 5
        assert all(d >= 0 for d in result.durations)

    def test_result_ships_columns_not_trials(self):
        shard = build_shards(ALL_PLANS[:1], ("orc",), SMALL_INPUTS[:4])[0]
        result = run_shard(shard)
        assert all(len(col) == 4 for col in result.outcome_columns)
        rebuilt = result.to_trials(shard)
        assert [t.test_input.input_id for t in rebuilt] == [
            i.input_id for i in shard.inputs
        ]
        assert result.spans_blob is None
        assert result.injections_blob is None

    def test_traced_shard_round_trips_spans_through_blob(self):
        shard = build_shards(ALL_PLANS[:1], ("orc",), SMALL_INPUTS[:3])[0]
        result = run_shard(shard, tracing=True)
        assert isinstance(result.spans_blob, bytes)
        batches = result.span_batches()
        assert len(batches) == 3
        assert all(batch for batch in batches)


class TestExecuteEquivalence:
    def sequential(self):
        return execute(ALL_PLANS, ("orc", "avro"), SMALL_INPUTS, jobs=1)

    def test_thread_parallel_identical_trials(self):
        parallel = execute(
            ALL_PLANS, ("orc", "avro"), SMALL_INPUTS, jobs=3, pool="thread"
        )
        assert trial_reprs(parallel) == trial_reprs(self.sequential())

    def test_process_parallel_identical_trials(self):
        parallel = execute(
            ALL_PLANS[:2], ("orc",), SMALL_INPUTS, jobs=2, pool="process"
        )
        sequential = execute(ALL_PLANS[:2], ("orc",), SMALL_INPUTS, jobs=1)
        assert trial_reprs(parallel) == trial_reprs(sequential)

    def test_report_json_identical_across_engines(self):
        seq = run_crosstest(
            inputs=SMALL_INPUTS, formats=("orc", "avro"), jobs=1
        )
        par = run_crosstest(
            inputs=SMALL_INPUTS, formats=("orc", "avro"), jobs=4, pool="thread"
        )
        assert seq.to_json() == par.to_json()

    def test_small_odd_shards_still_ordered(self):
        parallel = execute(
            ALL_PLANS,
            ("orc",),
            SMALL_INPUTS,
            jobs=5,
            pool="thread",
            shard_inputs=7,
        )
        assert trial_reprs(parallel) == trial_reprs(
            execute(ALL_PLANS, ("orc",), SMALL_INPUTS, jobs=1)
        )


class TestEmptyMatrix:
    def test_no_inputs_short_circuits(self):
        calls = []
        trials = execute(
            ALL_PLANS,
            ("orc", "avro"),
            [],
            jobs=1,
            progress=lambda *args: calls.append(args),
        )
        assert trials == []
        assert calls == []  # no shards, no progress chatter

    def test_no_inputs_never_spins_a_pool(self, monkeypatch):
        import repro.crosstest.executor as executor_mod

        def boom(*args, **kwargs):
            raise AssertionError("a zero-trial matrix built a worker pool")

        monkeypatch.setattr(executor_mod, "_make_executor", boom)
        assert execute(ALL_PLANS, ("orc",), [], jobs=4, pool="process") == []
        assert execute(ALL_PLANS, ("orc",), [], jobs=8, pool="thread") == []

    def test_no_plans_or_formats_short_circuit(self):
        assert execute([], ("orc",), SMALL_INPUTS, jobs=4) == []
        assert execute(ALL_PLANS, (), SMALL_INPUTS, jobs=4) == []

    def test_metrics_untouched_by_empty_matrix(self):
        metrics = CrossTestMetrics()
        execute(ALL_PLANS, ("orc",), [], jobs=2, metrics=metrics)
        assert int(metrics.trials_total.value) == 0
        assert int(metrics.shards_done.value) == 0


class TestPrewarm:
    def test_corpus_texts_cover_every_statement_shape(self):
        type_texts, statements = corpus_texts(
            ("orc", "avro"), SMALL_INPUTS[:5]
        )
        assert set(type_texts) == {i.type_text for i in SMALL_INPUTS[:5]}
        assert "SELECT * FROM ct" in statements
        for test_input in SMALL_INPUTS[:5]:
            assert (
                f"INSERT INTO ct VALUES ({test_input.sql_literal})"
                in statements
            )
            for fmt in ("orc", "avro"):
                assert (
                    f"CREATE TABLE ct (c {test_input.type_text}) "
                    f"STORED AS {fmt}" in statements
                )

    def test_prewarm_is_best_effort(self):
        # invalid texts and a warm-up trial that cannot run must never
        # raise — an initializer exception breaks the whole pool
        prewarm_worker(
            None,
            ALL_PLANS[:1],
            ("no-such-format",),
            tuple(SMALL_INPUTS[:1]),
            ("notatype((",),
            ("CREATE GARBAGE",),
        )

    def test_prewarm_compiles_first_shard_plans(self):
        inputs = tuple(generate_inputs()[:1])
        type_texts, statements = corpus_texts(("orc",), inputs)
        conf = {"repro.test.prewarm.inproc": "1"}  # a fresh pool key
        prewarm_worker(
            conf, tuple(ALL_PLANS[:2]), ("orc",), inputs, type_texts,
            statements,
        )
        pool = worker_pool(conf)
        deployment = pool.lease()
        try:
            spark = deployment.spark.plan_cache.stats
            hive = deployment.hive.plan_cache.stats
            warmed_misses = spark.misses + hive.misses
            assert warmed_misses > 0  # warm-up trials compiled plans
        finally:
            pool.release(deployment)
        # the "first shard" replays the same statements: all cache
        # hits, zero new compilations
        shard = build_shards(ALL_PLANS[:2], ("orc",), list(inputs))[0]
        result = run_shard(shard, conf)
        assert result.cache_counts["plan_cache_misses"] == 0
        assert result.cache_counts["plan_cache_hits"] > 0
        # and the pool recycles the pre-warmed deployment, not a new one
        assert result.cache_counts["deployments_created"] == 0

    def test_process_pool_prewarm_preserves_results(self):
        sequential = execute(ALL_PLANS[:2], ("orc",), SMALL_INPUTS, jobs=1)
        warmed = execute(
            ALL_PLANS[:2],
            ("orc",),
            SMALL_INPUTS,
            jobs=2,
            pool="process",
            prewarm=True,
        )
        cold = execute(
            ALL_PLANS[:2],
            ("orc",),
            SMALL_INPUTS,
            jobs=2,
            pool="process",
            prewarm=False,
        )
        assert trial_reprs(warmed) == trial_reprs(sequential)
        assert trial_reprs(cold) == trial_reprs(sequential)


class TestTelemetry:
    def test_metrics_count_every_trial(self):
        metrics = CrossTestMetrics()
        trials = execute(
            ALL_PLANS,
            ("orc",),
            SMALL_INPUTS,
            jobs=2,
            pool="thread",
            metrics=metrics,
        )
        assert int(metrics.trials_total.value) == len(trials)
        ok = sum(1 for t in trials if t.outcome.ok)
        assert int(metrics.trials_ok.value) == ok
        staged = sum(
            int(c.value) for c in metrics.stage_errors.values()
        )
        assert staged == len(trials) - ok

    def test_latency_histograms_populated(self):
        metrics = CrossTestMetrics()
        execute(
            ALL_PLANS[:2], ("orc", "avro"), SMALL_INPUTS[:10], metrics=metrics
        )
        names = metrics.registry.names()
        assert "latency_fmt_orc" in names and "latency_fmt_avro" in names
        hist = metrics.registry.get("latency_fmt_orc")
        assert hist.count == 2 * 10
        assert any("latency_plan_" in line for line in metrics.summary_lines())

    def test_progress_callback_monotonic(self):
        calls = []
        execute(
            ALL_PLANS[:2],
            ("orc",),
            SMALL_INPUTS,
            jobs=2,
            pool="thread",
            progress=lambda *args: calls.append(args),
        )
        assert calls, "progress callback never fired"
        done_shards = [c[0] for c in calls]
        assert done_shards == sorted(done_shards)
        final = calls[-1]
        assert final[0] == final[1]  # all shards reported
        assert final[2] == final[3] == 2 * len(SMALL_INPUTS)


class TestFormatValidation:
    def test_unknown_format_rejected_up_front(self):
        with pytest.raises(UnknownFormatError) as excinfo:
            CrossTester(inputs=[], formats=("orcc",))
        message = str(excinfo.value)
        for valid in ("avro", "orc", "parquet"):
            assert valid in message

    def test_empty_formats_rejected(self):
        with pytest.raises(UnknownFormatError):
            CrossTester(inputs=[], formats=())

    def test_unified_formats_accepted(self):
        tester = CrossTester(inputs=[], formats=("unified_orc", "parquet"))
        assert tester.formats == ("unified_orc", "parquet")


def test_no_rows_sentinel_survives_pickling():
    assert pickle.loads(pickle.dumps(NO_ROWS)) is NO_ROWS


def test_crosstester_run_jobs_parameter_matches_default():
    tester = CrossTester(inputs=SMALL_INPUTS[:12], formats=("parquet",))
    assert trial_reprs(tester.run()) == trial_reprs(
        tester.run(jobs=2, pool="thread")
    )
