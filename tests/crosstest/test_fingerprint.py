"""Fingerprint identities for the §8 discrepancy mechanisms.

These tests pin a representative fingerprint key for each of the 15
known discrepancies, so any change to evidence canonicalization that
would silently re-identify a known mechanism (and let ``repro fuzz``
re-report it as novel) fails here first. If a pin moves because the
canonicalization *deliberately* changed, regenerate the baseline with
``make fuzz-baseline`` and update the pin in the same commit.
"""

import pytest

from repro.crosstest.classify import classify_trials
from repro.crosstest.fingerprint import (
    Fingerprint,
    conf_label,
    outcome_shape,
    run_fingerprints,
    type_shape,
)
from repro.crosstest.oracles import all_failures
from repro.fuzz.dedup import Baseline, default_baseline_path

# one hand-pinned fingerprint key per catalog number: the key-sorted
# first fingerprint among the oracle failures raised by that entry's
# evidence trials in a stock full run
PINNED = {
    1: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|smallint"
       "|ok:expected:smallint<>ok:expected:int|",
    2: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|decimal"
       "|ok:expected:decimal<>ok:expected:decimal|",
    3: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|smallint"
       "|ok:expected:smallint<>ok:expected:int|",
    4: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df"
       "|map<bigint,double>"
       "|ok:expected:map<bigint,double><>error:create:UnsupportedTypeError|",
    5: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|decimal"
       "|error:write:AnalysisException<>ok:null:decimal|",
    6: "wr|spark_hive|avro|w_df_r_hive|double|ok:null:double|",
    7: "wr|spark_hive|avro|w_df_r_hive|double|error:read:QueryError|",
    8: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|timestamp_ntz"
       "|ok:expected:timestamp<>ok:expected:timestamp_ntz|",
    9: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|date"
       "|error:write:AnalysisException<>ok:null:date|",
    10: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|bigint"
        "|error:write:AnalysisException<>ok:null:bigint|",
    11: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|smallint"
        "|ok:null:smallint<>ok:expected:int|",
    12: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|boolean"
        "|error:write:AnalysisException<>ok:null:boolean|",
    13: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|char"
        "|ok:expected:char<>ok:input:string|",
    14: "difft|spark_e2e|avro|w_sql_r_df+w_df_r_df|struct<F!:int,F!:string>"
        "|ok:expected:struct<f:int,f:string>#lowercased"
        "<>ok:expected:struct<F!:int,F!:string>|",
    15: "difft|hive_spark|orc<>avro|w_hive_r_df+w_hive_r_df|varchar"
        "|ok:null:varchar<>ok:expected:string|",
}


@pytest.fixture(scope="module")
def catalog_fingerprints(full_report):
    """Catalog number -> key-sorted fingerprint keys of its evidence."""
    evidence = classify_trials(full_report.trials)
    failures = all_failures(full_report.trials)
    hits = run_fingerprints(full_report.trials, failures, "")
    per_number = {}
    for number in range(1, 16):
        ids = {t.test_input.input_id for t in evidence[number].trials}
        per_number[number] = sorted(
            key
            for key, hit in hits.items()
            if any(f.input_id in ids for f in hit.failures)
        )
    return per_number


def test_every_catalog_entry_has_fingerprints(catalog_fingerprints):
    for number in range(1, 16):
        assert catalog_fingerprints[number], f"entry #{number} fingerprints"


@pytest.mark.parametrize("number", sorted(PINNED))
def test_pinned_fingerprint_per_catalog_entry(
    catalog_fingerprints, number
):
    assert catalog_fingerprints[number][0] == PINNED[number]


def test_known_fingerprints_are_all_in_committed_baseline(
    catalog_fingerprints,
):
    baseline = Baseline.load(default_baseline_path())
    for number, keys in catalog_fingerprints.items():
        missing = [key for key in keys if key not in baseline]
        assert not missing, f"entry #{number}: {missing[:3]}"


# -- unit-level identities --------------------------------------------------


def test_type_shape_strips_parameters_and_keeps_name_case():
    assert type_shape("decimal(10,2)") == "decimal"
    assert type_shape("char(5)") == "char"
    assert type_shape("array<decimal(3,1)>") == "array<decimal>"
    # struct field names collapse to case markers, so aa/bb and Aa/Bb
    # structs share a shape only when their cases match
    assert (
        type_shape("struct<Aa:int,b:string>")
        == "struct<F!:int,f:string>"
    )


def test_fingerprint_key_and_json_roundtrip():
    fingerprint = Fingerprint(
        oracle="difft",
        group="hive_spark",
        fmt="orc<>avro",
        plans=("w_hive_r_df", "w_hive_r_df"),
        type_shape="smallint",
        evidence="ok:expected:smallint<>ok:expected:int",
        conf="spark.sql.storeAssignmentPolicy=legacy",
    )
    assert Fingerprint.from_json(fingerprint.to_json()) == fingerprint
    assert fingerprint.key.count("|") == 6


def test_conf_label_is_sorted_and_stable():
    label = conf_label({"b.key": "2", "a.key": "1"})
    assert label == "a.key=1;b.key=2"
    assert conf_label({}) == ""


def test_outcome_shape_distinguishes_error_stage_and_type():
    from repro.crosstest.harness import Outcome
    from repro.crosstest.values import TestInput

    test_input = TestInput(
        input_id=0,
        type_text="int",
        sql_literal="1",
        py_value=1,
        valid=True,
    )
    err = Outcome(
        status="error", stage="read", error_type="QueryError"
    )
    assert outcome_shape(err, test_input) == "error:read:QueryError"
