"""Unit tests for batched trial lanes.

Covers the lane layer bottom-up: write-statement grouping
(:func:`_write_batches`), in-lane demultiplexing and the three
ambiguity reasons (:func:`run_lane_on`), the fallback ladder
(:func:`_run_lane`), the sparse :func:`run_trials` helper, deployment
lease hygiene, and the per-stage latency histograms.
"""

import pytest

from repro.common.result import QueryResult
from repro.common.schema import Field, Schema
from repro.crosstest.executor import (
    CrossTestMetrics,
    DeploymentPool,
    _new_counts,
    _run_lane,
    run_trials,
)
from repro.crosstest.harness import (
    NO_ROWS,
    TRIAL_TABLE,
    CrossTester,
    Deployment,
    _write_batches,
    run_lane_on,
    run_trial_on,
)
from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.values import TestInput

TestInput.__test__ = False


def make_input(type_text="int", sql="5", py=5, valid=True, input_id=0):
    return TestInput(input_id, type_text, sql, py, valid, "test")


PLANS_BY_NAME = {p.name: p for p in ALL_PLANS}

#: an int that strict-ANSI SparkSQL rejects at write time
OVERFLOW_SQL, OVERFLOW_PY = "2147483648", 2**31


def int_inputs(*values):
    return tuple(
        make_input(sql=str(v), py=v, input_id=i)
        for i, v in enumerate(values)
    )


class TestWriteBatches:
    def test_optimistic_lane_is_one_statement(self):
        inputs = int_inputs(1, 2, 3)
        assert _write_batches(inputs, True, True) == [[0, 1, 2]]

    def test_optimistic_batches_even_invalid_inputs(self):
        inputs = (
            make_input(sql="1", py=1),
            make_input(sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False),
            make_input(sql="2", py=2),
        )
        assert _write_batches(inputs, True, True) == [[0, 1, 2]]

    def test_strict_lane_splits_valid_batch_from_invalid_singles(self):
        inputs = (
            make_input(sql="1", py=1),
            make_input(sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False),
            make_input(sql="2", py=2),
            make_input(sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False),
        )
        # valid positions first as one statement, each predicted
        # failure alone so its error attributes exactly
        assert _write_batches(inputs, True, False) == [[0, 2], [1], [3]]

    def test_strict_lane_all_valid_is_one_statement(self):
        inputs = int_inputs(1, 2, 3)
        assert _write_batches(inputs, True, False) == [[0, 1, 2]]

    def test_fewer_than_two_valid_degenerates_to_singles(self):
        inputs = (
            make_input(sql="1", py=1),
            make_input(sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False),
        )
        assert _write_batches(inputs, True, False) == [[0], [1]]

    def test_multirow_off_means_singles(self):
        inputs = int_inputs(1, 2, 3)
        assert _write_batches(inputs, False, True) == [[0], [1], [2]]
        assert _write_batches(inputs, False, False) == [[0], [1], [2]]

    def test_single_input_lane(self):
        inputs = int_inputs(7)
        assert _write_batches(inputs, True, True) == [[0]]
        assert _write_batches(inputs, True, False) == [[0]]


class TestRunLaneOn:
    def test_happy_path_demux_preserves_positions(self):
        inputs = int_inputs(1, 2, 3)
        outcomes = run_lane_on(
            Deployment(), PLANS_BY_NAME["w_sql_r_sql"], "parquet", inputs
        )
        assert isinstance(outcomes, list)
        assert [o.value for o in outcomes] == [1, 2, 3]
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.value_type == "int"
            assert outcome.row_count == 1

    def test_invalid_single_error_attributes_to_its_position(self):
        # the valid batch writes first (positions 0 and 2); demux must
        # still map the surviving rows back to the right inputs
        inputs = (
            make_input(sql="5", py=5, input_id=0),
            make_input(
                sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False, input_id=1
            ),
            make_input(sql="7", py=7, input_id=2),
        )
        outcomes = run_lane_on(
            Deployment(), PLANS_BY_NAME["w_sql_r_sql"], "parquet", inputs
        )
        assert isinstance(outcomes, list)
        assert outcomes[0].ok and outcomes[0].value == 5
        assert outcomes[2].ok and outcomes[2].value == 7
        assert outcomes[1].stage == "write"
        assert outcomes[1].error_type == "ArithmeticOverflowError"

    def test_create_error_replicates_across_the_lane(self):
        inputs = tuple(
            make_input(
                type_text="map<int,string>",
                sql="map(1,'x')",
                py={1: "x"},
                input_id=i,
            )
            for i in range(3)
        )
        outcomes = run_lane_on(
            Deployment(), PLANS_BY_NAME["w_sql_r_sql"], "avro", inputs
        )
        assert isinstance(outcomes, list)
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.stage == "create"
            assert outcome.error_type == "UnsupportedTypeError"
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_shared_scan_failure_reports_read(self):
        # tinyint-on-avro breaks the DataFrame read for every input, so
        # the shared scan cannot attribute anything — the lane punts
        inputs = tuple(
            make_input(type_text="tinyint", sql=str(v), py=v, input_id=i)
            for i, v in enumerate((1, 2))
        )
        reason = run_lane_on(
            Deployment(), PLANS_BY_NAME["w_df_r_df"], "avro", inputs
        )
        assert reason == "read"

    def test_multirow_statement_failure_reports_write(self):
        # an erroring input mislabeled corpus-valid joins the multi-row
        # statement and poisons it; the lane cannot know which row
        inputs = (
            make_input(sql="5", py=5, input_id=0),
            make_input(
                sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=True, input_id=1
            ),
        )
        plan = PLANS_BY_NAME["w_sql_r_sql"]
        reason = run_lane_on(Deployment(), plan, "parquet", inputs)
        assert reason == "write"
        # single-row statements attribute exactly: same lane, no multirow
        outcomes = run_lane_on(
            Deployment(), plan, "parquet", inputs, multirow=False
        )
        assert isinstance(outcomes, list)
        assert outcomes[0].ok and outcomes[0].value == 5
        assert outcomes[1].stage == "write"
        assert outcomes[1].error_type == "ArithmeticOverflowError"

    def test_empty_scan_demuxes_shared_no_rows(self):
        deployment = Deployment()
        schema = Schema(
            (Field("c", make_input().column_type),), case_sensitive=True
        )
        deployment.read = lambda interface, table: QueryResult(schema)
        outcomes = run_lane_on(
            deployment, PLANS_BY_NAME["w_sql_r_sql"], "parquet",
            int_inputs(1, 2),
        )
        assert isinstance(outcomes, list)
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.value is NO_ROWS
            assert outcome.row_count == 0

    def test_partial_row_loss_reports_count(self):
        # 2 successful writes but the scan surfaces 1 row: which write
        # lost its row is only observable in isolation
        deployment = Deployment()
        schema = Schema(
            (Field("c", make_input().column_type),), case_sensitive=True
        )
        deployment.read = lambda interface, table: QueryResult(
            schema, rows=((1,),)
        )
        reason = run_lane_on(
            deployment, PLANS_BY_NAME["w_sql_r_sql"], "parquet",
            int_inputs(1, 2),
        )
        assert reason == "count"

    @pytest.mark.parametrize("plan", ALL_PLANS, ids=lambda p: p.name)
    def test_lane_matches_isolated_for_every_plan(self, plan):
        inputs = (
            make_input(sql="5", py=5, input_id=0),
            make_input(
                sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False, input_id=1
            ),
            make_input(sql="7", py=7, input_id=2),
        )
        lane = run_lane_on(Deployment(), plan, "parquet", inputs)
        isolated = [
            run_trial_on(Deployment(), plan, "parquet", test_input).outcome
            for test_input in inputs
        ]
        assert lane == isolated


class TestRunLaneLadder:
    def _ladder(self, plan, fmt, inputs):
        pool = DeploymentPool()
        return _run_lane(
            pool, plan, fmt, tuple(inputs), _new_counts(), None
        )

    def _isolated(self, plan, fmt, inputs):
        return [
            run_trial_on(Deployment(), plan, fmt, test_input).outcome
            for test_input in inputs
        ]

    def test_write_poisoned_lane_resolves_through_singles(self):
        inputs = (
            make_input(sql="5", py=5, input_id=0),
            make_input(
                sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=True, input_id=1
            ),
            make_input(sql="7", py=7, input_id=2),
        )
        plan = PLANS_BY_NAME["w_sql_r_sql"]
        assert self._ladder(plan, "parquet", inputs) == self._isolated(
            plan, "parquet", inputs
        )

    def test_read_poisoned_lane_resolves_through_isolation(self):
        inputs = tuple(
            make_input(type_text="tinyint", sql=str(v), py=v, input_id=i)
            for i, v in enumerate((1, 2, 3))
        )
        plan = PLANS_BY_NAME["w_df_r_df"]
        outcomes = self._ladder(plan, "avro", inputs)
        assert outcomes == self._isolated(plan, "avro", inputs)
        for outcome in outcomes:
            assert outcome.stage == "read"
            assert outcome.error_type == "IncompatibleSchemaException"

    def test_clean_lane_needs_no_fallback(self):
        plan = PLANS_BY_NAME["w_hive_r_sql"]
        inputs = int_inputs(1, 2, 3)
        assert self._ladder(plan, "orc", inputs) == self._isolated(
            plan, "orc", inputs
        )


class TestRunTrials:
    SPECS = [
        (PLANS_BY_NAME["w_sql_r_sql"], "parquet", make_input(sql="1", py=1)),
        (
            PLANS_BY_NAME["w_df_r_df"],
            "orc",
            make_input(type_text="string", sql="'x'", py="x", input_id=1),
        ),
        (
            PLANS_BY_NAME["w_sql_r_sql"],
            "parquet",
            make_input(
                sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False, input_id=2
            ),
        ),
        (PLANS_BY_NAME["w_sql_r_sql"], "parquet", make_input(sql="2", py=2, input_id=3)),
        (PLANS_BY_NAME["w_hive_r_sql"], "avro", make_input(sql="3", py=3, input_id=4)),
    ]

    def test_batched_matches_isolated(self):
        assert run_trials(self.SPECS) == run_trials(self.SPECS, batch=False)

    def test_outcomes_in_spec_order(self):
        outcomes = run_trials(self.SPECS)
        assert [o.value for o in outcomes if o.ok] == [1, "x", 2, 3]
        assert outcomes[2].stage == "write"


class TestLeaseHygiene:
    """Satellite: a released lease leaves zero residual state behind.

    The pool hands the same deployment to unrelated trials; any
    leftover metastore entry or warehouse path would let one trial
    observe another — exactly the cross-system leakage the harness
    exists to measure, not exhibit.
    """

    def _assert_pristine(self, deployment):
        assert deployment.metastore.list_tables() == []
        location = deployment.metastore.table_location(
            "default", TRIAL_TABLE
        )
        assert not deployment.filesystem.exists(location)
        # nothing else left in the database directory either
        parent = location.rsplit("/", 1)[0]
        if deployment.filesystem.exists(parent):
            assert deployment.filesystem.listdir(parent) == []

    def test_isolated_trial_release_is_clean(self):
        pool = DeploymentPool()
        deployment = pool.lease()
        try:
            run_trial_on(
                deployment, PLANS_BY_NAME["w_sql_r_sql"], "parquet",
                make_input(),
            )
        finally:
            pool.release(deployment)
        self._assert_pristine(deployment)

    def test_lane_release_is_clean(self):
        pool = DeploymentPool()
        deployment = pool.lease()
        try:
            outcomes = run_lane_on(
                deployment, PLANS_BY_NAME["w_sql_r_sql"], "parquet",
                int_inputs(1, 2, 3),
            )
            assert isinstance(outcomes, list)
        finally:
            pool.release(deployment)
        self._assert_pristine(deployment)

    def test_failed_lane_release_is_clean(self):
        # a lane that punts ("read") leaves a written table behind —
        # release must still scrub it before the next lease
        pool = DeploymentPool()
        deployment = pool.lease()
        inputs = tuple(
            make_input(type_text="tinyint", sql=str(v), py=v, input_id=i)
            for i, v in enumerate((1, 2))
        )
        try:
            reason = run_lane_on(
                deployment, PLANS_BY_NAME["w_df_r_df"], "avro", inputs
            )
            assert reason == "read"
        finally:
            pool.release(deployment)
        self._assert_pristine(deployment)
        assert deployment in pool._idle

    def test_released_deployment_is_recycled(self):
        pool = DeploymentPool()
        deployment = pool.lease()
        pool.release(deployment)
        assert pool.lease() is deployment
        assert pool.created == 1
        assert pool.reused == 1


class TestStageHistograms:
    """Satellite: per-stage latency lands in the metrics registry."""

    INPUTS = [
        make_input(sql="1", py=1),
        make_input(sql=OVERFLOW_SQL, py=OVERFLOW_PY, valid=False, input_id=1),
        make_input(type_text="string", sql="'x'", py="x", input_id=2),
    ]

    @pytest.mark.parametrize("batch", [True, False])
    def test_all_four_stages_observed(self, batch):
        metrics = CrossTestMetrics()
        tester = CrossTester(
            inputs=self.INPUTS,
            plans=(PLANS_BY_NAME["w_sql_r_sql"], PLANS_BY_NAME["w_df_r_df"]),
            formats=("parquet",),
        )
        tester.run(jobs=1, metrics=metrics, batch=batch)
        for stage in ("create", "write", "read", "reset"):
            histogram = metrics._latency("stage", stage)
            assert histogram.count > 0, stage
            assert histogram.sum >= 0.0
