"""§8.2: "developers pointed out that the discrepancies can be resolved
by custom configurations" — verify each documented resolving config
actually makes its discrepancy disappear under that deployment config.
"""

import pytest

from repro.crosstest.catalog import by_number
from repro.crosstest.classify import found_discrepancies
from repro.crosstest.harness import CrossTester
from repro.crosstest.values import generate_inputs


def run_subset(predicate, conf_overrides=None):
    inputs = [i for i in generate_inputs() if predicate(i)]
    assert inputs, "predicate selected no inputs"
    return CrossTester(inputs=inputs, conf_overrides=conf_overrides).run()


class TestStoreAssignmentLegacy:
    CONF = {"spark.sql.storeAssignmentPolicy": "legacy"}

    @pytest.mark.parametrize("number,type_name", [(5, "decimal"), (10, "int"),
                                                  (11, "tinyint"), (12, "boolean")])
    def test_resolved_under_legacy(self, number, type_name):
        predicate = lambda i: i.column_type.name in (type_name, "bigint", "smallint")
        with_default = run_subset(predicate)
        assert number in found_discrepancies(with_default)
        with_config = run_subset(predicate, self.CONF)
        assert number not in found_discrepancies(with_config)

    def test_catalog_documents_the_config(self):
        for number in (5, 10, 11, 12):
            assert by_number(number).resolving_config == (
                "spark.sql.storeAssignmentPolicy", "legacy",
            )


class TestTimeParserPolicy:
    def test_invalid_date_resolved_under_legacy_parser(self):
        predicate = lambda i: i.column_type.name == "date"
        assert 9 in found_discrepancies(run_subset(predicate))
        resolved = run_subset(
            predicate, {"spark.sql.legacy.timeParserPolicy": "LEGACY"}
        )
        assert 9 not in found_discrepancies(resolved)

    def test_catalog_documents_the_config(self):
        assert by_number(9).resolving_config == (
            "spark.sql.legacy.timeParserPolicy", "LEGACY",
        )


class TestTimestampType:
    def test_ntz_resolved(self):
        predicate = lambda i: i.type_text == "timestamp_ntz"
        assert 8 in found_discrepancies(run_subset(predicate))
        resolved = run_subset(
            predicate, {"spark.sql.timestampType": "TIMESTAMP_NTZ"}
        )
        assert 8 not in found_discrepancies(resolved)


class TestCharVarcharAsString:
    CONF = {"spark.sql.legacy.charVarcharAsString": "true"}

    def test_char_padding_diff_resolved(self):
        predicate = lambda i: i.column_type.name == "char"
        assert 13 in found_discrepancies(run_subset(predicate))
        assert 13 not in found_discrepancies(run_subset(predicate, self.CONF))


class TestUnresolvable:
    def test_avro_byte_not_config_fixable(self):
        # #1 has no resolving config in the catalog; confirm the legacy
        # policy does not make it disappear either
        predicate = lambda i: i.column_type.name == "tinyint" and i.valid
        trials = run_subset(
            predicate, {"spark.sql.storeAssignmentPolicy": "legacy"}
        )
        assert 1 in found_discrepancies(trials)
        assert by_number(1).resolving_config is None
