"""The distilled smoke corpus: minimal, pinned, and mechanism-complete."""

import time

import pytest

from repro.crosstest.report import run_crosstest
from repro.crosstest.smoke import (
    SMOKE_INPUT_IDS,
    derive_smoke_ids,
    main,
    smoke_inputs,
)
from repro.crosstest.values import generate_inputs


class TestCommittedIds:
    def test_ids_exist_in_the_corpus(self):
        corpus_ids = {i.input_id for i in generate_inputs()}
        assert set(SMOKE_INPUT_IDS) <= corpus_ids

    def test_smoke_inputs_match_committed_ids(self):
        inputs = smoke_inputs()
        assert [i.input_id for i in inputs] == sorted(SMOKE_INPUT_IDS)

    def test_committed_ids_match_derivation(self, full_report):
        """The pin: regenerate with
        ``python -m repro.crosstest.smoke --derive`` when this fails."""
        assert derive_smoke_ids(full_report.trials) == SMOKE_INPUT_IDS


class TestMechanismCoverage:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        return run_crosstest(inputs=smoke_inputs(), jobs=1)

    def test_all_fifteen_mechanisms_reproduce(self, smoke_report):
        assert smoke_report.found_numbers == set(range(1, 16))

    def test_evidence_is_a_subset_of_the_full_run(
        self, smoke_report, full_report
    ):
        wanted = set(SMOKE_INPUT_IDS)
        for number, evidence in smoke_report.evidence.items():
            smoke_ids = {t.test_input.input_id for t in evidence.trials}
            full_ids = {
                t.test_input.input_id
                for t in full_report.evidence[number].trials
            }
            # per-input classification independence: the smoke run's
            # evidence is exactly the full run's, restricted to the
            # distilled inputs
            assert smoke_ids == full_ids & wanted

    def test_sub_second_at_jobs_1(self):
        started = time.perf_counter()
        run_crosstest(inputs=smoke_inputs(), jobs=1)
        assert time.perf_counter() - started < 1.0


class TestCli:
    def test_main_passes(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "15/15" in out

    def test_derive_matches_committed(self, capsys):
        assert main(["--derive"]) == 0
        assert "committed ids match" in capsys.readouterr().out
