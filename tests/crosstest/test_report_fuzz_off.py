"""The §8 report is byte-identical with fuzzing off.

The ``fuzz`` section of :class:`CrossTestReport` is attached only by
``repro fuzz``; a plain replication run must serialize and render
exactly as it did before the section existed.
"""

import json

from repro.crosstest.report import CrossTestReport, FuzzSection


def test_standard_report_has_no_fuzz_artifacts(full_report):
    payload = full_report.to_json()
    assert "fuzz" not in payload
    assert full_report.fuzz is None
    text = "\n".join(full_report.summary_lines())
    assert "fuzz:" not in text
    assert "NOVEL" not in text


def test_attached_fuzz_section_is_additive_only(full_report):
    plain_payload = json.dumps(full_report.to_json(), sort_keys=True)
    plain_summary = full_report.summary_lines()
    section = FuzzSection(
        seed=1, budget=8, rounds=1, candidates=8, trials=192,
        coverage_features=10, distinct_fingerprints=3,
        known_fingerprints=3,
    )
    with_fuzz = CrossTestReport(
        trials=full_report.trials,
        failures=full_report.failures,
        evidence=full_report.evidence,
        fuzz=section,
    )
    payload = with_fuzz.to_json()
    assert payload["fuzz"] == section.to_json()
    # everything except the fuzz key is the fuzz-off payload, byte
    # for byte
    del payload["fuzz"]
    assert json.dumps(payload, sort_keys=True) == plain_payload
    # the summary gains only the fuzz lines, appended
    fuzz_lines = section.summary_lines()
    assert with_fuzz.summary_lines() == plain_summary + fuzz_lines


def test_fuzz_section_json_roundtrips_novel_entries():
    section = FuzzSection(
        seed=2, budget=16, rounds=2, candidates=16, trials=384,
        coverage_features=5, distinct_fingerprints=2,
        known_fingerprints=1,
        novel=[{
            "fingerprint": {
                "oracle": "difft", "type": "smallint",
                "evidence": "e", "conf": "",
            },
            "shrunk": {"type_text": "smallint", "sql_literal": "0S"},
        }],
        rediscovered=(1, 13),
    )
    payload = section.to_json()
    assert payload["rediscovered"] == [1, 13]
    lines = section.summary_lines()
    assert any(line.startswith("  NOVEL difft smallint") for line in lines)
    assert any("repro: smallint = 0S" in line for line in lines)
    assert any("#1, #13" in line for line in lines)
