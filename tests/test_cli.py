"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestReplay:
    def test_list_scenarios(self, capsys):
        assert main(["replay"]) == 0
        out = capsys.readouterr().out
        assert "FLINK-12342" in out and "SPARK-27239" in out

    def test_failing_replay_exit_code(self, capsys):
        assert main(["replay", "SPARK-27239"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_fixed_replay_exit_code(self, capsys):
        assert main(["replay", "SPARK-27239", "--fixed"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_lowercase_jira_accepted(self):
        assert main(["replay", "spark-27239", "--fixed"]) == 0

    def test_unknown_jira(self, capsys):
        assert main(["replay", "NOPE-1"]) == 2


class TestStudy:
    def test_study_reproduces(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "13/13 findings reproduced" in out


class TestCrosstest:
    def test_single_format_run(self, capsys):
        assert main(["crosstest", "--formats", "parquet"]) == 0
        out = capsys.readouterr().out
        assert "discrepancies found" in out

    def test_json_output(self, capsys):
        assert main(["crosstest", "--formats", "parquet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "found_discrepancies" in payload

    def test_conf_override(self, capsys):
        assert main([
            "crosstest",
            "--formats", "parquet",
            "--conf", "spark.sql.storeAssignmentPolicy=legacy",
        ]) == 0

    def test_bad_conf_rejected(self, capsys):
        assert main(["crosstest", "--conf", "garbage"]) == 2

    def test_conf_empty_value_accepted(self, capsys):
        # KEY= is legitimate: empty string is a real configuration value
        assert main([
            "crosstest",
            "--formats", "parquet",
            "--conf", "spark.sql.sources.commitProtocolClass=",
            "--quiet",
        ]) == 0

    def test_conf_empty_key_rejected(self, capsys):
        assert main(["crosstest", "--conf", "=value"]) == 2
        assert "bad --conf" in capsys.readouterr().err

    def test_unknown_format_exits_2_naming_valid_formats(self, capsys):
        # regression: '--formats orcc' used to run 3,376 doomed trials,
        # report 0/15 discrepancies, and exit 0
        assert main(["crosstest", "--formats", "orcc"]) == 2
        err = capsys.readouterr().err
        assert "orcc" in err
        for valid in ("avro", "orc", "parquet"):
            assert valid in err

    def test_unknown_format_among_valid_ones_exits_2(self, capsys):
        assert main(["crosstest", "--formats", "orc,parqet"]) == 2
        assert "parqet" in capsys.readouterr().err

    def test_parallel_output_identical_to_sequential(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
        ]) == 0
        sequential = capsys.readouterr().out
        assert main([
            "crosstest", "--formats", "parquet",
            "--jobs", "2", "--pool", "thread", "--quiet",
        ]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_bad_jobs_rejected(self, capsys):
        assert main(["crosstest", "--jobs", "0"]) == 2
        assert "bad --jobs" in capsys.readouterr().err

    def test_summary_line_on_stderr(self, capsys):
        assert main(["crosstest", "--formats", "parquet", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "trials in" in captured.err
        assert "errors:" in captured.err

    def test_quiet_suppresses_all_stderr_chatter(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "discrepancies found" in captured.out

    def test_metrics_json_snapshot(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
            "--metrics-json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["system"] == "crosstest"
        assert payload["metrics"]["trials_total"] > 0
        assert "caches" in payload


class TestCrosstestFaults:
    def test_fault_run_renders_robustness(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet",
            "--faults", "smoke", "--fault-seed", "1337",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault plan: smoke (seed=1337)" in out
        assert "robustness:" in out

    def test_fault_json_written(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        assert main([
            "crosstest", "--formats", "parquet",
            "--faults", "smoke", "--fault-seed", "1337",
            "--fault-json", str(path), "--quiet",
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["plan"]["name"] == "smoke"
        assert payload["seed"] == 1337
        assert payload["injected_trials"] > 0

    def test_gate_passes_on_smoke(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet",
            "--faults", "smoke", "--fault-seed", "1337",
            "--fault-gate", "--quiet",
        ]) == 0

    def test_gate_exits_3_on_mis_handled(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet",
            "--faults", "stale-metastore", "--fault-seed", "5",
            "--fault-gate", "--quiet",
        ]) == 3
        assert "mis-handled" in capsys.readouterr().err

    def test_unknown_plan_exits_2_naming_builtins(self, capsys):
        assert main(["crosstest", "--faults", "nope"]) == 2
        err = capsys.readouterr().err
        assert "smoke" in err and "chaos" in err

    def test_fault_seed_without_faults_rejected(self, capsys):
        assert main(["crosstest", "--fault-seed", "7"]) == 2

    def test_plan_file_accepted(self, tmp_path, capsys):
        from repro.faults import BUILTIN_PLANS

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(BUILTIN_PLANS["smoke"].to_json()))
        assert main([
            "crosstest", "--formats", "parquet",
            "--faults", str(path), "--quiet",
        ]) == 0


class TestFaultsList:
    def test_lists_sites_and_plans(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "spark->metastore" in out
        assert "hive->hbase" in out
        assert "smoke" in out
        assert "torn_write" in out


class TestCrosstestTraceDir:
    def test_trace_dir_writes_discrepancy_traces(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1",
            "--trace-dir", str(trace_dir),
        ]) == 0
        captured = capsys.readouterr()
        assert "discrepancy traces" in captured.err
        jsonls = sorted(p.name for p in trace_dir.glob("discrepancy_*.jsonl"))
        chromes = sorted(
            p.name for p in trace_dir.glob("discrepancy_*.chrome.json")
        )
        assert jsonls and len(jsonls) == len(chromes)
        assert (trace_dir / "oracles.jsonl").exists()
        # jira ids with '/' or '(...)' must have been sanitized into the
        # file names, never treated as path separators
        for name in jsonls:
            assert "/" not in name and " " not in name

    def test_trace_dir_output_identical_to_plain_run(self, tmp_path, capsys):
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
        ]) == 0
        plain = capsys.readouterr().out
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
            "--trace-dir", str(tmp_path / "traces"),
        ]) == 0
        traced = capsys.readouterr().out
        assert traced == plain


class TestTraceSummarize:
    def _trace_dir(self, tmp_path):
        trace_dir = tmp_path / "traces"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
            "--trace-dir", str(trace_dir),
        ]) == 0
        return trace_dir

    def test_summarize_renders_boundary_table(self, tmp_path, capsys):
        trace_dir = self._trace_dir(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "spark->serde" in out
        assert "p50" in out and "p99" in out
        # a parquet-only run never crosses the hbase seam: it must read
        # ABSENT, not a silent 0
        hbase_line = next(
            line for line in out.splitlines()
            if line.startswith("hive->hbase")
        )
        assert "ABSENT" in hbase_line
        assert "absent_policy=absent" in out

    def test_summarize_zero_policy(self, tmp_path, capsys):
        trace_dir = self._trace_dir(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "summarize", str(trace_dir), "--absent-policy", "zero",
        ]) == 0
        out = capsys.readouterr().out
        assert "ABSENT" not in out
        assert "absent_policy=zero" in out

    def test_summarize_error_policy_refuses(self, tmp_path, capsys):
        trace_dir = self._trace_dir(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "summarize", str(trace_dir), "--absent-policy", "error",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_summarize_missing_directory(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLedgerFlag:
    def test_crosstest_appends_record(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1",
            "--corpus", "smoke", "--ledger", str(path),
        ]) == 0
        assert "appended run record" in capsys.readouterr().err
        from repro.obs import read_ledger

        (record,) = read_ledger(str(path))
        assert record["kind"] == "crosstest"
        assert record["run"]["corpus"] == "smoke"
        assert record["results"]["trials"] > 0
        assert record["env"]["jobs"] == 1
        assert "metrics" in record["env"]

    def test_fuzz_appends_record(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        code = main([
            "fuzz", "--budget", "8", "--batch", "8", "--no-shrink",
            "--quiet", "--ledger", str(path),
        ])
        assert code in (0, 4)
        from repro.obs import read_ledger

        (record,) = read_ledger(str(path))
        assert record["kind"] == "fuzz"
        assert record["run"]["budget"] == 8
        assert record["env"]["metrics"]  # the fuzz-sourced registry

    def test_unwritable_ledger_preserves_exit_code(self, tmp_path, capsys):
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("")
        # a path under a file can never be opened for append
        path = blocker / "ledger.jsonl"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1",
            "--corpus", "smoke", "--quiet", "--ledger", str(path),
        ]) == 0
        captured = capsys.readouterr()
        assert "ledger error" in captured.err
        assert "discrepancies found" in captured.out

    def test_quiet_keeps_ledger_note_off_stderr(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1",
            "--corpus", "smoke", "--quiet", "--ledger", str(path),
        ]) == 0
        assert capsys.readouterr().err == ""
        assert path.exists()


class TestCampaign:
    def _args(self, tmp_path, extra):
        return [
            "campaign", "--seed", "3", "--batch", "8",
            "--baseline", "none", "--quiet",
            "--checkpoint", str(tmp_path / "ckpt.json"),
            "--fingerprints", str(tmp_path / "fp.jsonl"),
            *extra,
        ]

    def test_bounded_campaign_runs_and_exits_4_on_novel(
        self, tmp_path, capsys
    ):
        # empty baseline → everything found is novel → exit 4
        assert main(self._args(tmp_path, ["--max-batches", "1"])) == 4
        out = capsys.readouterr().out
        assert "campaign started at batch 0" in out
        assert (tmp_path / "ckpt.json").exists()
        assert (tmp_path / "fp.jsonl").exists()

    def test_resume_reports_and_respects_global_max_batches(
        self, tmp_path, capsys
    ):
        assert main(self._args(tmp_path, ["--max-batches", "1"])) == 4
        capsys.readouterr()
        assert main(
            self._args(tmp_path, ["--max-batches", "2", "--json"])
        ) == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["resumed"] is True
        assert payload["batches_run"] == 1
        assert payload["batches_total"] == 2
        assert payload["exit_code"] == 4

    def test_checkpoint_config_mismatch_exits_2(self, tmp_path, capsys):
        assert main(self._args(tmp_path, ["--max-batches", "1"])) == 4
        args = self._args(tmp_path, ["--max-batches", "2"])
        args[args.index("--seed") + 1] = "4"
        assert main(args) == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_bad_flags_rejected(self, capsys):
        assert main(["campaign", "--jobs", "0"]) == 2
        assert main(["campaign", "--max-batches", "0"]) == 2
        assert main(["campaign", "--duration", "-1"]) == 2


class TestStatus:
    def _seed_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for seed in ("1337", "1338"):
            assert main([
                "crosstest", "--formats", "parquet", "--jobs", "1",
                "--corpus", "smoke", "--quiet",
                "--faults", "smoke", "--fault-seed", seed,
                "--ledger", str(path),
            ]) == 0
        return path

    def test_no_runs_recorded_is_friendly(self, tmp_path, capsys):
        assert main([
            "status", "--ledger", str(tmp_path / "absent.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "no runs recorded" in out

    def test_no_ledger_at_all_is_friendly(self, capsys):
        assert main(["status"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_status_renders_clusters_with_seams(self, tmp_path, capsys):
        path = self._seed_ledger(tmp_path)
        capsys.readouterr()
        assert main(["status", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runs: 2 (2 crosstest)" in out
        assert "co-occurrence clusters" in out
        assert "flake 100%" in out
        assert "spark->hive" in out or "spark<->spark" in out

    def test_status_json(self, tmp_path, capsys):
        path = self._seed_ledger(tmp_path)
        capsys.readouterr()
        assert main(["status", "--ledger", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_runs"] == 2
        assert payload["clusters"]
        cluster = payload["clusters"][0]
        assert cluster["flake_rate"] == 1.0
        assert cluster["seams"]

    def test_schema_drift_exits_2(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"schema_version": 99, "kind": "crosstest"}\n')
        assert main(["status", "--ledger", str(path)]) == 2
        assert "schema-version drift" in capsys.readouterr().err

    def test_corrupt_ledger_exits_2_without_traceback(self, tmp_path, capsys):
        # corruption *before* the tail is file damage, not a torn append
        path = tmp_path / "ledger.jsonl"
        path.write_text('not json\n{"schema_version": 1}\n')
        assert main(["status", "--ledger", str(path)]) == 2
        assert "not a JSON record" in capsys.readouterr().err

    def test_torn_trailing_line_tolerated(self, tmp_path, capsys):
        # a hard-killed campaign writer leaves at most one partial final
        # line; status must render the intact prefix, not exit 2
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            '{"schema_version": 1, "kind": "campaign", "ts": 1.0, '
            '"run": {}, "results": {}, "env": {}}\n{"schema_ver'
        )
        assert main(["status", "--ledger", str(path)]) == 0
        assert "runs: 1 (1 campaign)" in capsys.readouterr().out

    def test_bad_threshold_rejected(self, capsys):
        assert main(["status", "--threshold", "0"]) == 2
        assert "bad --threshold" in capsys.readouterr().err

    def test_bad_serve_spec_rejected(self, capsys):
        assert main(["status", "--serve", "not-a-port"]) == 2
        assert "bad --serve" in capsys.readouterr().err

    def test_campaign_panel_renders_checkpoint(self, tmp_path, capsys):
        assert main([
            "campaign", "--seed", "3", "--batch", "8",
            "--baseline", "none", "--quiet", "--max-batches", "1",
            "--checkpoint", str(tmp_path / "ckpt.json"),
            "--fingerprints", str(tmp_path / "fp.jsonl"),
        ]) == 4
        capsys.readouterr()
        assert main([
            "status", "--checkpoint", str(tmp_path / "ckpt.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "batch 1, 8 candidates" in out

    def test_campaign_panel_missing_checkpoint_is_friendly(
        self, tmp_path, capsys
    ):
        assert main([
            "status", "--checkpoint", str(tmp_path / "absent.json"),
        ]) == 0
        assert "no checkpoint yet" in capsys.readouterr().out

    def test_serve_prints_resolved_ephemeral_url(self, tmp_path):
        # --serve 0 binds an ephemeral port; the resolved URL on stdout
        # is the only way a script learns where the server bound
        import os
        import signal as signal_mod
        import subprocess
        import sys
        import time
        import urllib.request

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "status",
                "--serve", "127.0.0.1:0", "--quiet",
                "--checkpoint", str(tmp_path / "absent.json"),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving at http://127.0.0.1:")
            url = line.removeprefix("serving at ")
            assert not url.endswith(":0/")
            deadline = time.monotonic() + 30
            while True:
                try:
                    with urllib.request.urlopen(
                        url + "campaign", timeout=5
                    ) as resp:
                        payload = json.load(resp)
                    break
                except OSError:
                    assert time.monotonic() < deadline
                    time.sleep(0.2)
            assert payload["active"] is False
        finally:
            proc.send_signal(signal_mod.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


class TestConfcheckAndGaps:
    def test_confcheck_flags_example(self, capsys):
        assert main(["confcheck"]) == 1
        assert "pmem" in capsys.readouterr().out

    def test_gaps_avro(self, capsys):
        assert main(["gaps", "avro"]) == 1
        assert "tinyint" in capsys.readouterr().out

    def test_gaps_clean_format(self, capsys):
        assert main(["gaps", "parquet"]) == 0
        assert "no reader gaps" in capsys.readouterr().out


class TestExport:
    def test_export_writes_dataset(self, tmp_path, capsys):
        target = tmp_path / "csi.json"
        assert main(["export", str(target)]) == 0
        assert "120 CSI failure records" in capsys.readouterr().out
        from repro.dataset.io import load_failures_from_file

        assert len(load_failures_from_file(target)) == 120


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
