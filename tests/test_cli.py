"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestReplay:
    def test_list_scenarios(self, capsys):
        assert main(["replay"]) == 0
        out = capsys.readouterr().out
        assert "FLINK-12342" in out and "SPARK-27239" in out

    def test_failing_replay_exit_code(self, capsys):
        assert main(["replay", "SPARK-27239"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_fixed_replay_exit_code(self, capsys):
        assert main(["replay", "SPARK-27239", "--fixed"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_lowercase_jira_accepted(self):
        assert main(["replay", "spark-27239", "--fixed"]) == 0

    def test_unknown_jira(self, capsys):
        assert main(["replay", "NOPE-1"]) == 2


class TestStudy:
    def test_study_reproduces(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "13/13 findings reproduced" in out


class TestCrosstest:
    def test_single_format_run(self, capsys):
        assert main(["crosstest", "--formats", "parquet"]) == 0
        out = capsys.readouterr().out
        assert "discrepancies found" in out

    def test_json_output(self, capsys):
        assert main(["crosstest", "--formats", "parquet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "found_discrepancies" in payload

    def test_conf_override(self, capsys):
        assert main([
            "crosstest",
            "--formats", "parquet",
            "--conf", "spark.sql.storeAssignmentPolicy=legacy",
        ]) == 0

    def test_bad_conf_rejected(self, capsys):
        assert main(["crosstest", "--conf", "garbage"]) == 2

    def test_conf_empty_value_accepted(self, capsys):
        # KEY= is legitimate: empty string is a real configuration value
        assert main([
            "crosstest",
            "--formats", "parquet",
            "--conf", "spark.sql.sources.commitProtocolClass=",
            "--quiet",
        ]) == 0

    def test_conf_empty_key_rejected(self, capsys):
        assert main(["crosstest", "--conf", "=value"]) == 2
        assert "bad --conf" in capsys.readouterr().err

    def test_unknown_format_exits_2_naming_valid_formats(self, capsys):
        # regression: '--formats orcc' used to run 3,376 doomed trials,
        # report 0/15 discrepancies, and exit 0
        assert main(["crosstest", "--formats", "orcc"]) == 2
        err = capsys.readouterr().err
        assert "orcc" in err
        for valid in ("avro", "orc", "parquet"):
            assert valid in err

    def test_unknown_format_among_valid_ones_exits_2(self, capsys):
        assert main(["crosstest", "--formats", "orc,parqet"]) == 2
        assert "parqet" in capsys.readouterr().err

    def test_parallel_output_identical_to_sequential(self, capsys):
        assert main([
            "crosstest", "--formats", "parquet", "--jobs", "1", "--quiet",
        ]) == 0
        sequential = capsys.readouterr().out
        assert main([
            "crosstest", "--formats", "parquet",
            "--jobs", "2", "--pool", "thread", "--quiet",
        ]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_bad_jobs_rejected(self, capsys):
        assert main(["crosstest", "--jobs", "0"]) == 2
        assert "bad --jobs" in capsys.readouterr().err

    def test_summary_line_on_stderr(self, capsys):
        assert main(["crosstest", "--formats", "parquet", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "trials in" in captured.err
        assert "errors:" in captured.err


class TestConfcheckAndGaps:
    def test_confcheck_flags_example(self, capsys):
        assert main(["confcheck"]) == 1
        assert "pmem" in capsys.readouterr().out

    def test_gaps_avro(self, capsys):
        assert main(["gaps", "avro"]) == 1
        assert "tinyint" in capsys.readouterr().out

    def test_gaps_clean_format(self, capsys):
        assert main(["gaps", "parquet"]) == 0
        assert "no reader gaps" in capsys.readouterr().out


class TestExport:
    def test_export_writes_dataset(self, tmp_path, capsys):
        target = tmp_path / "csi.json"
        assert main(["export", str(target)]) == 0
        assert "120 CSI failure records" in capsys.readouterr().out
        from repro.dataset.io import load_failures_from_file

        assert len(load_failures_from_file(target)) == 120


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
