"""The injector: deterministic decisions, activation, cooperative kinds."""

import pickle

import pytest

from repro.faults import (
    EMPTY_PLAN,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedIOError,
    InjectedTimeout,
    apply_torn_write,
    current_injector,
    fault_point,
    injection_active,
)
from repro.faults.core import _hash01

ALWAYS_TIMEOUT = FaultPlan(
    name="t", rules=(FaultRule("site", "timeout", 1.0),)
)
ALWAYS_IO = FaultPlan(name="io", rules=(FaultRule("site", "io_error", 1.0),))
ALWAYS_TEAR = FaultPlan(
    name="tear", rules=(FaultRule("site", "torn_write", 1.0),)
)


class TestHash:
    def test_stable_across_calls(self):
        assert _hash01(1, "a", "b") == _hash01(1, "a", "b")

    def test_range(self):
        for seed in range(50):
            assert 0.0 <= _hash01(seed, "x") < 1.0

    def test_distinct_keys_differ(self):
        draws = {_hash01(seed, "trial", "site", 0, 0) for seed in range(32)}
        assert len(draws) > 16  # not a constant function

    def test_known_vector(self):
        # blake2b of the joined key — a pinned vector makes a refactor
        # to the process-randomized builtin hash() fail loudly
        assert _hash01("v") == pytest.approx(0.6403059711363887, abs=1e-15)
        assert _hash01(0, "k") != _hash01(1, "k")


class TestFaultPoint:
    def test_noop_without_injector(self):
        assert fault_point("site", "op") is None
        assert not injection_active()
        assert current_injector() is None

    def test_raises_timeout(self):
        with FaultInjector(ALWAYS_TIMEOUT, seed=1, trial_key="k"):
            with pytest.raises(InjectedTimeout) as info:
                fault_point("site", "op")
        assert info.value.fault_kind == "timeout"
        assert info.value.site == "site"

    def test_raises_io_error(self):
        with FaultInjector(ALWAYS_IO, seed=1, trial_key="k"):
            with pytest.raises(InjectedIOError):
                fault_point("site", "op")

    def test_cooperative_kind_needs_site_support(self):
        with FaultInjector(ALWAYS_TEAR, seed=1, trial_key="k") as injector:
            # site does not declare torn_write -> rule is skipped
            assert fault_point("site", "op") is None
            action = fault_point("site", "op", cooperative=("torn_write",))
        assert isinstance(action, FaultAction)
        assert action.kind == "torn_write"
        assert 0.25 <= action.fraction < 0.75
        assert [record.kind for record in injector.records] == ["torn_write"]

    def test_empty_plan_never_fires_and_reads_inactive(self):
        with FaultInjector(EMPTY_PLAN, seed=1, trial_key="k"):
            assert not injection_active()
            assert fault_point("site", "op") is None

    def test_active_with_rules(self):
        with FaultInjector(ALWAYS_TIMEOUT, seed=1, trial_key="k"):
            assert injection_active()
        assert not injection_active()

    def test_records_carry_visit_index(self):
        plan = FaultPlan(
            name="p", rules=(FaultRule("site", "timeout", 1.0),)
        )
        with FaultInjector(plan, seed=1, trial_key="k") as injector:
            for _ in range(3):
                with pytest.raises(InjectedTimeout):
                    fault_point("site", "op")
        assert [record.visit for record in injector.records] == [0, 1, 2]

    def test_max_per_trial_caps_firing(self):
        plan = FaultPlan(
            name="p",
            rules=(FaultRule("site", "timeout", 1.0, max_per_trial=2),),
        )
        with FaultInjector(plan, seed=1, trial_key="k") as injector:
            for _ in range(2):
                with pytest.raises(InjectedTimeout):
                    fault_point("site", "op")
            assert fault_point("site", "op") is None
        assert len(injector.records) == 2

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            name="p",
            rules=(
                FaultRule("site", "io_error", 1.0),
                FaultRule("site", "timeout", 1.0),
            ),
        )
        with FaultInjector(plan, seed=1, trial_key="k"):
            with pytest.raises(InjectedIOError):
                fault_point("site", "op")


class TestDeterminism:
    PLAN = FaultPlan(name="half", rules=(FaultRule("s", "timeout", 0.5),))

    def _schedule(self, seed, trial_key, visits=20):
        fired = []
        with FaultInjector(self.PLAN, seed=seed, trial_key=trial_key):
            for index in range(visits):
                try:
                    fault_point("s", "op")
                except InjectedTimeout:
                    fired.append(index)
        return fired

    def test_same_key_same_schedule(self):
        assert self._schedule(7, "a/b/1") == self._schedule(7, "a/b/1")

    def test_seed_changes_schedule(self):
        schedules = {tuple(self._schedule(seed, "a/b/1")) for seed in range(8)}
        assert len(schedules) > 1

    def test_trial_key_changes_schedule(self):
        schedules = {
            tuple(self._schedule(7, f"a/b/{i}")) for i in range(8)
        }
        assert len(schedules) > 1

    def test_schedule_independent_of_prior_trials(self):
        # running another trial first must not shift the draws
        self._schedule(7, "other/trial/0")
        assert self._schedule(7, "a/b/1") == self._schedule(7, "a/b/1")

    def test_injector_state_survives_pickle_of_plan(self):
        plan = pickle.loads(pickle.dumps(self.PLAN))
        with FaultInjector(plan, seed=7, trial_key="a/b/1") as injector:
            for _ in range(20):
                try:
                    fault_point("s", "op")
                except InjectedTimeout:
                    pass
        fired = [record.visit for record in injector.records]
        assert fired == self._schedule(7, "a/b/1")


class TestTornWrite:
    def test_truncates_by_fraction(self):
        action = FaultAction("torn_write", 0.5)
        assert apply_torn_write(b"abcdefgh", action) == b"abcd"

    def test_empty_blob_unchanged(self):
        assert apply_torn_write(b"", FaultAction("torn_write", 0.5)) == b""
