"""Fault plans: validation, JSON round-trips, and spec resolution."""

import json
import pickle

import pytest

from repro.faults import (
    BUILTIN_PLANS,
    EMPTY_PLAN,
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    PlanError,
    load_plan,
)


class TestFaultRule:
    def test_valid_rule(self):
        rule = FaultRule("spark->metastore", "timeout", 0.5)
        assert rule.operation == "*"
        assert rule.max_per_trial == 0

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(PlanError, match="rate"):
            FaultRule("spark->metastore", "timeout", rate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown fault kind"):
            FaultRule("spark->metastore", "brownout", 0.5)

    def test_empty_site_rejected(self):
        with pytest.raises(PlanError, match="site"):
            FaultRule("", "timeout", 0.5)

    def test_negative_cap_rejected(self):
        with pytest.raises(PlanError, match="max_per_trial"):
            FaultRule("x", "timeout", 0.5, max_per_trial=-1)

    def test_glob_matching(self):
        rule = FaultRule("*->metastore", "timeout", 0.5, operation="resolve")
        assert rule.matches("spark->metastore", "resolve")
        assert rule.matches("hive->metastore", "resolve")
        assert not rule.matches("spark->metastore", "create_table")
        assert not rule.matches("spark->hdfs", "resolve")

    def test_json_round_trip(self):
        rule = FaultRule(
            "hive->hbase", "timeout", 0.25, operation="put", max_per_trial=2
        )
        assert FaultRule.from_json(rule.to_json()) == rule

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(PlanError, match="unknown rule keys"):
            FaultRule.from_json(
                {"site": "x", "kind": "timeout", "rate": 0.5, "color": "red"}
            )

    def test_from_json_missing_key(self):
        with pytest.raises(PlanError, match="missing key"):
            FaultRule.from_json({"site": "x", "kind": "timeout"})


class TestFaultPlan:
    def test_empty(self):
        assert EMPTY_PLAN.empty
        assert not BUILTIN_PLANS["smoke"].empty

    def test_json_round_trip(self):
        plan = BUILTIN_PLANS["chaos"]
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plans_pickle_unchanged(self):
        # plans ship into --jobs process workers
        for plan in BUILTIN_PLANS.values():
            assert pickle.loads(pickle.dumps(plan)) == plan


class TestBuiltins:
    def test_builtin_rules_cover_known_sites_only(self):
        """Every builtin rule matches at least one registered site."""
        for plan in BUILTIN_PLANS.values():
            for rule in plan.rules:
                assert any(
                    rule.matches(site.site, site.operation)
                    for site in KNOWN_SITES
                ), f"{plan.name}: rule {rule} matches no known site"

    def test_cooperative_rules_target_supporting_sites(self):
        for plan in BUILTIN_PLANS.values():
            for rule in plan.rules:
                if rule.kind in ("timeout", "io_error"):
                    continue
                assert any(
                    rule.matches(site.site, site.operation)
                    and rule.kind in site.cooperative
                    for site in KNOWN_SITES
                ), f"{plan.name}: {rule.kind} rule hits no supporting site"

    def test_smoke_targets_retry_guarded_sites(self):
        for rule in BUILTIN_PLANS["smoke"].rules:
            assert rule.site == "spark->metastore"


class TestLoadPlan:
    def test_builtin_by_name(self):
        assert load_plan("smoke") is BUILTIN_PLANS["smoke"]

    def test_unknown_name_lists_builtins(self):
        with pytest.raises(PlanError, match="smoke"):
            load_plan("definitely-not-a-plan")

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = BUILTIN_PLANS["torn-writes"]
        path.write_text(json.dumps(plan.to_json()))
        assert load_plan(str(path)) == plan

    def test_missing_file(self, tmp_path):
        with pytest.raises(PlanError, match="cannot read"):
            load_plan(str(tmp_path / "nope.json"))

    def test_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(PlanError, match="not JSON"):
            load_plan(str(path))

    def test_bad_rule_in_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"name": "p", "rules": [{"site": "x", "kind": "q", "rate": 1}]}
            )
        )
        with pytest.raises(PlanError, match="unknown fault kind"):
            load_plan(str(path))
