"""Property: a (plan, seed) schedules identical faults at any --jobs.

The acceptance bar for the whole subsystem — worker count, pool flavour,
and scheduling order must be invisible to the fault schedule and to the
robustness classifications derived from it.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs
from repro.faults import FaultPlan, FaultRule

_INPUTS = generate_inputs()[:6]

_SITES = st.sampled_from(
    ["spark->metastore", "*->metastore", "hive->hbase", "*->hdfs"]
)
_KINDS = st.sampled_from(["timeout", "io_error"])


def _fault_json(seed, plan, jobs):
    report = run_crosstest(
        inputs=_INPUTS,
        formats=("parquet",),
        jobs=jobs,
        pool="thread",
        fault_plan=plan,
        fault_seed=seed,
    )
    assert report.faults is not None
    return json.dumps(report.faults.to_json(), sort_keys=True)


class TestScheduleInvariance:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        site=_SITES,
        kind=_KINDS,
        rate=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_jobs_1_2_4_schedule_identically(self, seed, site, kind, rate):
        plan = FaultPlan(
            name="prop", rules=(FaultRule(site, kind, round(rate, 3)),)
        )
        baseline = _fault_json(seed, plan, jobs=1)
        assert _fault_json(seed, plan, jobs=2) == baseline
        assert _fault_json(seed, plan, jobs=4) == baseline
