"""RetryPolicy: masking, exhaustion, budgets, and stats."""

import pytest

from repro.connectors import RetryPolicy
from repro.faults import (
    BoundaryTimeout,
    BoundaryUnavailable,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedTimeout,
)


def _plan(kind, rate=1.0, max_per_trial=0):
    return FaultPlan(
        name="p",
        rules=(FaultRule("site", kind, rate, max_per_trial=max_per_trial),),
    )


class TestHappyPath:
    def test_single_attempt_no_faults(self):
        policy = RetryPolicy()
        assert policy.call(lambda action: 42, site="site") == 42
        assert policy.stats.attempts == 1
        assert policy.stats.faults == 0
        assert policy.stats.masked_calls == 0

    def test_no_injector_means_no_fault_overhead(self):
        policy = RetryPolicy()
        calls = []
        policy.call(lambda action: calls.append(action), site="site")
        assert calls == [None]


class TestMasking:
    def test_fault_under_cap_is_masked(self):
        # one guaranteed fault, then the rule is spent -> retry succeeds
        policy = RetryPolicy(max_attempts=3)
        with FaultInjector(_plan("timeout", max_per_trial=1), 0, "k"):
            result = policy.call(lambda action: "ok", site="site")
        assert result == "ok"
        assert policy.stats.attempts == 2
        assert policy.stats.faults == 1
        assert policy.stats.masked_calls == 1
        assert policy.stats.exhausted_calls == 0
        assert policy.stats.backoff_s > 0

    def test_backoff_is_simulated_not_slept(self):
        import time

        policy = RetryPolicy(
            base_backoff_s=30.0, max_backoff_s=30.0, backoff_budget_s=100.0
        )
        with FaultInjector(_plan("timeout", max_per_trial=1), 0, "k"):
            started = time.perf_counter()
            policy.call(lambda action: "ok", site="site")
            elapsed = time.perf_counter() - started
        assert elapsed < 1.0  # a real 30s sleep would be unmistakable
        assert policy.stats.backoff_s >= 15.0


class TestExhaustion:
    def test_timeouts_exhaust_into_boundary_timeout(self):
        policy = RetryPolicy(max_attempts=3)
        with FaultInjector(_plan("timeout"), 0, "k"):
            with pytest.raises(BoundaryTimeout) as info:
                policy.call(lambda action: "ok", site="site", operation="op")
        assert info.value.attempts == 3
        assert info.value.fault_kind == "timeout"
        assert isinstance(info.value.__cause__, InjectedTimeout)
        assert policy.stats.exhausted_calls == 1
        assert policy.stats.faults == 3

    def test_io_errors_exhaust_into_boundary_unavailable(self):
        policy = RetryPolicy(max_attempts=2)
        with FaultInjector(_plan("io_error"), 0, "k"):
            with pytest.raises(BoundaryUnavailable) as info:
                policy.call(lambda action: "ok", site="site")
        assert info.value.fault_kind == "io_error"

    def test_backoff_budget_caps_retries(self):
        # generous attempt cap, tiny budget: the second fault must not
        # be retried because its backoff would blow the budget
        policy = RetryPolicy(
            max_attempts=100, base_backoff_s=1.0, backoff_budget_s=1.0
        )
        with FaultInjector(_plan("timeout"), 0, "k"):
            with pytest.raises(BoundaryTimeout) as info:
                policy.call(lambda action: "ok", site="site")
        assert info.value.attempts < 100
        assert policy.stats.backoff_s <= 1.0


class TestDeterminism:
    def test_same_schedule_same_stats(self):
        def run():
            policy = RetryPolicy()
            with FaultInjector(_plan("timeout", rate=0.5), 3, "k"):
                try:
                    policy.call(lambda action: "ok", site="site")
                except BoundaryTimeout:
                    pass
            return (
                policy.stats.attempts,
                policy.stats.faults,
                policy.stats.backoff_s,
            )

        assert run() == run()
