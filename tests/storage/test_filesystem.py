"""Unit tests for the client FileSystem facade."""

import pytest

from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


@pytest.fixture
def filesystem():
    return FileSystem(NameNode(), user="spark")


class TestFacade:
    def test_write_records_owner(self, filesystem):
        filesystem.write("/f", b"x")
        assert filesystem.status("/f").owner == "spark"

    def test_write_read_roundtrip(self, filesystem):
        filesystem.write("/a/b", b"payload")
        assert filesystem.read("/a/b") == b"payload"

    def test_default_overwrite_true(self, filesystem):
        filesystem.write("/f", b"1")
        filesystem.write("/f", b"2")
        assert filesystem.read("/f") == b"2"

    def test_listdir(self, filesystem):
        filesystem.write("/d/x", b"")
        filesystem.write("/d/y", b"")
        assert [s.path for s in filesystem.listdir("/d")] == ["/d/x", "/d/y"]

    def test_exists_delete(self, filesystem):
        filesystem.write("/f", b"")
        assert filesystem.exists("/f")
        filesystem.delete("/f")
        assert not filesystem.exists("/f")

    def test_rename(self, filesystem):
        filesystem.write("/f", b"z")
        filesystem.rename("/f", "/g")
        assert filesystem.read("/g") == b"z"

    def test_compressed_passthrough(self, filesystem):
        filesystem.write("/c", b"data" * 50, compressed=True)
        assert filesystem.status("/c").length == -1
        assert filesystem.read_raw("/c") != b"data" * 50

    def test_token_issued_for_user(self, filesystem):
        token = filesystem.issue_token()
        assert token.renewer == "spark"

    def test_append(self, filesystem):
        filesystem.write("/f", b"a")
        filesystem.append("/f", b"b")
        assert filesystem.read("/f") == b"ab"

    def test_two_clients_share_namespace(self):
        namenode = NameNode()
        one = FileSystem(namenode, user="one")
        two = FileSystem(namenode, user="two")
        one.write("/shared", b"from-one")
        assert two.read("/shared") == b"from-one"
