"""Unit tests for the HDFS-like namenode."""

import pytest

from repro.errors import (
    FileNotFoundInStorageError,
    SafeModeException,
    StorageError,
)
from repro.storage.files import COMPRESSED_LENGTH_SENTINEL
from repro.storage.namenode import NameNode


@pytest.fixture
def namenode():
    return NameNode()


class TestNamespace:
    def test_create_and_read(self, namenode):
        namenode.create("/a/b/file.txt", b"hello")
        assert namenode.open("/a/b/file.txt") == b"hello"
        assert namenode.exists("/a/b")

    def test_relative_path_rejected(self, namenode):
        with pytest.raises(StorageError):
            namenode.create("relative.txt", b"")

    def test_create_twice_requires_overwrite(self, namenode):
        namenode.create("/f", b"1")
        with pytest.raises(StorageError):
            namenode.create("/f", b"2")
        namenode.create("/f", b"2", overwrite=True)
        assert namenode.open("/f") == b"2"

    def test_append(self, namenode):
        namenode.create("/f", b"ab")
        namenode.append("/f", b"cd")
        assert namenode.open("/f") == b"abcd"

    def test_missing_file_raises(self, namenode):
        with pytest.raises(FileNotFoundInStorageError):
            namenode.open("/nope")

    def test_delete_file(self, namenode):
        namenode.create("/f", b"")
        assert namenode.delete("/f")
        assert not namenode.exists("/f")
        assert not namenode.delete("/f")

    def test_delete_nonempty_dir_needs_recursive(self, namenode):
        namenode.create("/d/f", b"")
        with pytest.raises(StorageError):
            namenode.delete("/d")
        assert namenode.delete("/d", recursive=True)
        assert not namenode.exists("/d/f")

    def test_rename(self, namenode):
        namenode.create("/old", b"x")
        namenode.rename("/old", "/new/place")
        assert namenode.open("/new/place") == b"x"
        assert not namenode.exists("/old")

    def test_rename_onto_existing_rejected(self, namenode):
        namenode.create("/a", b"")
        namenode.create("/b", b"")
        with pytest.raises(StorageError):
            namenode.rename("/a", "/b")

    def test_list_status_sorted(self, namenode):
        namenode.create("/d/b", b"")
        namenode.create("/d/a", b"")
        names = [s.path for s in namenode.list_status("/d")]
        assert names == ["/d/a", "/d/b"]

    def test_list_status_file_and_dirs(self, namenode):
        namenode.mkdirs("/d/sub")
        namenode.create("/d/f", b"")
        statuses = {s.path: s.is_directory for s in namenode.list_status("/d")}
        assert statuses == {"/d/sub": True, "/d/f": False}

    def test_file_over_dir_rejected(self, namenode):
        namenode.create("/x", b"")
        with pytest.raises(StorageError):
            namenode.mkdirs("/x/y")


class TestCompressedLength:
    def test_sentinel_reported(self, namenode):
        namenode.create("/c", b"payload" * 100, compressed=True)
        status = namenode.get_file_status("/c")
        assert status.length == COMPRESSED_LENGTH_SENTINEL
        assert status.custom_property("is_compressed") is True

    def test_logical_read_unaffected(self, namenode):
        payload = b"payload" * 100
        namenode.create("/c", payload, compressed=True)
        assert namenode.open("/c") == payload

    def test_raw_read_is_compressed(self, namenode):
        payload = b"payload" * 100
        namenode.create("/c", payload, compressed=True)
        raw = namenode.open_raw("/c")
        assert raw != payload
        assert len(raw) < len(payload)

    def test_uncompressed_length_is_real(self, namenode):
        namenode.create("/p", b"12345")
        assert namenode.get_file_status("/p").length == 5


class TestCustomProperties:
    def test_standard_custom_properties(self, namenode):
        namenode.create("/f", b"", encrypted=True, local_only=True)
        status = namenode.get_file_status("/f")
        assert status.custom_property("is_encrypted") is True
        assert status.custom_property("is_local") is True
        assert status.custom_property("unknown", "dflt") == "dflt"

    def test_extra_properties(self, namenode):
        namenode.create("/f", b"", properties={"storage_policy": "COLD"})
        namenode.set_property("/f", "erasure_coded", True)
        status = namenode.get_file_status("/f")
        assert status.custom_property("storage_policy") == "COLD"
        assert status.custom_property("erasure_coded") is True


class TestSafeMode:
    def test_mutations_rejected(self, namenode):
        namenode.enter_safe_mode()
        with pytest.raises(SafeModeException):
            namenode.create("/f", b"")
        with pytest.raises(SafeModeException):
            namenode.mkdirs("/d")

    def test_reads_allowed(self, namenode):
        namenode.create("/f", b"x")
        namenode.enter_safe_mode()
        assert namenode.open("/f") == b"x"
        assert namenode.exists("/")

    def test_leave_restores_writes(self, namenode):
        namenode.enter_safe_mode()
        namenode.leave_safe_mode()
        namenode.create("/f", b"")


class TestTokens:
    def test_issue_and_verify(self, namenode):
        token = namenode.issue_token("yarn")
        namenode.verify_token(token.token_id)

    def test_expiry(self, namenode):
        token = namenode.issue_token("yarn", lifetime_ms=100)
        namenode.clock_ms = 101
        with pytest.raises(StorageError):
            namenode.verify_token(token.token_id)

    def test_renew_extends(self, namenode):
        token = namenode.issue_token("yarn", lifetime_ms=100)
        namenode.clock_ms = 90
        namenode.renew_token(token.token_id, lifetime_ms=100)
        namenode.clock_ms = 150
        namenode.verify_token(token.token_id)

    def test_cancelled_token_cannot_renew(self, namenode):
        token = namenode.issue_token("yarn")
        token.cancelled = True
        with pytest.raises(StorageError):
            namenode.renew_token(token.token_id)

    def test_unknown_token(self, namenode):
        with pytest.raises(StorageError):
            namenode.verify_token(999)
