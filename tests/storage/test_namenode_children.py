"""The namenode's direct-children index stays consistent under every
namespace mutation (it backs listing and recursive deletion)."""

import pytest

from repro.errors import StorageError
from repro.storage.namenode import NameNode


@pytest.fixture
def namenode():
    return NameNode()


def _names(namenode, path):
    return [status.path for status in namenode.list_status(path)]


class TestChildrenIndex:
    def test_create_links_the_file_under_its_parent(self, namenode):
        namenode.create("/a/b/f", b"x")
        assert _names(namenode, "/a/b") == ["/a/b/f"]
        assert _names(namenode, "/a") == ["/a/b"]
        assert _names(namenode, "/") == ["/a"]

    def test_mkdirs_links_every_new_ancestor(self, namenode):
        namenode.mkdirs("/w/x/y")
        assert _names(namenode, "/w") == ["/w/x"]
        assert _names(namenode, "/w/x") == ["/w/x/y"]
        assert _names(namenode, "/w/x/y") == []

    def test_repeat_mkdirs_does_not_duplicate(self, namenode):
        namenode.mkdirs("/w/x")
        namenode.mkdirs("/w/x")
        assert _names(namenode, "/w") == ["/w/x"]

    def test_listing_is_sorted(self, namenode):
        for name in ("c", "a", "b"):
            namenode.create(f"/d/{name}", b"")
        assert _names(namenode, "/d") == ["/d/a", "/d/b", "/d/c"]

    def test_delete_file_unlinks_it(self, namenode):
        namenode.create("/d/f", b"")
        namenode.delete("/d/f")
        assert _names(namenode, "/d") == []

    def test_recursive_delete_drops_the_subtree(self, namenode):
        namenode.create("/d/sub/f1", b"")
        namenode.create("/d/sub/f2", b"")
        namenode.create("/d/g", b"")
        assert namenode.delete("/d", recursive=True)
        assert not namenode.exists("/d")
        assert not namenode.exists("/d/sub/f1")
        assert _names(namenode, "/") == []

    def test_non_recursive_delete_of_populated_dir_rejected(self, namenode):
        namenode.create("/d/f", b"")
        with pytest.raises(StorageError):
            namenode.delete("/d")
        assert _names(namenode, "/d") == ["/d/f"]

    def test_rename_moves_the_link(self, namenode):
        namenode.create("/src/f", b"payload")
        namenode.rename("/src/f", "/dst/g")
        assert _names(namenode, "/src") == []
        assert _names(namenode, "/dst") == ["/dst/g"]
        assert namenode.open("/dst/g") == b"payload"

    def test_recreate_after_delete_relinks(self, namenode):
        namenode.create("/d/f", b"1")
        namenode.delete("/d/f")
        namenode.create("/d/f", b"2")
        assert _names(namenode, "/d") == ["/d/f"]
        assert namenode.open("/d/f") == b"2"

    def test_overwrite_does_not_duplicate_the_link(self, namenode):
        namenode.create("/d/f", b"1")
        namenode.create("/d/f", b"2", overwrite=True)
        assert _names(namenode, "/d") == ["/d/f"]


class TestStatusCache:
    def test_append_refreshes_length(self, namenode):
        namenode.create("/f", b"ab")
        assert namenode.get_file_status("/f").length == 2
        namenode.append("/f", b"cd")
        assert namenode.get_file_status("/f").length == 4

    def test_set_property_refreshes_custom_metadata(self, namenode):
        namenode.create("/f", b"")
        namenode.get_file_status("/f")
        namenode.set_property("/f", "storage_policy", "HOT")
        status = namenode.get_file_status("/f")
        assert status.custom_property("storage_policy") == "HOT"

    def test_rename_refreshes_path(self, namenode):
        namenode.create("/f", b"")
        namenode.get_file_status("/f")
        namenode.rename("/f", "/g")
        assert namenode.get_file_status("/g").path == "/g"
