"""Replay every named CSI failure the paper describes, then its fix.

One scenario per discrepancy pattern: the three plane examples of §2.3
(Figures 1-3), the monitoring kill of §6.2.2, and one case each for
wrong API assumptions, silent config overwrite, state inconsistency,
and the token-expiry window.

Usage::

    python examples/failure_replays.py
"""

from repro.scenarios import SCENARIOS, run_fix_stage
from repro.scenarios.control_flink_yarn import FIX_STAGES


def main() -> None:
    print("=" * 78)
    print("CSI failure replays (failing configuration)")
    print("=" * 78)
    for scenario in SCENARIOS:
        outcome = scenario.run_failing()
        print(f"\n{scenario.jira}: {scenario.upstream} -> {scenario.downstream}")
        print(f"  pattern: {scenario.pattern}")
        print(f"  {outcome.describe()}")
        for key, value in sorted(outcome.metrics.items()):
            print(f"    {key} = {value}")

    print()
    print("=" * 78)
    print("Same scenarios under the documented fixes")
    print("=" * 78)
    for scenario in SCENARIOS:
        outcome = scenario.run_fixed()
        marker = "STILL FAILING" if outcome.failed else "resolved"
        print(f"  {scenario.jira:14} {marker}: {outcome.symptom}")

    print()
    print("=" * 78)
    print("Figure 5: the FLINK-12342 fix history, stage by stage")
    print("=" * 78)
    for stage in FIX_STAGES:
        outcome = run_fix_stage(stage, needed_containers=20)
        print(
            f"  {stage.value:22} requested "
            f"{outcome.metrics['total_requested']:>7} containers "
            f"for a need of {outcome.metrics['needed']} "
            f"-> {'OVERLOAD' if outcome.failed else 'ok'}"
        )


if __name__ == "__main__":
    main()
