"""Regenerate the full empirical study: Tables 1-9 and Findings 1-13.

The equivalent of the paper artifact's ``reproduce_study.ipynb``: every
statistic is recomputed from the per-case records, never read from a
constant.

Usage::

    python examples/study_report.py
"""

from repro.core.analysis import (
    cbs_statistics,
    compute_findings,
    incident_statistics,
    table1_interactions,
    table2_planes,
    table3_symptoms,
    table4_data_properties,
    table5_abstractions,
    table6_patterns,
    table7_config_patterns,
    table8_control_patterns,
    table9_fixes,
)
from repro.dataset.cbs import load_cbs_issues
from repro.dataset.incidents import load_incidents
from repro.dataset.opensource import load_failures


def main() -> None:
    failures = load_failures()
    incidents = load_incidents()
    cbs = load_cbs_issues()

    print("#" * 72)
    print("# §3 — Cloud incidents")
    print("#" * 72)
    for key, value in incident_statistics(incidents).items():
        print(f"  {key}: {value}")

    print()
    for table in (
        table1_interactions(failures),
        table2_planes(failures),
        table3_symptoms(failures),
        table4_data_properties(failures),
    ):
        print(table.render())
        print()

    print("Table 5. Data abstraction x property matrix")
    matrix = table5_abstractions(failures)
    header = ["Address", "Struct.", "Value", "Custom prop.", "API semantics", "Total"]
    print(f"  {'':10}" + "".join(f"{h:>15}" for h in header))
    for abstraction, row in matrix.items():
        print(f"  {abstraction:10}" + "".join(f"{row[h]:>15}" for h in header))
    print()

    for table in (
        table6_patterns(failures),
        table7_config_patterns(failures),
        table8_control_patterns(failures),
        table9_fixes(failures),
    ):
        print(table.render())
        print()

    print("#" * 72)
    print("# §4 — CBS comparison dataset")
    print("#" * 72)
    for key, value in cbs_statistics(cbs).items():
        print(f"  {key}: {value}")
    print()

    print("#" * 72)
    print("# Findings 1-13")
    print("#" * 72)
    findings = compute_findings(failures, incidents, cbs)
    for finding in findings:
        print(finding.render())
    reproduced = sum(1 for f in findings if f.holds)
    print(f"\n{reproduced}/13 findings reproduced.")


if __name__ == "__main__":
    main()
