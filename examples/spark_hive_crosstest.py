"""The full §8 experiment: cross-test the Spark-Hive data plane.

Mirrors the paper's artifact runs (``spark_e2e.sh``,
``spark_hive_oneway.sh``, ``hive_spark_oneway.sh``): all 422 inputs
through 8 write-read plans and 3 backend formats, three oracles, then
classification against the catalog of 15 known discrepancies. Failure
logs are written as JSON next to this script, named like the artifact's
``*_failed.json``.

Usage::

    python examples/spark_hive_crosstest.py [output_dir]
"""

import json
import pathlib
import sys
import time

from repro.crosstest import run_crosstest


def main(output_dir: str) -> None:
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    print("running the full cross-test matrix "
          "(8 plans x 3 formats x 422 inputs)...")
    started = time.time()
    report = run_crosstest()
    elapsed = time.time() - started
    print(f"done in {elapsed:.1f}s\n")

    for line in report.summary_lines():
        print(line)

    # artifact-style failure logs: ss_difft_failed.json etc.
    for log_name, failures in sorted(report.failures_by_log().items()):
        path = out / f"{log_name}_failed.json"
        payload = [
            {
                "input": f.input_id,
                "fmt": f.fmt,
                "plans": list(f.plans),
                "detail": f.detail,
            }
            for f in failures
        ]
        path.write_text(json.dumps(payload, indent=1))
        print(f"wrote {path} ({len(failures)} failures)")

    summary_path = out / "crosstest_summary.json"
    summary_path.write_text(json.dumps(report.to_json(), indent=1))
    print(f"wrote {summary_path}")

    missing = set(range(1, 16)) - report.found_numbers
    if missing:
        print(f"WARNING: discrepancies not found: {sorted(missing)}")
        sys.exit(1)
    print("\nall 15 discrepancies of §8.2 were exposed.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "crosstest_logs")
