"""Quickstart: a first tour of the library.

Runs in a few seconds:

1. spin up a co-deployment of the simulated Spark and Hive over one
   metastore + filesystem and show a data-plane discrepancy by hand;
2. replay one of the paper's named failures (Figure 2 / SPARK-27239);
3. run a small slice of the §8 cross-test harness and classify what it
   finds.

Usage::

    python examples/quickstart.py
"""

from repro.crosstest import CrossTester, classify_trials, generate_inputs
from repro.errors import QueryError
from repro.hivelite import HiveServer
from repro.scenarios import replay_spark_27239
from repro.sparklite import SparkSession


def demo_manual_discrepancy() -> None:
    """§8.2 discrepancy #6 by hand: NaN across Spark and Hive."""
    print("=" * 72)
    print("1. A cross-system discrepancy by hand (HIVE-26528 shape)")
    print("=" * 72)

    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)

    spark.sql("CREATE TABLE metrics (value double) STORED AS parquet")
    spark.sql("INSERT INTO metrics VALUES (double('NaN')), (1.5D)")

    spark_rows = spark.sql("SELECT * FROM metrics").to_tuples()
    hive_rows = hive.execute("SELECT * FROM metrics").to_tuples()
    print(f"  Spark reads:  {spark_rows}")
    print(f"  Hive reads:   {hive_rows}")
    print("  -> the same table, two engines, two answers: NaN has no")
    print("     representation in Hive's result path and degrades to NULL.")

    spark.sql("INSERT INTO metrics VALUES (double('Infinity'))")
    try:
        hive.execute("SELECT * FROM metrics")
    except QueryError as exc:
        print(f"  ...and Infinity errors instead (same root cause): {exc}")
    print()


def demo_scenario_replay() -> None:
    """Figure 2: the compressed-file length of -1 (SPARK-27239)."""
    print("=" * 72)
    print("2. Replaying Figure 2 (SPARK-27239)")
    print("=" * 72)

    failing = replay_spark_27239()
    print(f"  before the fix: {failing.symptom}")
    fixed = replay_spark_27239(fixed=True)
    print(
        f"  after Figure 4's fix: {fixed.symptom} "
        f"({fixed.metrics['records_read']} records)"
    )
    print()


def demo_crosstest_slice() -> None:
    """A small slice of the §8 harness: the tinyint inputs only."""
    print("=" * 72)
    print("3. Cross-testing a slice (tinyint inputs, all plans x formats)")
    print("=" * 72)

    inputs = [
        i for i in generate_inputs() if i.column_type.name == "tinyint"
    ]
    trials = CrossTester(inputs=inputs).run()
    evidence = classify_trials(trials)
    found = sorted(n for n, e in evidence.items() if e.found)
    print(f"  trials run: {len(trials)}")
    print(f"  discrepancies evidenced by this slice alone: {found}")
    for number in found:
        sample = evidence[number].trials[0]
        print(
            f"    #{number}: e.g. plan={sample.plan.name} fmt={sample.fmt} "
            f"-> {sample.outcome.error_type or sample.outcome.value!r}"
        )
    print()
    print("Run `python examples/spark_hive_crosstest.py` for the full §8")
    print("experiment (all 422 inputs; finds all 15 discrepancies).")


if __name__ == "__main__":
    demo_manual_discrepancy()
    demo_scenario_replay()
    demo_crosstest_slice()
