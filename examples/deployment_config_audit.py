"""Cross-testing under deployment configuration (§8.2's implication).

The paper's closing implication: "Cross-testing co-deployed, interacting
systems **under deployment configuration** could be an effective
approach to prevent CSI failures." This example shows why testing the
default configuration is not enough: several discrepancies disappear —
and one set persists — depending on the deployed settings.

Usage::

    python examples/deployment_config_audit.py
"""

from repro.crosstest import (
    CrossTester,
    by_number,
    found_discrepancies,
    generate_inputs,
)

DEPLOYMENTS = {
    "default": {},
    "legacy-store-assignment": {
        "spark.sql.storeAssignmentPolicy": "legacy",
    },
    "char-as-string": {
        "spark.sql.legacy.charVarcharAsString": "true",
    },
    "ntz-timestamps": {
        "spark.sql.timestampType": "TIMESTAMP_NTZ",
    },
    "legacy-time-parser": {
        "spark.sql.legacy.timeParserPolicy": "LEGACY",
    },
    "all-custom": {
        "spark.sql.storeAssignmentPolicy": "legacy",
        "spark.sql.legacy.charVarcharAsString": "true",
        "spark.sql.timestampType": "TIMESTAMP_NTZ",
        "spark.sql.legacy.timeParserPolicy": "LEGACY",
    },
}


def audit(name: str, overrides: dict) -> set[int]:
    # a focused input slice keeps each audit to well under a second
    interesting = {
        "tinyint", "int", "decimal", "boolean", "date",
        "char", "varchar", "timestamp_ntz", "double", "map", "struct",
    }
    inputs = [
        i for i in generate_inputs() if i.column_type.name in interesting
    ]
    trials = CrossTester(inputs=inputs, conf_overrides=overrides).run()
    return found_discrepancies(trials)


def main() -> None:
    baseline = None
    results = {}
    for name, overrides in DEPLOYMENTS.items():
        found = audit(name, overrides)
        results[name] = found
        if baseline is None:
            baseline = found
        print(f"{name:26} -> {len(found):>2} discrepancies: {sorted(found)}")

    print()
    print("What each deployment configuration makes disappear:")
    for name, found in results.items():
        if name == "default":
            continue
        resolved = baseline - found
        introduced = found - baseline
        print(f"\n  {name}:")
        for number in sorted(resolved):
            print(f"    resolved   #{number}: {by_number(number).title}")
        for number in sorted(introduced):
            print(f"    introduced #{number}: {by_number(number).title}")

    persistent = set.intersection(*results.values())
    print("\nDiscrepancies no configuration resolves "
          "(real interoperability gaps):")
    for number in sorted(persistent):
        entry = by_number(number)
        print(f"  #{number} [{entry.jira}] {entry.title}")


if __name__ == "__main__":
    main()
