"""Typed tables over a schemaless KV store (Hive -> HBase, Table 1).

Finding 5 reports *zero* data-plane CSI failures rooted in key-value
tuple operations — a KV store has almost no metadata for two systems to
disagree about. This example shows both halves of that observation:

* the KV substrate itself round-trips everything faithfully (bytes in,
  bytes out, WAL-recovered);
* the moment a *typed* system (Hive's HBase storage handler) is layered
  on top, the familiar discrepancy surfaces reappear — the same cell
  reads differently under two schemas, and unparseable cells silently
  become NULL.

Usage::

    python examples/hive_over_hbase.py
"""

from repro.common.schema import Schema
from repro.connectors.hive_hbase import HBaseColumnMapping, HiveHBaseHandler
from repro.hbaselite import HBaseMaster
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode


def main() -> None:
    filesystem = FileSystem(NameNode(), user="hbase")
    hbase = HBaseMaster(filesystem)
    hbase.start()

    print("=" * 72)
    print("1. The schemaless substrate: nothing to disagree about")
    print("=" * 72)
    hbase.create_table("orders")
    orders = hbase.table("orders")
    orders.put("order-001", {"cf:qty": "42", "cf:item": "widget"})
    orders.put("order-002", {"cf:qty": "007", "cf:item": "gizmo"})
    orders.flush()
    # crash-recover the region from WAL + HFiles: same bytes come back
    recovered = HBaseMaster(filesystem)
    recovered.start()
    for row, cells in recovered.table("orders").scan():
        print(f"  {row}: {cells}")
    print("  (bytes in, bytes out — the KV layer has no types to confuse)")

    print()
    print("=" * 72)
    print("2. A typed schema on top: the discrepancies return")
    print("=" * 72)
    typed = HiveHBaseHandler(
        hbase=recovered,
        table="orders",
        schema=Schema.of(("id", "string"), ("qty", "int"), ("item", "string")),
        mapping=HBaseColumnMapping.parse(":key,cf:qty,cf:item"),
    )
    print("  through schema (id string, qty INT, item string):")
    for row in typed.select_all().rows:
        print(f"    {tuple(row)}")
    print("  note order-002: the stored bytes '007' became the int 7 —")
    print("  the zero padding another consumer relied on is gone.")

    as_strings = HiveHBaseHandler(
        hbase=recovered,
        table="orders",
        schema=Schema.of(("id", "string"), ("qty", "string"), ("item", "string")),
        mapping=HBaseColumnMapping.parse(":key,cf:qty,cf:item"),
    )
    print("  through schema (id string, qty STRING, item string):")
    for row in as_strings.select_all().rows:
        print(f"    {tuple(row)}")

    # a third writer puts something unparseable in the column
    recovered.table("orders").put("order-003", {"cf:qty": "many", "cf:item": "x"})
    print("  after another writer stored qty='many':")
    for row in typed.select_all().rows:
        print(f"    {tuple(row)}")
    print("  -> the INT view silently reads NULL; no error anywhere.")


if __name__ == "__main__":
    main()
