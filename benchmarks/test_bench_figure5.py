"""Figure 5: the FLINK-12342 fix history — two workarounds, one fix."""

from repro.flinklite.yarn_connector import FixStage
from repro.scenarios.control_flink_yarn import FIX_STAGES, run_fix_stage


def test_bench_figure5_fix_progression(benchmark):
    def run_all_stages():
        return {
            stage: run_fix_stage(stage, needed_containers=20)
            for stage in FIX_STAGES
        }

    outcomes = benchmark.pedantic(run_all_stages, rounds=1, iterations=1)

    print("\nFigure 5 (FLINK-12342 fix history)")
    for stage, outcome in outcomes.items():
        print(
            f"  {stage.value:22} requested="
            f"{outcome.metrics['total_requested']:>7} "
            f"failed={outcome.failed}"
        )

    assert outcomes[FixStage.BUGGY].failed
    for stage in FIX_STAGES[1:]:
        assert not outcomes[stage].failed, stage
    # the real fix needs no polling at all
    assert outcomes[FixStage.RESOLUTION_ASYNC].metrics["request_ticks"] == 1
    # workaround #2 still polls but stops aggregating
    assert outcomes[FixStage.WORKAROUND_DECREMENT].metrics["total_requested"] == 20
