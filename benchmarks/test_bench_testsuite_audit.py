"""§5.3: only 6% of Spark integration tests cross-test dependent systems."""

from repro.dataset.testsuites import (
    cross_test_fraction,
    load_spark_integration_tests,
)


def test_bench_testsuite_audit(benchmark):
    fraction = benchmark(cross_test_fraction)
    tests = load_spark_integration_tests()
    cross = [t for t in tests if t.cross_system]

    print("\n§5.3 Spark integration-test audit (paper -> measured)")
    print(f"  cross-testing fraction: 6% -> {fraction:.0%}")
    print(f"  total integration suites: {len(tests)}")
    print(f"  cross-system suites: {len(cross)}")
    versions = sorted({t.pinned_version for t in cross})
    print(f"  all pinned to specific downstream versions: {versions}")

    assert abs(fraction - 0.06) < 0.001
    assert all(t.pinned_version for t in cross)
