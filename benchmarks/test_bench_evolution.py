"""Extension bench: change analysis for cross-system interactions (§10).

Static reader-gap analysis over every format: the check whose absence
let SPARK-39075 ship, plus upgrade/downgrade risk classification.
"""

from repro.evolution import lattice_diff, reader_gaps, upgrade_risks
from repro.formats import serializer_for


def test_bench_reader_gap_analysis(benchmark):
    def analyze_all():
        return {
            fmt: reader_gaps(serializer_for(fmt))
            for fmt in ("avro", "orc", "parquet", "unified_avro")
        }

    gaps = benchmark(analyze_all)

    print("\nstatic reader-gap analysis (SPARK-39075 detector)")
    for fmt, found in gaps.items():
        print(f"  {fmt:14} {len(found)} gap(s)")
        for gap in found:
            print(f"    {gap.render()}")

    assert {g.type_text for g in gaps["avro"]} >= {"tinyint", "smallint"}
    assert gaps["orc"] == []
    assert gaps["parquet"] == []
    assert gaps["unified_avro"] == []


def test_bench_upgrade_risk_classification(benchmark):
    def classify():
        return {
            "avro -> unified_avro": upgrade_risks(
                serializer_for("avro"), serializer_for("unified_avro")
            ),
            "unified_avro -> avro": upgrade_risks(
                serializer_for("unified_avro"), serializer_for("avro")
            ),
            "orc -> parquet": upgrade_risks(
                serializer_for("orc"), serializer_for("parquet")
            ),
        }

    risks = benchmark(classify)
    print("\nlattice-change risk classification")
    for label, changes in risks.items():
        print(f"  {label:24} {len(changes)} risky change(s)")
        for change in changes[:4]:
            print(f"    {change.render()}")

    assert risks["avro -> unified_avro"] == []  # widening is safe
    assert len(risks["unified_avro -> avro"]) >= 6  # narrowing is not
    assert risks["orc -> parquet"] == []

    # full diff still reports the non-risky widenings
    full = lattice_diff(serializer_for("avro"), serializer_for("unified_avro"))
    assert all(not c.risky for c in full)
    assert full
