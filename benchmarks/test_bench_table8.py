"""Table 8 / Findings 10-11: control-plane discrepancy patterns."""

from repro.core.analysis import table8_control_patterns
from repro.core.taxonomy import ApiMisuseKind, ControlPattern, Plane


def test_bench_table8(benchmark, failures):
    table = benchmark(table8_control_patterns, failures)
    print("\n" + table.render())

    rows = table.as_dict()
    assert rows["API semantic violation"] == 13
    assert rows["State/resource inconsistency"] == 5
    assert rows["Feature inconsistency"] == 2
    assert table.total == 20

    control = [f for f in failures if f.plane is Plane.CONTROL]
    misuse = [
        f
        for f in control
        if f.control_pattern is ControlPattern.API_SEMANTIC_VIOLATION
    ]
    implicit = sum(
        1
        for f in misuse
        if f.api_misuse_kind is ApiMisuseKind.IMPLICIT_SEMANTIC_VIOLATION
    )
    print(f"  API misuse split: 8 implicit + 5 context (paper) -> "
          f"{implicit} + {len(misuse) - implicit}")
    assert implicit == 8
    assert len(misuse) - implicit == 5
