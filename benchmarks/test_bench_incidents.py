"""Finding 1 / §3: cloud incidents induced by CSI failures.

Paper reports: 11/55 incidents (20%) CSI-caused; durations 10 min-19 h
with a median of 106 minutes; 8/11 impaired external services; 4/11
mention interaction-related fixes.
"""

from repro.core.analysis import incident_statistics


def test_bench_incident_statistics(benchmark, incidents):
    stats = benchmark(incident_statistics, incidents)

    print("\n§3 cloud incidents (paper -> measured)")
    print(f"  total incidents:      55 -> {stats['total']}")
    print(f"  CSI-induced:          11 -> {stats['csi']}")
    print(f"  CSI fraction:        20% -> {stats['csi_fraction']:.0%}")
    print(f"  min duration:     10 min -> {stats['min_duration_minutes']} min")
    print(f"  median duration: 106 min -> {stats['median_duration_minutes']} min")
    print(f"  max duration:  1140 min -> {stats['max_duration_minutes']} min")
    print(f"  impaired external: 8/11 -> {stats['impaired_external']}/11")
    print(f"  fix mentioned:     4/11 -> {stats['mention_interaction_fix']}/11")

    assert stats["total"] == 55
    assert stats["csi"] == 11
    assert stats["csi_fraction"] == 0.2
    assert stats["min_duration_minutes"] == 10
    assert stats["median_duration_minutes"] == 106
    assert stats["max_duration_minutes"] == 1140
    assert stats["impaired_external"] == 8
    assert stats["mention_interaction_fix"] == 4
