"""Extension bench: pre-deployment cross-system configuration checking.

§6.2.1's implication made executable: every configuration-plane failure
from the scenario set is caught by the checker *before* deployment, and
the coherent deployments produce no false positives.
"""

from repro.confcheck import Deployment, check_deployment, default_rules
from repro.flinklite.configs import HEAP_CUTOFF_RATIO, FlinkConf
from repro.sparklite.conf import SparkConf
from repro.yarnlite.configs import (
    INCREMENT_MB,
    MIN_ALLOC_MB,
    SCHEDULER_CLASS,
    YarnConf,
)


def _deployment(**tweaks):
    yarn, flink, spark = YarnConf(), FlinkConf(), SparkConf()
    for key, value in tweaks.items():
        for conf in (yarn, flink, spark):
            if key in conf.declared:
                conf.set(key, value, source="bench")
                break
    return Deployment().add(yarn).add(flink).add(spark)


BAD_DEPLOYMENTS = {
    "FLINK-19141": {_k: _v for _k, _v in [
        (SCHEDULER_CLASS, "fair"), (MIN_ALLOC_MB, 1024), (INCREMENT_MB, 512),
    ]},
    "FLINK-887": {HEAP_CUTOFF_RATIO: "0.0"},
    "SPARK-10181": {"spark.yarn.keytab": "/etc/spark.keytab"},
    "SPARK-15046": {"spark.network.timeout": 86_400_079},
}


def test_bench_confcheck_catches_every_studied_misconfig(benchmark):
    def check_all():
        return {
            jira: check_deployment(_deployment(**tweaks), default_rules())
            for jira, tweaks in BAD_DEPLOYMENTS.items()
        }

    results = benchmark(check_all)

    print("\npre-deployment configuration check")
    for jira, violations in results.items():
        print(f"  {jira:12} -> {len(violations)} violation(s): "
              + "; ".join(v.rule_id for v in violations))
        assert violations, f"{jira} not caught"

    # and the coherent deployment stays clean
    clean = check_deployment(_deployment(), default_rules())
    print(f"  default deployment -> {len(clean)} violations")
    assert clean == []
