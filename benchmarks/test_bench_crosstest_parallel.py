"""Parallel execution of the §8 trial matrix.

The cross-test hot path is 10,128 independent trials. The sharded
executor must (a) return byte-identical results to the sequential loop
and (b) actually buy wall-clock on a multi-core host — the target is a
≥2x speedup at ``jobs=auto`` over ``jobs=1``. On a single-core host the
speedup assertion is skipped (there is nothing to parallelize onto) but
the identity assertion still runs.
"""

import json
import os
import time

from repro.crosstest import CrossTestMetrics
from repro.crosstest.report import run_crosstest

MULTI_CORE = (os.cpu_count() or 1) >= 4


def test_bench_crosstest_parallel_full_matrix(benchmark):
    started = time.perf_counter()
    sequential = run_crosstest(jobs=1)
    sequential_s = time.perf_counter() - started

    metrics = CrossTestMetrics()

    def parallel_run():
        return run_crosstest(jobs=None, metrics=metrics)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.total

    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    print("\n§8 trial matrix: sequential vs parallel")
    print(f"  trials:            {len(parallel.trials)}")
    print(f"  jobs=1:            {sequential_s:.2f}s")
    print(f"  jobs=auto ({os.cpu_count()}):    {parallel_s:.2f}s")
    print(f"  speedup:           {speedup:.2f}x")
    for line in metrics.summary_lines():
        print("  " + line)

    # identical results regardless of scheduling
    assert len(parallel.trials) == len(sequential.trials) == 8 * 3 * 422
    assert json.dumps(parallel.to_json()) == json.dumps(sequential.to_json())
    assert parallel.found_numbers == set(range(1, 16))

    if MULTI_CORE:
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {os.cpu_count()} cores, got {speedup:.2f}x"
        )


def test_bench_crosstest_shard_dispatch_overhead(benchmark):
    """Sharding itself must be ~free next to the trials it schedules."""
    from repro.crosstest.executor import build_shards
    from repro.crosstest.plans import ALL_PLANS, FORMATS
    from repro.crosstest.values import generate_inputs

    inputs = generate_inputs()
    shards = benchmark(build_shards, ALL_PLANS, FORMATS, inputs)
    print(f"\n  shards for full matrix: {len(shards)}")
    assert sum(len(s.inputs) for s in shards) == 8 * 3 * 422
    # shards stay balanced: no shard more than the configured chunk size
    assert max(len(s.inputs) for s in shards) <= 128
