"""All findings (1-13) regenerated in one pass — the paper's
``reproduce_study.ipynb`` equivalent."""

from repro.core.analysis import compute_findings


def test_bench_all_findings(benchmark, failures, incidents, cbs_issues):
    findings = benchmark(compute_findings, failures, incidents, cbs_issues)

    print("\nFindings 1-13 (paper claim -> reproduced?)")
    for finding in findings:
        status = "ok " if finding.holds else "FAIL"
        print(f"  [{status}] Finding {finding.number:>2}: {finding.claim}")

    assert len(findings) == 13
    assert all(finding.holds for finding in findings)
