"""Figure 1: the Flink-YARN container-request storm (FLINK-12342).

The paper's figure shows requests snowballing (1, 1+2, 1+2+3, ...) into
"4000+ requested" while YARN allocates. The shape to reproduce: under
the buggy loop the total requested grows far past the need; under any
fix it equals the need exactly.
"""

from repro.flinklite.yarn_connector import FixStage
from repro.scenarios.control_flink_yarn import replay_flink_12342


def test_bench_figure1_buggy_storm(benchmark):
    outcome = benchmark.pedantic(
        lambda: replay_flink_12342(
            needed_containers=20,
            allocation_latency_ms=300,
            request_interval_ms=500,
        ),
        rounds=1,
        iterations=1,
    )
    metrics = outcome.metrics
    print("\nFigure 1 (FLINK-12342): buggy request loop")
    print(f"  containers needed:            {metrics['needed']}")
    print(f"  total container requests:     {metrics['total_requested']}")
    print(f"  overload factor:              {metrics['overload_factor']}x")
    print("  paper reports '4000+ requested' for large jobs; shape: "
          "requests >> need")
    for line in outcome.narrative[:6]:
        print(f"    {line}")

    assert outcome.failed
    assert metrics["total_requested"] > 4000  # the paper's headline shape
    assert metrics["allocated"] == metrics["needed"]


def test_bench_figure1_fixed_loop(benchmark):
    outcome = benchmark.pedantic(
        lambda: replay_flink_12342(fix_stage=FixStage.RESOLUTION_ASYNC),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 1 (fixed): requested {outcome.metrics['total_requested']} "
          f"for a need of {outcome.metrics['needed']}")
    assert not outcome.failed
    assert outcome.metrics["total_requested"] == outcome.metrics["needed"]


def test_bench_figure1_latency_sweep(benchmark):
    """Crossover: the bug only manifests once allocation latency times
    the queue length exceeds the 500 ms re-request interval."""

    def sweep():
        results = {}
        for latency in (10, 50, 100, 300, 600):
            outcome = replay_flink_12342(
                needed_containers=10, allocation_latency_ms=latency
            )
            results[latency] = outcome.metrics["overload_factor"]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nallocation latency (ms) -> overload factor")
    for latency, factor in results.items():
        print(f"  {latency:>5} -> {factor}")
    assert results[10] <= 2  # fast YARN: assumption holds
    assert results[600] > 5  # slow YARN: storm
    assert results[600] > results[10]
