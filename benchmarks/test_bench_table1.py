"""Table 1: target systems, interactions, and per-pair failure counts."""

from repro.core.analysis import table1_interactions

PAPER_TABLE1 = {
    ("Spark", "Hive"): 26,
    ("Spark", "YARN"): 19,
    ("Spark", "HDFS"): 8,
    ("Spark", "Kafka"): 5,
    ("Flink", "Kafka"): 12,
    ("Flink", "YARN"): 14,
    ("Flink", "Hive"): 8,
    ("Flink", "HDFS"): 3,
    ("Hive", "Spark"): 6,
    ("Hive", "HBase"): 3,
    ("Hive", "HDFS"): 6,
    ("Hive", "Kafka"): 1,
    ("Hive", "YARN"): 2,
    ("HBase", "HDFS"): 4,
    ("YARN", "HDFS"): 3,
}


def test_bench_table1(benchmark, failures):
    table = benchmark(table1_interactions, failures)

    print("\n" + table.render())
    assert table.total == 120

    measured = {}
    for label, count in table.rows:
        pair_text = label.split(" [")[0]
        upstream, downstream = pair_text.split(" -> ")
        measured[(upstream, downstream)] = count
    assert measured == PAPER_TABLE1
