"""Table 7 / Findings 7-8: configuration discrepancy patterns."""

from repro.core.analysis import table7_config_patterns
from repro.core.taxonomy import ConfigKind, ConfigPattern, MgmtKind


def test_bench_table7(benchmark, failures):
    table = benchmark(table7_config_patterns, failures)
    print("\n" + table.render())

    rows = table.as_dict()
    assert rows["Ignorance"] == 12
    assert rows["Unexpected override"] == 6
    assert rows["Inconsistent context"] == 10
    assert rows["Mishandling configuration values"] == 2
    assert table.total == 30

    config = [f for f in failures if f.mgmt_kind is MgmtKind.CONFIGURATION]
    silently_lost = sum(
        1
        for f in config
        if f.config_pattern
        in (ConfigPattern.IGNORANCE, ConfigPattern.UNEXPECTED_OVERRIDE)
    )
    parameter = sum(1 for f in config if f.config_kind is ConfigKind.PARAMETER)
    print(f"  silently ignored/overruled: 18/30 (paper) -> {silently_lost}/30")
    print(f"  parameter-related: 21/30 (paper) -> {parameter}/30")
    assert silently_lost == 18
    assert parameter == 21
