"""Table 6 / Finding 6: data-plane discrepancy patterns + serialization."""

from repro.core.analysis import table6_patterns
from repro.core.taxonomy import Plane


def test_bench_table6(benchmark, failures):
    table = benchmark(table6_patterns, failures)
    print("\n" + table.render())

    rows = table.as_dict()
    assert rows["Type confusion"] == 12
    assert rows["Unsupported operations"] == 15
    assert rows["Unspoken convention"] == 9
    assert rows["Undefined values"] == 7
    assert rows["Wrong API assumptions"] == 18
    assert table.total == 61


def test_bench_finding6_serialization(benchmark, failures):
    def count():
        return sum(
            1
            for f in failures
            if f.plane is Plane.DATA and f.serialization_rooted
        )

    serialization = benchmark(count)
    print(f"\nserialization-rooted: 15/61 (paper) -> {serialization}/61")
    assert serialization == 15
