"""Ablation: which plan groups are needed to find which discrepancies.

The paper's setup crosses system boundaries (Spark-to-Hive and
Hive-to-Spark plans) on purpose: same-system testing alone misses the
discrepancies that live in the other engine's read path. This bench
quantifies that: classify the full run restricted to each plan group.
"""

from repro.crosstest.classify import found_discrepancies


def _subset(trials, group):
    return [t for t in trials if t.plan.group == group]


def test_bench_ablation_plan_groups(crosstest_report, benchmark):
    trials = crosstest_report.trials

    def ablate():
        return {
            group: found_discrepancies(_subset(trials, group))
            for group in ("spark_e2e", "spark_hive", "hive_spark")
        }

    found = benchmark.pedantic(ablate, rounds=1, iterations=1)
    full = found_discrepancies(trials)

    print("\nplan-group ablation: discrepancies found")
    print(f"  full matrix:    {len(full):>2}  {sorted(full)}")
    for group, numbers in found.items():
        print(f"  {group:14} {len(numbers):>2}  {sorted(numbers)}")

    assert full == set(range(1, 16))
    # the Hive-reader-only discrepancies are invisible to Spark-to-Spark
    assert 2 not in found["spark_e2e"]
    assert 6 not in found["spark_e2e"]
    assert 7 not in found["spark_e2e"]
    # they appear exactly on the cross-system plans
    assert {2, 6, 7} <= found["spark_hive"]
    # and no single group finds everything
    for group, numbers in found.items():
        assert numbers < full, f"{group} alone should not find all 15"


def test_bench_ablation_valid_vs_invalid_inputs(crosstest_report, benchmark):
    trials = crosstest_report.trials

    def ablate():
        valid_only = [t for t in trials if t.test_input.valid]
        invalid_only = [t for t in trials if not t.test_input.valid]
        return (
            found_discrepancies(valid_only),
            found_discrepancies(invalid_only),
        )

    valid_found, invalid_found = benchmark.pedantic(
        ablate, rounds=1, iterations=1
    )
    print("\ninput-validity ablation")
    print(f"  valid inputs only:   {len(valid_found):>2}  {sorted(valid_found)}")
    print(f"  invalid inputs only: {len(invalid_found):>2}  {sorted(invalid_found)}")

    # error-handling discrepancies need invalid data; WR/type ones need valid
    assert {5, 9, 10, 11, 12, 15} <= invalid_found
    assert {1, 2, 3, 6, 7, 8} <= valid_found
    assert valid_found | invalid_found == set(range(1, 16))
