"""Extension bench: the Address/naming discrepancy family, executable.

Table 4 attributes 10/61 data-plane failures to address/naming; the
partition-value layer is where that family lives for the Spark-Hive
pair (values are strings in paths, re-typed per engine).
"""

from repro.scenarios.data_partition_naming import replay_partition_inference


def test_bench_partition_inference_discrepancy(benchmark):
    outcome = benchmark.pedantic(
        replay_partition_inference, rounds=1, iterations=1
    )
    print("\npartition type inference (Address/naming family)")
    print(f"  hive rows:  {outcome.metrics['hive_rows']}")
    print(f"  spark rows: {outcome.metrics['spark_rows']}")
    print(f"  {outcome.symptom}")
    assert outcome.failed
    assert outcome.metrics["spark_partition_type"] == "int"


def test_bench_partition_inference_resolved(benchmark):
    outcome = benchmark.pedantic(
        lambda: replay_partition_inference(fixed=True), rounds=1, iterations=1
    )
    print(f"\ninference disabled: {outcome.symptom}")
    assert not outcome.failed
    assert outcome.metrics["spark_partition_type"] == "string"
