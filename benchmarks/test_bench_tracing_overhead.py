"""Tracing must be free when off and honest when on.

Acceptance for the boundary-tracing work: with tracing disabled the §8
hot path must stay within the PR2 budget (the instrumentation sites are
guarded by a module-global counter, so a disabled ``span()`` call is a
singleton return), and a traced run must produce the byte-identical
report while actually capturing every trial's span tree.
"""

import json
import time

from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs
from repro.tracing.core import span

#: the full matrix runs ~10k trials; a traced trial records a few dozen
#: spans, so the disabled path is exercised on the order of 1e5 times
#: per run. Its unit cost must stay deep in the noise floor.
TRIAL_COUNT = 8 * 3 * 422
DISABLED_BUDGET_S_PER_RUN = 0.045  # <5% of the 0.95s jobs=1 baseline


def test_bench_disabled_span_cost(benchmark):
    """Unit cost of a disabled instrumentation site, scaled to a run."""
    BATCH = 1000

    def disabled_sites():
        # a batch big enough to amortize the timer overhead out of the
        # per-site figure
        for _ in range(BATCH):
            with span("spark.serde.encode", system="spark",
                      boundary="spark->serde") as sp:
                if sp is not None:  # never taken when tracing is off
                    sp.attributes["fmt"] = "orc"

    benchmark.pedantic(disabled_sites, rounds=30, iterations=1, warmup_rounds=3)

    # count how many spans an average traced trial actually records,
    # then price a whole disabled run at the measured per-site cost
    inputs = generate_inputs()[:8]
    traced = run_crosstest(inputs=inputs, jobs=1, tracing=True)
    total_spans = sum(len(t) for t in traced.traces.values())
    spans_per_trial = total_spans / len(traced.trials)
    sites_per_run = spans_per_trial * TRIAL_COUNT
    per_call_s = benchmark.stats.stats.min / BATCH
    projected_s = per_call_s * sites_per_run

    print("\ntracing-disabled overhead projection")
    print(f"  per-site cost:     {per_call_s * 1e9:.0f}ns")
    print(f"  spans per trial:   {spans_per_trial:.1f}")
    print(f"  sites per run:     {sites_per_run:.0f}")
    print(f"  projected per run: {projected_s * 1e3:.1f}ms "
          f"(budget {DISABLED_BUDGET_S_PER_RUN * 1e3:.0f}ms)")

    assert projected_s < DISABLED_BUDGET_S_PER_RUN, (
        f"disabled tracing would cost {projected_s * 1e3:.1f}ms per run, "
        f"budget is {DISABLED_BUDGET_S_PER_RUN * 1e3:.0f}ms"
    )


def test_bench_traced_run_report_identical(benchmark):
    """A traced subset run: report unchanged, spans captured."""
    inputs = generate_inputs()[:40]

    started = time.perf_counter()
    plain = run_crosstest(inputs=inputs, jobs=1)
    plain_s = time.perf_counter() - started

    def traced_run():
        return run_crosstest(inputs=inputs, jobs=1, tracing=True)

    traced = benchmark.pedantic(traced_run, rounds=1, iterations=1)
    traced_s = benchmark.stats.stats.total

    print("\ntraced vs untraced subset run (8 plans x 3 formats x 40 inputs)")
    print(f"  untraced: {plain_s:.3f}s")
    print(f"  traced:   {traced_s:.3f}s "
          f"({traced_s / plain_s if plain_s else 0:.2f}x)")

    assert json.dumps(traced.to_json()) == json.dumps(plain.to_json())
    assert traced.summary_lines() == plain.summary_lines()
    assert set(traced.traces) == set(range(len(traced.trials)))
    assert all(traced.traces.values())
