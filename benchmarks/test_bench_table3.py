"""Table 3 / Finding 3: failure symptoms; 89/120 crash."""

from repro.core.analysis import table3_symptoms


def test_bench_table3(benchmark, failures):
    table = benchmark(table3_symptoms, failures)
    print("\n" + table.render())

    crashing = sum(1 for f in failures if f.symptom.crashing)
    print(f"  crashing symptoms: 89/120 (paper) -> {crashing}/120")

    assert table.total == 120
    assert crashing == 89
    rows = table.as_dict()
    assert rows["[job] Job/task failure"] == 47
    assert rows["[job] Job/task crash/hang"] == 24
    assert rows["[system] Runtime crash/hang"] == 8
    assert rows["[operation] Reduced observability"] == 8
