"""§8.2 / Finding 15: the case-study results.

Paper: the tool exposed **15 distinct discrepancies**, with problem
categories: cannot-read 2/15, type violations 2/15, exposing internal
configurations 5/15, inconsistent error behaviour 7/15, relying on
custom configurations 8/15.
"""

from repro.crosstest import CrossTestMetrics
from repro.crosstest.catalog import Category
from repro.crosstest.report import run_crosstest

PAPER_CATEGORIES = {
    Category.CANNOT_READ: 2,
    Category.TYPE_VIOLATION: 2,
    Category.INTERNAL_CONFIG: 5,
    Category.INCONSISTENT_ERROR: 7,
    Category.CUSTOM_CONFIG: 8,
}


def test_bench_section8_full_run(benchmark):
    metrics = CrossTestMetrics()

    def run():
        return run_crosstest(metrics=metrics)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n§8.2 cross-test results")
    for line in report.summary_lines():
        print("  " + line)
    print("run telemetry")
    for line in metrics.summary_lines():
        print("  " + line)

    assert len(report.trials) == 8 * 3 * 422
    assert int(metrics.trials_total.value) == len(report.trials)
    assert report.found_numbers == set(range(1, 16))
    assert report.category_counts_found() == PAPER_CATEGORIES


def test_bench_section8_failure_logs(crosstest_report, benchmark):
    logs = benchmark(crosstest_report.failures_by_log)
    print("\nper-log oracle failures (artifact naming)")
    for name, failures in sorted(logs.items()):
        print(f"  {name:10} {len(failures):>5}")
    # every experiment group produced failures under every oracle that
    # applies to it, as in the artifact's 2-3 *failed.json per run
    for name in ("ss_difft", "ss_wr", "ss_eh", "sh_difft", "sh_wr",
                 "hs_difft", "hs_eh"):
        assert logs.get(name), f"no failures recorded for {name}"
