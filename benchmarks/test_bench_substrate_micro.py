"""Microbenchmarks of the substrate hot paths.

Unlike the table/figure benches (one-shot regenerations), these use
pytest-benchmark's statistics properly: many rounds over the layers the
cross-test harness hammers — serializer round trips, the cast engines,
the event kernel, and one full harness trial.
"""

import decimal

from repro.common.events import EventLoop
from repro.common.schema import Schema
from repro.common.types import IntegerType, StringType, parse_type
from repro.crosstest.harness import CrossTester
from repro.crosstest.plans import ALL_PLANS
from repro.crosstest.values import TestInput
from repro.formats import serializer_for
from repro.hivelite.casts import hive_write_cast
from repro.sparklite.casts import spark_cast

TestInput.__test__ = False

_SCHEMA = Schema.of(
    ("id", "bigint"), ("name", "string"), ("price", "decimal(10,2)"),
    ("tags", "array<string>"),
)
_ROWS = [
    (i, f"name-{i}", decimal.Decimal(f"{i}.25"), [f"t{i}", "x"])
    for i in range(100)
]


def test_bench_parquet_write_read(benchmark):
    serializer = serializer_for("parquet")

    def roundtrip():
        return serializer.read(serializer.write(_SCHEMA, _ROWS))

    data = benchmark(roundtrip)
    assert len(data.rows) == 100


def test_bench_unified_write_read(benchmark):
    serializer = serializer_for("unified_avro")

    def roundtrip():
        return serializer.read(serializer.write(_SCHEMA, _ROWS))

    data = benchmark(roundtrip)
    assert len(data.rows) == 100


def test_bench_spark_legacy_cast(benchmark):
    values = [str(i) for i in range(-50, 50)] + ["junk"] * 10

    def cast_all():
        return [
            spark_cast(v, StringType(), IntegerType(), ansi=False)
            for v in values
        ]

    out = benchmark(cast_all)
    assert out.count(None) == 10


def test_bench_hive_write_cast(benchmark):
    target = parse_type("decimal(10,2)")
    values = [decimal.Decimal(f"{i}.333") for i in range(100)]

    def cast_all():
        return [hive_write_cast(v, target) for v in values]

    out = benchmark(cast_all)
    assert all(v is not None for v in out)


def test_bench_event_loop_throughput(benchmark):
    def run_thousand_events():
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 1000:
                loop.call_after(1, tick)

        loop.call_after(1, tick)
        loop.run_to_completion()
        return count[0]

    assert benchmark(run_thousand_events) == 1000


def test_bench_single_harness_trial(benchmark):
    tester = CrossTester(inputs=[])
    test_input = TestInput(0, "int", "5", 5, True, "micro")
    plan = ALL_PLANS[0]

    def trial():
        return tester.run_trial(plan, "parquet", test_input)

    outcome = benchmark(trial)
    assert outcome.outcome.ok
