"""Table 5 / Finding 5: the abstraction x property matrix."""

from repro.core.analysis import table5_abstractions

PAPER_TABLE5 = {
    "Table": {"Address": 1, "Struct.": 13, "Value": 16, "Custom prop.": 0,
              "API semantics": 5, "Total": 35},
    "File": {"Address": 8, "Struct.": 0, "Value": 0, "Custom prop.": 8,
             "API semantics": 2, "Total": 18},
    "Stream": {"Address": 1, "Struct.": 1, "Value": 2, "Custom prop.": 0,
               "API semantics": 4, "Total": 8},
    "KV Tuple": {"Address": 0, "Struct.": 0, "Value": 0, "Custom prop.": 0,
                 "API semantics": 0, "Total": 0},
}


def test_bench_table5(benchmark, failures):
    matrix = benchmark(table5_abstractions, failures)

    print("\nTable 5. Data abstraction x property")
    header = ["Address", "Struct.", "Value", "Custom prop.", "API semantics", "Total"]
    print(f"  {'':12}" + "".join(f"{h:>14}" for h in header))
    for abstraction, row in matrix.items():
        print(f"  {abstraction:12}" + "".join(f"{row[h]:>14}" for h in header))

    assert matrix == PAPER_TABLE5
    # Finding 5 headline: 57% table-induced, zero KV
    assert matrix["Table"]["Total"] / 61 > 0.57 - 0.01
    assert matrix["KV Tuple"]["Total"] == 0
