"""Figure 6 / §8.1: the cross-testing setup itself.

Paper: three interfaces, eight write-read plans in three groups, three
backend formats, 422 generated inputs (210 valid + 212 invalid).
"""

from repro.crosstest.executor import build_shards
from repro.crosstest.plans import (
    ALL_PLANS,
    FORMATS,
    HIVE_TO_SPARK,
    SPARK_E2E,
    SPARK_TO_HIVE,
)
from repro.crosstest.values import generate_inputs


def test_bench_figure6_input_generation(benchmark):
    inputs = benchmark(generate_inputs)
    valid = sum(1 for i in inputs if i.valid)
    invalid = len(inputs) - valid
    types = {i.column_type.name for i in inputs}

    print("\nFigure 6 setup (paper -> measured)")
    print(f"  inputs:       422 -> {len(inputs)}")
    print(f"  valid:        210 -> {valid}")
    print(f"  invalid:      212 -> {invalid}")
    print(f"  type families covered: {len(types)}")

    assert len(inputs) == 422
    assert valid == 210
    assert invalid == 212
    assert len(types) >= 15


def test_bench_figure6_plan_matrix(benchmark):
    def shape():
        return {
            "plans": len(ALL_PLANS),
            "spark_to_spark": len(SPARK_E2E),
            "spark_to_hive": len(SPARK_TO_HIVE),
            "hive_to_spark": len(HIVE_TO_SPARK),
            "formats": len(FORMATS),
        }

    measured = benchmark(shape)
    print("\nplan matrix (paper -> measured)")
    print(f"  spark-to-spark plans: 4 -> {measured['spark_to_spark']}")
    print(f"  spark-to-hive plans:  2 -> {measured['spark_to_hive']}")
    print(f"  hive-to-spark plans:  2 -> {measured['hive_to_spark']}")
    print(f"  backend formats:      3 -> {measured['formats']}")
    assert measured == {
        "plans": 8,
        "spark_to_spark": 4,
        "spark_to_hive": 2,
        "hive_to_spark": 2,
        "formats": 3,
    }


def test_bench_figure6_shard_plan(benchmark):
    """The executor's shard layout covers the matrix exactly once,
    in the same plan -> format -> input order the sequential loop uses."""
    inputs = generate_inputs()
    shards = benchmark(build_shards, ALL_PLANS, FORMATS, inputs)

    cells = {(s.plan.name, s.fmt) for s in shards}
    print("\nshard layout for the full matrix")
    print(f"  shards:        {len(shards)}")
    print(f"  (plan, fmt) cells: {len(cells)}")
    print(f"  largest shard: {max(len(s.inputs) for s in shards)} inputs")

    assert len(cells) == 8 * 3
    assert [s.index for s in shards] == list(range(len(shards)))
    flattened = [
        (s.plan.name, s.fmt, i.input_id) for s in shards for i in s.inputs
    ]
    expected = [
        (plan.name, fmt, i.input_id)
        for plan in ALL_PLANS
        for fmt in FORMATS
        for i in inputs
    ]
    assert flattened == expected
