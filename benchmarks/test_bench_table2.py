"""Table 2 / Finding 2: plane split, plus the CBS comparison."""

from repro.core.analysis import cbs_statistics, table2_planes


def test_bench_table2(benchmark, failures):
    table = benchmark(table2_planes, failures)
    print("\n" + table.render())
    assert table.as_dict() == {"Control": 20, "Data": 61, "Management": 39}
    assert table.total == 120


def test_bench_cbs_comparison(benchmark, cbs_issues):
    stats = benchmark(cbs_statistics, cbs_issues)
    print(
        f"\nCBS comparison: control-plane CSI "
        f"{stats['control_plane_csi']}/{stats['csi']} "
        f"({stats['control_plane_fraction']:.0%}; paper: 69%)"
    )
    assert stats["csi"] == 39
    assert stats["control_plane_csi"] == 27
    assert abs(stats["control_plane_fraction"] - 0.69) < 0.01
