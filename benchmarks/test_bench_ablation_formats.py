"""Ablation: backend-format diversity.

§8.2's "exposing internal configurations of the downstream" category
exists because the serializers are not interchangeable. Restricting the
run to a single format hides the format-lattice discrepancies.
"""

from repro.crosstest.classify import found_discrepancies


def test_bench_ablation_formats(crosstest_report, benchmark):
    trials = crosstest_report.trials

    def ablate():
        return {
            fmt: found_discrepancies(
                [t for t in trials if t.fmt == fmt]
            )
            for fmt in ("orc", "parquet", "avro")
        }

    found = benchmark.pedantic(ablate, rounds=1, iterations=1)

    print("\nformat ablation: discrepancies found per backend")
    for fmt, numbers in found.items():
        print(f"  {fmt:8} {len(numbers):>2}  {sorted(numbers)}")

    # the Avro-lattice family needs Avro in the mix
    assert {1, 3} <= found["avro"]
    assert 1 not in found["orc"]
    assert 1 not in found["parquet"]
    # #4 (map keys) is a *cross-format* differential: a single-format run
    # cannot observe it at all
    assert all(4 not in numbers for numbers in found.values())
    union = set().union(*found.values())
    assert union | {4} == set(range(1, 16))
