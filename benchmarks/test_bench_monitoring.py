"""Finding 9 / §6.2.2: monitoring data driving kill actions."""

from repro.core.taxonomy import MgmtKind
from repro.scenarios.monitoring import replay_flink_887


def test_bench_monitoring_kill(benchmark):
    outcome = benchmark(replay_flink_887, heap_cutoff_ratio=0.0)
    print("\nFinding 9 (FLINK-887): pmem monitor vs JobManager")
    print(f"  container: {outcome.metrics['container_mb']} MB")
    print(f"  JVM heap:  {outcome.metrics['jvm_heap_mb']} MB")
    print(f"  peak pmem: {outcome.metrics['peak_pmem_mb']} MB")
    print(f"  symptom: {outcome.symptom}")
    assert outcome.failed
    assert outcome.metrics["kills"] == 1


def test_bench_monitoring_headroom_sweep(benchmark):
    def sweep():
        return {
            ratio: replay_flink_887(heap_cutoff_ratio=ratio).failed
            for ratio in (0.0, 0.05, 0.1, 0.15, 0.25)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nheap-cutoff ratio -> killed by pmem monitor")
    for ratio, failed in results.items():
        print(f"  {ratio:>5} -> {failed}")
    assert results[0.0] is True
    assert results[0.25] is False
    # the crossover: ~15% native overhead needs >= ~13% cutoff
    assert any(results[a] and not results[b]
               for a, b in zip(list(results), list(results)[1:]))


def test_bench_monitoring_dataset_side(benchmark, failures):
    def count():
        monitoring = [
            f for f in failures if f.mgmt_kind is MgmtKind.MONITORING
        ]
        return len(monitoring), sum(1 for f in monitoring if f.symptom.crashing)

    total, crashing = benchmark(count)
    print(f"\nmonitoring-related CSI cases: {total} "
          f"({crashing} with crashing symptoms, incl. FLINK-887)")
    assert total == 9
    assert crashing >= 1
