"""Fault injection must be free when off and reproducible when on.

Acceptance for the fault-injection work: with no injector active a
``fault_point()`` call is a module-global int check (the same guard
discipline as disabled tracing), so the §8 hot path — which now crosses
a fault point at every boundary call — must stay within the PR2 budget.
An injected run must stay deterministic without slowing to a crawl from
the baseline reruns.
"""

import time

from repro.crosstest.report import run_crosstest
from repro.crosstest.values import generate_inputs
from repro.faults import BUILTIN_PLANS
from repro.faults.core import fault_point

#: same scaling story as the tracing guard: ~1e5 disabled fault points
#: per full run, each must cost nanoseconds
TRIAL_COUNT = 8 * 3 * 422
SITES_PER_TRIAL = 12  # upper bound: every seam, write and read side
DISABLED_BUDGET_S_PER_RUN = 0.045  # <5% of the 0.95s jobs=1 baseline


def test_bench_disabled_fault_point_cost(benchmark):
    """Unit cost of a disabled fault point, scaled to a full run."""
    BATCH = 1000

    def disabled_sites():
        for _ in range(BATCH):
            action = fault_point(
                "spark->serde", "encode", cooperative=("torn_write",)
            )
            if action is not None:  # never taken with no injector
                raise AssertionError("injector leaked into benchmark")

    benchmark.pedantic(
        disabled_sites, rounds=30, iterations=1, warmup_rounds=3
    )

    per_call_s = benchmark.stats.stats.min / BATCH
    projected_s = per_call_s * SITES_PER_TRIAL * TRIAL_COUNT

    print("\nfaults-disabled overhead projection")
    print(f"  per-site cost:     {per_call_s * 1e9:.0f}ns")
    print(f"  sites per run:     {SITES_PER_TRIAL * TRIAL_COUNT}")
    print(f"  projected per run: {projected_s * 1e3:.1f}ms "
          f"(budget {DISABLED_BUDGET_S_PER_RUN * 1e3:.0f}ms)")

    assert projected_s < DISABLED_BUDGET_S_PER_RUN, (
        f"disabled fault points would cost {projected_s * 1e3:.1f}ms per "
        f"run, budget is {DISABLED_BUDGET_S_PER_RUN * 1e3:.0f}ms"
    )


def test_bench_injected_subset_run(benchmark):
    """An injected subset run: bounded slowdown, deterministic output."""
    inputs = generate_inputs()[:40]

    started = time.perf_counter()
    plain = run_crosstest(inputs=inputs, jobs=1)
    plain_s = time.perf_counter() - started

    plan = BUILTIN_PLANS["smoke"]

    def injected_run():
        return run_crosstest(
            inputs=inputs, jobs=1, fault_plan=plan, fault_seed=1337
        )

    first = benchmark.pedantic(injected_run, rounds=1, iterations=1)
    injected_s = benchmark.stats.stats.total

    print("\ninjected vs plain subset run (8 plans x 3 formats x 40 inputs)")
    print(f"  plain:    {plain_s:.3f}s")
    print(f"  injected: {injected_s:.3f}s "
          f"({injected_s / plain_s if plain_s else 0:.2f}x)")

    second = injected_run()
    assert first.faults is not None
    assert first.faults.to_json() == second.faults.to_json()
    # injection bypasses the plan cache and reruns injected trials for
    # baselines — allow room, but a order-of-magnitude blowup means the
    # bypass leaked into the uninjected path
    assert injected_s < max(plain_s * 25, 5.0)
