"""Figure 2 / Figure 4: Spark vs HDFS compressed-file length, and fix."""

from repro.scenarios.data_spark_hdfs import replay_spark_27239


def test_bench_figure2_failure(benchmark):
    outcome = benchmark(replay_spark_27239, compressed=True, fixed=False)
    print("\nFigure 2 (SPARK-27239): compressed file, pre-fix check")
    print(f"  reported length: {outcome.metrics['reported_length']}")
    print(f"  symptom: {outcome.symptom}")
    assert outcome.failed
    assert outcome.metrics["reported_length"] == -1


def test_bench_figure4_fix(benchmark):
    outcome = benchmark(replay_spark_27239, compressed=True, fixed=True)
    print("\nFigure 4 fix: require(length >= -1)")
    print(f"  records read: {outcome.metrics['records_read']}")
    assert not outcome.failed
    assert outcome.metrics["records_read"] > 0


def test_bench_figure2_matrix(benchmark):
    """Full 2x2: (compressed?) x (fixed?) — only one cell fails."""

    def matrix():
        return {
            (compressed, fixed): replay_spark_27239(
                compressed=compressed, fixed=fixed
            ).failed
            for compressed in (False, True)
            for fixed in (False, True)
        }

    results = benchmark.pedantic(matrix, rounds=1, iterations=1)
    print("\n(compressed, fixed) -> job failed")
    for key, failed in results.items():
        print(f"  {key} -> {failed}")
    assert results == {
        (False, False): False,
        (False, True): False,
        (True, False): True,
        (True, True): False,
    }
