"""The flagship incident of §1, replayed end to end.

Paper narrative: a deregistered monitor reports 0 usage; the quota
system misinterprets zero as the expected load, slashes the quota, and
the User-ID service suffers a major outage (YouTube/Gmail impacted).
"""

from repro.scenarios.incident_gcp_quota import replay_gcp_quota_incident


def test_bench_gcp_quota_incident(benchmark):
    outcome = benchmark.pedantic(
        replay_gcp_quota_incident, rounds=1, iterations=1
    )

    print("\n§1 flagship incident (GCP User-ID quota outage)")
    for line in outcome.narrative:
        print(f"  {line}")
    print(f"  {outcome.symptom}")

    assert outcome.failed
    assert outcome.metrics["final_quota"] == 10.0
    assert outcome.metrics["rejected_requests"] > 0


def test_bench_gcp_quota_incident_fixed(benchmark):
    outcome = benchmark.pedantic(
        lambda: replay_gcp_quota_incident(fixed=True), rounds=1, iterations=1
    )
    print(f"\nabsent-aware scrape policy: {outcome.symptom}")
    assert not outcome.failed
    assert outcome.metrics["rejected_requests"] == 0


def test_bench_deregistration_timing_sweep(benchmark):
    """The outage window scales with how early the monitor vanishes."""

    def sweep():
        return {
            at: replay_gcp_quota_incident(
                deregister_at_ms=at
            ).metrics["rejected_requests"]
            for at in (100_000, 250_000, 400_000, 550_000)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nderegistration time (ms) -> rejected requests")
    for at, rejected in results.items():
        print(f"  {at:>7} -> {rejected}")
    values = list(results.values())
    assert values == sorted(values, reverse=True)
    assert values[0] > values[-1]
