"""Table 4 / Finding 4: data properties of data-plane discrepancies."""

from repro.core.analysis import table4_data_properties
from repro.core.taxonomy import Plane


def test_bench_table4(benchmark, failures):
    table = benchmark(table4_data_properties, failures)
    print("\n" + table.render())

    rows = table.as_dict()
    assert table.total == 61
    assert rows["Address"] == 10
    assert rows["Schema"] == 32
    assert rows["  Structure"] == 14
    assert rows["  Value"] == 18
    assert rows["Custom property"] == 8
    assert rows["API semantics"] == 11

    data = [f for f in failures if f.plane is Plane.DATA]
    typical = sum(1 for f in data if f.data_property.is_typical_metadata)
    metadata = sum(1 for f in data if f.data_property.is_metadata)
    print(f"  metadata-caused: 50/61 (paper) -> {metadata}/61")
    print(f"  typical metadata: 42/61 (paper) -> {typical}/61")
    assert metadata == 50
    assert typical == 42
