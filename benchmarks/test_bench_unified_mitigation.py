"""Extension bench: the §10 "unified serialization library" mitigation.

The paper proposes a unified serialization layer for complex data
abstractions. This bench quantifies what that single mitigation buys:
re-run the cross-test with every format wrapped in the unified layer
and count which of the 15 discrepancies disappear.

Expected shape: the *serialization-lattice* family (#1 SPARK-39075,
#3 HIVE-26533, #4 HIVE-26531) vanishes; interface-coercion and
engine-semantics discrepancies survive — which is exactly §10's caveat
that "standardization may not be a panacea to all CSI issues".
"""

from repro.crosstest.classify import found_discrepancies
from repro.crosstest.harness import CrossTester


def test_bench_unified_serialization_mitigation(crosstest_report, benchmark):
    def run_unified():
        tester = CrossTester(
            formats=("unified_avro", "unified_orc", "unified_parquet")
        )
        return found_discrepancies(tester.run())

    unified_found = benchmark.pedantic(run_unified, rounds=1, iterations=1)
    plain_found = found_discrepancies(crosstest_report.trials)
    removed = plain_found - unified_found

    print("\nunified-serialization ablation")
    print(f"  plain formats:   {len(plain_found):>2} found {sorted(plain_found)}")
    print(f"  unified formats: {len(unified_found):>2} found {sorted(unified_found)}")
    print(f"  removed by the mitigation: {sorted(removed)}")

    assert plain_found == set(range(1, 16))
    assert removed == {1, 3, 4}
    # the coercion/engine-semantics families survive standardization
    assert {2, 5, 6, 7, 9, 10, 11, 12, 13, 15} <= unified_found
