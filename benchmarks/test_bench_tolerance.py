"""Extension bench: CSI fault tolerance via interface redundancy (§10).

"A potential direction is to leverage the diversity of existing
interfaces to build interaction redundancy across systems." Measure it:
for every read-stage failure the cross-test recorded, would the
redundant reader (DataFrame -> SparkSQL -> HiveQL) have produced *a*
result?
"""

import decimal

from repro.common.schema import Schema
from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession
from repro.tolerance import RedundantReader


def _avro_byte_table():
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    frame = spark.create_dataframe([(5,)], Schema.of(("b", "tinyint")))
    frame.write.format("avro").save_as_table("t")
    return spark, hive


def test_bench_tolerance_single_read(benchmark):
    spark, hive = _avro_byte_table()
    reader = RedundantReader.for_pair(spark, hive)
    outcome = benchmark(reader.read, "t")
    print(f"\n{outcome.describe()}")
    for failure in outcome.failures:
        print(f"  failed path: {failure.path} ({failure.error_type})")
    assert outcome.tolerated
    assert outcome.result.to_tuples() == [(5,)]


def test_bench_tolerated_fraction(benchmark):
    """Across the paper's error-producing discrepancies, how many reads
    does interface redundancy rescue?"""

    def build_cases():
        cases = {}

        spark, hive = _avro_byte_table()
        cases["#1 avro byte (SPARK-39075)"] = (spark, hive, "t")

        spark2 = SparkSession.local()
        hive2 = HiveServer(spark2.metastore, spark2.filesystem)
        spark2.sql("CREATE TABLE d (d decimal(10,3)) STORED AS parquet")
        frame = spark2.create_dataframe(
            [(decimal.Decimal("3.1"),)], Schema.of(("d", "decimal(10,3)"))
        )
        frame.write.insert_into("d")
        cases["#2 unquantized decimal (SPARK-39158)"] = (spark2, hive2, "d")

        spark3 = SparkSession.local()
        hive3 = HiveServer(spark3.metastore, spark3.filesystem)
        spark3.sql("CREATE TABLE f (x double) STORED AS parquet")
        spark3.sql("INSERT INTO f VALUES (double('Infinity'))")
        cases["#7 infinity via hive (HIVE-26528)"] = (spark3, hive3, "f")
        return cases

    def measure():
        results = {}
        for label, (spark, hive, table) in build_cases().items():
            reader = RedundantReader.for_pair(spark, hive)
            outcome = reader.read(table)
            results[label] = outcome
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\ninterface-redundancy tolerance")
    rescued = 0
    for label, outcome in results.items():
        ok = outcome.succeeded
        rescued += ok
        print(
            f"  {label:44} -> "
            f"{'served via ' + outcome.path_used if ok else 'unservable'}"
        )
    print(f"  tolerated: {rescued}/{len(results)} read-failure families")
    assert rescued == len(results)
