"""Figure 3: Flink-YARN configuration misinterpretation (FLINK-19141)."""

from repro.scenarios.mgmt_flink_yarn import replay_flink_19141


def test_bench_figure3_fair_scheduler_fails(benchmark):
    outcome = benchmark(replay_flink_19141, scheduler="fair")
    print("\nFigure 3 (FLINK-19141): fair scheduler")
    print(f"  Flink expected: {outcome.metrics['expected_mb']} MB "
          f"(via yarn.scheduler.minimum-allocation-mb)")
    print(f"  YARN granted:   {outcome.metrics['granted_mb']} MB "
          f"(via yarn.resource-types.memory-mb.increment-allocation)")
    print(f"  symptom: {outcome.symptom}")
    assert outcome.failed


def test_bench_figure3_capacity_scheduler_works(benchmark):
    outcome = benchmark(replay_flink_19141, scheduler="capacity")
    assert not outcome.failed
    assert outcome.metrics["expected_mb"] == outcome.metrics["granted_mb"]


def test_bench_figure3_request_sweep(benchmark):
    """Mismatch appears exactly when the two rounding rules disagree."""

    def sweep():
        return {
            mb: replay_flink_19141(scheduler="fair", requested_mb=mb).failed
            for mb in (512, 1024, 1536, 2048, 2560)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nrequested MB -> mismatch under fair scheduler")
    for mb, failed in results.items():
        print(f"  {mb:>5} -> {failed}")
    # multiples of the min-allocation agree; in-between sizes diverge
    assert results[1024] is False
    assert results[2048] is False
    assert results[1536] is True
    assert results[512] is True  # 512 rounds to 1024 (capacity) vs 512 (fair)
