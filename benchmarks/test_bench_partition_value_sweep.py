"""Extension bench: differential sweep over partition-value spellings.

For a corpus of partition-value strings, compare what each engine
returns for the partition column — a micro cross-test of the
Address/naming family. The diff set is exactly the spellings Spark's
type inference re-interprets.
"""

from repro.hivelite.engine import HiveServer
from repro.sparklite.session import SparkSession

CORPUS = [
    "01",          # zero-padded int: re-typed, padding lost
    "1",           # plain int: re-typed, text identical
    "2020-01-01",  # ISO date: re-typed to date
    "eu-west",     # plain string: preserved
    "TRUE",        # booleans are NOT inferred: preserved
    "1e3",         # scientific notation is NOT int-inferred: preserved
    "007",         # zero-padded: re-typed, padding lost
    "-42",         # negative int: re-typed
]


def _read_partition_value(value):
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    hive.execute(
        "CREATE TABLE t (a int) PARTITIONED BY (p string) STORED AS parquet"
    )
    hive.execute(f"INSERT INTO t PARTITION (p='{value}') VALUES (1)")
    hive_value = hive.execute("SELECT * FROM t").rows[0][1]
    spark_value = spark.sql("SELECT * FROM t").rows[0][1]
    return hive_value, spark_value


def test_bench_partition_value_sweep(benchmark):
    def sweep():
        return {value: _read_partition_value(value) for value in CORPUS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\npartition-value spelling -> (hive sees, spark sees)")
    diffs = []
    for value, (hive_value, spark_value) in results.items():
        marker = ""
        if hive_value != spark_value or type(hive_value) is not type(spark_value):
            marker = "   <- DIFF"
            diffs.append(value)
        print(f"  {value!r:14} -> ({hive_value!r}, {spark_value!r}){marker}")

    # the diff set is exactly the inferrable spellings
    assert set(diffs) == {"01", "1", "2020-01-01", "007", "-42"}
    # and the value-changing subset loses information outright
    assert results["01"] == ("01", 1)
    assert results["007"] == ("007", 7)
    # non-inferrable spellings are safe
    assert results["eu-west"] == ("eu-west", "eu-west")
    assert results["TRUE"] == ("TRUE", "TRUE")
    assert results["1e3"] == ("1e3", "1e3")
