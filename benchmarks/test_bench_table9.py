"""Table 9 / Findings 12-13: fix patterns and locations."""

from repro.core.analysis import table9_fixes
from repro.core.taxonomy import FixLocation, FixPattern


def test_bench_table9(benchmark, failures):
    table = benchmark(table9_fixes, failures)
    print("\n" + table.render())

    rows = table.as_dict()
    assert rows["Checking"] == 38
    assert rows["Error handling"] == 8
    assert rows["Interaction"] == 69
    assert rows["Others"] == 5

    fixed = [f for f in failures if f.has_merged_fix]
    check_eh = sum(
        1
        for f in fixed
        if f.fix_pattern in (FixPattern.CHECKING, FixPattern.ERROR_HANDLING)
    )
    specific = [
        f
        for f in fixed
        if f.fix_location in (FixLocation.CONNECTOR, FixLocation.SYSTEM_SPECIFIC)
    ]
    connector = sum(
        1 for f in specific if f.fix_location is FixLocation.CONNECTOR
    )
    print(f"  checking/EH fixes: 46/115 (paper) -> {check_eh}/{len(fixed)}")
    print(f"  interaction-specific fixes: 79/115 (paper) -> "
          f"{len(specific)}/{len(fixed)}")
    print(f"  ... of which connector modules: 68/79 (paper) -> "
          f"{connector}/{len(specific)}")

    assert len(fixed) == 115
    assert check_eh == 46
    assert len(specific) == 79
    assert connector == 68
    assert sum(1 for f in fixed if f.fixed_by_downstream) == 1
