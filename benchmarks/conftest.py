"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and asserts
the published numbers, timing the regeneration with pytest-benchmark.
Heavy artifacts (the full cross-test run) are computed once per session.
"""

import pytest

from repro.crosstest.report import run_crosstest
from repro.dataset.cbs import load_cbs_issues
from repro.dataset.incidents import load_incidents
from repro.dataset.opensource import load_failures


@pytest.fixture(scope="session")
def failures():
    return load_failures()


@pytest.fixture(scope="session")
def incidents():
    return load_incidents()


@pytest.fixture(scope="session")
def cbs_issues():
    return load_cbs_issues()


@pytest.fixture(scope="session")
def crosstest_report():
    """The full §8 run: 8 plans x 3 formats x 422 inputs."""
    return run_crosstest()


def once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
