PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: tier1 smoke-crosstest test bench bench-json crosstest

# fast smoke pass over the §8 cross-test engine (runs first so a broken
# harness fails in seconds, not after the whole suite), including the
# tracing-overhead guard: instrumentation must stay free when disabled
smoke-crosstest:
	$(PYTHON) -m pytest -q tests/crosstest
	$(PYTHON) -m pytest -q benchmarks/test_bench_tracing_overhead.py

# the tier-1 flow: crosstest smoke, then the full suite
tier1: smoke-crosstest
	$(PYTHON) -m pytest -x -q

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) -m pytest -q benchmarks

# wall-clock + cache-counter benchmark of the §8 matrix (jobs=1 and auto)
bench-json:
	$(PYTHON) -m repro.crosstest.bench BENCH_crosstest.json

# the full 10,128-trial matrix, parallel, with telemetry on stderr
crosstest:
	$(PYTHON) -m repro crosstest
