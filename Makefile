PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: tier1 smoke-crosstest smoke-tests test bench bench-json \
	bench-gate chaos fuzz-smoke fuzz-baseline lint crosstest \
	status-smoke campaign-smoke analytics-smoke

# sub-second sanity tier: the distilled 14-input corpus must still
# reproduce all 15 discrepancy mechanisms (run this before anything
# else — a broken harness fails here in well under a second)
smoke-crosstest:
	$(PYTHON) -m repro.crosstest.smoke

# fast smoke pass over the §8 cross-test engine test suite, including
# the tracing-overhead guard: instrumentation must stay free when
# disabled
smoke-tests:
	$(PYTHON) -m pytest -q tests/crosstest
	$(PYTHON) -m pytest -q benchmarks/test_bench_tracing_overhead.py

# the tier-1 flow: distilled corpus, crosstest tests, then everything
tier1: smoke-crosstest smoke-tests
	$(PYTHON) -m pytest -x -q

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) -m pytest -q benchmarks

# wall-clock + cache-counter benchmark of the §8 matrix: a jobs=1 leg
# and a real process-pool leg at max(2, cpu_count) workers
bench-json:
	$(PYTHON) -m repro.crosstest.bench BENCH_crosstest.json

# measure fresh, then gate jobs=1 wall time against the committed
# baseline, parallel speedup against break-even (multi-core only),
# and batched-lane speedup against a noise-tolerant 1.3x floor (the
# committed baseline carries the full 2x acceptance bar)
bench-gate:
	$(PYTHON) -m repro.crosstest.bench bench-fresh.json
	$(PYTHON) -m repro.crosstest.benchgate bench-fresh.json \
		--min-batch-speedup 1.3

# the CI chaos job, locally: seeded fault matrix over the distilled
# corpus, gated on mis-handled trials, run twice — the fault report
# must be byte-identical
chaos:
	$(PYTHON) -m repro crosstest --corpus smoke --jobs 2 \
		--faults smoke --fault-seed 1337 --quiet \
		--fault-json fault-report.json --fault-gate
	$(PYTHON) -m repro crosstest --corpus smoke --jobs 4 \
		--faults smoke --fault-seed 1337 --quiet \
		--fault-json fault-report-rerun.json --fault-gate
	diff fault-report.json fault-report-rerun.json

# the CI fuzz-smoke job, locally: the canonical fixed-seed campaign,
# gated on novel fingerprints (exit 4 = a discrepancy the committed
# baseline doesn't know), run at two worker counts — the fingerprint
# JSONL must be byte-identical or the campaign lost determinism
fuzz-smoke:
	$(PYTHON) -m repro fuzz --seed 11 --budget 96 --batch 16 \
		--jobs 2 --quiet --out-dir fuzz-smoke-j2
	$(PYTHON) -m repro fuzz --seed 11 --budget 96 --batch 16 \
		--jobs 4 --quiet --out-dir fuzz-smoke-j4
	diff fuzz-smoke-j2/fingerprints.jsonl fuzz-smoke-j4/fingerprints.jsonl

# the CI status-smoke step, locally: record a plain and a
# fault-injected smoke run into a fresh campaign ledger, then render
# the observatory over it — `repro status` refuses the ledger (exit 2)
# if its schema version drifted from the reader's
status-smoke:
	rm -f ledger-smoke.jsonl
	$(PYTHON) -m repro crosstest --corpus smoke --jobs 2 --quiet \
		--ledger ledger-smoke.jsonl
	$(PYTHON) -m repro crosstest --corpus smoke --jobs 2 --quiet \
		--faults smoke --fault-seed 1337 \
		--ledger ledger-smoke.jsonl
	$(PYTHON) -m repro status --ledger ledger-smoke.jsonl

# the CI campaign-smoke job, locally: an uninterrupted 3-batch
# campaign vs. one "killed" after batch 1 (--max-batches 1, jobs=2)
# and resumed from its checkpoint for the remaining 2 (jobs=4). The
# fingerprint JSONL must be byte-identical and the ledgers canonically
# identical, or checkpoint/resume broke the determinism contract.
# Exit 4 (a novel fingerprint) fails the target, same as fuzz-smoke.
campaign-smoke:
	rm -rf campaign-smoke && mkdir -p campaign-smoke
	$(PYTHON) -m repro campaign --seed 11 --batch 16 --jobs 2 \
		--max-batches 3 --quiet \
		--checkpoint campaign-smoke/clean.ckpt.json \
		--fingerprints campaign-smoke/clean.fp.jsonl \
		--ledger campaign-smoke/clean.ledger.jsonl
	$(PYTHON) -m repro campaign --seed 11 --batch 16 --jobs 2 \
		--max-batches 1 --quiet \
		--checkpoint campaign-smoke/resumed.ckpt.json \
		--fingerprints campaign-smoke/resumed.fp.jsonl \
		--ledger campaign-smoke/resumed.ledger.jsonl
	$(PYTHON) -m repro campaign --seed 11 --batch 16 --jobs 4 \
		--max-batches 3 --quiet \
		--checkpoint campaign-smoke/resumed.ckpt.json \
		--fingerprints campaign-smoke/resumed.fp.jsonl \
		--ledger campaign-smoke/resumed.ledger.jsonl
	diff campaign-smoke/clean.fp.jsonl campaign-smoke/resumed.fp.jsonl
	$(PYTHON) -m repro.obs.ledgerdiff \
		campaign-smoke/clean.ledger.jsonl \
		campaign-smoke/resumed.ledger.jsonl

# the CI analytics-smoke job, locally: a synthetic two-commit drift
# ledger must flag the regression (and `repro analyze --gate` must
# exit 5 on it), then a seeded exit-4 campaign must round-trip through
# auto-triage — novel key reproduced from its checkpoint coordinates,
# shrunk, and the proposed baseline silences the re-run back to exit 0
analytics-smoke:
	rm -rf analytics-smoke
	$(PYTHON) -m repro.analytics.smoke analytics-smoke

# regenerate src/repro/fuzz/known_discrepancies.json (deterministic:
# any machine produces the identical file)
fuzz-baseline:
	$(PYTHON) -m repro.fuzz.gen_baseline

# ruff + mypy over the packages the lint CI job covers (needs the
# 'lint' extra: pip install ruff mypy)
lint:
	ruff check src/repro/faults src/repro/tracing
	ruff format --check src/repro/faults
	mypy src/repro/faults src/repro/tracing

# the full 10,128-trial matrix, parallel, with telemetry on stderr
crosstest:
	$(PYTHON) -m repro crosstest
