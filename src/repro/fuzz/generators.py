"""Seeded generators for cross-test inputs, values and conf mutations.

The curated §8 corpus covers documented boundary values; the fuzzer
explores the space *around* them — nested types beyond the curated set,
hash-derived values per type family, and deployment-conf mutations.
Every choice is a pure function of ``(seed, round, slot)`` hashed
through BLAKE2b (the same discipline as :mod:`repro.faults.core`): no
live RNG, no process-dependent ``hash()``, so a campaign replays
byte-identically at any ``--jobs``/pool setting and across machines.

Generated inputs are plain :class:`~repro.crosstest.values.TestInput`
records (picklable, so they cross the executor's process pool) with
``input_id >= FUZZ_ID_BASE`` to keep them disjoint from the curated
corpus ids.
"""

from __future__ import annotations

import datetime
import decimal
from hashlib import blake2b

from repro.common.types import (
    ArrayType,
    CharType,
    DataType,
    DecimalType,
    MapType,
    StructType,
    VarcharType,
    parse_type,
)
from repro.crosstest.values import TestInput

__all__ = [
    "FUZZ_ID_BASE",
    "FAMILIES",
    "CONF_MENU",
    "Draws",
    "gen_candidate",
    "mutate",
    "gen_conf",
    "render_literal",
    "is_valid_for",
]

#: fuzz-generated inputs get ids from here up, disjoint from the
#: curated corpus (422 inputs, ids 0..421).
FUZZ_ID_BASE = 100_000

#: the type families the candidate stream cycles through — rotation,
#: not chance, so every family is exercised within one batch cycle.
FAMILIES = (
    "boolean",
    "tinyint",
    "smallint",
    "int",
    "bigint",
    "float",
    "double",
    "decimal",
    "string",
    "char",
    "varchar",
    "binary",
    "date",
    "timestamp",
    "timestamp_ntz",
    "array",
    "map",
    "struct",
)

#: deployment-conf mutations the scheduler can draw per round. Entry 0
#: (defaults) is weighted: the first rounds always run the stock
#: deployment so baseline mechanisms are found before conf variants.
#: (``repro.plan.cache.enabled`` is deliberately not in the menu — the
#: scheduler forces it off on every fuzz batch for span determinism,
#: so a mutation toggling it would alias the default deployment.)
CONF_MENU: tuple[dict[str, object], ...] = (
    {},
    {"spark.sql.storeAssignmentPolicy": "legacy"},
    {"spark.sql.storeAssignmentPolicy": "strict"},
    {"spark.sql.legacy.charVarcharAsString": "true"},
    {"spark.sql.timestampType": "TIMESTAMP_NTZ"},
    {"spark.sql.legacy.timeParserPolicy": "LEGACY"},
)


def _hash_int(*parts: object) -> int:
    """Map a decision key to a 64-bit int, process-independent."""
    key = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


class Draws:
    """A deterministic decision stream for one ``(seed, round, slot)``.

    Each call folds an incrementing counter plus a human-readable tag
    into the hash, so two draws with the same tag still differ and the
    stream is insensitive to *how many* draws other code paths made.
    """

    def __init__(self, seed: int, round_index: int, slot: int) -> None:
        self._key = (seed, round_index, slot)
        self._counter = 0

    def _next(self, tag: str) -> int:
        value = _hash_int(*self._key, self._counter, tag)
        self._counter += 1
        return value

    def integer(self, tag: str, lo: int, hi: int) -> int:
        """A draw in ``[lo, hi]`` inclusive."""
        return lo + self._next(tag) % (hi - lo + 1)

    def choice(self, tag: str, options):
        return options[self._next(tag) % len(options)]

    def boolean(self, tag: str, num: int = 1, den: int = 2) -> bool:
        """True with probability ``num/den`` (exact, not float)."""
        return self._next(tag) % den < num


# ---------------------------------------------------------------------------
# literal rendering — mirrors the curated corpus spellings exactly, so
# every generated literal stays inside the grammar `sql.parser` accepts
# ---------------------------------------------------------------------------

_INT_SUFFIX = {"tinyint": "Y", "smallint": "S", "int": "", "bigint": "L"}


def _sql_str(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def render_literal(dtype: DataType, value: object) -> str:
    """The SQL spelling of ``value`` typed as ``dtype``.

    Only called for values that *are* instances of the type (valid
    candidates and element values inside nested literals); invalid
    candidates render their own mismatched literal at the call site.
    """
    name = type(dtype).__name__
    if value is None:
        return "NULL"
    if name == "BooleanType":
        return "TRUE" if value else "FALSE"
    if name in ("ByteType", "ShortType", "IntegerType", "LongType"):
        suffix = {
            "ByteType": "Y",
            "ShortType": "S",
            "IntegerType": "",
            "LongType": "L",
        }[name]
        return f"{value}{suffix}"
    if name in ("FloatType", "DoubleType"):
        fn = "float" if name == "FloatType" else "double"
        assert isinstance(value, float)
        if value != value:  # NaN
            return f"{fn}('NaN')"
        if value == float("inf"):
            return f"{fn}('Infinity')"
        if value == float("-inf"):
            return f"{fn}('-Infinity')"
        return f"{value!r}{'F' if fn == 'float' else 'D'}"
    if name == "DecimalType":
        assert isinstance(dtype, DecimalType)
        return f"CAST('{value}' AS {dtype.simple_string()})"
    if name in ("StringType", "CharType", "VarcharType"):
        return _sql_str(str(value))
    if name == "BinaryType":
        assert isinstance(value, bytes)
        return f"X'{value.hex().upper()}'"
    if name == "DateType":
        return f"DATE '{value.isoformat()}'"  # type: ignore[attr-defined]
    if name == "TimestampType":
        return f"TIMESTAMP '{value:%Y-%m-%d %H:%M:%S}'"
    if name == "TimestampNTZType":
        return f"TIMESTAMP_NTZ '{value:%Y-%m-%d %H:%M:%S}'"
    if name == "ArrayType":
        assert isinstance(dtype, ArrayType)
        items = ", ".join(
            render_literal(dtype.element_type, item) for item in value
        )
        return f"array({items})"
    if name == "MapType":
        assert isinstance(dtype, MapType)
        pairs = ", ".join(
            f"{render_literal(dtype.key_type, k)}, "
            f"{render_literal(dtype.value_type, v)}"
            for k, v in value.items()
        )
        return f"map({pairs})"
    if name == "StructType":
        assert isinstance(dtype, StructType)
        parts = ", ".join(
            f"{_sql_str(field.name)}, "
            f"{render_literal(field.data_type, item)}"
            for field, item in zip(dtype.fields, value)
        )
        return f"named_struct({parts})"
    raise ValueError(f"no literal rendering for {name}")


def is_valid_for(dtype: DataType, value: object) -> bool:
    """Whether ``value`` is a valid instance of the declared column type.

    The shrinker re-derives validity after every mutation; generation
    asserts its own candidates against the same predicate so the
    ``valid`` flag the oracles trust is never hand-waved.
    """
    return dtype.accepts(value)


# ---------------------------------------------------------------------------
# type generation
# ---------------------------------------------------------------------------

_ATOMIC_POOL = (
    "boolean",
    "tinyint",
    "smallint",
    "int",
    "bigint",
    "float",
    "double",
    "string",
    "date",
    "timestamp",
)

_STRUCT_NAMES = ("a", "b", "c", "val", "f1", "Aa", "bB", "Nested")

_MAP_KEY_TYPES = ("string", "int", "bigint")


def _gen_decimal_type(draws: Draws) -> str:
    precision = draws.integer("dec.p", 3, 20)
    scale = draws.integer("dec.s", 0, min(precision, 8))
    return f"decimal({precision},{scale})"


def _gen_atomic(draws: Draws, family: str) -> str:
    if family == "decimal":
        return _gen_decimal_type(draws)
    if family == "char":
        return f"char({draws.integer('char.n', 1, 8)})"
    if family == "varchar":
        return f"varchar({draws.integer('varchar.n', 1, 12)})"
    return family


def _gen_element_type(draws: Draws, tag: str, depth: int) -> str:
    """An element/value type for a container, nesting at most once more."""
    if depth < 1 and draws.boolean(f"{tag}.nest", 1, 4):
        inner = draws.choice(f"{tag}.inner", ("array", "struct"))
        return _gen_container(draws, inner, depth + 1)
    base = draws.choice(f"{tag}.atomic", _ATOMIC_POOL + ("decimal",))
    if base == "decimal":
        return _gen_decimal_type(draws)
    return base


def _gen_container(draws: Draws, family: str, depth: int = 0) -> str:
    if family == "array":
        return f"array<{_gen_element_type(draws, 'arr', depth)}>"
    if family == "map":
        key = draws.choice("map.key", _MAP_KEY_TYPES)
        return f"map<{key},{_gen_element_type(draws, 'map.val', depth)}>"
    count = draws.integer("struct.n", 1, 3)
    fields = []
    for index in range(count):
        name = draws.choice(f"struct.name.{index}", _STRUCT_NAMES)
        # struct field names must be unique; suffix repeats
        while any(name == existing.split(":")[0] for existing in fields):
            name = f"{name}{index}"
        fields.append(
            f"{name}:{_gen_element_type(draws, f'struct.{index}', depth)}"
        )
    return f"struct<{','.join(fields)}>"


def gen_type(draws: Draws, family: str) -> str:
    if family in ("array", "map", "struct"):
        return _gen_container(draws, family)
    return _gen_atomic(draws, family)


# ---------------------------------------------------------------------------
# value generation
# ---------------------------------------------------------------------------

_WORDS = (
    "hello",
    "data",
    "x",
    "it's",
    "NULL",
    "héllo",
    "数据",
    "  pad  ",
    "zz-top",
    "",
)

_INTEGRAL_BOUNDS = {
    "ByteType": (-128, 127),
    "ShortType": (-32768, 32767),
    "IntegerType": (-2147483648, 2147483647),
    "LongType": (-9223372036854775808, 9223372036854775807),
}


def _valid_value(draws: Draws, dtype: DataType, tag: str) -> object:
    """A valid Python value for ``dtype`` (element values included)."""
    name = type(dtype).__name__
    if name == "BooleanType":
        return draws.boolean(f"{tag}.bool")
    if name in _INTEGRAL_BOUNDS:
        lo, hi = _INTEGRAL_BOUNDS[name]
        kind = draws.choice(f"{tag}.ikind", ("small", "lo", "hi", "zero"))
        if kind == "zero":
            return 0
        if kind == "lo":
            return lo
        if kind == "hi":
            return hi
        return draws.integer(f"{tag}.ival", max(lo, -999), min(hi, 999))
    if name in ("FloatType", "DoubleType"):
        return draws.choice(
            f"{tag}.fval",
            (
                0.0,
                1.5,
                -3.25,
                10.0,
                0.125,
                1e10,
                float("nan"),
                float("inf"),
                float("-inf"),
            ),
        )
    if name == "DecimalType":
        assert isinstance(dtype, DecimalType)
        integral = dtype.precision - dtype.scale
        digits = draws.integer(f"{tag}.ddig", 0, 10 ** min(integral, 6) - 1)
        sign = "-" if draws.boolean(f"{tag}.dsign", 1, 3) else ""
        if dtype.scale:
            frac = draws.integer(f"{tag}.dfrac", 0, 10**dtype.scale - 1)
            text = f"{sign}{digits}.{frac:0{dtype.scale}d}"
        else:
            text = f"{sign}{digits}"
        return decimal.Decimal(text)
    if name == "StringType":
        return draws.choice(f"{tag}.sval", _WORDS)
    if name == "CharType":
        assert isinstance(dtype, CharType)
        length = draws.integer(f"{tag}.clen", 1, dtype.length)
        return "abcdefgh"[:length]
    if name == "VarcharType":
        assert isinstance(dtype, VarcharType)
        length = draws.integer(f"{tag}.vlen", 0, dtype.length)
        return "vwxyzabcdefg"[:length]
    if name == "BinaryType":
        count = draws.integer(f"{tag}.blen", 0, 4)
        return bytes(
            draws.integer(f"{tag}.byte.{index}", 0, 255)
            for index in range(count)
        )
    if name == "DateType":
        return datetime.date(
            draws.integer(f"{tag}.year", 1900, 2100),
            draws.integer(f"{tag}.month", 1, 12),
            draws.integer(f"{tag}.day", 1, 28),
        )
    if name in ("TimestampType", "TimestampNTZType"):
        return datetime.datetime(
            draws.integer(f"{tag}.year", 1970, 2100),
            draws.integer(f"{tag}.month", 1, 12),
            draws.integer(f"{tag}.day", 1, 28),
            draws.integer(f"{tag}.hour", 0, 23),
            draws.integer(f"{tag}.minute", 0, 59),
            draws.integer(f"{tag}.second", 0, 59),
        )
    if name == "ArrayType":
        assert isinstance(dtype, ArrayType)
        count = draws.integer(f"{tag}.alen", 1, 3)
        items = [
            _valid_value(draws, dtype.element_type, f"{tag}.a{index}")
            for index in range(count)
        ]
        if draws.boolean(f"{tag}.anull", 1, 5):
            items[0] = None
        return items
    if name == "MapType":
        assert isinstance(dtype, MapType)
        count = draws.integer(f"{tag}.mlen", 1, 2)
        out = {}
        for index in range(count):
            key = _valid_value(draws, dtype.key_type, f"{tag}.mk{index}")
            while key is None or key in out:
                index += 100
                key = _valid_value(draws, dtype.key_type, f"{tag}.mk{index}")
            out[key] = _valid_value(
                draws, dtype.value_type, f"{tag}.mv{index}"
            )
        return out
    if name == "StructType":
        assert isinstance(dtype, StructType)
        return [
            _valid_value(draws, field.data_type, f"{tag}.s{index}")
            for index, field in enumerate(dtype.fields)
        ]
    raise ValueError(f"no value generator for {name}")


def _expected_for(dtype: DataType, value: object) -> object | None:
    """The round-trip expectation when it differs from the raw value."""
    if isinstance(dtype, CharType) and isinstance(value, str):
        padded = value.ljust(dtype.length)
        return padded if padded != value else None
    return None


def _invalid_candidate(
    draws: Draws, family: str, type_text: str, dtype: DataType
) -> tuple[str, object, str]:
    """(sql_literal, py_value, description) for an invalid input.

    Shapes mirror the corpus's invalid families: overflow, malformed
    strings, precision violations, overlength, and kind mismatches —
    the behaviours the §8 oracles and classifier recognize.
    """
    if family in ("tinyint", "smallint", "int", "bigint"):
        lo, hi = _INTEGRAL_BOUNDS[type(dtype).__name__]
        if draws.boolean("inv.int.kind"):
            value = draws.choice(
                "inv.int.over",
                (hi + 1, lo - 1, hi + draws.integer("inv.int.k", 2, 999)),
            )
            return str(value), value, f"fuzz {family} overflow {value}"
        text = draws.choice(
            "inv.int.bad", ("12abc", "--3", "1_0", "0x1G", "bad-7")
        )
        return _sql_str(text), text, f"fuzz {family} malformed {text!r}"
    if family == "decimal":
        assert isinstance(dtype, DecimalType)
        integral = dtype.precision - dtype.scale
        digits = "9" * (integral + draws.integer("inv.dec.extra", 1, 3))
        text = f"{digits}.{'9' * dtype.scale}" if dtype.scale else digits
        return text, decimal.Decimal(text), f"fuzz decimal overflow {text}"
    if family == "boolean":
        text = draws.choice(
            "inv.bool", ("maybe", "tru", "yess", "2", "on", "offf")
        )
        return _sql_str(text), text, f"fuzz boolean invalid {text!r}"
    if family == "date":
        text = draws.choice(
            "inv.date",
            (
                "2021-02-30",
                "2021-13-01",
                "not-a-date",
                "2021/01/01",
                f"{draws.integer('inv.date.y', 1990, 2030)}-00-10",
            ),
        )
        return f"DATE '{text}'", text, f"fuzz date invalid {text!r}"
    if family in ("timestamp", "timestamp_ntz"):
        text = draws.choice(
            "inv.ts",
            ("2021-02-30 00:00:00", "nope", "2021-01-01 25:61:00"),
        )
        keyword = "TIMESTAMP_NTZ" if family == "timestamp_ntz" else "TIMESTAMP"
        return f"{keyword} '{text}'", text, f"fuzz {family} invalid {text!r}"
    if family in ("char", "varchar"):
        limit = dtype.length  # type: ignore[attr-defined]
        text = "overlong"[: limit % 8] + "x" * (
            limit + draws.integer("inv.len", 1, 6)
        )
        return _sql_str(text), text, f"fuzz {family}({limit}) overlong"
    if family in ("float", "double"):
        text = draws.choice("inv.float", ("one.two", "1.2.3", "NaN?"))
        return _sql_str(text), text, f"fuzz {family} malformed {text!r}"
    if family == "binary":
        value = draws.integer("inv.bin", 10, 999)
        return str(value), value, f"fuzz int into binary {value}"
    # containers: kind mismatches, as in the curated corpus
    if family == "array":
        return "'not-an-array'", "not-an-array", "fuzz string into array"
    if family == "map":
        value = draws.integer("inv.map", 1, 99)
        return str(value), value, f"fuzz int into map {value}"
    if family == "struct":
        value = draws.integer("inv.struct", 1, 99)
        return str(value), value, f"fuzz int into struct {value}"
    if family == "string":
        # strings accept anything textual; mismatch with a date literal
        day = datetime.date(2020, 1, draws.integer("inv.str.day", 1, 28))
        return str(12345), 12345, f"fuzz int into string (day {day})"
    raise ValueError(f"no invalid recipe for {family}")


def gen_candidate(
    seed: int, round_index: int, slot: int, input_id: int
) -> TestInput:
    """Generate one fresh test input for ``(seed, round, slot)``.

    The type family rotates with the global candidate index and the
    valid/invalid flag alternates per full family cycle, so a batch
    cycle exercises every family in both polarities before chance gets
    a vote; everything *inside* a family is hash-derived.
    """
    draws = Draws(seed, round_index, slot)
    index = input_id - FUZZ_ID_BASE
    family = FAMILIES[index % len(FAMILIES)]
    want_valid = (index // len(FAMILIES)) % 2 == 0
    type_text = gen_type(draws, family)
    dtype = parse_type(type_text)
    if want_valid:
        value = _valid_value(draws, dtype, "v")
        return TestInput(
            input_id=input_id,
            type_text=type_text,
            sql_literal=render_literal(dtype, value),
            py_value=value,
            valid=True,
            description=f"fuzz {family} r{round_index}s{slot}",
            expected=_expected_for(dtype, value),
        )
    literal, value, description = _invalid_candidate(
        draws, family, type_text, dtype
    )
    if is_valid_for(dtype, value):  # pragma: no cover - recipe invariant
        raise AssertionError(
            f"invalid recipe produced a valid value: {type_text} {value!r}"
        )
    return TestInput(
        input_id=input_id,
        type_text=type_text,
        sql_literal=literal,
        py_value=value,
        valid=False,
        description=description,
    )


def mutate(
    seed: int,
    round_index: int,
    slot: int,
    input_id: int,
    parent: TestInput,
) -> TestInput:
    """Mutate a coverage-selected seed input into a nearby candidate.

    Mutations keep the parent's declared type and redraw the value
    (same or flipped polarity), or lift the type into an array — the
    small neighbourhood moves that turn one mechanism witness into
    probes of adjacent mechanisms.
    """
    draws = Draws(seed, round_index, slot)
    op = draws.choice("mut.op", ("revalue", "flip", "wrap"))
    type_text = parent.type_text
    if op == "wrap" and not parent.type_text.startswith(
        ("array<", "map<", "struct<")
    ):
        type_text = f"array<{parent.type_text}>"
        dtype = parse_type(type_text)
        value = _valid_value(draws, dtype, "mut")
        return TestInput(
            input_id=input_id,
            type_text=type_text,
            sql_literal=render_literal(dtype, value),
            py_value=value,
            valid=True,
            description=f"fuzz wrap of {parent.input_id}",
            expected=_expected_for(dtype, value),
        )
    dtype = parse_type(type_text)
    want_valid = parent.valid if op == "revalue" else not parent.valid
    family = _family_of(type_text)
    if want_valid:
        value = _valid_value(draws, dtype, "mut")
        return TestInput(
            input_id=input_id,
            type_text=type_text,
            sql_literal=render_literal(dtype, value),
            py_value=value,
            valid=True,
            description=f"fuzz revalue of {parent.input_id}",
            expected=_expected_for(dtype, value),
        )
    literal, value, description = _invalid_candidate(
        draws, family, type_text, dtype
    )
    if is_valid_for(dtype, value):  # pragma: no cover - recipe invariant
        raise AssertionError(
            f"invalid recipe produced a valid value: {type_text} {value!r}"
        )
    return TestInput(
        input_id=input_id,
        type_text=type_text,
        sql_literal=literal,
        py_value=value,
        valid=False,
        description=description,
    )


def _family_of(type_text: str) -> str:
    head = type_text.split("<", 1)[0].split("(", 1)[0]
    return head if head in FAMILIES else "string"


def gen_conf(seed: int, round_index: int) -> dict[str, object]:
    """The deployment-conf mutation for one round.

    The first two rounds always run the stock deployment; later rounds
    draw from :data:`CONF_MENU` with a bias toward defaults.
    """
    if round_index < 2:
        return {}
    pick = _hash_int(seed, round_index, "conf") % (len(CONF_MENU) + 3)
    if pick >= len(CONF_MENU):
        return {}
    return dict(CONF_MENU[pick])
