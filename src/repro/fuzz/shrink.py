"""Delta-debugging shrinker: minimize an input, preserve its fingerprint.

A novel finding's witness is whatever the generators happened to draw —
a 30-character varchar overflow, a three-element array. The shrinker
walks an ordered list of simplification proposals (shorter strings,
minimal overflows, single-element containers, smaller type parameters)
and greedily accepts any proposal that (a) is strictly smaller and
(b) still reproduces the finding's exact fingerprint when re-executed
through the real harness. Proposals are deterministic and re-execution
is ``jobs=1``, so a shrink is replayable like everything else here.
"""

from __future__ import annotations

import datetime
import decimal

from repro.common.types import (
    CharType,
    DecimalType,
    VarcharType,
    parse_type,
)
from repro.crosstest.executor import execute
from repro.crosstest.fingerprint import run_fingerprints
from repro.crosstest.values import TestInput
from repro.fuzz.generators import is_valid_for, render_literal

__all__ = ["input_size", "shrink_input", "reproduces"]

#: cap on greedy passes; each pass re-executes a one-input matrix per
#: accepted proposal, so the bound keeps shrinking O(passes * proposals)
_MAX_PASSES = 6


def input_size(test_input: TestInput) -> int:
    """The quantity the shrinker minimizes."""
    return len(test_input.type_text) + len(test_input.sql_literal)


def reproduces(
    candidate: TestInput,
    fingerprint_key: str,
    plans,
    formats,
    conf_overrides: dict[str, object] | None,
    conf: str,
    batch: bool = True,
) -> bool:
    """Does running just ``candidate`` still witness the fingerprint?

    Reproduction runs are untraced, so with ``batch`` (the default)
    they go through the executor's lane path — outcome-identical to
    isolated execution by the lane byte-identity guarantee.
    """
    trials = execute(
        plans, formats, [candidate], conf_overrides, jobs=1, batch=batch
    )
    return fingerprint_key in run_fingerprints(trials, conf=conf)


def _literal_wrapper(parent_literal: str) -> str:
    """How the parent spelled its (invalid) string literal."""
    for keyword in ("DATE", "TIMESTAMP_NTZ", "TIMESTAMP"):
        if parent_literal.startswith(f"{keyword} '"):
            return keyword
    return ""


def _rebuild(parent: TestInput, type_text: str, value: object) -> TestInput | None:
    """A candidate input with the same mechanism-relevant structure."""
    try:
        dtype = parse_type(type_text)
    except Exception:  # noqa: BLE001 - malformed proposal, skip
        return None
    valid = is_valid_for(dtype, value)
    if valid:
        try:
            literal = render_literal(dtype, value)
        except (ValueError, AssertionError):
            return None
        expected = None
        if isinstance(dtype, CharType) and isinstance(value, str):
            padded = value.ljust(dtype.length)
            expected = padded if padded != value else None
        return TestInput(
            input_id=parent.input_id,
            type_text=type_text,
            sql_literal=literal,
            py_value=value,
            valid=True,
            description=f"shrunk: {parent.description}",
            expected=expected,
        )
    if isinstance(value, str):
        wrapper = _literal_wrapper(parent.sql_literal)
        quoted = "'" + value.replace("'", "''") + "'"
        literal = f"{wrapper} {quoted}" if wrapper else quoted
    elif isinstance(value, (int, decimal.Decimal)) and not isinstance(
        value, bool
    ):
        literal = str(value)
    else:
        return None  # no safe invalid spelling for this value shape
    return TestInput(
        input_id=parent.input_id,
        type_text=type_text,
        sql_literal=literal,
        py_value=value,
        valid=False,
        description=f"shrunk: {parent.description}",
    )


def _value_proposals(test_input: TestInput) -> list[object]:
    """Simpler values, most aggressive first. Deterministic order."""
    value = test_input.py_value
    dtype = test_input.column_type
    out: list[object] = []
    if isinstance(value, str):
        out.extend(["", "x", value[:1], value[: max(1, len(value) // 2)]])
        if isinstance(dtype, (CharType, VarcharType)) and not test_input.valid:
            # minimal overlength: one char past the limit
            out.insert(0, "x" * (dtype.length + 1))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, int):
        out.extend([0, 1])
        bounds = getattr(type(dtype), "__name__", "")
        ranges = {
            "ByteType": (-128, 127),
            "ShortType": (-32768, 32767),
            "IntegerType": (-2147483648, 2147483647),
            "LongType": (-(2**63), 2**63 - 1),
        }
        if bounds in ranges and not test_input.valid:
            lo, hi = ranges[bounds]
            out.insert(0, hi + 1 if value > 0 else lo - 1)
    elif isinstance(value, decimal.Decimal):
        out.append(decimal.Decimal(0))
        if isinstance(dtype, DecimalType) and not test_input.valid:
            # minimal overflow: 10^(p-s) has exactly one digit too many
            out.insert(
                0,
                decimal.Decimal(10) ** (dtype.precision - dtype.scale),
            )
    elif isinstance(value, float):
        # IEEE specials are the mechanism; only shrink ordinary floats
        if value == value and abs(value) != float("inf"):
            out.extend([0.0, 1.5])
    elif isinstance(value, bytes):
        out.extend([b"", b"\x00"])
    elif isinstance(value, datetime.datetime):
        out.append(datetime.datetime(1970, 1, 1, 0, 0, 0))
    elif isinstance(value, datetime.date):
        out.append(datetime.date(1970, 1, 1))
    elif isinstance(value, list) and value:
        out.extend([value[:1], [None] if None in value else value[:1]])
    elif isinstance(value, dict) and len(value) > 1:
        first_key = next(iter(value))
        out.append({first_key: value[first_key]})
    deduped: list[object] = []
    for item in out:
        if item not in deduped or isinstance(item, float):
            deduped.append(item)
    return deduped


def _type_proposals(test_input: TestInput) -> list[str]:
    """Smaller type texts with the *same* canonical shape."""
    dtype = test_input.column_type
    out: list[str] = []
    if isinstance(dtype, DecimalType) and dtype.simple_string() != "decimal(3,1)":
        out.append("decimal(3,1)")
    if isinstance(dtype, VarcharType) and dtype.length > 3:
        out.append("varchar(3)")
    if isinstance(dtype, CharType) and dtype.length > 3:
        out.append("char(3)")
    return out


def shrink_input(
    test_input: TestInput,
    fingerprint_key: str,
    plans,
    formats,
    conf_overrides: dict[str, object] | None,
    conf: str,
    batch: bool = True,
) -> TestInput:
    """Greedily minimize ``test_input`` while its fingerprint survives."""
    current = test_input
    for _ in range(_MAX_PASSES):
        improved = False
        candidates: list[TestInput] = []
        for type_text in _type_proposals(current):
            rebuilt = _rebuild(current, type_text, current.py_value)
            if rebuilt is not None:
                candidates.append(rebuilt)
        for value in _value_proposals(current):
            rebuilt = _rebuild(current, current.type_text, value)
            if rebuilt is not None:
                candidates.append(rebuilt)
        for candidate in candidates:
            if input_size(candidate) >= input_size(current):
                continue
            if reproduces(
                candidate,
                fingerprint_key,
                plans,
                formats,
                conf_overrides,
                conf,
                batch=batch,
            ):
                current = candidate
                improved = True
                break
        if not improved:
            break
    return current
