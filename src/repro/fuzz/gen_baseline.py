"""Regenerate the committed ``known_discrepancies.json`` baseline.

Usage::

    python -m repro.fuzz.gen_baseline [OUT_PATH]

The baseline is the union of every discrepancy mechanism the repo
already knows about:

* the curated §8 corpus, run under the stock conf *and* under each
  deployment conf the fuzzer's ``CONF_MENU`` can draw — so known
  mechanisms dedup cleanly whatever conf a campaign lands on; and
* the canonical smoke campaign (``SMOKE_SEED``/``SMOKE_BUDGET``,
  extended a few rounds past the CI budget) — so the ``fuzz-smoke``
  CI job's findings are, by construction, all known.

Everything here is deterministic, so regenerating on any machine
produces the identical file; CI relies on that to assert zero novel
fingerprints at the smoke seed.
"""

from __future__ import annotations

import sys

from repro.crosstest.executor import execute
from repro.crosstest.fingerprint import conf_label, run_fingerprints
from repro.crosstest.oracles import all_failures
from repro.crosstest.plans import ALL_PLANS, FORMATS
from repro.crosstest.values import generate_inputs
from repro.fuzz.dedup import Baseline, default_baseline_path
from repro.fuzz.generators import CONF_MENU
from repro.fuzz.scheduler import FuzzConfig, run_fuzz

__all__ = ["SMOKE_SEED", "SMOKE_BUDGET", "SMOKE_BATCH", "build_baseline"]

#: the canonical CI smoke campaign parameters (see `make fuzz-smoke`).
#: The baseline campaign runs the same seed/batch for BASELINE_BUDGET
#: candidates; a smoke run is a strict prefix of it, so every smoke
#: fingerprint is in the baseline.
SMOKE_SEED = 11
SMOKE_BUDGET = 96
SMOKE_BATCH = 16
BASELINE_BUDGET = 256


def build_baseline(progress=print) -> Baseline:
    baseline = Baseline.empty()
    inputs = generate_inputs()
    confs: list[dict[str, object]] = [dict(conf) for conf in CONF_MENU]
    for conf in confs:
        trials = execute(ALL_PLANS, FORMATS, inputs, conf, jobs=None)
        failures = all_failures(trials)
        label = conf_label(conf)
        added = sum(
            baseline.add(hit.fingerprint)
            for hit in run_fingerprints(trials, failures, label).values()
        )
        progress(
            f"curated corpus under conf [{label or 'stock'}]: "
            f"+{added} fingerprints ({len(baseline)} total)"
        )
    config = FuzzConfig(
        seed=SMOKE_SEED,
        budget=BASELINE_BUDGET,
        batch=SMOKE_BATCH,
        jobs=None,
        shrink=False,
    )
    result = run_fuzz(config, Baseline.empty())
    added = sum(
        baseline.add(finding.fingerprint)
        for finding in result.findings.values()
    )
    progress(
        f"smoke campaign seed={SMOKE_SEED} budget={BASELINE_BUDGET}: "
        f"+{added} fingerprints ({len(baseline)} total)"
    )
    return baseline


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else default_baseline_path()
    baseline = build_baseline()
    baseline.save(path)
    print(f"wrote {len(baseline)} fingerprints to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
