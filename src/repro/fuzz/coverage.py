"""Coverage feedback for the fuzzer, scraped from boundary traces.

AFL keys its feedback map on branch edges; here the observable units
are the repo's *cross-system interaction sites*: boundary spans and the
structured events the seams emit (cast-policy decisions, serde quirks,
schema replays). A generated input that lights up a ``(site, decision)``
pair no earlier input reached is promoted into the scheduler's seed
pool and mutated further.

Feature extraction is deliberately narrower than the trace vocabulary:

* span durations never feed a feature (wall-clock is noise);
* plan-cache and prepare-memo traffic is excluded — cache warmth
  depends on worker count and shard order, and a feature that differs
  between ``--jobs 2`` and ``--jobs 4`` would break the campaign's
  byte-identical replay guarantee;
* event attributes pass through a per-event allowlist, so only
  attributes that are pure functions of ``(input, conf)`` count.
"""

from __future__ import annotations

from repro.crosstest.fingerprint import outcome_shape, type_shape
from repro.crosstest.harness import Trial
from repro.tracing.core import Span

__all__ = ["EVENT_ATTRS", "CoverageMap", "trial_features"]

#: structured events that may contribute features, with the attribute
#: subset that is deterministic for a fixed ``(input, conf)``. Anything
#: not listed here — ``plan_cache.*``, ``spark.create.memo_*``,
#: ``create.replayed``, ``fault.*`` — is invisible to coverage: those
#: events describe cache/replay state, which depends on what a worker
#: process executed before, not on the input under test. (The scheduler
#: additionally pins the analysis path itself by running every fuzz
#: batch with ``repro.plan.cache.enabled=false``, so analysis-time
#: spans and events fire on every trial instead of only on cache
#: misses.)
EVENT_ATTRS: dict[str, tuple[str, ...]] = {
    "cast.store_assignment": ("policy", "ansi"),
    "orc.positional_rename": ("prefix",),
}


def _span_features(spans: tuple[Span, ...]) -> set[str]:
    features: set[str] = set()
    for span in spans:
        if span.boundary:
            features.add(
                f"span:{span.boundary}:{span.operation}:{span.status}"
            )
        for event in span.events:
            allowed = EVENT_ATTRS.get(event.name)
            if allowed is None:
                continue
            detail = ",".join(
                f"{key}={event.attributes.get(key)}"
                for key in allowed
                if key in event.attributes
            )
            features.add(f"event:{event.name}:{detail}")
    return features


def trial_features(trial: Trial, spans: tuple[Span, ...] = ()) -> set[str]:
    """The coverage features one executed trial contributes."""
    test_input = trial.test_input
    features = _span_features(spans)
    features.add(f"type:{type_shape(test_input.type_text)}")
    features.add(
        "verdict:"
        f"{trial.plan.group}:{trial.fmt}:"
        f"{outcome_shape(trial.outcome, test_input)}"
    )
    return features


class CoverageMap:
    """The campaign-wide set of observed features.

    ``observe`` returns the features an input saw for the first time;
    the scheduler promotes inputs with a non-empty return. Processing
    trials in their (byte-identical) executor order keeps "first" — and
    therefore the seed pool — independent of worker count.
    """

    def __init__(self) -> None:
        self.seen: set[str] = set()

    def observe(self, features: set[str]) -> set[str]:
        novel = features - self.seen
        if novel:
            self.seen.update(novel)
        return novel

    def __len__(self) -> int:
        return len(self.seen)
