"""Fingerprint baselines: dedup fuzz findings against known discrepancies.

A fuzz campaign is only useful if it does not re-report the paper's 15
discrepancies on every run. The committed
``src/repro/fuzz/known_discrepancies.json`` holds the fingerprint of
every mechanism the curated corpus (and the canonical smoke campaign)
already witnesses; a finding whose fingerprint is in the baseline is
*known*, everything else is *novel* and exits the CLI with code 4.

Baselines are stored as sorted full fingerprint records (not bare
keys), so a human can read which mechanism each entry names and a
diff of the file reviews cleanly.
"""

from __future__ import annotations

import json
import os

from repro.crosstest.fingerprint import Fingerprint

__all__ = ["Baseline", "default_baseline_path"]


def default_baseline_path() -> str:
    """The committed baseline that ships with the package."""
    return os.path.join(os.path.dirname(__file__), "known_discrepancies.json")


class Baseline:
    """A set of known discrepancy fingerprints with JSON persistence."""

    def __init__(self, fingerprints: dict[str, Fingerprint] | None = None):
        self.fingerprints: dict[str, Fingerprint] = dict(fingerprints or {})

    @property
    def keys(self) -> set[str]:
        return set(self.fingerprints)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, key: str) -> bool:
        return key in self.fingerprints

    def add(self, fingerprint: Fingerprint) -> bool:
        """Record a fingerprint; True if it was new to the baseline."""
        if fingerprint.key in self.fingerprints:
            return False
        self.fingerprints[fingerprint.key] = fingerprint
        return True

    def merge(self, other: "Baseline") -> None:
        for fingerprint in other.fingerprints.values():
            self.add(fingerprint)

    def novel(self, fingerprints: dict[str, Fingerprint]) -> dict[str, Fingerprint]:
        """The subset of ``fingerprints`` this baseline does not know."""
        return {
            key: fingerprint
            for key, fingerprint in fingerprints.items()
            if key not in self.fingerprints
        }

    # -- persistence ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": 1,
            "count": len(self.fingerprints),
            "fingerprints": [
                self.fingerprints[key].to_json()
                for key in sorted(self.fingerprints)
            ],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        fingerprints = {}
        for record in payload.get("fingerprints", []):
            fingerprint = Fingerprint.from_json(record)
            fingerprints[fingerprint.key] = fingerprint
        return cls(fingerprints)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()
