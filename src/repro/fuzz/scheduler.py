"""The fuzz campaign scheduler: generate → execute → observe → mutate.

A campaign runs in *rounds*. Each round draws a deployment conf, fills
a batch with fresh candidates and mutations of coverage-promoted seeds,
and fans the batch through the sharded :mod:`crosstest.executor` at
whatever ``--jobs``/pool setting the caller picked. Trials come back in
byte-identical order regardless of worker count, so everything layered
on top — coverage promotion, fingerprint collection, dedup, shrinking —
replays exactly for a fixed ``(seed, budget, baseline)``.

The budget is counted in *candidates generated*, not wall-clock: a time
budget would make the campaign's output depend on machine speed and
worker count, which is precisely what the determinism guarantee
forbids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crosstest.classify import found_discrepancies
from repro.crosstest.executor import CrossTestMetrics, execute
from repro.crosstest.fingerprint import (
    Fingerprint,
    conf_label,
    run_fingerprints,
)
from repro.crosstest.oracles import all_failures
from repro.crosstest.plans import ALL_PLANS, FORMATS
from repro.crosstest.report import FuzzSection
from repro.crosstest.values import TestInput, generate_inputs
from repro.fuzz.coverage import CoverageMap, trial_features
from repro.fuzz.dedup import Baseline
from repro.fuzz.generators import (
    FUZZ_ID_BASE,
    gen_candidate,
    gen_conf,
    mutate,
)
from repro.fuzz.shrink import shrink_input
from repro.tracing.core import Span

__all__ = ["FuzzConfig", "FuzzFinding", "FuzzResult", "run_fuzz"]

from hashlib import blake2b


def _hash_int(*parts: object) -> int:
    key = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a campaign's output."""

    seed: int = 0
    #: total candidates to generate (the determinism-safe budget unit)
    budget: int = 64
    #: candidates per round; one round = one executor submission
    batch: int = 16
    jobs: int | None = 1
    pool: str = "auto"
    plans: tuple = tuple(ALL_PLANS)
    formats: tuple = tuple(FORMATS)
    #: seed the mutation pool with the curated corpus (parents only —
    #: corpus inputs are never executed, so "generators alone" holds
    #: when this is off, which is the default)
    use_corpus: bool = False
    #: which corpus seeds the pool when ``use_corpus`` is on: the full
    #: 422-input §8 corpus, or the coverage-distilled smoke subset
    corpus: str = "full"
    #: shrink novel findings after the budget is exhausted
    shrink: bool = True
    #: allow batched deployment lanes in the executor. Campaign rounds
    #: are always traced (coverage comes from spans) and therefore run
    #: isolated regardless; lanes speed up the *untraced* executions —
    #: today, the shrinker's reproduction runs. Kept as an escape hatch
    #: (`--no-lanes`) rather than folded into ``batch``, which here
    #: means candidates per round.
    lanes: bool = True

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.corpus not in ("full", "smoke"):
            raise ValueError(
                f"corpus must be 'full' or 'smoke', got {self.corpus!r}"
            )


@dataclass
class FuzzFinding:
    """One discrepancy fingerprint the campaign witnessed."""

    fingerprint: Fingerprint
    witness: TestInput
    conf_overrides: dict[str, object]
    round_index: int
    failure_count: int = 0
    novel: bool = False
    shrunk: TestInput | None = None

    def _input_json(self, test_input: TestInput) -> dict:
        return {
            "input_id": test_input.input_id,
            "type_text": test_input.type_text,
            "sql_literal": test_input.sql_literal,
            "valid": test_input.valid,
            "description": test_input.description,
        }

    def to_json(self) -> dict:
        minimal = self.shrunk if self.shrunk is not None else self.witness
        return {
            "fingerprint": self.fingerprint.to_json(),
            "key": self.fingerprint.key,
            "novel": self.novel,
            "round": self.round_index,
            "failures": self.failure_count,
            "conf_overrides": {
                key: str(value)
                for key, value in sorted(self.conf_overrides.items())
            },
            "witness": self._input_json(self.witness),
            "shrunk": self._input_json(minimal),
        }


@dataclass
class FuzzResult:
    """Everything a campaign produced, in deterministic order."""

    config: FuzzConfig
    rounds: int
    candidates: int
    trials_run: int
    coverage: CoverageMap
    #: every distinct fingerprint of the campaign, key → finding
    findings: dict[str, FuzzFinding] = field(default_factory=dict)
    #: catalog numbers rediscovered behaviourally by generated inputs
    rediscovered: tuple[int, ...] = ()
    #: spans per input id, for per-finding trace export
    spans_by_input: dict[int, list[Span]] = field(default_factory=dict)

    @property
    def novel_findings(self) -> list[FuzzFinding]:
        return [
            self.findings[key]
            for key in sorted(self.findings)
            if self.findings[key].novel
        ]

    @property
    def known_count(self) -> int:
        return sum(1 for f in self.findings.values() if not f.novel)

    def fingerprint_records(self) -> list[dict]:
        """One JSON record per distinct fingerprint, key-sorted."""
        records = []
        for key in sorted(self.findings):
            finding = self.findings[key]
            records.append(
                {
                    "key": key,
                    "fingerprint": finding.fingerprint.to_json(),
                    "novel": finding.novel,
                    "failures": finding.failure_count,
                    "round": finding.round_index,
                }
            )
        return records

    def ledger_results(self) -> dict:
        """The campaign's deterministic observations, ledger-shaped.

        Everything here is a pure function of ``(seed, budget,
        baseline)`` — byte-identical at any ``--jobs``/pool setting —
        so it lives in a ledger record's reproducible section rather
        than its volatile ``env``.
        """
        return {
            "trials": self.trials_run,
            "rounds": self.rounds,
            "candidates": self.candidates,
            "coverage_features": len(self.coverage),
            "fingerprints": sorted(self.findings),
            "novel": sorted(
                key
                for key, finding in self.findings.items()
                if finding.novel
            ),
            "rediscovered": list(self.rediscovered),
        }

    def section(self) -> FuzzSection:
        return FuzzSection(
            seed=self.config.seed,
            budget=self.config.budget,
            rounds=self.rounds,
            candidates=self.candidates,
            trials=self.trials_run,
            coverage_features=len(self.coverage),
            distinct_fingerprints=len(self.findings),
            known_fingerprints=self.known_count,
            novel=[finding.to_json() for finding in self.novel_findings],
            rediscovered=self.rediscovered,
        )


def _build_batch(
    config: FuzzConfig,
    round_index: int,
    batch_size: int,
    next_id: int,
    seed_pool: list[TestInput],
) -> list[TestInput]:
    """One round's candidates: fresh generations plus seed mutations."""
    batch: list[TestInput] = []
    for slot in range(batch_size):
        input_id = next_id + slot
        use_mutation = (
            seed_pool
            and round_index > 0
            and _hash_int(config.seed, round_index, slot, "mutate?") % 3 == 0
        )
        if use_mutation:
            parent = seed_pool[
                _hash_int(config.seed, round_index, slot, "parent")
                % len(seed_pool)
            ]
            batch.append(
                mutate(config.seed, round_index, slot, input_id, parent)
            )
        else:
            batch.append(
                gen_candidate(config.seed, round_index, slot, input_id)
            )
    return batch


def run_fuzz(
    config: FuzzConfig,
    baseline: Baseline,
    *,
    metrics: CrossTestMetrics | None = None,
    progress=None,
) -> FuzzResult:
    """Run one campaign and return its (deterministic) result.

    ``metrics`` defaults to a fresh ``CrossTestMetrics(source="fuzz")``
    so campaign telemetry lands in the ``crosstest.fuzz`` registry and
    never pollutes the §8 matrix counters. ``progress``, if given, is
    called per round as ``progress(round, rounds, trials_so_far)``.
    """
    if metrics is None:
        metrics = CrossTestMetrics(source="fuzz")
    coverage = CoverageMap()
    seed_pool: list[TestInput] = []
    pool_ids: set[int] = set()
    if config.use_corpus:
        # corpus inputs join as mutation parents only; they are never
        # executed, so their ids (< FUZZ_ID_BASE) never reach a trial
        if config.corpus == "smoke":
            from repro.crosstest.smoke import smoke_inputs

            seed_pool.extend(smoke_inputs())
        else:
            seed_pool.extend(generate_inputs())
    findings: dict[str, FuzzFinding] = {}
    rediscovered: set[int] = set()
    spans_by_input: dict[int, list[Span]] = {}
    total_rounds = (config.budget + config.batch - 1) // config.batch
    candidates = 0
    trials_run = 0
    round_index = 0
    while candidates < config.budget:
        batch_size = min(config.batch, config.budget - candidates)
        batch = _build_batch(
            config,
            round_index,
            batch_size,
            FUZZ_ID_BASE + candidates,
            seed_pool,
        )
        conf_overrides = gen_conf(config.seed, round_index)
        # fuzz batches always run with the plan cache off: cache hits
        # skip analysis-time spans/events, and cache warmth depends on
        # worker history (even fork inheritance), which would make the
        # coverage map vary with --jobs. Outcome-neutral by the PR 2
        # byte-identity guarantee; excluded from the fingerprint label.
        exec_conf = dict(conf_overrides)
        exec_conf["repro.plan.cache.enabled"] = "false"
        trace_sink: dict[int, tuple[Span, ...]] = {}
        trials = execute(
            config.plans,
            config.formats,
            batch,
            exec_conf,
            jobs=config.jobs,
            pool=config.pool,
            metrics=metrics,
            trace_sink=trace_sink,
            batch=config.lanes,
        )
        trials_run += len(trials)

        # fuzz spans are tagged with their source so `trace summarize`
        # can split them out of the §8 matrix totals
        for spans in trace_sink.values():
            for span in spans:
                span.attributes["source"] = "fuzz"

        # coverage promotion, in (byte-identical) trial order
        promoted: set[int] = set()
        for index, trial in enumerate(trials):
            spans = trace_sink.get(index, ())
            input_id = trial.test_input.input_id
            spans_by_input.setdefault(input_id, []).extend(spans)
            if coverage.observe(trial_features(trial, spans)):
                promoted.add(input_id)
        for test_input in batch:
            if test_input.input_id in promoted and (
                test_input.input_id not in pool_ids
            ):
                seed_pool.append(test_input)
                pool_ids.add(test_input.input_id)

        # fingerprints + dedup bookkeeping
        label = conf_label(conf_overrides)
        failures = all_failures(trials)
        by_id = {test_input.input_id: test_input for test_input in batch}
        for key, hit in run_fingerprints(trials, failures, label).items():
            finding = findings.get(key)
            if finding is None:
                findings[key] = FuzzFinding(
                    fingerprint=hit.fingerprint,
                    witness=by_id[hit.witness_input_id],
                    conf_overrides=dict(conf_overrides),
                    round_index=round_index,
                    failure_count=len(hit.failures),
                    novel=key not in baseline,
                )
            else:
                finding.failure_count += len(hit.failures)

        rediscovered.update(
            number
            for number in found_discrepancies(trials)
            if number
        )
        candidates += batch_size
        round_index += 1
        if progress is not None:
            progress(round_index, total_rounds, trials_run)

    result = FuzzResult(
        config=config,
        rounds=round_index,
        candidates=candidates,
        trials_run=trials_run,
        coverage=coverage,
        findings=findings,
        rediscovered=tuple(sorted(rediscovered)),
        spans_by_input=spans_by_input,
    )
    if config.shrink:
        for finding in result.novel_findings:
            finding.shrunk = shrink_input(
                finding.witness,
                finding.fingerprint.key,
                config.plans,
                config.formats,
                finding.conf_overrides,
                conf_label(finding.conf_overrides),
                batch=config.lanes,
            )
    return result
