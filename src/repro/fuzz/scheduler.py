"""The fuzz campaign scheduler: generate → execute → observe → mutate.

A campaign runs in *rounds*. Each round draws a deployment conf, fills
a batch with fresh candidates and mutations of coverage-promoted seeds,
and fans the batch through the sharded :mod:`crosstest.executor` at
whatever ``--jobs``/pool setting the caller picked. Trials come back in
byte-identical order regardless of worker count, so everything layered
on top — coverage promotion, fingerprint collection, dedup, shrinking —
replays exactly for a fixed ``(seed, budget, baseline)``.

The budget is counted in *candidates generated*, not wall-clock: a time
budget would make the campaign's output depend on machine speed and
worker count, which is precisely what the determinism guarantee
forbids.

**Resumable state.** Everything a campaign carries between rounds lives
in one :class:`CampaignState`, and one round is one :func:`run_round`
call that advances it. The state round-trips through JSON
(:meth:`CampaignState.to_json` / :meth:`CampaignState.from_json`) *by
provenance, not by value*: a promoted seed or a finding's witness is
stored as its ``(round, slot, input_id)`` coordinates and regenerated
through the same BLAKE2b-seeded generator calls that built it the
first time, so a checkpoint stays a few KB of pure JSON no matter what
Python values (decimals, timestamps, nested rows) the inputs carry —
and a restored campaign is *exactly* the campaign that was stopped.
:mod:`repro.campaign` builds the always-on service on top of this;
:func:`run_fuzz` is the bounded one-shot loop the ``repro fuzz`` CLI
has always exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crosstest.classify import found_discrepancies
from repro.crosstest.executor import (
    CrossTestMetrics,
    WorkerPoolHandle,
    execute,
    resolve_jobs,
)
from repro.crosstest.fingerprint import (
    Fingerprint,
    conf_label,
    run_fingerprints,
)
from repro.crosstest.oracles import all_failures
from repro.crosstest.plans import ALL_PLANS, FORMATS
from repro.crosstest.report import FuzzSection
from repro.crosstest.values import TestInput, generate_inputs
from repro.fuzz.coverage import CoverageMap, trial_features
from repro.fuzz.dedup import Baseline
from repro.fuzz.generators import (
    FUZZ_ID_BASE,
    gen_candidate,
    gen_conf,
    mutate,
)
from repro.fuzz.shrink import shrink_input
from repro.tracing.core import Span

__all__ = [
    "FuzzConfig",
    "FuzzFinding",
    "FuzzResult",
    "CampaignState",
    "RoundOutcome",
    "run_round",
    "run_fuzz",
]

from hashlib import blake2b


def _hash_int(*parts: object) -> int:
    key = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a campaign's output."""

    seed: int = 0
    #: total candidates to generate (the determinism-safe budget unit)
    budget: int = 64
    #: candidates per round; one round = one executor submission
    batch: int = 16
    jobs: int | None = 1
    pool: str = "auto"
    plans: tuple = tuple(ALL_PLANS)
    formats: tuple = tuple(FORMATS)
    #: seed the mutation pool with the curated corpus (parents only —
    #: corpus inputs are never executed, so "generators alone" holds
    #: when this is off, which is the default)
    use_corpus: bool = False
    #: which corpus seeds the pool when ``use_corpus`` is on: the full
    #: 422-input §8 corpus, or the coverage-distilled smoke subset
    corpus: str = "full"
    #: shrink novel findings after the budget is exhausted
    shrink: bool = True
    #: allow batched deployment lanes in the executor. Campaign rounds
    #: are always traced (coverage comes from spans) and therefore run
    #: isolated regardless; lanes speed up the *untraced* executions —
    #: today, the shrinker's reproduction runs. Kept as an escape hatch
    #: (`--no-lanes`) rather than folded into ``batch``, which here
    #: means candidates per round.
    lanes: bool = True

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.corpus not in ("full", "smoke"):
            raise ValueError(
                f"corpus must be 'full' or 'smoke', got {self.corpus!r}"
            )

    def signature(self) -> dict:
        """The determinism-relevant subset of the config: two campaigns
        with equal signatures emit identical batches. ``jobs``/``pool``
        are runtime knobs (byte-identity across them is the executor's
        guarantee), ``budget``/``shrink`` only bound the one-shot loop —
        none of them belong in a checkpoint's compatibility check."""
        return {
            "seed": self.seed,
            "batch": self.batch,
            "plans": [plan.name for plan in self.plans],
            "formats": list(self.formats),
            "use_corpus": self.use_corpus,
            "corpus": self.corpus,
            "lanes": self.lanes,
        }


@dataclass
class FuzzFinding:
    """One discrepancy fingerprint the campaign witnessed."""

    fingerprint: Fingerprint
    witness: TestInput
    conf_overrides: dict[str, object]
    round_index: int
    failure_count: int = 0
    novel: bool = False
    shrunk: TestInput | None = None

    def _input_json(self, test_input: TestInput) -> dict:
        return {
            "input_id": test_input.input_id,
            "type_text": test_input.type_text,
            "sql_literal": test_input.sql_literal,
            "valid": test_input.valid,
            "description": test_input.description,
        }

    def to_json(self) -> dict:
        minimal = self.shrunk if self.shrunk is not None else self.witness
        return {
            "fingerprint": self.fingerprint.to_json(),
            "key": self.fingerprint.key,
            "novel": self.novel,
            "round": self.round_index,
            "failures": self.failure_count,
            "conf_overrides": {
                key: str(value)
                for key, value in sorted(self.conf_overrides.items())
            },
            "witness": self._input_json(self.witness),
            "shrunk": self._input_json(minimal),
        }


@dataclass
class FuzzResult:
    """Everything a campaign produced, in deterministic order."""

    config: FuzzConfig
    rounds: int
    candidates: int
    trials_run: int
    coverage: CoverageMap
    #: every distinct fingerprint of the campaign, key → finding
    findings: dict[str, FuzzFinding] = field(default_factory=dict)
    #: catalog numbers rediscovered behaviourally by generated inputs
    rediscovered: tuple[int, ...] = ()
    #: spans per input id, for per-finding trace export
    spans_by_input: dict[int, list[Span]] = field(default_factory=dict)

    @property
    def novel_findings(self) -> list[FuzzFinding]:
        return [
            self.findings[key]
            for key in sorted(self.findings)
            if self.findings[key].novel
        ]

    @property
    def known_count(self) -> int:
        return sum(1 for f in self.findings.values() if not f.novel)

    def fingerprint_records(self) -> list[dict]:
        """One JSON record per distinct fingerprint, key-sorted."""
        records = []
        for key in sorted(self.findings):
            finding = self.findings[key]
            records.append(
                {
                    "key": key,
                    "fingerprint": finding.fingerprint.to_json(),
                    "novel": finding.novel,
                    "failures": finding.failure_count,
                    "round": finding.round_index,
                }
            )
        return records

    def ledger_results(self) -> dict:
        """The campaign's deterministic observations, ledger-shaped.

        Everything here is a pure function of ``(seed, budget,
        baseline)`` — byte-identical at any ``--jobs``/pool setting —
        so it lives in a ledger record's reproducible section rather
        than its volatile ``env``.
        """
        return {
            "trials": self.trials_run,
            "rounds": self.rounds,
            "candidates": self.candidates,
            "coverage_features": len(self.coverage),
            "fingerprints": sorted(self.findings),
            "novel": sorted(
                key
                for key, finding in self.findings.items()
                if finding.novel
            ),
            "rediscovered": list(self.rediscovered),
        }

    def section(self) -> FuzzSection:
        return FuzzSection(
            seed=self.config.seed,
            budget=self.config.budget,
            rounds=self.rounds,
            candidates=self.candidates,
            trials=self.trials_run,
            coverage_features=len(self.coverage),
            distinct_fingerprints=len(self.findings),
            known_fingerprints=self.known_count,
            novel=[finding.to_json() for finding in self.novel_findings],
            rediscovered=self.rediscovered,
        )


def _build_candidate(
    config: FuzzConfig,
    round_index: int,
    slot: int,
    input_id: int,
    seed_pool: list[TestInput],
) -> TestInput:
    """One batch slot's candidate: a fresh generation, or a mutation of
    a promoted seed. A pure function of ``(config signature, round,
    slot, input_id, pool contents)`` — the property checkpoint
    restoration leans on to regenerate inputs from provenance alone."""
    use_mutation = (
        seed_pool
        and round_index > 0
        and _hash_int(config.seed, round_index, slot, "mutate?") % 3 == 0
    )
    if use_mutation:
        parent = seed_pool[
            _hash_int(config.seed, round_index, slot, "parent")
            % len(seed_pool)
        ]
        return mutate(config.seed, round_index, slot, input_id, parent)
    return gen_candidate(config.seed, round_index, slot, input_id)


def _build_batch(
    config: FuzzConfig,
    round_index: int,
    batch_size: int,
    next_id: int,
    seed_pool: list[TestInput],
) -> list[TestInput]:
    """One round's candidates: fresh generations plus seed mutations."""
    return [
        _build_candidate(
            config, round_index, slot, next_id + slot, seed_pool
        )
        for slot in range(batch_size)
    ]


def _corpus_pool(config: FuzzConfig) -> list[TestInput]:
    """The curated inputs that pre-seed the mutation pool (never
    executed, so their ids — all ``< FUZZ_ID_BASE`` — never reach a
    trial)."""
    if not config.use_corpus:
        return []
    if config.corpus == "smoke":
        from repro.crosstest.smoke import smoke_inputs

        return list(smoke_inputs())
    return list(generate_inputs())


@dataclass
class RoundOutcome:
    """What one executed round contributed, in deterministic order."""

    #: the round that just ran (``state.round_index`` has advanced past it)
    round_index: int
    #: candidates generated this round
    candidates: int
    #: trials executed this round (candidates × plans × formats)
    trials: int
    #: every fingerprint key witnessed this round, sorted
    witnessed: tuple[str, ...] = ()
    #: the subset of ``witnessed`` first seen this round, sorted
    new_keys: tuple[str, ...] = ()
    #: the subset of ``new_keys`` absent from the baseline, sorted
    novel_keys: tuple[str, ...] = ()
    #: inputs promoted into the mutation pool this round
    promoted: int = 0
    #: catalog numbers first rediscovered this round, sorted
    rediscovered: tuple[int, ...] = ()
    #: campaign-wide coverage feature count after this round
    coverage_features: int = 0


@dataclass
class CampaignState:
    """Everything a campaign carries from one round to the next.

    Mutated in place by :func:`run_round`; serialized by provenance via
    :meth:`to_json`/:meth:`from_json` (see the module docstring). The
    ``promoted`` and finding-witness coordinates are the only memory of
    *which* generated inputs mattered — the inputs themselves are
    regenerated on restore, so two states with equal JSON are equal
    campaigns.
    """

    config: FuzzConfig
    coverage: CoverageMap = field(default_factory=CoverageMap)
    #: mutation parents: corpus prefix (never serialized by value) plus
    #: every promoted input, in promotion order
    seed_pool: list[TestInput] = field(default_factory=list)
    #: how many leading ``seed_pool`` entries came from the corpus
    corpus_len: int = 0
    #: ``(round, slot, input_id)`` per promoted (non-corpus) pool entry
    promoted: list[tuple[int, int, int]] = field(default_factory=list)
    pool_ids: set[int] = field(default_factory=set)
    findings: dict[str, FuzzFinding] = field(default_factory=dict)
    #: ``(round, slot, input_id)`` of each finding's witness, by key
    witness_provenance: dict[str, tuple[int, int, int]] = field(
        default_factory=dict
    )
    rediscovered: set[int] = field(default_factory=set)
    candidates: int = 0
    round_index: int = 0
    trials_run: int = 0

    @classmethod
    def fresh(cls, config: FuzzConfig) -> "CampaignState":
        corpus = _corpus_pool(config)
        return cls(
            config=config,
            seed_pool=list(corpus),
            corpus_len=len(corpus),
        )

    @property
    def novel_keys(self) -> list[str]:
        return sorted(
            key
            for key, finding in self.findings.items()
            if finding.novel
        )

    # -- serialization (by provenance) ---------------------------------

    def to_json(self) -> dict:
        """Pure-JSON snapshot of the campaign (no pickles, no values).

        Generated inputs are stored as ``(round, slot, input_id)``
        coordinates; :meth:`from_json` replays the generator calls to
        rebuild them, so the snapshot is independent of what Python
        types the inputs carry and byte-stable across interpreter runs.
        """
        return {
            "config": self.config.signature(),
            "candidates": self.candidates,
            "round_index": self.round_index,
            "trials_run": self.trials_run,
            "coverage": sorted(self.coverage.seen),
            "promoted": [list(entry) for entry in self.promoted],
            "findings": [
                {
                    "key": key,
                    "fingerprint": self.findings[key].fingerprint.to_json(),
                    "novel": self.findings[key].novel,
                    "failures": self.findings[key].failure_count,
                    "round": self.findings[key].round_index,
                    "witness": list(self.witness_provenance[key]),
                }
                for key in sorted(self.findings)
            ],
            "rediscovered": sorted(self.rediscovered),
        }

    @classmethod
    def from_json(
        cls,
        payload: dict,
        *,
        jobs: int | None = 1,
        pool: str = "auto",
        shrink: bool = False,
    ) -> "CampaignState":
        """Rebuild a campaign from its :meth:`to_json` snapshot.

        ``jobs``/``pool`` are runtime knobs supplied afresh by the
        caller — a campaign checkpointed at ``--jobs 2`` resumes
        byte-identically at ``--jobs 4``, which is exactly what the
        determinism grid pins.
        """
        sig = payload["config"]
        plans_by_name = {plan.name: plan for plan in ALL_PLANS}
        try:
            plans = tuple(plans_by_name[name] for name in sig["plans"])
        except KeyError as exc:
            raise ValueError(f"unknown plan in checkpoint: {exc}") from exc
        config = FuzzConfig(
            seed=int(sig["seed"]),
            budget=max(1, int(payload["candidates"])),
            batch=int(sig["batch"]),
            jobs=jobs,
            pool=pool,
            plans=plans,
            formats=tuple(sig["formats"]),
            use_corpus=bool(sig["use_corpus"]),
            corpus=str(sig["corpus"]),
            shrink=shrink,
            lanes=bool(sig["lanes"]),
        )
        corpus = _corpus_pool(config)
        state = cls(
            config=config,
            seed_pool=list(corpus),
            corpus_len=len(corpus),
            candidates=int(payload["candidates"]),
            round_index=int(payload["round_index"]),
            trials_run=int(payload["trials_run"]),
            rediscovered={int(n) for n in payload.get("rediscovered", ())},
        )
        state.coverage.seen.update(payload.get("coverage", ()))
        # promoted entries regenerate in promotion order: the pool an
        # entry saw at build time is the corpus plus every entry
        # promoted in a *strictly earlier* round (same-round promotions
        # land only after the whole batch was built).
        for entry in payload.get("promoted", ()):
            round_index, slot, input_id = (int(part) for part in entry)
            state.seed_pool.append(
                state._rebuild_input(round_index, slot, input_id)
            )
            state.promoted.append((round_index, slot, input_id))
            state.pool_ids.add(input_id)
        for record in payload.get("findings", ()):
            key = record["key"]
            round_index, slot, input_id = (
                int(part) for part in record["witness"]
            )
            state.findings[key] = FuzzFinding(
                fingerprint=Fingerprint.from_json(record["fingerprint"]),
                witness=state._rebuild_input(round_index, slot, input_id),
                conf_overrides=dict(
                    gen_conf(config.seed, int(record["round"]))
                ),
                round_index=int(record["round"]),
                failure_count=int(record["failures"]),
                novel=bool(record["novel"]),
            )
            state.witness_provenance[key] = (round_index, slot, input_id)
        return state

    def _rebuild_input(
        self, round_index: int, slot: int, input_id: int
    ) -> TestInput:
        """Regenerate one batch input from its coordinates, against the
        pool exactly as it stood when that round's batch was built."""
        prefix = self.seed_pool[: self.corpus_len] + [
            candidate
            for candidate, (entry_round, _, _) in zip(
                self.seed_pool[self.corpus_len :], self.promoted
            )
            if entry_round < round_index
        ]
        return _build_candidate(
            self.config, round_index, slot, input_id, prefix
        )

    def result(
        self, spans_by_input: dict[int, list[Span]] | None = None
    ) -> FuzzResult:
        """The state's observations as a :class:`FuzzResult`."""
        return FuzzResult(
            config=self.config,
            rounds=self.round_index,
            candidates=self.candidates,
            trials_run=self.trials_run,
            coverage=self.coverage,
            findings=self.findings,
            rediscovered=tuple(sorted(self.rediscovered)),
            spans_by_input=spans_by_input or {},
        )


def run_round(
    state: CampaignState,
    baseline: Baseline,
    *,
    batch_size: int | None = None,
    metrics: CrossTestMetrics | None = None,
    pool_handle: WorkerPoolHandle | None = None,
    spans_by_input: dict[int, list[Span]] | None = None,
) -> RoundOutcome:
    """Execute one campaign round and advance ``state`` past it.

    ``batch_size`` defaults to a full ``config.batch`` (the perpetual
    service's unit); :func:`run_fuzz` passes the budget remainder on the
    last round. ``pool_handle`` lets a long-running caller reuse one
    worker pool across rounds instead of paying pool teardown per
    round. ``spans_by_input``, if given, accumulates every trial's
    spans (the one-shot CLI wants them for trace export; the always-on
    service must *not* accumulate unbounded span memory, so it passes
    ``None``).
    """
    config = state.config
    if batch_size is None:
        batch_size = config.batch
    round_index = state.round_index
    batch = _build_batch(
        config,
        round_index,
        batch_size,
        FUZZ_ID_BASE + state.candidates,
        state.seed_pool,
    )
    slots = {
        test_input.input_id: slot for slot, test_input in enumerate(batch)
    }
    conf_overrides = gen_conf(config.seed, round_index)
    # fuzz batches always run with the plan cache off: cache hits
    # skip analysis-time spans/events, and cache warmth depends on
    # worker history (even fork inheritance), which would make the
    # coverage map vary with --jobs. Outcome-neutral by the PR 2
    # byte-identity guarantee; excluded from the fingerprint label.
    exec_conf = dict(conf_overrides)
    exec_conf["repro.plan.cache.enabled"] = "false"
    trace_sink: dict[int, tuple[Span, ...]] = {}
    trials = execute(
        config.plans,
        config.formats,
        batch,
        exec_conf,
        jobs=config.jobs,
        pool=config.pool,
        metrics=metrics,
        trace_sink=trace_sink,
        batch=config.lanes,
        pool_handle=pool_handle,
    )
    state.trials_run += len(trials)

    # fuzz spans are tagged with their source so `trace summarize`
    # can split them out of the §8 matrix totals
    for spans in trace_sink.values():
        for span in spans:
            span.attributes["source"] = "fuzz"

    # coverage promotion, in (byte-identical) trial order
    promoted: set[int] = set()
    for index, trial in enumerate(trials):
        spans = trace_sink.get(index, ())
        input_id = trial.test_input.input_id
        if spans_by_input is not None:
            spans_by_input.setdefault(input_id, []).extend(spans)
        if state.coverage.observe(trial_features(trial, spans)):
            promoted.add(input_id)
    promoted_count = 0
    for test_input in batch:
        if test_input.input_id in promoted and (
            test_input.input_id not in state.pool_ids
        ):
            state.seed_pool.append(test_input)
            state.pool_ids.add(test_input.input_id)
            state.promoted.append(
                (round_index, slots[test_input.input_id], test_input.input_id)
            )
            promoted_count += 1

    # fingerprints + dedup bookkeeping
    label = conf_label(conf_overrides)
    failures = all_failures(trials)
    by_id = {test_input.input_id: test_input for test_input in batch}
    hits = run_fingerprints(trials, failures, label)
    new_keys: list[str] = []
    for key, hit in hits.items():
        finding = state.findings.get(key)
        if finding is None:
            state.findings[key] = FuzzFinding(
                fingerprint=hit.fingerprint,
                witness=by_id[hit.witness_input_id],
                conf_overrides=dict(conf_overrides),
                round_index=round_index,
                failure_count=len(hit.failures),
                novel=key not in baseline,
            )
            state.witness_provenance[key] = (
                round_index,
                slots[hit.witness_input_id],
                hit.witness_input_id,
            )
            new_keys.append(key)
        else:
            finding.failure_count += len(hit.failures)

    fresh_numbers = sorted(
        number
        for number in found_discrepancies(trials)
        if number and number not in state.rediscovered
    )
    state.rediscovered.update(fresh_numbers)
    state.candidates += batch_size
    state.round_index += 1
    return RoundOutcome(
        round_index=round_index,
        candidates=batch_size,
        trials=len(trials),
        witnessed=tuple(sorted(hits)),
        new_keys=tuple(sorted(new_keys)),
        novel_keys=tuple(
            sorted(
                key for key in new_keys if state.findings[key].novel
            )
        ),
        promoted=promoted_count,
        rediscovered=tuple(fresh_numbers),
        coverage_features=len(state.coverage),
    )


def run_fuzz(
    config: FuzzConfig,
    baseline: Baseline,
    *,
    metrics: CrossTestMetrics | None = None,
    progress=None,
) -> FuzzResult:
    """Run one campaign and return its (deterministic) result.

    ``metrics`` defaults to a fresh ``CrossTestMetrics(source="fuzz")``
    so campaign telemetry lands in the ``crosstest.fuzz`` registry and
    never pollutes the §8 matrix counters. ``progress``, if given, is
    called per round as ``progress(round, rounds, trials_so_far)``.
    """
    if metrics is None:
        metrics = CrossTestMetrics(source="fuzz")
    state = CampaignState.fresh(config)
    spans_by_input: dict[int, list[Span]] = {}
    total_rounds = (config.budget + config.batch - 1) // config.batch
    pool_handle = (
        WorkerPoolHandle(config.jobs, config.pool)
        if resolve_jobs(config.jobs) > 1
        else None
    )
    try:
        while state.candidates < config.budget:
            run_round(
                state,
                baseline,
                batch_size=min(
                    config.batch, config.budget - state.candidates
                ),
                metrics=metrics,
                pool_handle=pool_handle,
                spans_by_input=spans_by_input,
            )
            if progress is not None:
                progress(state.round_index, total_rounds, state.trials_run)
    finally:
        if pool_handle is not None:
            pool_handle.close()

    result = state.result(spans_by_input)
    if config.shrink:
        for finding in result.novel_findings:
            finding.shrunk = shrink_input(
                finding.witness,
                finding.fingerprint.key,
                config.plans,
                config.formats,
                finding.conf_overrides,
                conf_label(finding.conf_overrides),
                batch=config.lanes,
            )
    return result
