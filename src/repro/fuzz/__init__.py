"""``repro.fuzz`` — coverage-guided cross-system fuzzing over §8.

The paper found its 15 discrepancies with a hand-curated 422-input
corpus; this subsystem searches the space *around* that corpus. Seeded
generators (:mod:`~repro.fuzz.generators`) produce typed inputs and
conf mutations with every choice BLAKE2b-derived from
``(seed, round, slot)``; a coverage map (:mod:`~repro.fuzz.coverage`)
keyed on boundary spans and structured trace events promotes inputs
that reach new interaction sites; the scheduler
(:mod:`~repro.fuzz.scheduler`) fans batches through the sharded
cross-test executor; findings are fingerprinted by mechanism, deduped
against the committed baseline (:mod:`~repro.fuzz.dedup`), and shrunk
to minimal reproducers (:mod:`~repro.fuzz.shrink`).

Entry point: ``python -m repro fuzz`` (exit 4 on a novel discrepancy).
"""

from repro.fuzz.coverage import CoverageMap, trial_features
from repro.fuzz.dedup import Baseline, default_baseline_path
from repro.fuzz.generators import FUZZ_ID_BASE, gen_candidate, gen_conf, mutate
from repro.fuzz.scheduler import (
    CampaignState,
    FuzzConfig,
    FuzzFinding,
    FuzzResult,
    RoundOutcome,
    run_fuzz,
    run_round,
)
from repro.fuzz.shrink import input_size, reproduces, shrink_input

__all__ = [
    "FUZZ_ID_BASE",
    "Baseline",
    "CampaignState",
    "CoverageMap",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzResult",
    "RoundOutcome",
    "default_baseline_path",
    "gen_candidate",
    "gen_conf",
    "input_size",
    "mutate",
    "reproduces",
    "run_fuzz",
    "run_round",
    "shrink_input",
    "trial_features",
]
