"""Configuration plane: typed keys, provenance, and merge semantics.

Finding 7 of the paper says CSI-inducing configuration issues are mostly
about *coherently configuring multiple systems* — values silently
ignored or overruled while propagating between systems (Table 7), not
individually erroneous values. To make those failure modes expressible
(and testable), this module gives every configuration value a recorded
provenance and makes merging an explicit, policy-carrying operation, so
that "this Hive setting was silently overwritten by the Hadoop merge"
(SPARK-16901) is an observable event rather than a lost bit.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigValueError, UnknownConfigKeyError

__all__ = [
    "ConfigKey",
    "ConfigEntry",
    "MergePolicy",
    "Configuration",
    "parse_bool",
    "parse_int",
    "parse_memory_mb",
    "parse_duration_ms",
]


def parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1", "yes", "on"):
        return True
    if lowered in ("false", "0", "no", "off"):
        return False
    raise ConfigValueError(f"not a boolean: {text!r}")


def parse_int(text: str) -> int:
    try:
        return int(text.strip())
    except ValueError as exc:
        raise ConfigValueError(f"not an integer: {text!r}") from exc


_MEMORY_SUFFIXES = {"": 1, "m": 1, "mb": 1, "g": 1024, "gb": 1024}


def parse_memory_mb(text: str) -> int:
    """Parse ``"1024"``, ``"1024m"`` or ``"1g"`` into megabytes."""
    lowered = text.strip().lower()
    for suffix in sorted(_MEMORY_SUFFIXES, key=len, reverse=True):
        if suffix and lowered.endswith(suffix):
            return parse_int(lowered[: -len(suffix)]) * _MEMORY_SUFFIXES[suffix]
    return parse_int(lowered)


def parse_duration_ms(text: str) -> int:
    """Parse ``"500"``, ``"500ms"``, ``"2s"`` or ``"1min"`` into milliseconds."""
    lowered = text.strip().lower()
    for suffix, factor in (("ms", 1), ("s", 1000), ("min", 60_000), ("h", 3_600_000)):
        if lowered.endswith(suffix):
            head = lowered[: -len(suffix)]
            # "ms" also ends with "s"; only strip when the remainder parses.
            try:
                return parse_int(head) * factor
            except ConfigValueError:
                continue
    return parse_int(lowered)


@dataclass(frozen=True)
class ConfigKey:
    """A declared configuration parameter of one system."""

    name: str
    default: object = None
    parser: Callable[[str], object] = str
    doc: str = ""
    deprecated: bool = False

    def parse(self, raw: object) -> object:
        if isinstance(raw, str):
            return self.parser(raw)
        return raw


@dataclass(frozen=True)
class ConfigEntry:
    """A configuration value together with where it came from."""

    key: str
    value: object
    source: str
    overwrote: "ConfigEntry | None" = None

    def provenance_chain(self) -> list[str]:
        chain = [self.source]
        entry = self.overwrote
        while entry is not None:
            chain.append(entry.source)
            entry = entry.overwrote
        return chain


class MergePolicy(enum.Enum):
    """How :meth:`Configuration.merge` resolves key collisions."""

    PREFER_SELF = "prefer_self"
    PREFER_OTHER = "prefer_other"
    #: The historical Spark behaviour behind SPARK-16901: the incoming
    #: configuration wins and no overwrite event is recorded, so the
    #: losing value simply vanishes.
    SILENT_OVERWRITE = "silent_overwrite"


@dataclass
class Configuration:
    """A mutable configuration store with declared keys and an audit trail."""

    system: str
    declared: dict[str, ConfigKey] = field(default_factory=dict)
    strict: bool = False
    _entries: dict[str, ConfigEntry] = field(default_factory=dict)
    _audit: list[ConfigEntry] = field(default_factory=list)
    _fingerprint: tuple | None = field(default=None, repr=False)

    # -- declaration ----------------------------------------------------

    def declare(self, key: ConfigKey) -> ConfigKey:
        self.declared[key.name] = key
        return key

    def declare_all(self, keys: list[ConfigKey]) -> None:
        for key in keys:
            self.declare(key)

    # -- mutation ---------------------------------------------------------

    def set(self, name: str, value: object, source: str = "user") -> ConfigEntry:
        if self.strict and name not in self.declared:
            raise UnknownConfigKeyError(
                f"{self.system}: unknown configuration key {name!r}"
            )
        declared = self.declared.get(name)
        parsed = declared.parse(value) if declared else value
        entry = ConfigEntry(name, parsed, source, self._entries.get(name))
        self._entries[name] = entry
        self._audit.append(entry)
        self._fingerprint = None
        return entry

    def unset(self, name: str) -> None:
        self._entries.pop(name, None)
        self._fingerprint = None

    # -- lookup ----------------------------------------------------------

    def get(self, name: str, default: object = None) -> object:
        if name in self._entries:
            return self._entries[name].value
        if name in self.declared:
            return self.declared[name].default
        return default

    def entry(self, name: str) -> ConfigEntry | None:
        return self._entries.get(name)

    def is_set(self, name: str) -> bool:
        return name in self._entries

    def explicit_items(self) -> Iterator[tuple[str, object]]:
        for name, entry in self._entries.items():
            yield name, entry.value

    def effective_items(self) -> Iterator[tuple[str, object]]:
        """Every declared default plus every explicit setting."""
        seen = set()
        for name, entry in self._entries.items():
            seen.add(name)
            yield name, entry.value
        for name, key in self.declared.items():
            if name not in seen:
                yield name, key.default

    @property
    def audit_trail(self) -> tuple[ConfigEntry, ...]:
        return tuple(self._audit)

    # -- merging -----------------------------------------------------------

    def merge(
        self,
        other: "Configuration",
        policy: MergePolicy = MergePolicy.PREFER_SELF,
    ) -> list[ConfigEntry]:
        """Fold ``other``'s explicit settings into this configuration.

        Returns the entries that *lost* a collision, so callers (and
        tests) can check whether a value was dropped. Under
        ``SILENT_OVERWRITE`` the overwrite is additionally scrubbed from
        the entry chain — the paper's recurring "value lost during
        merge" pattern.
        """
        losers: list[ConfigEntry] = []
        for name, value in other.explicit_items():
            mine = self._entries.get(name)
            if mine is None:
                self.set(name, value, source=other.system)
                continue
            if policy is MergePolicy.PREFER_SELF:
                losers.append(ConfigEntry(name, value, other.system))
            elif policy is MergePolicy.PREFER_OTHER:
                losers.append(mine)
                self.set(name, value, source=other.system)
            else:  # SILENT_OVERWRITE
                losers.append(mine)
                entry = ConfigEntry(name, value, other.system, overwrote=None)
                self._entries[name] = entry
                self._audit.append(entry)
                self._fingerprint = None
        return losers

    def snapshot(self) -> dict[str, object]:
        return {name: entry.value for name, entry in self._entries.items()}

    def fingerprint(self) -> tuple[tuple[str, object], ...]:
        """Hashable digest of every *explicit* setting.

        Declared defaults are excluded: they cannot change at runtime,
        so two configurations with the same explicit settings behave
        identically. Plan caches key entries on this, which is what
        keeps conf-dependent discrepancies (#5/#8–#13) observable: a
        ``set()`` mid-session changes the fingerprint, and every cached
        plan compiled under the old settings simply stops matching.
        The digest is memoized and rebuilt after any mutation.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(
                sorted(
                    (name, entry.value)
                    for name, entry in self._entries.items()
                )
            )
        return self._fingerprint

    def copy(self) -> "Configuration":
        clone = Configuration(self.system, dict(self.declared), self.strict)
        clone._entries = dict(self._entries)
        clone._audit = list(self._audit)
        return clone
