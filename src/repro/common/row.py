"""Row values exchanged between the simulated systems."""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from repro.common.schema import Schema

__all__ = ["Row", "rows_equal", "values_equal"]


class Row(Sequence):
    """An immutable, positionally-ordered tuple of column values.

    A row may optionally carry the schema it was produced under, which is
    how the oracles report "the same cell read through two interfaces
    came back with different types".
    """

    __slots__ = ("_values", "_schema")

    def __init__(self, values: Sequence[object], schema: Schema | None = None):
        self._values = tuple(values)
        self._schema = schema

    @property
    def schema(self) -> Schema | None:
        return self._schema

    @property
    def values(self) -> tuple[object, ...]:
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        if isinstance(index, str):
            if self._schema is None:
                raise KeyError(f"row has no schema; cannot look up {index!r}")
            return self._values[self._schema.index_of(index)]
        return self._values[index]

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return rows_equal(self, other)
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        return f"Row{self._values!r}"

    def with_schema(self, schema: Schema) -> "Row":
        return Row(self._values, schema)


def values_equal(left: object, right: object) -> bool:
    """Value equality as the paper's Write-Read oracle needs it.

    ``NaN == NaN`` here (a WR oracle must treat a NaN that survives a
    round trip as preserved), and ``1 == 1.0`` is *not* collapsed when
    the types differ in kind, because type violations (HIVE-26533) must
    be observable. Booleans are never equal to integers for the same
    reason.
    """
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
        return left == right
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return len(left) == len(right) and all(
            values_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return False
        return all(values_equal(left[k], right[k]) for k in left)
    if type(left) is not type(right):
        # int vs float vs Decimal vs str: a kind change is a discrepancy.
        return False
    return left == right


def rows_equal(left: Row, right: Row) -> bool:
    if len(left) != len(right):
        return False
    return all(values_equal(a, b) for a, b in zip(left, right))
