"""A deterministic discrete-event simulation kernel.

The control- and management-plane scenarios (Figures 1, 3, 5 and the
pmem-monitor case of §6.2.2) are timing-dependent: FLINK-12342 only
manifests when YARN's allocation latency exceeds Flink's 500 ms
re-request interval. Simulated time makes those replays deterministic
and instantaneous.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "SimClock", "EventLoop", "Process"]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering: time, then insertion sequence."""

    time_ms: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """Monotonic simulated milliseconds."""

    def __init__(self, start_ms: int = 0) -> None:
        self._now_ms = start_ms

    @property
    def now_ms(self) -> int:
        return self._now_ms

    def advance_to(self, time_ms: int) -> None:
        if time_ms < self._now_ms:
            raise ValueError(
                f"clock cannot move backwards: {time_ms} < {self._now_ms}"
            )
        self._now_ms = time_ms


class EventLoop:
    """A single-threaded run-to-completion event loop over a SimClock."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now_ms(self) -> int:
        return self.clock.now_ms

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        return self._processed

    def call_at(self, time_ms: int, action: Callable[[], None], label: str = "") -> Event:
        if time_ms < self.clock.now_ms:
            raise ValueError(f"cannot schedule in the past: {time_ms}")
        event = Event(time_ms, next(self._seq), action, label)
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay_ms: int, action: Callable[[], None], label: str = "") -> Event:
        return self.call_at(self.clock.now_ms + delay_ms, action, label)

    def run_until(self, deadline_ms: int, max_events: int | None = None) -> int:
        """Run events with time <= deadline; returns events processed."""
        processed = 0
        while self._heap and self._heap[0].time_ms <= deadline_ms:
            if max_events is not None and processed >= max_events:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time_ms)
            event.action()
            processed += 1
            self._processed += 1
        if not self._heap or self._heap[0].time_ms > deadline_ms:
            self.clock.advance_to(max(self.clock.now_ms, deadline_ms))
        return processed

    def run_to_completion(self, max_events: int = 1_000_000) -> int:
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; likely livelock"
                )
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time_ms)
            event.action()
            processed += 1
            self._processed += 1
        return processed


class Process:
    """Base class for simulated actors that share an event loop."""

    def __init__(self, loop: EventLoop, name: str) -> None:
        self.loop = loop
        self.name = name

    @property
    def now_ms(self) -> int:
        return self.loop.now_ms

    def schedule(self, delay_ms: int, action: Callable[[], None], label: str = "") -> Event:
        return self.loop.call_after(delay_ms, action, label or self.name)
