"""Logical (engine-neutral) data types.

Every simulated system in this repository — sparklite, hivelite, and the
storage formats — expresses its own type system as a mapping onto these
logical types. The paper's data-plane findings (§6.1, Table 4/5/6) are
about *discrepancies between those mappings*; keeping one neutral
algebra underneath lets each system disagree with the others exactly the
way the real systems do (e.g. Avro has no physical BYTE, Hive has no
case-sensitive identifiers), while the cross-test oracles compare values
in one common currency.
"""

from __future__ import annotations

import datetime
import decimal
import functools
from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = [
    "DataType",
    "AtomicType",
    "NullType",
    "BooleanType",
    "ByteType",
    "ShortType",
    "IntegerType",
    "LongType",
    "FloatType",
    "DoubleType",
    "DecimalType",
    "StringType",
    "CharType",
    "VarcharType",
    "BinaryType",
    "DateType",
    "TimestampType",
    "TimestampNTZType",
    "IntervalType",
    "ArrayType",
    "MapType",
    "StructField",
    "StructType",
    "INTEGRAL_RANGES",
    "is_integral",
    "is_fractional",
    "is_numeric",
    "parse_type",
]


@dataclass(frozen=True)
class DataType:
    """Base class of all logical types."""

    @property
    def name(self) -> str:
        """Canonical lower-case SQL-ish name, e.g. ``"bigint"``."""
        raise NotImplementedError

    def simple_string(self) -> str:
        """Printable form; parameterized types include their parameters."""
        return self.name

    def accepts(self, value: object) -> bool:
        """Whether a Python value is a valid instance of this type.

        ``None`` is accepted by every type (nullability is tracked on
        fields, not on types, as in Spark/Hive).
        """
        if value is None:
            return True
        return self._accepts(value)

    def _accepts(self, value: object) -> bool:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.simple_string()


class AtomicType(DataType):
    """A type with no nested element types."""


@dataclass(frozen=True)
class NullType(AtomicType):
    """The type of the untyped ``NULL`` literal."""

    @property
    def name(self) -> str:
        return "null"

    def _accepts(self, value: object) -> bool:
        return False


@dataclass(frozen=True)
class BooleanType(AtomicType):
    @property
    def name(self) -> str:
        return "boolean"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, bool)


@dataclass(frozen=True)
class _IntegralType(AtomicType):
    """Shared behaviour of fixed-width integer types."""

    @property
    def min_value(self) -> int:
        return INTEGRAL_RANGES[self.name][0]

    @property
    def max_value(self) -> int:
        return INTEGRAL_RANGES[self.name][1]

    def _accepts(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return self.min_value <= value <= self.max_value


@dataclass(frozen=True)
class ByteType(_IntegralType):
    @property
    def name(self) -> str:
        return "tinyint"


@dataclass(frozen=True)
class ShortType(_IntegralType):
    @property
    def name(self) -> str:
        return "smallint"


@dataclass(frozen=True)
class IntegerType(_IntegralType):
    @property
    def name(self) -> str:
        return "int"


@dataclass(frozen=True)
class LongType(_IntegralType):
    @property
    def name(self) -> str:
        return "bigint"


INTEGRAL_RANGES: dict[str, tuple[int, int]] = {
    "tinyint": (-(2**7), 2**7 - 1),
    "smallint": (-(2**15), 2**15 - 1),
    "int": (-(2**31), 2**31 - 1),
    "bigint": (-(2**63), 2**63 - 1),
}


@dataclass(frozen=True)
class FloatType(AtomicType):
    @property
    def name(self) -> str:
        return "float"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, float)


@dataclass(frozen=True)
class DoubleType(AtomicType):
    @property
    def name(self) -> str:
        return "double"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, float)


@dataclass(frozen=True)
class DecimalType(AtomicType):
    """Fixed-precision decimal, as in Spark/Hive ``DECIMAL(p, s)``."""

    precision: int = 10
    scale: int = 0

    MAX_PRECISION = 38

    def __post_init__(self) -> None:
        if not 1 <= self.precision <= self.MAX_PRECISION:
            raise SchemaError(
                f"decimal precision {self.precision} out of range 1..38"
            )
        if not 0 <= self.scale <= self.precision:
            raise SchemaError(
                f"decimal scale {self.scale} out of range 0..{self.precision}"
            )

    @property
    def name(self) -> str:
        return "decimal"

    def simple_string(self) -> str:
        return f"decimal({self.precision},{self.scale})"

    def fits(self, value: decimal.Decimal) -> bool:
        """Whether the value fits without loss in (precision, scale)."""
        if not value.is_finite():
            return False
        quantized = value.quantize(
            decimal.Decimal(1).scaleb(-self.scale),
            rounding=decimal.ROUND_HALF_UP,
            context=decimal.Context(prec=self.MAX_PRECISION + 4),
        )
        if quantized != value:
            return False
        digits = quantized.as_tuple()
        integral_digits = len(digits.digits) + digits.exponent
        return integral_digits <= self.precision - self.scale

    def _accepts(self, value: object) -> bool:
        return isinstance(value, decimal.Decimal) and self.fits(value)


@dataclass(frozen=True)
class StringType(AtomicType):
    @property
    def name(self) -> str:
        return "string"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, str)


@dataclass(frozen=True)
class CharType(AtomicType):
    """Fixed-length character type; values are blank-padded to ``length``."""

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise SchemaError(f"char length {self.length} must be positive")

    @property
    def name(self) -> str:
        return "char"

    def simple_string(self) -> str:
        return f"char({self.length})"

    def pad(self, value: str) -> str:
        return value.ljust(self.length)

    def _accepts(self, value: object) -> bool:
        return isinstance(value, str) and len(value) <= self.length


@dataclass(frozen=True)
class VarcharType(AtomicType):
    """Bounded-length character type."""

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise SchemaError(f"varchar length {self.length} must be positive")

    @property
    def name(self) -> str:
        return "varchar"

    def simple_string(self) -> str:
        return f"varchar({self.length})"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, str) and len(value) <= self.length


@dataclass(frozen=True)
class BinaryType(AtomicType):
    @property
    def name(self) -> str:
        return "binary"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, bytes)


@dataclass(frozen=True)
class DateType(AtomicType):
    @property
    def name(self) -> str:
        return "date"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime
        )


@dataclass(frozen=True)
class TimestampType(AtomicType):
    """Timestamp with session-local timezone semantics (Spark default)."""

    @property
    def name(self) -> str:
        return "timestamp"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, datetime.datetime)


@dataclass(frozen=True)
class TimestampNTZType(AtomicType):
    """Timestamp without timezone (Hive's classic TIMESTAMP semantics)."""

    @property
    def name(self) -> str:
        return "timestamp_ntz"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, datetime.datetime) and value.tzinfo is None


@dataclass(frozen=True)
class IntervalType(AtomicType):
    """Day-time interval, stored as a ``datetime.timedelta``."""

    @property
    def name(self) -> str:
        return "interval"

    def _accepts(self, value: object) -> bool:
        return isinstance(value, datetime.timedelta)


@dataclass(frozen=True)
class ArrayType(DataType):
    element_type: DataType = field(default_factory=StringType)
    contains_null: bool = True

    @property
    def name(self) -> str:
        return "array"

    def simple_string(self) -> str:
        return f"array<{self.element_type.simple_string()}>"

    def _accepts(self, value: object) -> bool:
        if not isinstance(value, (list, tuple)):
            return False
        for item in value:
            if item is None and not self.contains_null:
                return False
            if not self.element_type.accepts(item):
                return False
        return True


@dataclass(frozen=True)
class MapType(DataType):
    key_type: DataType = field(default_factory=StringType)
    value_type: DataType = field(default_factory=StringType)
    value_contains_null: bool = True

    @property
    def name(self) -> str:
        return "map"

    def simple_string(self) -> str:
        return (
            f"map<{self.key_type.simple_string()},"
            f"{self.value_type.simple_string()}>"
        )

    def _accepts(self, value: object) -> bool:
        if not isinstance(value, dict):
            return False
        for key, val in value.items():
            if key is None or not self.key_type.accepts(key):
                return False
            if val is None and not self.value_contains_null:
                return False
            if not self.value_type.accepts(val):
                return False
        return True


@dataclass(frozen=True)
class StructField:
    name: str
    data_type: DataType
    nullable: bool = True

    def simple_string(self) -> str:
        return f"{self.name}:{self.data_type.simple_string()}"


@dataclass(frozen=True)
class StructType(DataType):
    fields: tuple[StructField, ...] = ()

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate field names in struct: {names}")

    @property
    def name(self) -> str:
        return "struct"

    def simple_string(self) -> str:
        inner = ",".join(f.simple_string() for f in self.fields)
        return f"struct<{inner}>"

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def _accepts(self, value: object) -> bool:
        if isinstance(value, dict):
            if set(value) != set(self.field_names()):
                return False
            items = [value[f.name] for f in self.fields]
        elif isinstance(value, (list, tuple)):
            if len(value) != len(self.fields):
                return False
            items = list(value)
        else:
            return False
        for fld, item in zip(self.fields, items):
            if item is None and not fld.nullable:
                return False
            if not fld.data_type.accepts(item):
                return False
        return True


def is_integral(dtype: DataType) -> bool:
    return isinstance(dtype, _IntegralType)


def is_fractional(dtype: DataType) -> bool:
    return isinstance(dtype, (FloatType, DoubleType, DecimalType))


def is_numeric(dtype: DataType) -> bool:
    return is_integral(dtype) or is_fractional(dtype)


_SIMPLE_TYPES: dict[str, type[DataType]] = {
    "boolean": BooleanType,
    "tinyint": ByteType,
    "byte": ByteType,
    "smallint": ShortType,
    "short": ShortType,
    "int": IntegerType,
    "integer": IntegerType,
    "bigint": LongType,
    "long": LongType,
    "float": FloatType,
    "real": FloatType,
    "double": DoubleType,
    "string": StringType,
    "binary": BinaryType,
    "date": DateType,
    "timestamp": TimestampType,
    "timestamp_ntz": TimestampNTZType,
    "interval": IntervalType,
}


@functools.lru_cache(maxsize=4096)
def parse_type(text: str) -> DataType:
    """Parse a SQL type string such as ``decimal(10,2)`` or ``array<int>``.

    Supports the subset of the type grammar the paper's test plans use:
    every atomic type plus single-level parameterization and arbitrary
    nesting of ``array``, ``map`` and ``struct``.

    Results are memoized: every :class:`DataType` is a frozen dataclass,
    so sharing instances across callers (the cross-test hot path parses
    the same few hundred type strings hundreds of thousands of times) is
    safe.
    """
    text = text.strip()
    lowered = text.lower()
    if lowered in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[lowered]()
    if lowered.startswith("decimal"):
        params = _parse_params(text, "decimal")
        if not params:
            return DecimalType()
        if len(params) == 1:
            return DecimalType(int(params[0]))
        return DecimalType(int(params[0]), int(params[1]))
    if lowered.startswith("char"):
        (length,) = _parse_params(text, "char") or ("1",)
        return CharType(int(length))
    if lowered.startswith("varchar"):
        (length,) = _parse_params(text, "varchar") or ("1",)
        return VarcharType(int(length))
    if lowered.startswith("array<") and lowered.endswith(">"):
        return ArrayType(parse_type(text[len("array<") : -1]))
    if lowered.startswith("map<") and lowered.endswith(">"):
        key_text, value_text = _split_top_level(text[len("map<") : -1])
        return MapType(parse_type(key_text), parse_type(value_text))
    if lowered.startswith("struct<") and lowered.endswith(">"):
        fields = []
        for part in _split_all_top_level(text[len("struct<") : -1]):
            fname, _, ftype = part.partition(":")
            fields.append(StructField(fname.strip(), parse_type(ftype)))
        return StructType(tuple(fields))
    raise SchemaError(f"cannot parse type string: {text!r}")


def _parse_params(text: str, prefix: str) -> tuple[str, ...]:
    rest = text[len(prefix) :].strip()
    if not rest:
        return ()
    if not (rest.startswith("(") and rest.endswith(")")):
        raise SchemaError(f"malformed type parameters in {text!r}")
    return tuple(p.strip() for p in rest[1:-1].split(","))


def _split_top_level(text: str) -> tuple[str, str]:
    parts = _split_all_top_level(text)
    if len(parts) != 2:
        raise SchemaError(f"expected two type parameters in {text!r}")
    return parts[0], parts[1]


def _split_all_top_level(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char in "<(":
            depth += 1
        elif char in ">)":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return parts
