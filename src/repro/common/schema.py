"""Schemas: ordered, named, typed fields with configurable case semantics.

Case sensitivity is the mechanism behind several of the paper's §8
discrepancies (HIVE-26533 / SPARK-40409 report a "not case preserving"
side effect because Spark's native schema is case-sensitive while Hive's
metastore lower-cases identifiers), so a :class:`Schema` carries an
explicit ``case_sensitive`` flag rather than assuming one convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.types import DataType, parse_type
from repro.errors import SchemaError

__all__ = ["Field", "Schema"]


@dataclass(frozen=True)
class Field:
    """One named column."""

    name: str
    data_type: DataType
    nullable: bool = True
    comment: str | None = None
    metadata: tuple[tuple[str, str], ...] = ()

    def with_name(self, name: str) -> "Field":
        return replace(self, name=name)

    def with_type(self, data_type: DataType) -> "Field":
        return replace(self, data_type=data_type)

    def simple_string(self) -> str:
        suffix = "" if self.nullable else " not null"
        return f"{self.name} {self.data_type.simple_string()}{suffix}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Field` objects."""

    fields: tuple[Field, ...] = ()
    case_sensitive: bool = True

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for fld in self.fields:
            key = fld.name if self.case_sensitive else fld.name.lower()
            if key in seen:
                raise SchemaError(
                    f"duplicate column {fld.name!r}"
                    f" (case_sensitive={self.case_sensitive})"
                )
            seen.add(key)

    def __hash__(self) -> int:
        # computed lazily and cached: schemas key several hot memos
        # (plan fingerprints, scan plans, physical-schema caches) and
        # the recursive field/type hash dominates otherwise. Same
        # fields as the generated __eq__.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.fields, self.case_sensitive))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- construction -------------------------------------------------

    @classmethod
    def of(cls, *columns: tuple[str, str], case_sensitive: bool = True) -> "Schema":
        """Build a schema from ``(name, type-string)`` pairs.

        >>> Schema.of(("id", "bigint"), ("name", "string")).names()
        ('id', 'name')
        """
        fields = tuple(Field(name, parse_type(ts)) for name, ts in columns)
        return cls(fields, case_sensitive=case_sensitive)

    # -- lookup -------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def types(self) -> tuple[DataType, ...]:
        return tuple(f.data_type for f in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def index_of(self, name: str) -> int:
        for i, fld in enumerate(self.fields):
            if self._matches(fld.name, name):
                return i
        raise SchemaError(f"no column {name!r} in {self.names()}")

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        return any(self._matches(f.name, name) for f in self.fields)

    def _matches(self, field_name: str, query: str) -> bool:
        if self.case_sensitive:
            return field_name == query
        return field_name.lower() == query.lower()

    # -- transformation -----------------------------------------------

    def lower_cased(self) -> "Schema":
        """The schema as a case-insensitive store (Hive metastore) keeps it.

        This is deliberately lossy: it is the exact transformation the
        Hive metastore applies and the root of the "not case preserving"
        discrepancy family in §8.2.
        """
        fields = tuple(f.with_name(f.name.lower()) for f in self.fields)
        return Schema(fields, case_sensitive=False)

    def with_case_sensitivity(self, case_sensitive: bool) -> "Schema":
        return Schema(self.fields, case_sensitive=case_sensitive)

    def rename_positional(self, prefix: str = "_col") -> "Schema":
        """Positional column names, as Hive writes ORC files (SPARK-21686)."""
        fields = tuple(
            f.with_name(f"{prefix}{i}") for i, f in enumerate(self.fields)
        )
        return Schema(fields, case_sensitive=self.case_sensitive)

    def map_types(self, fn) -> "Schema":
        """Apply ``fn(DataType) -> DataType`` to every column type."""
        fields = tuple(f.with_type(fn(f.data_type)) for f in self.fields)
        return Schema(fields, case_sensitive=self.case_sensitive)

    def simple_string(self) -> str:
        return ", ".join(f.simple_string() for f in self.fields)

    # -- comparison ---------------------------------------------------

    def same_shape(self, other: "Schema") -> bool:
        """Same arity and same column types (names ignored)."""
        return self.types() == other.types()

    def equivalent(self, other: "Schema", *, case_sensitive: bool = True) -> bool:
        """Name-and-type equality under the given case convention."""
        if len(self) != len(other):
            return False
        for mine, theirs in zip(self.fields, other.fields):
            names_equal = (
                mine.name == theirs.name
                if case_sensitive
                else mine.name.lower() == theirs.name.lower()
            )
            if not names_equal or mine.data_type != theirs.data_type:
                return False
        return True
