"""Query results, shared by both engines.

A result carries the schema it was produced under and any warnings the
engine emitted, because the paper's oracles compare *all three*:
values (WR), errors (EH), and schema/warnings across interfaces (Diff —
e.g. the "not case preserving" warning of SPARK-40409).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.row import Row, rows_equal
from repro.common.schema import Schema

__all__ = ["QueryResult"]


@dataclass
class QueryResult:
    schema: Schema
    rows: tuple[Row, ...] = ()
    warnings: tuple[str, ...] = ()
    interface: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Row | None:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list[object]:
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]

    def same_rows(self, other: "QueryResult") -> bool:
        if len(self.rows) != len(other.rows):
            return False
        return all(rows_equal(a, b) for a, b in zip(self.rows, other.rows))

    def to_tuples(self) -> list[tuple[object, ...]]:
        return [row.values for row in self.rows]
