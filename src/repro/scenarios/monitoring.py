"""§6.2.2 / Finding 9: monitoring data driving kill actions
(FLINK-887) — the pmem monitor vs an unheadroomed JVM."""

from __future__ import annotations

from repro.common.events import EventLoop
from repro.flinklite.configs import HEAP_CUTOFF_RATIO, JM_PROCESS_SIZE_MB, FlinkConf
from repro.flinklite.jobmanager import JobManagerSpec
from repro.scenarios.base import ScenarioOutcome
from repro.yarnlite.configs import YarnConf
from repro.yarnlite.nodemanager import NodeManager
from repro.yarnlite.resourcemanager import Container
from repro.yarnlite.resources import Resource

__all__ = ["replay_flink_887"]


def replay_flink_887(
    *,
    container_mb: int = 1600,
    heap_cutoff_ratio: float | None = 0.0,
    horizon_ms: int = 60_000,
) -> ScenarioOutcome:
    """Launch a JobManager container and let the pmem monitor judge it.

    With ``heap_cutoff_ratio=0.0`` the JVM is sized to the whole
    container and its physical footprint exceeds the allocation — YARN's
    monitor kills the JobManager. With the default cutoff the heap
    leaves headroom and the container survives.
    """
    flink_conf = FlinkConf()
    flink_conf.set(JM_PROCESS_SIZE_MB, container_mb, source="scenario")
    if heap_cutoff_ratio is not None:
        flink_conf.set(HEAP_CUTOFF_RATIO, str(heap_cutoff_ratio), source="scenario")

    spec = JobManagerSpec(flink_conf)
    loop = EventLoop()
    node_manager = NodeManager(loop, YarnConf(), check_interval_ms=3000)
    container = Container(1, Resource(container_mb, 1))
    kill_reasons: list[str] = []
    running = node_manager.launch(container, on_kill=kill_reasons.append)
    node_manager.report_usage(container.container_id, spec.peak_pmem_mb())
    loop.run_until(horizon_ms)

    failed = running.killed
    return ScenarioOutcome(
        scenario="yarn pmem monitor vs flink jobmanager",
        jira="FLINK-887",
        plane="management",
        failed=failed,
        symptom=(
            f"JobManager killed by pmem monitor: {kill_reasons[0]}"
            if failed
            else "JobManager survived the pmem monitor"
        ),
        metrics={
            "container_mb": container_mb,
            "jvm_heap_mb": spec.jvm_heap_mb(),
            "peak_pmem_mb": spec.peak_pmem_mb(),
            "heap_cutoff_ratio": spec.conf.heap_cutoff_ratio,
            "kills": len(kill_reasons),
        },
    )
