"""Common shape for executable failure replays.

Each scenario replays one named CSI failure from the paper, both in its
failing configuration and under its documented fix/workaround, and
returns a structured outcome the tests and benches assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScenarioOutcome"]


@dataclass
class ScenarioOutcome:
    scenario: str
    jira: str
    plane: str  # "control" | "data" | "management"
    failed: bool
    symptom: str
    metrics: dict[str, object] = field(default_factory=dict)
    narrative: tuple[str, ...] = ()

    def describe(self) -> str:
        status = "FAILED" if self.failed else "ok"
        return f"[{self.plane}] {self.jira} {self.scenario}: {status} — {self.symptom}"
