"""The Address/naming discrepancy family, executable (Table 4: 10/61).

Partition values live as strings in directory names; Hive types them by
the declared column, Spark infers a type from the values
(``partitionColumnTypeInference``). A zero-padded day partition written
by Hive reads back as different *data* through Spark — a wrong-results
failure with no error anywhere.
"""

from __future__ import annotations

from repro.hivelite.engine import HiveServer
from repro.scenarios.base import ScenarioOutcome
from repro.sparklite.session import SparkSession

__all__ = ["replay_partition_inference"]


def replay_partition_inference(*, fixed: bool = False) -> ScenarioOutcome:
    """Hive writes day partitions '01'..'03'; Spark reads them back."""
    spark = SparkSession.local()
    hive = HiveServer(spark.metastore, spark.filesystem)
    hive.execute(
        "CREATE TABLE pageviews (hits int) PARTITIONED BY (day string) "
        "STORED AS parquet"
    )
    for day, hits in (("01", 10), ("02", 20), ("03", 30)):
        hive.execute(
            f"INSERT INTO pageviews PARTITION (day='{day}') VALUES ({hits})"
        )

    if fixed:
        spark.conf.set(
            "spark.sql.sources.partitionColumnTypeInference.enabled", "false"
        )

    hive_rows = hive.execute("SELECT * FROM pageviews").to_tuples()
    spark_result = spark.sql("SELECT * FROM pageviews")
    spark_rows = spark_result.to_tuples()

    failed = spark_rows != hive_rows
    spark_type = spark_result.schema.types()[1].simple_string()
    return ScenarioOutcome(
        scenario="spark and hive read the same partitioned table",
        jira="PARTITION-TYPE-INFERENCE",
        plane="data",
        failed=failed,
        symptom=(
            f"wrong results: Hive sees day='01' (string), Spark sees "
            f"day={spark_rows[0][1]!r} ({spark_type}) — the zero-padded "
            "naming convention was silently re-typed"
            if failed
            else "both engines agree on the partition values"
        ),
        metrics={
            "fixed": fixed,
            "hive_rows": hive_rows,
            "spark_rows": spark_rows,
            "spark_partition_type": spark_type,
        },
    )
