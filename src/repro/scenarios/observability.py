"""§6.2.2 observability failures: SPARK-3627 / SPARK-10851.

"CSI failures impair observability due to ... not propagating the
expected status code [or] incorrectly reporting metrics and logs
between systems. For example, in SPARK-10851, Spark's R runner does not
throw the right exception to YARN when an application fails, but
instead exits silently; in SPARK-3627, Spark reports success for failed
YARN jobs."

The mechanism: YARN records whatever final status the application
master reports. An AM whose error path swallows the failure reports
SUCCEEDED — so every consumer of YARN's application report (operators,
retry policies, schedulers) sees a healthy job that was not.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.common.events import EventLoop
from repro.scenarios.base import ScenarioOutcome
from repro.yarnlite.resourcemanager import ResourceManager
from repro.yarnlite.resources import Resource

__all__ = ["run_yarn_application", "replay_spark_3627"]


def run_yarn_application(
    resource_manager: ResourceManager,
    job: Callable[[], None],
    *,
    propagate_failure: bool,
):
    """Run a job inside a YARN application and report a final status.

    ``propagate_failure=False`` reproduces the buggy AM exit path: the
    job's exception is swallowed and SUCCEEDED is reported regardless.
    """
    handle = resource_manager.register(lambda containers: None)
    job_failed = False
    diagnostics = ""
    try:
        job()
    except Exception as exc:  # noqa: BLE001 - the AM sees any failure
        job_failed = True
        diagnostics = f"{type(exc).__name__}: {exc}"
    if propagate_failure and job_failed:
        resource_manager.unregister_application(
            handle, "FAILED", diagnostics
        )
    else:
        # the SPARK-3627 path: exit code lost, success reported
        resource_manager.unregister_application(handle, "SUCCEEDED")
    return handle, job_failed


def replay_spark_3627(*, fixed: bool = False) -> ScenarioOutcome:
    """A failing Spark job; compare YARN's view with reality."""
    loop = EventLoop()
    resource_manager = ResourceManager(loop)

    def failing_job() -> None:
        raise RuntimeError("stage 3 failed: executor lost")

    handle, job_failed = run_yarn_application(
        resource_manager, failing_job, propagate_failure=fixed
    )
    report = resource_manager.application_report(handle.app_id)
    observability_lost = job_failed and report.final_status == "SUCCEEDED"

    return ScenarioOutcome(
        scenario="spark job status reporting to yarn",
        jira="SPARK-3627",
        plane="management",
        failed=observability_lost,
        symptom=(
            f"job failed but YARN reports {report.final_status}"
            if observability_lost
            else f"YARN correctly reports {report.final_status}"
        ),
        metrics={
            "fixed": fixed,
            "job_failed": job_failed,
            "yarn_final_status": report.final_status,
            "diagnostics": report.diagnostics,
        },
    )
