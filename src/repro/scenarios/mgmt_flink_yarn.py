"""Figure 3: Flink vs YARN resource configuration semantics
(FLINK-19141) — the same keys mean different things per scheduler."""

from __future__ import annotations

from repro.flinklite.configs import FlinkConf
from repro.flinklite.jobmanager import expected_container_resource
from repro.scenarios.base import ScenarioOutcome
from repro.yarnlite.configs import INCREMENT_MB, MIN_ALLOC_MB, SCHEDULER_CLASS, YarnConf
from repro.yarnlite.resources import Resource
from repro.yarnlite.scheduler import scheduler_for

__all__ = ["replay_flink_19141"]


def replay_flink_19141(
    *,
    scheduler: str = "fair",
    requested_mb: int = 1536,
    min_alloc_mb: int = 1024,
    increment_mb: int = 512,
) -> ScenarioOutcome:
    """Flink sizes a container with the min-allocation keys; YARN's
    active scheduler may normalize with the increment keys instead.

    With the defaults here (request 1536 MB): Flink expects the capacity
    rounding 1536→2048, but the fair scheduler grants 1536 (increment
    512). Flink's startup validation sees a container smaller than it
    computed and fails with "Could not allocate the required resource".
    """
    yarn_conf = YarnConf()
    yarn_conf.set(SCHEDULER_CLASS, scheduler, source="deployment")
    yarn_conf.set(MIN_ALLOC_MB, min_alloc_mb, source="deployment")
    yarn_conf.set(INCREMENT_MB, increment_mb, source="deployment")
    flink_conf = FlinkConf()

    requested = Resource(requested_mb, 1)
    expected = expected_container_resource(flink_conf, yarn_conf, requested)
    granted = scheduler_for(yarn_conf).normalize(requested)

    failed = granted != expected
    symptom = (
        f"Could not allocate the required resource: expected {expected}, "
        f"got {granted} from the {scheduler} scheduler"
        if failed
        else f"container sized as expected ({granted})"
    )
    return ScenarioOutcome(
        scenario="flink container sizing vs yarn scheduler",
        jira="FLINK-19141",
        plane="management",
        failed=failed,
        symptom=symptom,
        metrics={
            "scheduler": scheduler,
            "requested_mb": requested_mb,
            "expected_mb": expected.memory_mb,
            "granted_mb": granted.memory_mb,
            "min_alloc_mb": min_alloc_mb,
            "increment_mb": increment_mb,
        },
    )
