"""SPARK-16901: Spark silently overwrites Hive settings while merging
with the Hadoop configuration (Table 7, "unexpected override")."""

from __future__ import annotations

from repro.common.config import Configuration, MergePolicy
from repro.scenarios.base import ScenarioOutcome

__all__ = ["replay_spark_16901"]

_HIVE_METASTORE_URI = "hive.metastore.uris"
_HIVE_EXEC_ENGINE = "hive.execution.engine"


def replay_spark_16901(*, fixed: bool = False) -> ScenarioOutcome:
    """Merge Hive's configuration into Spark's Hadoop configuration.

    The buggy path merges with :attr:`MergePolicy.SILENT_OVERWRITE`: the
    Hadoop defaults win and the operator's explicit Hive metastore URI
    vanishes without a recorded overwrite. The fix keeps the existing
    value (``PREFER_SELF``) and surfaces the collision.
    """
    hive_site = Configuration(system="hive-site")
    hive_site.set(_HIVE_METASTORE_URI, "thrift://metastore-prod:9083", "operator")
    hive_site.set(_HIVE_EXEC_ENGINE, "tez", "operator")

    hadoop_defaults = Configuration(system="hadoop-defaults")
    hadoop_defaults.set(_HIVE_METASTORE_URI, "thrift://localhost:9083", "default")
    hadoop_defaults.set("fs.defaultFS", "hdfs://namenode:8020", "default")

    # Spark assembles its effective configuration: hive-site first, then
    # the Hadoop configuration is folded in.
    effective = hive_site.copy()
    effective.system = "spark-effective"
    policy = MergePolicy.PREFER_SELF if fixed else MergePolicy.SILENT_OVERWRITE
    losers = effective.merge(hadoop_defaults, policy)

    final_uri = effective.get(_HIVE_METASTORE_URI)
    failed = final_uri != "thrift://metastore-prod:9083"
    entry = effective.entry(_HIVE_METASTORE_URI)
    return ScenarioOutcome(
        scenario="spark merges hive configuration with hadoop defaults",
        jira="SPARK-16901",
        plane="management",
        failed=failed,
        symptom=(
            f"hive.metastore.uris silently overwritten to {final_uri!r}"
            if failed
            else "operator's metastore URI preserved"
        ),
        metrics={
            "fixed": fixed,
            "final_uri": final_uri,
            "collisions": len(losers),
            "provenance": entry.provenance_chain() if entry else [],
        },
    )
