"""FLINK-17189: PROCTIME lost through the Hive catalog (Table 6's
type-confusion example, Flink -> Hive)."""

from __future__ import annotations

from repro.common.schema import Schema
from repro.flinklite.table_api import FlinkTableEnvironment, ProctimeLostError
from repro.hivelite.engine import HiveServer
from repro.hivelite.metastore import HiveMetastore
from repro.kafkalite.log import PartitionLog
from repro.scenarios.base import ScenarioOutcome
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode

__all__ = ["replay_flink_17189"]


def replay_flink_17189(*, fixed: bool = False) -> ScenarioOutcome:
    """Stream → table with a PROCTIME column, persisted through Hive,
    then read back and window-aggregated.

    Buggy path: the second environment (a restarted job) reads the table
    from the catalog; the proctime attribute is gone and the windowed
    aggregation fails. Fixed path: the attribute is re-registered from
    out-of-band metadata.
    """
    hive = HiveServer(HiveMetastore(), FileSystem(NameNode()))
    first_env = FlinkTableEnvironment(hive)

    log = PartitionLog("clicks")
    for index in range(6):
        log.append({"user": f"u{index % 2}"}, timestamp_ms=index * 90_000)

    schema = Schema.of(("user", "string"))
    rows = first_env.table_from_stream(
        "clicks", log, schema, proctime_column="proc_ts"
    )
    full_schema = rows[0].schema
    first_env.write_to_hive("clicks", rows, full_schema)

    # a restarted job: a fresh environment over the same catalog
    second_env = FlinkTableEnvironment(hive)
    if fixed:
        second_env.register_proctime("clicks", "proc_ts")

    failed = False
    symptom = "windowed aggregation ran"
    windows = {}
    try:
        windows = second_env.window_aggregate("clicks")
        symptom = f"windowed aggregation produced {len(windows)} buckets"
    except ProctimeLostError as exc:
        failed = True
        symptom = f"Flink job failure: {exc}"

    stored_schema, _ = second_env.read_from_hive("clicks")
    return ScenarioOutcome(
        scenario="flink proctime column through the hive catalog",
        jira="FLINK-17189",
        plane="data",
        failed=failed,
        symptom=symptom,
        metrics={
            "fixed": fixed,
            "records": 6,
            "stored_type": stored_schema.field("proc_ts").data_type.simple_string(),
            "window_buckets": len(windows),
        },
    )
