"""YARN-2790: delegation-token renewal races the operation consuming it
(§7 — a fix that reduces likelihood without removing the window)."""

from __future__ import annotations

from repro.errors import StorageError
from repro.scenarios.base import ScenarioOutcome
from repro.storage.namenode import NameNode

__all__ = ["replay_yarn_2790"]


def replay_yarn_2790(
    *,
    token_lifetime_ms: int = 10_000,
    work_before_use_ms: int = 15_000,
    renew_close_to_use: bool = False,
) -> ScenarioOutcome:
    """YARN renews an HDFS token, does other work, then uses the token.

    The merged fix moved the renewal *closer to* the consuming
    operation; it shrinks but does not eliminate the expiry window
    (Finding 12's point that common fixes do not fix the interaction).
    """
    namenode = NameNode(token_lifetime_ms=token_lifetime_ms)
    token = namenode.issue_token("yarn-rm")

    if renew_close_to_use:
        # fixed ordering: work first, renew immediately before use
        namenode.clock_ms += work_before_use_ms
        namenode.renew_token(token.token_id)
    else:
        # original ordering: renew early, then do the work
        namenode.renew_token(token.token_id)
        namenode.clock_ms += work_before_use_ms

    failed = False
    symptom = "token accepted"
    try:
        namenode.verify_token(token.token_id)
    except StorageError as exc:
        failed = True
        symptom = f"HDFS rejected the operation: {exc}"

    return ScenarioOutcome(
        scenario="yarn uses an hdfs delegation token after delay",
        jira="YARN-2790",
        plane="control",
        failed=failed,
        symptom=symptom,
        metrics={
            "token_lifetime_ms": token_lifetime_ms,
            "work_before_use_ms": work_before_use_ms,
            "renew_close_to_use": renew_close_to_use,
            "expires_at_ms": token.expires_at_ms,
            "used_at_ms": namenode.clock_ms,
        },
    )
