"""SPARK-19361: the offsets-increment-by-one assumption vs compaction
(Table 6, "wrong API assumptions")."""

from __future__ import annotations

from repro.errors import OffsetOutOfRangeError
from repro.kafkalite.broker import Broker
from repro.kafkalite.consumer import NaiveOffsetConsumer, SeekingConsumer
from repro.scenarios.base import ScenarioOutcome

__all__ = ["replay_spark_19361"]


def replay_spark_19361(
    *, compact: bool = True, fixed: bool = False, records: int = 12
) -> ScenarioOutcome:
    """Produce keyed records, optionally compact, then consume.

    The naive consumer (Spark's historical assumption) crashes at the
    first offset hole; the seeking consumer reads every surviving
    record.
    """
    broker = Broker()
    broker.create_topic("events")
    log = broker.partition("events")
    for index in range(records):
        # repeated keys so compaction removes predecessors
        broker.produce("events", f"v{index}", key=f"k{index % 3}")
    removed = log.compact() if compact else 0

    consumer = SeekingConsumer(log) if fixed else NaiveOffsetConsumer(log)
    failed = False
    symptom = "stream consumed"
    consumed = 0
    try:
        consumed = len(consumer.poll_all())
    except OffsetOutOfRangeError as exc:
        failed = True
        symptom = f"Spark streaming job failure: {exc}"

    return ScenarioOutcome(
        scenario="spark streaming reads compacted kafka topic",
        jira="SPARK-19361",
        plane="data",
        failed=failed,
        symptom=symptom,
        metrics={
            "compact": compact,
            "fixed": fixed,
            "produced": records,
            "removed_by_compaction": removed,
            "consumed": consumed,
            "contiguous_offsets": log.is_contiguous(),
        },
    )
