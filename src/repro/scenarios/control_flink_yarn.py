"""Figure 1 / Figure 5: the Flink–YARN container-request storm
(FLINK-12342) and its three-stage fix history."""

from __future__ import annotations

from repro.common.events import EventLoop
from repro.flinklite.configs import REQUEST_INTERVAL_MS, FlinkConf
from repro.flinklite.yarn_connector import FixStage, FlinkYarnResourceManager
from repro.scenarios.base import ScenarioOutcome
from repro.yarnlite.resourcemanager import ResourceManager
from repro.yarnlite.resources import Resource

__all__ = ["replay_flink_12342", "run_fix_stage", "FIX_STAGES"]

#: the order Figure 5 documents
FIX_STAGES = (
    FixStage.BUGGY,
    FixStage.WORKAROUND_INTERVAL,
    FixStage.WORKAROUND_DECREMENT,
    FixStage.RESOLUTION_ASYNC,
)

#: "overloaded" once total requests exceed this multiple of the need
OVERLOAD_FACTOR_THRESHOLD = 5.0


def replay_flink_12342(
    *,
    needed_containers: int = 20,
    allocation_latency_ms: int = 300,
    request_interval_ms: int = 500,
    fix_stage: FixStage = FixStage.BUGGY,
    horizon_ms: int = 600_000,
) -> ScenarioOutcome:
    """Run the container-request loop until satisfied (or the horizon).

    With the buggy aggregation and ``allocation_latency_ms * queue``
    exceeding the request interval, total requests snowball far past
    ``needed_containers`` — the Figure 1 "4000+ requested" behaviour,
    scaled to the configured need.
    """
    loop = EventLoop()
    yarn = ResourceManager(loop, allocation_latency_ms=allocation_latency_ms)
    conf = FlinkConf()
    conf.set(REQUEST_INTERVAL_MS, request_interval_ms, source="scenario")
    flink = FlinkYarnResourceManager(
        loop,
        yarn,
        needed_containers=needed_containers,
        container_resource=Resource(1024, 1),
        conf=conf,
        fix_stage=fix_stage,
    )
    flink.start()
    loop.run_until(horizon_ms, max_events=200_000)

    overload = flink.overload_factor(needed_containers)
    failed = overload > OVERLOAD_FACTOR_THRESHOLD
    return ScenarioOutcome(
        scenario="flink-yarn container allocation",
        jira="FLINK-12342",
        plane="control",
        failed=failed,
        symptom=(
            f"requested {flink.total_requested} containers for a need of "
            f"{needed_containers} (overload factor {overload:.1f}x)"
        ),
        metrics={
            "fix_stage": fix_stage.value,
            "needed": needed_containers,
            "total_requested": flink.total_requested,
            "allocated": len(flink.allocated),
            "overload_factor": round(overload, 2),
            "satisfied": flink.satisfied,
            "sim_time_ms": loop.now_ms,
            "request_ticks": len(flink.request_log),
        },
        narrative=tuple(
            f"t={entry.time_ms}ms requested {entry.count} "
            f"(pending {entry.pending_after})"
            for entry in flink.request_log[:10]
        ),
    )


def run_fix_stage(stage: FixStage, **kwargs) -> ScenarioOutcome:
    """Figure 5: replay one stage of the fix history.

    Workaround #1 *is* the enlarged interval: unless the caller pins one,
    replaying that stage raises the re-request interval past the worst-
    case allocation time, which is exactly what operators did in 2019.
    """
    if (
        stage is FixStage.WORKAROUND_INTERVAL
        and "request_interval_ms" not in kwargs
    ):
        needed = kwargs.get("needed_containers", 20)
        latency = kwargs.get("allocation_latency_ms", 300)
        kwargs["request_interval_ms"] = needed * latency * 2
    return replay_flink_12342(fix_stage=stage, **kwargs)
