"""The paper's flagship incident (§1): the GCP User-ID quota outage.

    "The root cause was a discrepancy in the monitoring data — a
    deregistered monitor reported a value '0' for the resource usage to
    the quota system, which misinterpreted zero as the expected load of
    the User-ID system. Consequently, the quota system incorrectly
    decreased the resource quota of the User-ID system, resulting in a
    major GCP outage."

Replay: a service reports steady usage; mid-run its monitor is
deregistered (a maintenance action); the quota autoscaler keeps reading
the metric, now sees 0, and slashes the quota to the floor; the next
burst of real traffic is rejected — the outage. The fixed variant has
the monitoring interface report *absent* instead of zero, and the quota
system holds steady.
"""

from __future__ import annotations

from repro.common.events import EventLoop
from repro.metrics.quota import QuotaExceededError, QuotaSystem, ServiceUnderQuota
from repro.metrics.registry import AbsentPolicy, MetricsRegistry
from repro.scenarios.base import ScenarioOutcome

__all__ = ["replay_gcp_quota_incident"]


def replay_gcp_quota_incident(
    *,
    fixed: bool = False,
    steady_load: float = 1000.0,
    deregister_at_ms: int = 150_000,
    horizon_ms: int = 600_000,
) -> ScenarioOutcome:
    loop = EventLoop()
    monitoring = MetricsRegistry(system="monitoring")
    usage = monitoring.gauge(
        "user_id.usage", description="User-ID serving load"
    )
    usage.set(steady_load)

    service = ServiceUnderQuota("user-id", quota=steady_load * 1.25)
    quota_system = QuotaSystem(
        loop,
        service,
        monitoring,
        "user_id.usage",
        interval_ms=60_000,
        absent_policy=AbsentPolicy.ABSENT if fixed else AbsentPolicy.ZERO,
    )
    quota_system.start()

    # maintenance deregisters the monitor mid-run
    loop.call_at(
        deregister_at_ms,
        lambda: monitoring.deregister("user_id.usage"),
        "maintenance-deregister",
    )

    # real traffic keeps arriving at the steady rate
    outage_events: list[str] = []

    def traffic() -> None:
        try:
            service.handle_load(steady_load)
        except QuotaExceededError as exc:
            outage_events.append(f"t={loop.now_ms}ms {exc}")
        if loop.now_ms < horizon_ms:
            loop.call_after(60_000, traffic, "traffic")

    loop.call_after(30_000, traffic, "traffic")
    loop.run_until(horizon_ms)

    failed = bool(outage_events)
    return ScenarioOutcome(
        scenario="quota system misreads a deregistered monitor",
        jira="GCP-USERID-OUTAGE",
        plane="management",
        failed=failed,
        symptom=(
            f"major outage: {service.rejected_requests} requests rejected "
            f"after quota fell to {service.quota}"
            if failed
            else f"quota held at {service.quota}; no requests rejected"
        ),
        metrics={
            "fixed": fixed,
            "final_quota": service.quota,
            "steady_load": steady_load,
            "rejected_requests": service.rejected_requests,
            "quota_adjustments": len(quota_system.adjustments),
            "first_outage": outage_events[0] if outage_events else None,
        },
        narrative=tuple(
            f"t={at}ms usage_read={usage_read} -> quota={quota}"
            for at, usage_read, quota in quota_system.adjustments[:8]
        ),
    )
