"""Figure 2 / Figure 4: Spark vs HDFS on compressed-file length
(SPARK-27239) — the undefined-value discrepancy and its checking fix."""

from __future__ import annotations

from repro.errors import InvalidFileLengthError
from repro.scenarios.base import ScenarioOutcome
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode

__all__ = ["InputFileBlockHolder", "replay_spark_27239"]


class InputFileBlockHolder:
    """Spark's file-input bookkeeping, with the length precondition.

    The original check is ``require(length >= 0)``; the merged fix
    (Figure 4) widens it to ``require(length >= -1)`` so the compressed-
    file sentinel passes through.
    """

    def __init__(self, *, fixed: bool) -> None:
        self.fixed = fixed
        self.blocks: list[tuple[str, int]] = []

    def set(self, path: str, length: int) -> None:
        minimum = -1 if self.fixed else 0
        if length < minimum:
            raise InvalidFileLengthError(
                f"length ({length}) cannot be "
                + ("smaller than -1" if self.fixed else "negative")
            )
        self.blocks.append((path, length))


def replay_spark_27239(
    *, compressed: bool = True, fixed: bool = False
) -> ScenarioOutcome:
    """Write a file into HDFS-lite and run a Spark-style input scan."""
    filesystem = FileSystem(NameNode(), user="spark")
    payload = b"line-1\nline-2\nline-3\n" * 64
    filesystem.write("/data/input/events.log", payload, compressed=compressed)

    holder = InputFileBlockHolder(fixed=fixed)
    failed = False
    symptom = "job completed"
    records = 0
    status = filesystem.status("/data/input/events.log")
    try:
        holder.set(status.path, status.length)
        records = filesystem.read(status.path).count(b"\n")
    except InvalidFileLengthError as exc:
        failed = True
        symptom = f"Spark job failure: {exc}"

    return ScenarioOutcome(
        scenario="spark reads compressed HDFS file",
        jira="SPARK-27239",
        plane="data",
        failed=failed,
        symptom=symptom,
        metrics={
            "compressed": compressed,
            "fixed": fixed,
            "reported_length": status.length,
            "actual_bytes": len(payload),
            "records_read": records,
            "is_compressed_property": status.custom_property("is_compressed"),
        },
    )
