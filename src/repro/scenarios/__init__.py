"""Executable replays of the paper's named CSI failures (Figures 1-5 +
one scenario per additional discrepancy pattern)."""

from repro.scenarios.base import ScenarioOutcome
from repro.scenarios.config_spark_hive import replay_spark_16901
from repro.scenarios.control_flink_yarn import (
    FIX_STAGES,
    replay_flink_12342,
    run_fix_stage,
)
from repro.scenarios.control_flink_vcores import replay_flink_5542
from repro.scenarios.control_hbase_hdfs import replay_hbase_537
from repro.scenarios.control_yarn_hdfs import replay_yarn_2790
from repro.scenarios.data_flink_hive import replay_flink_17189
from repro.scenarios.data_partition_naming import replay_partition_inference
from repro.scenarios.data_spark_hdfs import InputFileBlockHolder, replay_spark_27239
from repro.scenarios.incident_gcp_quota import replay_gcp_quota_incident
from repro.scenarios.mgmt_flink_yarn import replay_flink_19141
from repro.scenarios.monitoring import replay_flink_887
from repro.scenarios.observability import replay_spark_3627, run_yarn_application
from repro.scenarios.registry import SCENARIOS, Scenario, by_jira, run_all
from repro.scenarios.streaming_spark_kafka import replay_spark_19361

__all__ = [
    "ScenarioOutcome",
    "replay_spark_16901",
    "FIX_STAGES",
    "replay_flink_12342",
    "run_fix_stage",
    "replay_flink_17189",
    "replay_partition_inference",
    "replay_flink_5542",
    "replay_hbase_537",
    "replay_yarn_2790",
    "InputFileBlockHolder",
    "replay_spark_27239",
    "replay_flink_19141",
    "replay_flink_887",
    "SCENARIOS",
    "Scenario",
    "by_jira",
    "run_all",
    "replay_spark_19361",
    "replay_gcp_quota_incident",
    "replay_spark_3627",
    "run_yarn_application",
]
