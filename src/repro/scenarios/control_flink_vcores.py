"""FLINK-5542: vcore API used in the wrong invocation context."""

from __future__ import annotations

from repro.flinklite.vcores import ClusterInfo, cluster_vcores, local_vcores
from repro.scenarios.base import ScenarioOutcome

__all__ = ["replay_flink_5542"]


def replay_flink_5542(
    *,
    fixed: bool = False,
    requested_parallelism: int = 32,
    nodes: int = 8,
    vcores_per_node: int = 8,
) -> ScenarioOutcome:
    """Size a job's parallelism against 'available' vcores.

    The buggy path calls the local-context API while validating a
    cluster submission, sees 4 cores on a 64-core cluster, and rejects
    the job; the fixed path asks YARN for the aggregate.
    """
    cluster = ClusterInfo(local_machine_vcores=4)
    for _ in range(nodes):
        cluster.add_node(vcores_per_node)

    available = (
        cluster_vcores(cluster) if fixed else local_vcores(cluster)
    )
    accepted = requested_parallelism <= available
    failed = not accepted and requested_parallelism <= cluster.total_vcores

    return ScenarioOutcome(
        scenario="flink validates job parallelism against vcores",
        jira="FLINK-5542",
        plane="control",
        failed=failed,
        symptom=(
            f"job rejected: parallelism {requested_parallelism} > "
            f"'available' {available} vcores (cluster actually has "
            f"{cluster.total_vcores})"
            if failed
            else f"job accepted with parallelism {requested_parallelism}"
        ),
        metrics={
            "fixed": fixed,
            "requested_parallelism": requested_parallelism,
            "reported_available": available,
            "actual_cluster_vcores": cluster.total_vcores,
            "accepted": accepted,
        },
    )
