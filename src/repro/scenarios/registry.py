"""Registry of executable failure replays, keyed like the paper's cases."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.flinklite.yarn_connector import FixStage
from repro.scenarios.base import ScenarioOutcome
from repro.scenarios.config_spark_hive import replay_spark_16901
from repro.scenarios.control_flink_yarn import replay_flink_12342
from repro.scenarios.control_flink_vcores import replay_flink_5542
from repro.scenarios.control_hbase_hdfs import replay_hbase_537
from repro.scenarios.control_yarn_hdfs import replay_yarn_2790
from repro.scenarios.data_flink_hive import replay_flink_17189
from repro.scenarios.data_partition_naming import replay_partition_inference
from repro.scenarios.data_spark_hdfs import replay_spark_27239
from repro.scenarios.incident_gcp_quota import replay_gcp_quota_incident
from repro.scenarios.mgmt_flink_yarn import replay_flink_19141
from repro.scenarios.monitoring import replay_flink_887
from repro.scenarios.observability import replay_spark_3627
from repro.scenarios.streaming_spark_kafka import replay_spark_19361

__all__ = ["Scenario", "SCENARIOS", "run_all", "by_jira"]


@dataclass(frozen=True)
class Scenario:
    jira: str
    plane: str
    upstream: str
    downstream: str
    pattern: str  # the Table 6/7/8 discrepancy pattern it exemplifies
    run_failing: Callable[[], ScenarioOutcome]
    run_fixed: Callable[[], ScenarioOutcome]


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        jira="FLINK-12342",
        plane="control",
        upstream="Flink",
        downstream="YARN",
        pattern="API semantic violation (sync assumption on async API)",
        run_failing=lambda: replay_flink_12342(),
        run_fixed=lambda: replay_flink_12342(
            fix_stage=FixStage.RESOLUTION_ASYNC
        ),
    ),
    Scenario(
        jira="SPARK-27239",
        plane="data",
        upstream="Spark",
        downstream="HDFS",
        pattern="Undefined values (-1 as compressed-file length)",
        run_failing=lambda: replay_spark_27239(),
        run_fixed=lambda: replay_spark_27239(fixed=True),
    ),
    Scenario(
        jira="FLINK-17189",
        plane="data",
        upstream="Flink",
        downstream="Hive",
        pattern="Type confusion (PROCTIME stored as plain TIMESTAMP)",
        run_failing=lambda: replay_flink_17189(),
        run_fixed=lambda: replay_flink_17189(fixed=True),
    ),
    Scenario(
        jira="PARTITION-TYPE-INFERENCE",
        plane="data",
        upstream="Spark",
        downstream="Hive",
        pattern="Address/naming discrepancy (partition values in paths)",
        run_failing=lambda: replay_partition_inference(),
        run_fixed=lambda: replay_partition_inference(fixed=True),
    ),
    Scenario(
        jira="FLINK-19141",
        plane="management",
        upstream="Flink",
        downstream="YARN",
        pattern="Inconsistent configuration context (per-scheduler keys)",
        run_failing=lambda: replay_flink_19141(),
        run_fixed=lambda: replay_flink_19141(scheduler="capacity"),
    ),
    Scenario(
        jira="FLINK-887",
        plane="management",
        upstream="Flink",
        downstream="YARN",
        pattern="Monitoring data driving kill actions",
        run_failing=lambda: replay_flink_887(),
        run_fixed=lambda: replay_flink_887(heap_cutoff_ratio=None),
    ),
    Scenario(
        jira="SPARK-19361",
        plane="data",
        upstream="Spark",
        downstream="Kafka",
        pattern="Wrong API assumptions (contiguous offsets)",
        run_failing=lambda: replay_spark_19361(),
        run_fixed=lambda: replay_spark_19361(fixed=True),
    ),
    Scenario(
        jira="SPARK-16901",
        plane="management",
        upstream="Spark",
        downstream="Hive",
        pattern="Unexpected configuration override",
        run_failing=lambda: replay_spark_16901(),
        run_fixed=lambda: replay_spark_16901(fixed=True),
    ),
    Scenario(
        jira="GCP-USERID-OUTAGE",
        plane="management",
        upstream="Quota system",
        downstream="Monitoring system",
        pattern="Monitoring discrepancy (deregistered monitor reads as 0)",
        run_failing=lambda: replay_gcp_quota_incident(),
        run_fixed=lambda: replay_gcp_quota_incident(fixed=True),
    ),
    Scenario(
        jira="SPARK-3627",
        plane="management",
        upstream="Spark",
        downstream="YARN",
        pattern="Reduced observability (wrong status reported)",
        run_failing=lambda: replay_spark_3627(),
        run_fixed=lambda: replay_spark_3627(fixed=True),
    ),
    Scenario(
        jira="FLINK-5542",
        plane="control",
        upstream="Flink",
        downstream="YARN",
        pattern="API misuse: wrong invocation context (local vs global)",
        run_failing=lambda: replay_flink_5542(),
        run_fixed=lambda: replay_flink_5542(fixed=True),
    ),
    Scenario(
        jira="HBASE-537",
        plane="control",
        upstream="HBase",
        downstream="HDFS",
        pattern="State/resource inconsistency (safe mode unawareness)",
        run_failing=lambda: replay_hbase_537(),
        run_fixed=lambda: replay_hbase_537(wait_for_safe_mode_exit=True),
    ),
    Scenario(
        jira="YARN-2790",
        plane="control",
        upstream="YARN",
        downstream="HDFS",
        pattern="Token expiry window (fix reduces, not removes)",
        run_failing=lambda: replay_yarn_2790(),
        run_fixed=lambda: replay_yarn_2790(renew_close_to_use=True),
    ),
)


def by_jira(jira: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.jira == jira:
            return scenario
    raise KeyError(f"no scenario for {jira}")


def run_all(fixed: bool = False) -> list[ScenarioOutcome]:
    return [
        (scenario.run_fixed if fixed else scenario.run_failing)()
        for scenario in SCENARIOS
    ]
