"""HBASE-537: inconsistent state views — HBase assumes the HDFS
NameNode is ready while it is still in safe mode (Table 8,
state/resource inconsistency)."""

from __future__ import annotations

from repro.errors import SafeModeException
from repro.hbaselite.master import HBaseMaster
from repro.scenarios.base import ScenarioOutcome
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import NameNode

__all__ = ["replay_hbase_537"]


def replay_hbase_537(*, wait_for_safe_mode_exit: bool = False) -> ScenarioOutcome:
    """Start the HBase master right after the NameNode answers.

    The NameNode responds to reads during safe mode, so the master's
    liveness probe succeeds — but initializing the /hbase layout is a
    mutation and is rejected. The fixed behaviour polls safe mode
    explicitly before mutating.
    """
    namenode = NameNode()
    namenode.enter_safe_mode()
    filesystem = FileSystem(namenode, user="hbase")

    # the (successful) liveness probe HBase used
    probe_ok = filesystem.exists("/")

    master = HBaseMaster(filesystem)
    failed = False
    symptom = "HBase master started; WAL directory initialized"
    try:
        master.start(wait_for_writes=wait_for_safe_mode_exit)
    except SafeModeException as exc:
        failed = True
        symptom = f"HBase startup failure: {exc}"

    return ScenarioOutcome(
        scenario="hbase master starts during namenode safe mode",
        jira="HBASE-537",
        plane="control",
        failed=failed,
        symptom=symptom,
        metrics={
            "probe_succeeded": probe_ok,
            "waited_for_safe_mode": wait_for_safe_mode_exit,
            "safe_mode_at_write": namenode.safe_mode,
            "master_started": master.started,
        },
    )
