"""The namespace server of the HDFS-like store.

Implements the minimum surface the paper's scenarios exercise: a
hierarchical namespace, safe mode (HBASE-537: an upstream wrongly
assumed the namenode was ready while it was in safe mode), and
delegation tokens with expiry (YARN-2790: token renewal raced with the
operation consuming it).
"""

from __future__ import annotations

import functools
import posixpath
from dataclasses import dataclass, field

from repro.errors import (
    FileNotFoundInStorageError,
    SafeModeException,
    StorageError,
)
from repro.storage.files import FileStatus, INodeFile

__all__ = ["DelegationToken", "NameNode"]


@functools.lru_cache(maxsize=4096)
def _normalize_path(path: str) -> str:
    """Absolute-path check + ``normpath``, memoized (paths recur heavily)."""
    if not path.startswith("/"):
        raise StorageError(f"path must be absolute: {path!r}")
    return posixpath.normpath(path)


#: warehouse layouts revisit the same handful of directories constantly
_dirname = functools.lru_cache(maxsize=4096)(posixpath.dirname)


@dataclass
class DelegationToken:
    """A bearer token for access on behalf of a user, with an expiry."""

    token_id: int
    renewer: str
    issued_at_ms: int
    expires_at_ms: int
    cancelled: bool = False

    def is_valid(self, now_ms: int) -> bool:
        return not self.cancelled and now_ms < self.expires_at_ms


@dataclass
class NameNode:
    """Single-node namespace: directories, files, safe mode, tokens."""

    cluster: str = "hdfs"
    safe_mode: bool = False
    token_lifetime_ms: int = 86_400_000
    _files: dict[str, INodeFile] = field(default_factory=dict)
    _dirs: set[str] = field(default_factory=lambda: {"/"})
    #: direct-children index (files and directories, as full paths),
    #: maintained by every namespace mutation so listing and recursive
    #: deletion need not scan the whole namespace
    _children: dict[str, set[str]] = field(default_factory=dict)
    _tokens: dict[int, DelegationToken] = field(default_factory=dict)
    _next_token_id: int = 1
    clock_ms: int = 0

    # -- safe mode -----------------------------------------------------

    def enter_safe_mode(self) -> None:
        self.safe_mode = True

    def leave_safe_mode(self) -> None:
        self.safe_mode = False

    def _check_writable(self, operation: str) -> None:
        if self.safe_mode:
            raise SafeModeException(
                f"cannot {operation}: name node is in safe mode"
            )

    # -- namespace -----------------------------------------------------

    _normalize = staticmethod(_normalize_path)

    def _link(self, path: str) -> None:
        if path != "/":
            self._children.setdefault(_dirname(path), set()).add(path)

    def _unlink(self, path: str) -> None:
        if path != "/":
            kids = self._children.get(_dirname(path))
            if kids is not None:
                kids.discard(path)

    def mkdirs(self, path: str) -> None:
        self._check_writable("mkdirs")
        path = self._normalize(path)
        if path in self._dirs:
            # mkdirs only ever adds a directory together with all its
            # ancestors, so an existing directory needs no walk.
            return
        parts = path.strip("/").split("/") if path != "/" else []
        current = "/"
        for part in parts:
            current = posixpath.join(current, part)
            if current in self._files:
                raise StorageError(f"{current} exists and is a file")
            if current not in self._dirs:
                self._dirs.add(current)
                self._link(current)

    def create(
        self,
        path: str,
        data: bytes,
        *,
        compressed: bool = False,
        encrypted: bool = False,
        local_only: bool = False,
        owner: str = "hdfs",
        overwrite: bool = False,
        properties: dict[str, object] | None = None,
    ) -> FileStatus:
        self._check_writable("create")
        path = self._normalize(path)
        if path in self._dirs:
            raise StorageError(f"{path} exists and is a directory")
        if path in self._files and not overwrite:
            raise StorageError(f"{path} already exists")
        self.mkdirs(_dirname(path) or "/")
        if path not in self._files:
            self._link(path)
        node = INodeFile(
            path=path,
            data=data,
            compressed=compressed,
            encrypted=encrypted,
            local_only=local_only,
            owner=owner,
            modification_time_ms=self.clock_ms,
            extra_properties=dict(properties or {}),
        )
        self._files[path] = node
        return node.status()

    def append(self, path: str, data: bytes) -> FileStatus:
        self._check_writable("append")
        node = self._lookup_file(path)
        node.data += data
        node.modification_time_ms = self.clock_ms
        node._status = None
        return node.status()

    def open(self, path: str) -> bytes:
        """Read the logical (decompressed) payload."""
        return self._lookup_file(path).data

    def open_raw(self, path: str) -> bytes:
        """Read the at-rest payload (compressed form for compressed files)."""
        return self._lookup_file(path).stored_payload()

    def delete(self, path: str, recursive: bool = False) -> bool:
        self._check_writable("delete")
        path = self._normalize(path)
        if path in self._files:
            del self._files[path]
            self._unlink(path)
            return True
        if path in self._dirs:
            children = self._list_children(path)
            if children and not recursive:
                raise StorageError(f"{path} is a non-empty directory")
            for child in children:
                self.delete(child, recursive=True)
            if path != "/":
                self._dirs.discard(path)
                self._children.pop(path, None)
                self._unlink(path)
            return True
        return False

    def rename(self, src: str, dst: str) -> None:
        self._check_writable("rename")
        node = self._lookup_file(src)
        dst = self._normalize(dst)
        if dst in self._files or dst in self._dirs:
            raise StorageError(f"rename target {dst} exists")
        del self._files[node.path]
        self._unlink(node.path)
        node.path = dst
        node._status = None
        self.mkdirs(_dirname(dst) or "/")
        self._files[dst] = node
        self._link(dst)

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        return path in self._files or path in self._dirs

    def get_file_status(self, path: str) -> FileStatus:
        path = self._normalize(path)
        if path in self._dirs:
            return FileStatus(path=path, length=0, is_directory=True)
        return self._lookup_file(path).status()

    def list_status(self, path: str) -> list[FileStatus]:
        path = self._normalize(path)
        if path in self._files:
            return [self._lookup_file(path).status()]
        if path not in self._dirs:
            raise FileNotFoundInStorageError(path)
        return [
            self.get_file_status(child)
            for child in sorted(self._list_children(path))
        ]

    def set_property(self, path: str, name: str, value: object) -> None:
        node = self._lookup_file(path)
        node.extra_properties[name] = value
        node._status = None

    def _list_children(self, path: str) -> list[str]:
        return sorted(self._children.get(path, ()))

    def _lookup_file(self, path: str) -> INodeFile:
        path = self._normalize(path)
        node = self._files.get(path)
        if node is None:
            raise FileNotFoundInStorageError(path)
        return node

    # -- delegation tokens ----------------------------------------------

    def issue_token(self, renewer: str, lifetime_ms: int | None = None) -> DelegationToken:
        lifetime = lifetime_ms if lifetime_ms is not None else self.token_lifetime_ms
        token = DelegationToken(
            token_id=self._next_token_id,
            renewer=renewer,
            issued_at_ms=self.clock_ms,
            expires_at_ms=self.clock_ms + lifetime,
        )
        self._next_token_id += 1
        self._tokens[token.token_id] = token
        return token

    def renew_token(self, token_id: int, lifetime_ms: int | None = None) -> DelegationToken:
        token = self._tokens.get(token_id)
        if token is None or token.cancelled:
            raise StorageError(f"token {token_id} unknown or cancelled")
        lifetime = lifetime_ms if lifetime_ms is not None else self.token_lifetime_ms
        token.expires_at_ms = self.clock_ms + lifetime
        return token

    def verify_token(self, token_id: int) -> None:
        token = self._tokens.get(token_id)
        if token is None or not token.is_valid(self.clock_ms):
            raise StorageError(f"token {token_id} invalid or expired")
