"""HDFS-like storage substrate."""

from repro.storage.files import COMPRESSED_LENGTH_SENTINEL, FileStatus, INodeFile
from repro.storage.filesystem import FileSystem
from repro.storage.namenode import DelegationToken, NameNode

__all__ = [
    "COMPRESSED_LENGTH_SENTINEL",
    "FileStatus",
    "INodeFile",
    "FileSystem",
    "DelegationToken",
    "NameNode",
]
