"""File metadata for the HDFS-like store.

The paper's Figure 2 failure (SPARK-27239) hinges on a *custom metadata*
convention: HDFS reports ``length == -1`` for files whose payload is
stored compressed, overloading the POSIX length field. Table 4 calls
such non-POSIX file properties "custom metadata" and attributes 8/61
data-plane failures to them, so the file model here carries an explicit
bag of custom properties in addition to the overloaded length.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

__all__ = ["COMPRESSED_LENGTH_SENTINEL", "FileStatus", "INodeFile"]

#: The sentinel the downstream store reports as the length of files whose
#: payload is compressed at rest. Upstream systems that assert
#: ``length >= 0`` crash on it (Figure 2).
COMPRESSED_LENGTH_SENTINEL = -1


@dataclass(frozen=True)
class FileStatus:
    """What a ``getFileStatus`` call returns to upstream systems."""

    path: str
    length: int
    is_directory: bool = False
    owner: str = "hdfs"
    permission: int = 0o644
    modification_time_ms: int = 0
    replication: int = 3
    #: Non-POSIX properties: ``is_compressed``, ``is_encrypted``,
    #: ``is_local``, ``storage_policy`` ... (Table 4, "custom metadata").
    custom: tuple[tuple[str, object], ...] = ()

    def custom_property(self, name: str, default: object = None) -> object:
        for key, value in self.custom:
            if key == name:
                return value
        return default


@dataclass
class INodeFile:
    """An in-namespace file: payload plus its at-rest representation."""

    path: str
    data: bytes = b""
    compressed: bool = False
    encrypted: bool = False
    local_only: bool = False
    owner: str = "hdfs"
    permission: int = 0o644
    modification_time_ms: int = 0
    extra_properties: dict[str, object] = field(default_factory=dict)
    #: cached ``status()`` result; every mutation resets it to ``None``
    _status: "FileStatus | None" = field(default=None, repr=False, compare=False)

    def stored_payload(self) -> bytes:
        if self.compressed:
            return zlib.compress(self.data)
        return self.data

    def reported_length(self) -> int:
        """Length as reported to clients — overloaded for compressed files."""
        if self.compressed:
            return COMPRESSED_LENGTH_SENTINEL
        return len(self.data)

    def status(self) -> FileStatus:
        if self._status is not None:
            return self._status
        custom: dict[str, object] = {
            "is_compressed": self.compressed,
            "is_encrypted": self.encrypted,
            "is_local": self.local_only,
        }
        custom.update(self.extra_properties)
        self._status = FileStatus(
            path=self.path,
            length=self.reported_length(),
            is_directory=False,
            owner=self.owner,
            permission=self.permission,
            modification_time_ms=self.modification_time_ms,
            custom=tuple(sorted(custom.items())),
        )
        return self._status
