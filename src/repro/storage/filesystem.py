"""Client-facing filesystem facade over a :class:`NameNode`.

Upstream systems (sparklite, hivelite, yarnlite) talk to storage through
this API rather than the namenode directly, mirroring the Hadoop
``FileSystem`` abstraction the paper's file-plane failures flow through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.files import FileStatus
from repro.storage.namenode import DelegationToken, NameNode

__all__ = ["FileSystem"]


@dataclass
class FileSystem:
    """A thin, user-scoped handle on the namespace."""

    namenode: NameNode
    user: str = "client"

    def mkdirs(self, path: str) -> None:
        self.namenode.mkdirs(path)

    def write(
        self,
        path: str,
        data: bytes,
        *,
        compressed: bool = False,
        encrypted: bool = False,
        local_only: bool = False,
        overwrite: bool = True,
        properties: dict[str, object] | None = None,
    ) -> FileStatus:
        return self.namenode.create(
            path,
            data,
            compressed=compressed,
            encrypted=encrypted,
            local_only=local_only,
            owner=self.user,
            overwrite=overwrite,
            properties=properties,
        )

    def append(self, path: str, data: bytes) -> FileStatus:
        return self.namenode.append(path, data)

    def read(self, path: str) -> bytes:
        return self.namenode.open(path)

    def read_raw(self, path: str) -> bytes:
        return self.namenode.open_raw(path)

    def delete(self, path: str, recursive: bool = False) -> bool:
        return self.namenode.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        self.namenode.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def status(self, path: str) -> FileStatus:
        return self.namenode.get_file_status(path)

    def listdir(self, path: str) -> list[FileStatus]:
        return self.namenode.list_status(path)

    def issue_token(self, lifetime_ms: int | None = None) -> DelegationToken:
        return self.namenode.issue_token(self.user, lifetime_ms)
