"""Typed test-input generation for the §8 cross-testing case study.

The paper generates inputs "based on the publicly documented
specifications of each interface", covering every storable data type
with both valid and invalid values: **422 inputs in total, 210 valid and
212 invalid**. This module reproduces that corpus deterministically:
a hand-curated set of boundary/interesting cases per type, padded with
parameterized series to land on exactly the paper's counts.

Each input carries *both* spellings the harness needs — a SQL literal
expression (for the SparkSQL and HiveQL interfaces) and a raw Python
value (for the DataFrame interface).
"""

from __future__ import annotations

import datetime
import decimal
import functools
from dataclasses import dataclass, field

from repro.common.types import DataType, parse_type

__all__ = ["TestInput", "generate_inputs", "VALID_COUNT", "INVALID_COUNT"]

VALID_COUNT = 210
INVALID_COUNT = 212


@dataclass(frozen=True)
class TestInput:
    """One cross-test input: a declared column type plus a value."""

    input_id: int
    type_text: str
    sql_literal: str
    py_value: object
    valid: bool
    description: str = ""
    #: the value a correct round trip should return (may differ from
    #: py_value, e.g. CHAR padding); ``None`` means "same as py_value".
    expected: object = field(default=None, compare=False)

    @functools.cached_property
    def column_type(self) -> DataType:
        # cached per input: classification and the oracles inspect the
        # column type of every trial, so even a memoized parse is hot.
        # (cached_property writes the instance __dict__ directly, which
        # a frozen dataclass permits; later reads bypass the descriptor.)
        return parse_type(self.type_text)

    @property
    def expected_value(self) -> object:
        return self.py_value if self.expected is None else self.expected


def _sql_str(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def _d(text: str) -> decimal.Decimal:
    return decimal.Decimal(text)


def _valid_base() -> list[tuple[str, str, object, str, object]]:
    """(type, sql, py, description[, expected]) rows for valid inputs."""
    rows: list[tuple] = []

    def add(type_text, sql, py, desc, expected=None):
        rows.append((type_text, sql, py, desc, expected))

    # booleans
    add("boolean", "TRUE", True, "boolean true")
    add("boolean", "FALSE", False, "boolean false")

    # integrals: zero, both boundaries, a small positive/negative
    for type_text, suffix, lo, hi in (
        ("tinyint", "Y", -128, 127),
        ("smallint", "S", -32768, 32767),
        ("int", "", -2147483648, 2147483647),
        ("bigint", "L", -9223372036854775808, 9223372036854775807),
    ):
        for value in (0, 1, -1, hi, lo):
            add(type_text, f"{value}{suffix}", value, f"{type_text} {value}")

    # floats and doubles, including IEEE specials
    for type_text in ("float", "double"):
        fn = type_text
        add(type_text, "0.0D" if fn == "double" else "0.0F", 0.0, f"{fn} zero")
        add(type_text, "1.5D" if fn == "double" else "1.5F", 1.5, f"{fn} 1.5")
        add(
            type_text,
            "-3.25D" if fn == "double" else "-3.25F",
            -3.25,
            f"{fn} negative",
        )
        add(type_text, f"{fn}('NaN')", float("nan"), f"{fn} NaN")
        add(type_text, f"{fn}('Infinity')", float("inf"), f"{fn} +Inf")
        add(type_text, f"{fn}('-Infinity')", float("-inf"), f"{fn} -Inf")
        add(type_text, "1.0E10D" if fn == "double" else "1.0E10F", 1.0e10, f"{fn} 1e10")

    # decimals across shapes
    for text in ("0.00", "123.45", "-99999999.99", "1.50", "10.00"):
        add("decimal(10,2)", f"CAST({text} AS decimal(10,2))", _d(text), f"decimal(10,2) {text}")
    for text in ("0.000000000000000001", "1.000000000000000000", "-42.5"):
        add(
            "decimal(38,18)",
            f"CAST('{text}' AS decimal(38,18))",
            _d(text).quantize(_d("1e-18")),
            f"decimal(38,18) {text}",
        )
    for text in ("0", "99999", "-99999"):
        add("decimal(5,0)", f"CAST({text} AS decimal(5,0))", _d(text), f"decimal(5,0) {text}")
    # SPARK-39158 shape: fewer fractional digits than the declared scale
    add("decimal(10,3)", "CAST(3.1 AS decimal(10,3))", _d("3.1"), "decimal sub-scale 3.1")
    add("decimal(10,3)", "CAST(0.001 AS decimal(10,3))", _d("0.001"), "decimal 0.001")
    add("decimal(10,3)", "CAST(-2.5 AS decimal(10,3))", _d("-2.5"), "decimal -2.5")

    # strings
    for text, desc in (
        ("", "empty string"),
        ("hello", "ascii"),
        ("héllo wörld", "latin accents"),
        ("数据平面", "CJK"),
        ("🙂🙃", "emoji"),
        ("it's", "embedded quote"),
        ("  padded  ", "whitespace"),
        ("NULL", "the text NULL"),
        ("a" * 100, "long string"),
    ):
        add("string", _sql_str(text), text, f"string {desc}")

    # char / varchar (expected value is the padded form for CHAR)
    add("char(5)", "'ab'", "ab", "char(5) short", "ab   ")
    add("char(5)", "'abcde'", "abcde", "char(5) exact", "abcde")
    add("char(1)", "'x'", "x", "char(1)", "x")
    add("varchar(3)", "'a'", "a", "varchar(3) short")
    add("varchar(3)", "'abc'", "abc", "varchar(3) exact")
    add("varchar(10)", "'hello'", "hello", "varchar(10)")

    # binary
    add("binary", "X'00FF'", b"\x00\xff", "binary bytes")
    add("binary", "X''", b"", "empty binary")
    add("binary", "BINARY 'abc'", b"abc", "utf8 binary")

    # dates
    for text in ("2020-01-01", "1970-01-01", "9999-12-31", "0001-01-01", "2020-02-29"):
        add("date", f"DATE '{text}'", datetime.date.fromisoformat(text), f"date {text}")

    # timestamps
    for text in (
        "2020-01-01 00:00:00",
        "1970-01-01 00:00:00",
        "2038-01-19 03:14:07",
        "1999-12-31 23:59:59.999999",
    ):
        add(
            "timestamp",
            f"TIMESTAMP '{text}'",
            datetime.datetime.fromisoformat(text),
            f"timestamp {text}",
        )
    for text in ("2020-06-15 12:30:00", "1970-01-01 00:00:01", "2100-01-01 00:00:00"):
        add(
            "timestamp_ntz",
            f"TIMESTAMP_NTZ '{text}'",
            datetime.datetime.fromisoformat(text),
            f"timestamp_ntz {text}",
        )

    # arrays
    add("array<int>", "array(1, 2, 3)", [1, 2, 3], "int array")
    add("array<int>", "array(1, NULL, 3)", [1, None, 3], "array with null")
    add("array<string>", "array('a', 'b')", ["a", "b"], "string array")
    add("array<double>", "array(1.5D, 2.5D)", [1.5, 2.5], "double array")

    # maps — including the non-string-key shape of HIVE-26531 (#4)
    add("map<string,int>", "map('a', 1, 'b', 2)", {"a": 1, "b": 2}, "string-key map")
    add("map<string,string>", "map('k', 'v')", {"k": "v"}, "string map")
    add("map<string,int>", "map('k', NULL)", {"k": None}, "map null value")
    add("map<int,string>", "map(1, 'x')", {1: "x"}, "int-key map (HIVE-26531)")
    add("map<bigint,double>", "map(10L, 0.5D)", {10: 0.5}, "bigint-key map")

    # structs — including mixed-case nested names (#14)
    add(
        "struct<a:int,b:string>",
        "named_struct('a', 1, 'b', 'x')",
        [1, "x"],
        "simple struct",
    )
    add(
        "struct<Aa:int,bB:string>",
        "named_struct('Aa', 2, 'bB', 'y')",
        [2, "y"],
        "mixed-case struct field names (SPARK-40637)",
    )

    # nested compositions
    add(
        "array<array<int>>",
        "array(array(1, 2), array(3))",
        [[1, 2], [3]],
        "nested array",
    )
    add(
        "map<string,array<int>>",
        "map('xs', array(1, 2))",
        {"xs": [1, 2]},
        "map of arrays",
    )
    add(
        "struct<inner:array<string>>",
        "named_struct('inner', array('p', 'q'))",
        [["p", "q"]],
        "struct of array",
    )
    return rows


def _invalid_base() -> list[tuple[str, str, object, str]]:
    """(type, sql, py, description) rows for invalid inputs."""
    rows: list[tuple] = []

    def add(type_text, sql, py, desc):
        rows.append((type_text, sql, py, desc, None))

    # integral overflow (both directions, several magnitudes)
    for type_text, hi, lo in (
        ("tinyint", 127, -128),
        ("smallint", 32767, -32768),
        ("int", 2147483647, -2147483648),
        ("bigint", 9223372036854775807, -9223372036854775808),
    ):
        for value in (hi + 1, lo - 1, hi * 10 + 5 if hi < 2**62 else hi + 12345):
            add(type_text, str(value), value, f"{type_text} overflow {value}")

    # malformed numeric strings into numeric columns
    for type_text in ("tinyint", "smallint", "int", "bigint", "double", "decimal(10,2)"):
        add(type_text, "'12abc'", "12abc", f"{type_text} malformed string")
        add(type_text, "'--3'", "--3", f"{type_text} malformed string 2")

    # decimal precision/scale violations (SPARK-40439 shape, #5)
    for text in ("123456789.999", "99999999999.99", "-123456789.001"):
        add("decimal(5,2)", text, _d(text), f"decimal(5,2) overflow {text}")
    add("decimal(10,2)", "12345678901234567890.55", _d("12345678901234567890.55"),
        "decimal(10,2) precision overflow")
    add("decimal(38,18)", "CAST('1e30' AS decimal(38,18))", _d("1e30"),
        "decimal(38,18) overflow")

    # invalid booleans (#12 / SPARK-40629 shape)
    for text in ("maybe", "tru", "yess", "2", "on"):
        add("boolean", _sql_str(text), text, f"boolean invalid {text!r}")

    # invalid dates (#9 / SPARK-40525 shape)
    for text in ("2021-02-30", "2021-13-01", "not-a-date", "2021/01/01", "0000-01-01"):
        add("date", f"DATE '{text}'", text, f"date invalid {text!r}")

    # invalid timestamps
    for text in ("2021-02-30 00:00:00", "nope", "2021-01-01 25:61:00"):
        add("timestamp", f"TIMESTAMP '{text}'", text, f"timestamp invalid {text!r}")

    # char/varchar length violations (#13/#15 shape)
    add("char(5)", "'abcdefgh'", "abcdefgh", "char(5) overlong")
    add("char(1)", "'xy'", "xy", "char(1) overlong")
    add("varchar(3)", "'abcdef'", "abcdef", "varchar(3) overlong (SPARK-40630)")
    add("varchar(10)", _sql_str("z" * 32), "z" * 32, "varchar(10) overlong")

    # kind mismatches
    add("array<int>", "'not-an-array'", "not-an-array", "string into array")
    add("map<string,int>", "42", 42, "int into map")
    add("struct<a:int,b:string>", "7", 7, "int into struct")
    add("int", "DATE '2020-01-01'", datetime.date(2020, 1, 1), "date into int")
    add("date", "12345", 12345, "int into date")
    add("boolean", "array(1)", [1], "array into boolean")

    # float strings that only look numeric
    add("double", "'one.two'", "one.two", "double malformed")
    add("float", "'1.2.3'", "1.2.3", "float malformed")
    return rows


def generate_inputs() -> list[TestInput]:
    """The full deterministic corpus: 210 valid + 212 invalid inputs."""
    valid_rows = _valid_base()
    invalid_rows = _invalid_base()

    pad = 0
    while len(valid_rows) < VALID_COUNT:
        # deterministic filler series, cycling over representative types
        kind = pad % 6
        if kind == 0:
            value = 1000 + pad
            valid_rows.append(("int", str(value), value, f"filler int {value}", None))
        elif kind == 1:
            value = 10_000_000_000 + pad
            valid_rows.append(
                ("bigint", f"{value}L", value, f"filler bigint {value}", None)
            )
        elif kind == 2:
            text = f"{pad}.25"
            valid_rows.append(
                (
                    "decimal(10,2)",
                    f"CAST({text} AS decimal(10,2))",
                    _d(text),
                    f"filler decimal {text}",
                    None,
                )
            )
        elif kind == 3:
            text = f"s-{pad:04d}"
            valid_rows.append(
                ("string", _sql_str(text), text, f"filler string {text}", None)
            )
        elif kind == 4:
            day = datetime.date(2001, 1, 1) + datetime.timedelta(days=pad * 37)
            valid_rows.append(
                ("date", f"DATE '{day.isoformat()}'", day, f"filler date {day}", None)
            )
        else:
            value = round(pad * 0.5 + 0.125, 4)
            valid_rows.append(
                ("double", f"{value}D", value, f"filler double {value}", None)
            )
        pad += 1

    pad = 0
    while len(invalid_rows) < INVALID_COUNT:
        kind = pad % 4
        if kind == 0:
            value = 128 + pad
            invalid_rows.append(
                ("tinyint", str(value), value, f"filler tinyint overflow {value}", None)
            )
        elif kind == 1:
            value = 32768 + pad * 11
            invalid_rows.append(
                ("smallint", str(value), value, f"filler smallint overflow {value}", None)
            )
        elif kind == 2:
            text = f"bad-{pad}"
            invalid_rows.append(
                ("int", _sql_str(text), text, f"filler malformed int {text!r}", None)
            )
        else:
            text = f"9{pad:03d}.999"
            invalid_rows.append(
                (
                    "decimal(5,2)",
                    text,
                    _d(text),
                    f"filler decimal overflow {text}",
                    None,
                )
            )
        pad += 1

    valid_rows = valid_rows[:VALID_COUNT]
    invalid_rows = invalid_rows[:INVALID_COUNT]

    inputs: list[TestInput] = []
    for index, (type_text, sql, py, desc, expected) in enumerate(valid_rows):
        inputs.append(
            TestInput(index, type_text, sql, py, True, desc, expected)
        )
    offset = len(inputs)
    for index, (type_text, sql, py, desc, expected) in enumerate(invalid_rows):
        inputs.append(
            TestInput(offset + index, type_text, sql, py, False, desc, expected)
        )
    return inputs
