"""The coverage-distilled smoke corpus: §8 in a third of a second.

The full matrix replays 8 plans x 3 formats x 422 curated inputs. For
CI smoke jobs (chaos diffs, fuzz determinism diffs, quick local loops)
that is mostly redundant: discrepancy classification is independent per
input bucket, so any input subset preserves exactly the per-input
evidence it contains. This module commits the *minimal* such subset —
a greedy set cover over the classification evidence, picking at each
step the input whose bucket witnesses the most still-uncovered catalog
mechanisms (ties broken by smallest ``input_id``) — that still triggers
all 15 known discrepancy mechanisms.

``python -m repro.crosstest.smoke`` runs the distilled matrix and fails
unless every mechanism reproduces; ``--derive`` re-runs the full matrix
and recomputes the cover, failing if the committed ids have drifted
from what the corpus and classifiers actually produce.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.crosstest.harness import Trial
from repro.crosstest.values import TestInput, generate_inputs

__all__ = [
    "SMOKE_INPUT_IDS",
    "smoke_inputs",
    "derive_smoke_ids",
    "main",
]

#: The distilled corpus, derived by :func:`derive_smoke_ids` over the
#: full 422-input matrix and pinned by tests/crosstest/test_smoke_corpus
#: — regenerate with ``python -m repro.crosstest.smoke --derive`` after
#: any change to the value corpus or the classifiers.
SMOKE_INPUT_IDS = (2, 25, 26, 47, 59, 77, 87, 90, 210, 216, 232, 239, 244, 254)


def smoke_inputs() -> list[TestInput]:
    """The distilled inputs, in corpus order (a ``generate_inputs()``
    subsequence, so input ids and buckets match the full matrix)."""
    wanted = set(SMOKE_INPUT_IDS)
    return [i for i in generate_inputs() if i.input_id in wanted]


def derive_smoke_ids(trials: list[Trial]) -> tuple[int, ...]:
    """Greedy set cover: a minimal input set witnessing every mechanism.

    ``trials`` must come from a full-corpus run. Valid because
    :func:`repro.crosstest.classify.classify_trials` buckets per input —
    an input's evidence does not depend on which other inputs ran — so
    covering each mechanism with one witnessing input suffices.
    Deterministic: the next pick is the input covering the most
    still-uncovered mechanisms, smallest ``input_id`` on ties.
    """
    from repro.crosstest.classify import classify_trials

    evidence = classify_trials(trials)
    covered_by: dict[int, set[int]] = {}
    for number, entry in evidence.items():
        for trial in entry.trials:
            covered_by.setdefault(trial.test_input.input_id, set()).add(
                number
            )
    remaining = {number for number, entry in evidence.items() if entry.found}
    chosen: list[int] = []
    while remaining:
        best = min(
            covered_by,
            key=lambda input_id: (
                -len(covered_by[input_id] & remaining),
                input_id,
            ),
        )
        gain = covered_by[best] & remaining
        if not gain:  # cannot happen while remaining ⊆ union of buckets
            raise RuntimeError("set cover stalled before covering all")
        chosen.append(best)
        remaining -= gain
    return tuple(sorted(chosen))


def main(argv: list[str] | None = None) -> int:
    from repro.crosstest.report import run_crosstest

    parser = argparse.ArgumentParser(
        prog="python -m repro.crosstest.smoke",
        description="run (or re-derive) the distilled smoke matrix",
    )
    parser.add_argument(
        "--derive",
        action="store_true",
        help="re-run the full matrix, recompute the cover, and compare "
        "against the committed SMOKE_INPUT_IDS",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker count (default 1)"
    )
    args = parser.parse_args(argv)

    if args.derive:
        report = run_crosstest(jobs=args.jobs)
        derived = derive_smoke_ids(report.trials)
        print(f"derived SMOKE_INPUT_IDS = {derived}")
        if derived != SMOKE_INPUT_IDS:
            print(
                f"DRIFT: committed SMOKE_INPUT_IDS = {SMOKE_INPUT_IDS}\n"
                "update src/repro/crosstest/smoke.py",
                file=sys.stderr,
            )
            return 1
        print("committed ids match")
        return 0

    start = time.perf_counter()
    report = run_crosstest(inputs=smoke_inputs(), jobs=args.jobs)
    elapsed = time.perf_counter() - start
    found = sorted(report.found_numbers)
    print(
        f"smoke matrix: {len(report.trials)} trials in {elapsed:.3f}s; "
        f"discrepancies found: {len(found)}/15"
    )
    missing = sorted(set(range(1, 16)) - set(found))
    if missing:
        print(
            "MISSING mechanisms: " + ", ".join(f"#{n}" for n in missing),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
