"""Catalog of the 15 Spark–Hive data-plane discrepancies of §8.2.

The catalog mirrors the paper's artifact appendix: each entry carries
the upstream issue id(s), the problem categories it belongs to, and —
where the developers pointed to one — the non-default configuration
that resolves it. The category memberships reproduce the appendix's
mapping exactly:

* cannot read what was written (2/15):             {1, 2}
* type violations (2/15):                          {3, 8}
* exposing internal configs of downstream (5/15):  {1, 2, 3, 4, 6}
* inconsistent error behaviour across ifaces (7/15): {1, 5, 9, 10, 11, 12, 13}
* relying on custom configurations (8/15):         {5, 8, 9, 10, 11, 12, 13, 15}

(#7 shares its root cause with #6 and #14 is uncategorized in the
appendix, exactly as in the paper.)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Category",
    "Discrepancy",
    "CATALOG",
    "CATEGORY_MEMBERS",
    "category_counts",
    "by_number",
]


class Category:
    CANNOT_READ = "cannot_read_what_was_written"
    TYPE_VIOLATION = "type_violation"
    INTERNAL_CONFIG = "exposing_internal_configuration"
    INCONSISTENT_ERROR = "inconsistent_error_behavior"
    CUSTOM_CONFIG = "relying_on_custom_configuration"


CATEGORY_MEMBERS: dict[str, frozenset[int]] = {
    Category.CANNOT_READ: frozenset({1, 2}),
    Category.TYPE_VIOLATION: frozenset({3, 8}),
    Category.INTERNAL_CONFIG: frozenset({1, 2, 3, 4, 6}),
    Category.INCONSISTENT_ERROR: frozenset({1, 5, 9, 10, 11, 12, 13}),
    Category.CUSTOM_CONFIG: frozenset({5, 8, 9, 10, 11, 12, 13, 15}),
}


@dataclass(frozen=True)
class Discrepancy:
    number: int
    jira: str
    title: str
    mechanism: str
    resolving_config: tuple[str, str] | None = None

    @property
    def categories(self) -> frozenset[str]:
        return frozenset(
            name
            for name, members in CATEGORY_MEMBERS.items()
            if self.number in members
        )


CATALOG: tuple[Discrepancy, ...] = (
    Discrepancy(
        1,
        "SPARK-39075",
        "BYTE/SHORT written through DataFrame+Avro cannot be read back",
        "Avro promotes BYTE/SHORT to INT on serialization; Spark's Avro "
        "deserializer has no INT->BYTE demotion and raises "
        "IncompatibleSchemaException.",
    ),
    Discrepancy(
        2,
        "SPARK-39158",
        "Valid decimals written from DataFrame cannot be read from HiveQL",
        "The DataFrame writer serializes decimals unquantized (ad-hoc "
        "serialization); Hive's reader validates the stored scale against "
        "the declared scale and errors.",
    ),
    Discrepancy(
        3,
        "HIVE-26533 / SPARK-40409",
        "SparkSQL round trip converts BYTE/SHORT to INT, not case preserving",
        "Hive-serde Avro tables register the Avro physical schema in the "
        "metastore; Spark cannot keep its native schema for Avro and falls "
        "back to the lower-cased Hive schema with a warning.",
    ),
    Discrepancy(
        4,
        "HIVE-26531",
        "Avro rejects non-string map keys; ORC and Parquet accept them",
        "Avro's map type only admits string keys, so table creation fails "
        "for one serializer and succeeds for the others.",
        resolving_config=None,
    ),
    Discrepancy(
        5,
        "SPARK-40439",
        "Decimal with too much precision: SparkSQL throws, DataFrame -> NULL",
        "SQL INSERT uses ANSI store assignment (overflow raises); the "
        "DataFrame path uses the legacy cast (overflow degrades to NULL).",
        resolving_config=("spark.sql.storeAssignmentPolicy", "legacy"),
    ),
    Discrepancy(
        6,
        "HIVE-26528",
        "NaN written by Spark reads as NULL through HiveQL",
        "Hive's double reader has no NaN representation and degrades it to "
        "NULL; Spark preserves it.",
    ),
    Discrepancy(
        7,
        "HIVE-26528 (same root cause)",
        "Infinity written by Spark errors through HiveQL",
        "Same non-finite-double root cause as #6, but ±Infinity trips "
        "Hive's range check instead of degrading to NULL.",
    ),
    Discrepancy(
        8,
        "SPARK-40616",
        "TIMESTAMP_NTZ comes back as TIMESTAMP (session-TZ)",
        "The metastore has a single timestamp type; Spark maps it back to "
        "TIMESTAMP_LTZ unless spark.sql.timestampType says otherwise.",
        resolving_config=("spark.sql.timestampType", "TIMESTAMP_NTZ"),
    ),
    Discrepancy(
        9,
        "SPARK-40525",
        "Invalid DATE: SparkSQL throws, DataFrame -> NULL",
        "SQL DATE literals are parsed strictly; the DataFrame path "
        "legacy-casts strings to dates, degrading failures to NULL.",
        resolving_config=("spark.sql.legacy.timeParserPolicy", "LEGACY"),
    ),
    Discrepancy(
        10,
        "SPARK-40624",
        "INT/BIGINT overflow: SparkSQL throws, DataFrame wraps",
        "ANSI store assignment raises ArithmeticOverflow; the legacy cast "
        "wraps two's-complement style.",
        resolving_config=("spark.sql.storeAssignmentPolicy", "legacy"),
    ),
    Discrepancy(
        11,
        "SPARK-40624 (same config)",
        "TINYINT/SMALLINT overflow: SparkSQL throws, DataFrame wraps",
        "Identical mechanism to #10 on the narrow integral types.",
        resolving_config=("spark.sql.storeAssignmentPolicy", "legacy"),
    ),
    Discrepancy(
        12,
        "SPARK-40629",
        "Invalid boolean string: SparkSQL throws, DataFrame -> NULL",
        "ANSI store assignment refuses string->boolean; the legacy cast "
        "degrades unknown tokens to NULL.",
        resolving_config=("spark.sql.storeAssignmentPolicy", "legacy"),
    ),
    Discrepancy(
        13,
        "spark.sql.legacy.charVarcharAsString",
        "CHAR padding differs between SparkSQL and DataFrame",
        "The SQL path pads CHAR on write and read; the DataFrame path "
        "treats CHAR as a plain string.",
        resolving_config=("spark.sql.legacy.charVarcharAsString", "true"),
    ),
    Discrepancy(
        14,
        "SPARK-40637",
        "Mixed-case struct field names are lower-cased on some paths",
        "Nested field names are identifiers too: the metastore fallback "
        "lower-cases them while the native schema preserves them.",
    ),
    Discrepancy(
        15,
        "SPARK-40630",
        "Overlong VARCHAR accepted and read back via DataFrame",
        "The DataFrame write path does not enforce VARCHAR length, so an "
        "invalid value is stored and read back verbatim (EH oracle).",
        resolving_config=("spark.sql.legacy.charVarcharAsString", "true"),
    ),
)


def by_number(number: int) -> Discrepancy:
    for entry in CATALOG:
        if entry.number == number:
            return entry
    raise KeyError(f"no discrepancy #{number}")


def category_counts() -> dict[str, int]:
    """The §8.2 headline counts: 2/2/5/7/8."""
    return {name: len(members) for name, members in CATEGORY_MEMBERS.items()}
