"""Shardable, parallel execution engine for the §8 trial matrix.

The cross-test hot path is 10,128 independent trials. This module
splits the matrix into deterministic shards — contiguous runs of inputs
for one ``(plan, fmt)`` cell — and executes them either inline
(``jobs=1``, today's exact sequential semantics) or on a
``concurrent.futures`` pool (threads or processes, auto-sized).

Two invariants hold regardless of scheduling:

* **Byte-identical results.** Shards are indexed in the same
  plan → format → input order the sequential loop uses and reassembled
  by index, so the returned ``Trial`` list is identical no matter how
  many workers ran or in which order they finished.
* **Deployment isolation.** Each trial still observes a pristine
  deployment. Within a shard, deployments are *pooled*: a leased
  deployment is reset (trial table dropped, data directory deleted)
  before reuse, and discarded the moment a reset fails.

Telemetry rides along via :class:`CrossTestMetrics` — per-stage error
counters plus per-plan and per-format latency histograms — so a
10k-trial campaign is observable instead of a silent blackout.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro.crosstest.harness import Deployment, Trial, run_trial_on
from repro.crosstest.plans import Plan
from repro.crosstest.values import TestInput
from repro.metrics import Histogram, MetricsRegistry

__all__ = [
    "Shard",
    "ShardResult",
    "DeploymentPool",
    "CrossTestMetrics",
    "build_shards",
    "run_shard",
    "resolve_jobs",
    "resolve_pool",
    "execute",
]

#: Inputs per shard: small enough that 8 plans x 3 formats x 422 inputs
#: splits into ~96 shards (good load balance up to 16+ workers), large
#: enough that per-shard dispatch overhead stays negligible.
DEFAULT_SHARD_INPUTS = 128


@dataclass(frozen=True)
class Shard:
    """A contiguous unit of work: some inputs for one (plan, fmt) cell."""

    index: int
    plan: Plan
    fmt: str
    inputs: tuple[TestInput, ...]


@dataclass
class ShardResult:
    """What one shard produced, plus its per-trial wall-clock."""

    index: int
    trials: list[Trial]
    durations: list[float] = field(default_factory=list)


def build_shards(
    plans,
    formats,
    inputs,
    shard_inputs: int = DEFAULT_SHARD_INPUTS,
) -> list[Shard]:
    """Split the matrix into deterministically ordered shards.

    Concatenating shard trials in ``index`` order reproduces exactly the
    sequential plan → format → input nesting of the original loop.
    """
    if shard_inputs < 1:
        raise ValueError(f"shard_inputs must be >= 1, got {shard_inputs}")
    inputs = list(inputs)
    shards: list[Shard] = []
    for plan in plans:
        for fmt in formats:
            for start in range(0, len(inputs), shard_inputs) or (0,):
                shards.append(
                    Shard(
                        index=len(shards),
                        plan=plan,
                        fmt=fmt,
                        inputs=tuple(inputs[start : start + shard_inputs]),
                    )
                )
    return shards


class DeploymentPool:
    """Recycle deployments across trials that cannot observe each other.

    ``lease`` hands out a pristine deployment (fresh, or reset after a
    previous trial); ``release`` resets it and returns it to the pool.
    A deployment whose reset raises is dropped on the floor — the next
    lease simply provisions a new one.
    """

    def __init__(self, conf_overrides: dict[str, object] | None = None) -> None:
        self.conf_overrides = dict(conf_overrides or {})
        self._idle: list[Deployment] = []
        self.created = 0
        self.reused = 0

    def lease(self) -> Deployment:
        if self._idle:
            self.reused += 1
            return self._idle.pop()
        self.created += 1
        return Deployment(self.conf_overrides)

    def release(self, deployment: Deployment) -> None:
        try:
            deployment.reset()
        except Exception:  # noqa: BLE001 - a dirty deployment is discarded
            return
        self._idle.append(deployment)


def run_shard(
    shard: Shard,
    conf_overrides: dict[str, object] | None = None,
    reuse_deployments: bool = True,
) -> ShardResult:
    """Execute one shard sequentially, timing each trial."""
    pool = DeploymentPool(conf_overrides) if reuse_deployments else None
    trials: list[Trial] = []
    durations: list[float] = []
    for test_input in shard.inputs:
        start = time.perf_counter()
        if pool is not None:
            deployment = pool.lease()
            try:
                trial = run_trial_on(deployment, shard.plan, shard.fmt, test_input)
            finally:
                pool.release(deployment)
        else:
            trial = run_trial_on(
                Deployment(dict(conf_overrides or {})),
                shard.plan,
                shard.fmt,
                test_input,
            )
        durations.append(time.perf_counter() - start)
        trials.append(trial)
    return ShardResult(index=shard.index, trials=trials, durations=durations)


class CrossTestMetrics:
    """Run telemetry: stage counters + latency histograms.

    Backed by :class:`repro.metrics.MetricsRegistry`, the same substrate
    the monitoring scenarios scrape, so cross-test campaigns export
    through the standard metric surface.
    """

    STAGES = ("create", "write", "read")

    def __init__(self) -> None:
        self.registry = MetricsRegistry("crosstest")
        self.trials_total = self.registry.counter(
            "trials_total", "trials executed"
        )
        self.trials_ok = self.registry.counter(
            "trials_ok", "trials that completed the write-read round trip"
        )
        self.stage_errors = {
            stage: self.registry.counter(
                f"errors_{stage}", f"trials that failed at the {stage} stage"
            )
            for stage in self.STAGES
        }
        self.shards_done = self.registry.counter(
            "shards_done", "shards completed"
        )

    def _latency(self, kind: str, name: str) -> Histogram:
        return self.registry.histogram(
            f"latency_{kind}_{name}",
            description=f"trial latency for {kind} {name} (seconds)",
        )

    def record_shard(self, shard: Shard, result: ShardResult) -> None:
        plan_hist = self._latency("plan", shard.plan.name)
        fmt_hist = self._latency("fmt", shard.fmt)
        for trial, duration in zip(result.trials, result.durations):
            self.trials_total.increment()
            if trial.outcome.ok:
                self.trials_ok.increment()
            elif trial.outcome.stage in self.stage_errors:
                self.stage_errors[trial.outcome.stage].increment()
            plan_hist.observe(duration)
            fmt_hist.observe(duration)
        self.shards_done.increment()

    # -- rendering -----------------------------------------------------

    def error_summary(self) -> str:
        return ", ".join(
            f"{stage}={int(self.stage_errors[stage].value)}"
            for stage in self.STAGES
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"trials: {int(self.trials_total.value)} "
            f"(ok={int(self.trials_ok.value)}, errors: {self.error_summary()})",
        ]
        for name in self.registry.names():
            metric = self.registry._metrics[name]
            if not isinstance(metric, Histogram) or not metric.count:
                continue
            lines.append(
                f"{name}: n={metric.count} mean={metric.mean * 1e6:.0f}us "
                f"p50={metric.quantile(0.5) * 1e6:.0f}us "
                f"p99={metric.quantile(0.99) * 1e6:.0f}us"
            )
        return lines


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` auto-sizes to the host's cores; negatives reject."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or None for auto), got {jobs}")
    return jobs


def resolve_pool(pool: str, jobs: int) -> str:
    """Pick the worker-pool flavour: processes for real parallelism."""
    if pool == "auto":
        return "process" if jobs > 1 else "thread"
    if pool not in ("thread", "process"):
        raise ValueError(f"pool must be auto|thread|process, got {pool!r}")
    return pool


def _make_executor(pool: str, jobs: int) -> Executor:
    if pool == "process":
        return ProcessPoolExecutor(max_workers=jobs)
    return ThreadPoolExecutor(max_workers=jobs)


def execute(
    plans,
    formats,
    inputs,
    conf_overrides: dict[str, object] | None = None,
    *,
    jobs: int | None = 1,
    pool: str = "auto",
    shard_inputs: int = DEFAULT_SHARD_INPUTS,
    metrics: CrossTestMetrics | None = None,
    progress=None,
) -> list[Trial]:
    """Run the full matrix and return trials in sequential order.

    ``progress``, if given, is called after every shard completes as
    ``progress(done_shards, total_shards, done_trials, total_trials)``.
    """
    jobs = resolve_jobs(jobs)
    shards = build_shards(plans, formats, inputs, shard_inputs=shard_inputs)
    total_trials = sum(len(s.inputs) for s in shards)
    results: dict[int, ShardResult] = {}
    done_trials = 0

    def finish(shard: Shard, result: ShardResult) -> None:
        nonlocal done_trials
        results[shard.index] = result
        done_trials += len(result.trials)
        if metrics is not None:
            metrics.record_shard(shard, result)
        if progress is not None:
            progress(len(results), len(shards), done_trials, total_trials)

    if jobs == 1:
        # exact sequential semantics: one fresh deployment per trial,
        # shards walked in order on the calling thread.
        for shard in shards:
            finish(
                shard,
                run_shard(shard, conf_overrides, reuse_deployments=False),
            )
    else:
        flavour = resolve_pool(pool, jobs)
        with _make_executor(flavour, min(jobs, len(shards) or 1)) as workers:
            pending = {
                workers.submit(run_shard, shard, conf_overrides): shard
                for shard in shards
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = pending.pop(future)
                    finish(shard, future.result())

    trials: list[Trial] = []
    for index in range(len(shards)):
        trials.extend(results[index].trials)
    return trials
