"""Shardable, parallel execution engine for the §8 trial matrix.

The cross-test hot path is 10,128 independent trials. This module
splits the matrix into deterministic shards — contiguous runs of inputs
for one ``(plan, fmt)`` cell — and executes them either inline
(``jobs=1``, today's exact sequential semantics) or on a
``concurrent.futures`` pool (threads or processes, auto-sized).

Two invariants hold regardless of scheduling:

* **Byte-identical results.** Shards are indexed in the same
  plan → format → input order the sequential loop uses and reassembled
  by index, so the returned ``Trial`` list is identical no matter how
  many workers ran or in which order they finished.
* **Deployment isolation.** Each trial still observes a pristine
  deployment. Within a shard, deployments are *pooled*: a leased
  deployment is reset (trial table dropped, data directory deleted)
  before reuse, and discarded the moment a reset fails.

Telemetry rides along via :class:`CrossTestMetrics` — per-stage error
counters plus per-plan and per-format latency histograms — so a
10k-trial campaign is observable instead of a silent blackout.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro.crosstest.harness import (
    TRIAL_TABLE,
    Deployment,
    Outcome,
    Trial,
    run_lane_on,
    run_trial_on,
)
from repro.crosstest.plans import Plan
from repro.crosstest.values import TestInput
from repro.faults.core import (
    FaultInjector,
    InjectionRecord,
    decode_injection_batches,
    encode_injection_batches,
)
from repro.faults.plan import FaultPlan
from repro.metrics import Histogram, MetricsRegistry
from repro.tracing.core import Span, Tracer
from repro.tracing.export import decode_span_batches, encode_span_batches

__all__ = [
    "Shard",
    "ShardResult",
    "DeploymentPool",
    "CrossTestMetrics",
    "WorkerPoolHandle",
    "build_shards",
    "run_shard",
    "worker_pool",
    "corpus_texts",
    "prewarm_worker",
    "resolve_jobs",
    "resolve_pool",
    "execute",
    "run_trials",
]

#: Inputs per shard: small enough that 8 plans x 3 formats x 422 inputs
#: splits into ~96 shards (good load balance up to 16+ workers), large
#: enough that per-shard dispatch overhead stays negligible.
DEFAULT_SHARD_INPUTS = 128


@dataclass(frozen=True)
class Shard:
    """A contiguous unit of work: some inputs for one (plan, fmt) cell."""

    index: int
    plan: Plan
    fmt: str
    inputs: tuple[TestInput, ...]


#: ``Outcome`` fields in declaration order — the columnar wire schema a
#: shard ships home instead of per-trial ``Trial`` pickles.
_OUTCOME_FIELDS = (
    "status",
    "stage",
    "error_type",
    "error_message",
    "value",
    "value_type",
    "column_name",
    "row_count",
    "warnings",
)


@dataclass
class ShardResult:
    """What one shard produced, in wire form (columnar + encoded blobs).

    A worker never echoes its inputs back: the parent already holds the
    shard's plan, format and ``TestInput`` sequence, so only the
    *observations* ship —

    * ``outcome_columns``: one tuple per :class:`Outcome` field (in
      ``_OUTCOME_FIELDS`` order), each holding that field for every
      trial in shard order. Columnar instead of per-trial dataclass
      tuples, so nothing re-pickles ``Plan``/``TestInput`` objects (and
      their cached parsed types) on the way home.
    * ``durations``: per-trial wall-clock, shard order.
    * ``cache_counts``: the *deltas* this shard contributed to the
      engines' plan-cache counters (and deployment provisioning
      counts) — deltas rather than totals so results aggregate
      correctly when worker processes keep long-lived pools across
      shards.
    * ``spans_blob``: only when the shard ran with tracing — every
      trial's finished spans encoded once per shard via
      :func:`~repro.tracing.export.encode_span_batches`.
    * ``injections_blob``: only when the shard ran under a fault plan —
      per-trial :class:`InjectionRecord` tuples encoded the same way.
    * ``stage_durations``: wall-clock samples per harness stage
      (``create``/``write``/``read``/``reset``), aggregated across the
      shard — the raw feed for the per-stage latency histograms. Not
      per-trial: a lane's create covers many trials at once.

    :meth:`pack` builds the wire form inside the worker and
    :meth:`to_trials` / :meth:`span_batches` / :meth:`injection_batches`
    rebuild the rich objects parent-side. The encode/decode round trip
    runs at *every* ``jobs`` setting (including inline ``jobs=1``), so
    span payloads are canonicalised identically no matter how the
    matrix was scheduled — fuzz coverage features and report bytes
    cannot depend on ``--jobs``.
    """

    index: int
    outcome_columns: tuple[tuple, ...]
    durations: list[float] = field(default_factory=list)
    cache_counts: dict[str, int] = field(default_factory=dict)
    spans_blob: bytes | None = None
    injections_blob: bytes | None = None
    stage_durations: dict[str, list[float]] = field(default_factory=dict)

    @classmethod
    def pack(
        cls,
        shard: Shard,
        trials: list[Trial],
        durations: list[float],
        cache_counts: dict[str, int],
        traces: list[tuple[Span, ...]] | None,
        injections: list[tuple[InjectionRecord, ...]] | None,
        stage_times: list[tuple[str, float]] | None = None,
    ) -> "ShardResult":
        """Encode one executed shard into its wire form (worker side)."""
        stage_durations: dict[str, list[float]] = {}
        for stage, seconds in stage_times or ():
            stage_durations.setdefault(stage, []).append(seconds)
        return cls(
            index=shard.index,
            outcome_columns=tuple(
                tuple(getattr(trial.outcome, name) for trial in trials)
                for name in _OUTCOME_FIELDS
            ),
            durations=durations,
            cache_counts=cache_counts,
            spans_blob=(
                encode_span_batches(traces) if traces is not None else None
            ),
            injections_blob=(
                encode_injection_batches(injections)
                if injections is not None
                else None
            ),
            stage_durations=stage_durations,
        )

    def to_trials(self, shard: Shard) -> list[Trial]:
        """Rebuild the shard's trials against the parent-side inputs."""
        return [
            Trial(shard.plan, shard.fmt, test_input, Outcome(*fields))
            for test_input, *fields in zip(
                shard.inputs, *self.outcome_columns
            )
        ]

    def span_batches(self) -> list[tuple[Span, ...]] | None:
        """Per-trial finished spans, or ``None`` if tracing was off."""
        if self.spans_blob is None:
            return None
        return decode_span_batches(self.spans_blob)

    def injection_batches(self) -> list[tuple[InjectionRecord, ...]] | None:
        """Per-trial fired injections, or ``None`` if no fault plan ran."""
        if self.injections_blob is None:
            return None
        return decode_injection_batches(self.injections_blob)


def build_shards(
    plans,
    formats,
    inputs,
    shard_inputs: int = DEFAULT_SHARD_INPUTS,
) -> list[Shard]:
    """Split the matrix into deterministically ordered shards.

    Concatenating shard trials in ``index`` order reproduces exactly the
    sequential plan → format → input nesting of the original loop.

    An empty input list yields an empty shard list — a zero-trial matrix
    has no work, so it must not fan empty shards out to a pool.
    """
    if shard_inputs < 1:
        raise ValueError(f"shard_inputs must be >= 1, got {shard_inputs}")
    inputs = list(inputs)
    shards: list[Shard] = []
    for plan in plans:
        for fmt in formats:
            for start in range(0, len(inputs), shard_inputs):
                shards.append(
                    Shard(
                        index=len(shards),
                        plan=plan,
                        fmt=fmt,
                        inputs=tuple(inputs[start : start + shard_inputs]),
                    )
                )
    return shards


class DeploymentPool:
    """Recycle deployments across trials that cannot observe each other.

    ``lease`` hands out a pristine deployment (fresh, or reset after a
    previous trial); ``release`` resets it and returns it to the pool.
    A deployment whose reset raises is dropped on the floor — the next
    lease simply provisions a new one.

    Pooling is what makes the engines' plan caches effective: a reset
    drops the trial table but keeps the sessions — and with them every
    compiled plan, resolved schema and cast kernel — so the next trial
    re-validates instead of re-analyzing.
    """

    def __init__(self, conf_overrides: dict[str, object] | None = None) -> None:
        self.conf_overrides = dict(conf_overrides or {})
        self._idle: list[Deployment] = []
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0

    def lease(self) -> Deployment:
        with self._lock:
            if self._idle:
                self.reused += 1
                deployment = self._idle.pop()
            else:
                self.created += 1
                deployment = Deployment(self.conf_overrides)
                deployment.leases = 0
        deployment.leases += 1
        return deployment

    def release(self, deployment: Deployment) -> None:
        try:
            deployment.reset()
        except Exception:  # noqa: BLE001 - a dirty deployment is discarded
            return
        with self._lock:
            self._idle.append(deployment)


#: Worker-global pools keyed by conf overrides: one pool per distinct
#: deployment configuration, shared by every shard a worker (thread or
#: process) executes, so plan caches stay warm across shard boundaries.
_WORKER_POOLS: dict[tuple, DeploymentPool] = {}
_WORKER_POOLS_LOCK = threading.Lock()


def worker_pool(conf_overrides: dict[str, object] | None = None) -> DeploymentPool:
    """The long-lived pool for this worker and these conf overrides."""
    key = tuple(sorted((conf_overrides or {}).items()))
    pool = _WORKER_POOLS.get(key)
    if pool is None:
        with _WORKER_POOLS_LOCK:
            pool = _WORKER_POOLS.setdefault(key, DeploymentPool(conf_overrides))
    return pool


def corpus_texts(formats, inputs) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The (type texts, statement texts) a matrix run will ask to parse.

    Computed parent-side once and shipped to each worker's initializer,
    so pre-warming the process-global ``parse_type``/``parse_statement``
    LRU caches costs a few tuples of strings instead of pickling the
    corpus itself. The statement texts replicate the harness's exact
    f-string shapes — the caches key on the literal text.
    """
    type_texts: list[str] = []
    seen_types: set[str] = set()
    statements: list[str] = [f"SELECT * FROM {TRIAL_TABLE}"]
    for test_input in inputs:
        if test_input.type_text not in seen_types:
            seen_types.add(test_input.type_text)
            type_texts.append(test_input.type_text)
            for fmt in formats:
                statements.append(
                    f"CREATE TABLE {TRIAL_TABLE} "
                    f"(c {test_input.type_text}) STORED AS {fmt}"
                )
        statements.append(
            f"INSERT INTO {TRIAL_TABLE} VALUES ({test_input.sql_literal})"
        )
    return tuple(type_texts), tuple(statements)


def prewarm_worker(
    conf_overrides: dict[str, object] | None = None,
    plans: tuple[Plan, ...] = (),
    formats: tuple[str, ...] = (),
    warm_inputs: tuple[TestInput, ...] = (),
    type_texts: tuple[str, ...] = (),
    statement_texts: tuple[str, ...] = (),
) -> None:
    """Process-pool initializer: pay a worker's cold start up front.

    A fork-server-style pre-warm so the first *real* shard a worker
    sees doesn't absorb every one-time cost: importing this module has
    already pulled in both engines; this fills the process-global
    parse caches with every type and statement text the run will
    replay, then builds the worker-global :class:`DeploymentPool` for
    the run's conf overrides and drives one warm-up *lane* per
    ``(plan, fmt)`` cell through it — the same create/write/read shape
    batched execution uses — compiling those plans into the pooled
    deployment's plan caches.

    Best-effort by construction: an initializer that raises breaks the
    whole ``ProcessPoolExecutor``, so every step (including individual
    parses — the corpus deliberately contains invalid SQL) swallows
    failures. Warm-up lanes never trace and never inject, so they are
    invisible to trace sinks, fault schedules, and fuzz coverage.
    """
    try:
        from repro.common.types import parse_type
        from repro.sql.parser import parse_statement

        for text in type_texts:
            try:
                parse_type(text)
            except Exception:  # noqa: BLE001 - invalid corpus types are fine
                pass
        for text in statement_texts:
            try:
                parse_statement(text)
            except Exception:  # noqa: BLE001 - invalid corpus SQL is fine
                pass
        pool = worker_pool(conf_overrides)
        lanes: dict[str, list[TestInput]] = {}
        for test_input in warm_inputs:
            lanes.setdefault(test_input.type_text, []).append(test_input)
        for plan in plans:
            for fmt in formats:
                for lane in lanes.values():
                    deployment = pool.lease()
                    try:
                        run_lane_on(deployment, plan, fmt, tuple(lane))
                    finally:
                        pool.release(deployment)
    except Exception:  # noqa: BLE001 - never take the worker down
        pass


def _plan_cache_counts(deployment: Deployment) -> tuple[int, int, int, int]:
    spark = deployment.spark.plan_cache.stats
    hive = deployment.hive.plan_cache.stats
    return (
        spark.hits + hive.hits,
        spark.misses + hive.misses,
        spark.invalidations + hive.invalidations,
        spark.evictions + hive.evictions,
    )


def _retry_counts(deployment: Deployment) -> tuple[int, int, int, int]:
    """Retry-policy counters for this deployment's connectors.

    Read while the deployment is leased (same race-free discipline as
    :func:`_plan_cache_counts`): policy stats live on the connector, one
    connector per deployment.
    """
    stats = deployment.spark.connector.retry.stats
    return (
        stats.attempts,
        stats.faults,
        stats.masked_calls,
        stats.exhausted_calls,
    )


def _new_counts(injecting: bool = False) -> dict[str, int]:
    counts = {
        "plan_cache_hits": 0,
        "plan_cache_misses": 0,
        "plan_cache_invalidations": 0,
        "plan_cache_evictions": 0,
        "deployments_created": 0,
        "deployments_reused": 0,
    }
    if injecting:
        counts.update(
            faults_injected=0,
            faults_timeout=0,
            faults_io_error=0,
            faults_torn_write=0,
            faults_stale_read=0,
            boundary_attempts=0,
            boundary_faults=0,
            boundary_masked_calls=0,
            boundary_exhausted_calls=0,
        )
    return counts


def _lease_counted(pool: DeploymentPool, counts: dict[str, int]) -> Deployment:
    deployment = pool.lease()
    if deployment.leases == 1:
        counts["deployments_created"] += 1
    else:
        counts["deployments_reused"] += 1
    return deployment


def _fold_cache_delta(
    counts: dict[str, int],
    before: tuple[int, int, int, int],
    after: tuple[int, int, int, int],
) -> None:
    counts["plan_cache_hits"] += after[0] - before[0]
    counts["plan_cache_misses"] += after[1] - before[1]
    counts["plan_cache_invalidations"] += after[2] - before[2]
    counts["plan_cache_evictions"] += after[3] - before[3]


def _timed_release(
    pool: DeploymentPool,
    deployment: Deployment,
    stage_times: list[tuple[str, float]] | None,
) -> None:
    """Release a lease, sampling the reset for the stage histograms.

    Reset is deliberately untraced (it runs outside the tracer and
    injector contexts so it cannot perturb span trees or fault visit
    counters) — this wall-clock sample is its only telemetry.
    """
    started = time.perf_counter()
    pool.release(deployment)
    if stage_times is not None:
        stage_times.append(("reset", time.perf_counter() - started))


def _lane_groups(inputs: tuple[TestInput, ...]) -> list[list[int]]:
    """Group shard positions into same-type lanes, first-seen order.

    Every input in a lane shares a ``type_text``, so one ``CREATE
    TABLE`` serves the whole lane. Positions within a lane stay in
    shard order; lanes need not be contiguous — demultiplexing is
    positional.
    """
    groups: dict[str, list[int]] = {}
    for position, test_input in enumerate(inputs):
        groups.setdefault(test_input.type_text, []).append(position)
    return list(groups.values())


def _run_lane(
    pool: DeploymentPool,
    plan: Plan,
    fmt: str,
    inputs: tuple[TestInput, ...],
    counts: dict[str, int],
    stage_times: list[tuple[str, float]] | None,
    multirow: bool = True,
) -> list[Outcome]:
    """One lane attempt plus the fallback ladder.

    Each attempt runs on a freshly leased deployment (a failed lane may
    leave the shared table in an unknown state; release resets it).
    When :func:`run_lane_on` reports ambiguity, its *stage* picks the
    fallback: a multi-row ``"write"`` failure retries the lane with
    single-row statements (exact attribution, same shared table); a
    ``"read"``/``"count"`` ambiguity means the shared scan itself is
    the problem — no smaller shared table can attribute it, and reads
    fail deterministically per (plan, fmt, type), so every input goes
    straight to the isolated per-trial path, whose outcome is
    authoritative by definition. At most one retry, then isolation:
    termination is structural, and a fully read-poisoned lane costs one
    extra (create + write + read) over never having laned at all.
    """
    deployment = _lease_counted(pool, counts)
    before = _plan_cache_counts(deployment)
    try:
        outcomes = run_lane_on(
            deployment, plan, fmt, inputs,
            multirow=multirow, stage_times=stage_times,
        )
        _fold_cache_delta(counts, before, _plan_cache_counts(deployment))
    finally:
        _timed_release(pool, deployment, stage_times)
    if not isinstance(outcomes, str):
        return outcomes
    if outcomes == "write":
        # only a multi-row statement reports "write"; singles attribute
        return _run_lane(
            pool, plan, fmt, inputs, counts, stage_times, multirow=False
        )
    resolved: list[Outcome] = []
    for test_input in inputs:
        deployment = _lease_counted(pool, counts)
        before = _plan_cache_counts(deployment)
        try:
            trial = run_trial_on(
                deployment, plan, fmt, test_input, stage_times=stage_times
            )
            _fold_cache_delta(counts, before, _plan_cache_counts(deployment))
        finally:
            _timed_release(pool, deployment, stage_times)
        resolved.append(trial.outcome)
    return resolved


def _run_shard_lanes(
    shard: Shard,
    pool: DeploymentPool,
) -> ShardResult:
    """Execute one shard through batched lanes (tracing/faults off).

    Per-trial durations are each lane's wall-clock split evenly across
    its trials — the plan/format histograms keep covering every trial,
    they just report amortized cost, which is the honest number under
    batching.
    """
    counts = _new_counts()
    stage_times: list[tuple[str, float]] = []
    outcomes: list[Outcome | None] = [None] * len(shard.inputs)
    durations: list[float] = [0.0] * len(shard.inputs)
    for positions in _lane_groups(shard.inputs):
        lane_inputs = tuple(shard.inputs[p] for p in positions)
        started = time.perf_counter()
        lane_outcomes = _run_lane(
            pool, shard.plan, shard.fmt, lane_inputs, counts, stage_times
        )
        share = (time.perf_counter() - started) / len(positions)
        for offset, position in enumerate(positions):
            outcomes[position] = lane_outcomes[offset]
            durations[position] = share
    trials = [
        Trial(shard.plan, shard.fmt, test_input, outcomes[position])
        for position, test_input in enumerate(shard.inputs)
    ]
    return ShardResult.pack(
        shard, trials, durations, counts, None, None, stage_times=stage_times
    )


def run_shard(
    shard: Shard,
    conf_overrides: dict[str, object] | None = None,
    reuse_deployments: bool = True,
    tracing: bool = False,
    fault_plan: FaultPlan | None = None,
    fault_seed: int = 0,
    batch: bool = False,
) -> ShardResult:
    """Execute one shard sequentially, timing each trial.

    With ``reuse_deployments`` (the default), deployments come from the
    worker-global pool for these conf overrides. Cache-counter deltas
    are read per trial, while the deployment is exclusively leased, so
    they are race-free even when worker threads share a pool.

    With ``tracing``, each trial runs under its own
    :class:`~repro.tracing.Tracer` (trace id ``plan/fmt/input_id``) and
    the finished spans ride back on ``ShardResult.spans_blob`` —
    activation happens here, inside the worker, so tracing survives
    thread and process pools alike.

    With a non-empty ``fault_plan``, each trial likewise runs under its
    own :class:`~repro.faults.FaultInjector` keyed by the same stable
    trial identity, so the fault schedule is a pure function of
    ``(plan, seed, trial)`` — independent of worker count, scheduling,
    and everything the worker ran before.

    With ``batch``, same-type trials share deployment lanes (one
    create, batched writes, one scan — see :func:`_run_shard_lanes`),
    with any in-lane ambiguity falling back to the isolated path.
    Lanes engage only when tracing and fault injection are both off:
    traced runs promise one span tree per trial with per-trial trace
    ids, and fault schedules key on per-trial boundary visit counts —
    batching would change both, so those runs keep the (correct,
    slower) per-trial path and reports stay byte-identical either way.
    """
    pool = worker_pool(conf_overrides) if reuse_deployments else None
    injecting = fault_plan is not None and not fault_plan.empty
    if batch and pool is not None and not tracing and not injecting:
        return _run_shard_lanes(shard, pool)
    trials: list[Trial] = []
    durations: list[float] = []
    stage_times: list[tuple[str, float]] = []
    traces: list[tuple[Span, ...]] | None = [] if tracing else None
    injections: list[tuple[InjectionRecord, ...]] | None = (
        [] if injecting else None
    )
    counts = _new_counts(injecting)
    for test_input in shard.inputs:
        trial_key = f"{shard.plan.name}/{shard.fmt}/{test_input.input_id}"
        tracer = Tracer(trace_id=trial_key) if tracing else None
        injector = (
            FaultInjector(fault_plan, fault_seed, trial_key)
            if injecting and fault_plan is not None
            else None
        )

        def run_one(deployment: Deployment) -> Trial:
            with contextlib.ExitStack() as stack:
                if tracer is not None:
                    stack.enter_context(tracer)
                if injector is not None:
                    stack.enter_context(injector)
                return run_trial_on(
                    deployment,
                    shard.plan,
                    shard.fmt,
                    test_input,
                    stage_times=stage_times,
                )

        start = time.perf_counter()
        if pool is not None:
            deployment = _lease_counted(pool, counts)
            before = _plan_cache_counts(deployment)
            retry_before = _retry_counts(deployment)
            try:
                trial = run_one(deployment)
                after = _plan_cache_counts(deployment)
                retry_after = _retry_counts(deployment)
            finally:
                _timed_release(pool, deployment, stage_times)
        else:
            deployment = Deployment(dict(conf_overrides or {}))
            counts["deployments_created"] += 1
            before = (0, 0, 0, 0)
            retry_before = (0, 0, 0, 0)
            trial = run_one(deployment)
            after = _plan_cache_counts(deployment)
            retry_after = _retry_counts(deployment)
        _fold_cache_delta(counts, before, after)
        if injector is not None:
            counts["boundary_attempts"] += retry_after[0] - retry_before[0]
            counts["boundary_faults"] += retry_after[1] - retry_before[1]
            counts["boundary_masked_calls"] += (
                retry_after[2] - retry_before[2]
            )
            counts["boundary_exhausted_calls"] += (
                retry_after[3] - retry_before[3]
            )
            counts["faults_injected"] += len(injector.records)
            for record in injector.records:
                counts[f"faults_{record.kind}"] += 1
        durations.append(time.perf_counter() - start)
        trials.append(trial)
        if traces is not None and tracer is not None:
            traces.append(tuple(tracer.finished))
        if injections is not None and injector is not None:
            injections.append(tuple(injector.records))
    return ShardResult.pack(
        shard,
        trials,
        durations,
        counts,
        traces,
        injections,
        stage_times=stage_times,
    )


class CrossTestMetrics:
    """Run telemetry: stage counters + latency histograms.

    Backed by :class:`repro.metrics.MetricsRegistry`, the same substrate
    the monitoring scenarios scrape, so cross-test campaigns export
    through the standard metric surface.

    ``source`` labels which workload the counters describe: the §8
    matrix (``"matrix"``, registry system ``crosstest``) or a fuzz
    campaign (``"fuzz"``, registry system ``crosstest.fuzz``). Fuzz
    trials therefore never fold into the paper-replication totals — a
    scrape that wants the §8 stage-error counts reads ``crosstest``,
    not ``crosstest.fuzz``.
    """

    STAGES = ("create", "write", "read")

    def __init__(self, source: str = "matrix") -> None:
        self.source = source
        system = "crosstest" if source == "matrix" else f"crosstest.{source}"
        self.registry = MetricsRegistry(system)
        self.trials_total = self.registry.counter(
            "trials_total", "trials executed"
        )
        self.trials_ok = self.registry.counter(
            "trials_ok", "trials that completed the write-read round trip"
        )
        self.stage_errors = {
            stage: self.registry.counter(
                f"errors_{stage}", f"trials that failed at the {stage} stage"
            )
            for stage in self.STAGES
        }
        self.shards_done = self.registry.counter(
            "shards_done", "shards completed"
        )
        self.cache_counters = {
            name: self.registry.counter(name, description)
            for name, description in (
                ("plan_cache_hits", "plan-cache hits across both engines"),
                ("plan_cache_misses", "plan-cache misses across both engines"),
                (
                    "plan_cache_invalidations",
                    "plans invalidated by catalog movement",
                ),
                ("plan_cache_evictions", "plans evicted by the LRU bound"),
                ("deployments_created", "deployments provisioned"),
                ("deployments_reused", "deployments recycled from a pool"),
            )
        }
        self.fault_counters = {
            name: self.registry.counter(name, description)
            for name, description in (
                ("faults_injected", "boundary faults injected"),
                ("faults_timeout", "injected peer timeouts"),
                ("faults_io_error", "injected transient I/O errors"),
                ("faults_torn_write", "injected torn segment writes"),
                ("faults_stale_read", "injected stale metastore reads"),
                ("boundary_attempts", "boundary call attempts (retries incl.)"),
                ("boundary_faults", "transient faults seen by retry policies"),
                (
                    "boundary_masked_calls",
                    "boundary calls that succeeded after retries",
                ),
                (
                    "boundary_exhausted_calls",
                    "boundary calls that exhausted their retry budget",
                ),
            )
        }

    def _latency(self, kind: str, name: str) -> Histogram:
        return self.registry.histogram(
            f"latency_{kind}_{name}",
            description=f"trial latency for {kind} {name} (seconds)",
        )

    def record_shard(
        self, shard: Shard, result: ShardResult, trials: list[Trial]
    ) -> None:
        """Fold one shard in; ``trials`` is ``result.to_trials(shard)``,
        passed in because the caller already rebuilt them."""
        plan_hist = self._latency("plan", shard.plan.name)
        fmt_hist = self._latency("fmt", shard.fmt)
        for trial, duration in zip(trials, result.durations):
            self.trials_total.increment()
            if trial.outcome.ok:
                self.trials_ok.increment()
            elif trial.outcome.stage in self.stage_errors:
                self.stage_errors[trial.outcome.stage].increment()
            plan_hist.observe(duration)
            fmt_hist.observe(duration)
        for stage, samples in result.stage_durations.items():
            stage_hist = self._latency("stage", stage)
            for seconds in samples:
                stage_hist.observe(seconds)
        for name, delta in result.cache_counts.items():
            counter = self.cache_counters.get(name) or self.fault_counters.get(
                name
            )
            if counter is not None and delta > 0:
                counter.increment(delta)
        self.shards_done.increment()

    # -- rendering -----------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """The registry's public snapshot — the feed for ``to_json``,
        the campaign ledger's ``env.metrics`` section, and the status
        server's ``/metrics`` endpoint."""
        return self.registry.snapshot()

    def to_json(self) -> dict:
        """Full snapshot: every metric plus the tracked-cache registry.

        Histograms export their bucket snapshots (so quantiles can be
        recomputed offline); counters and gauges export their value.
        """
        from repro.metrics.caches import cache_info_snapshot

        metrics: dict[str, object] = {}
        for name, entry in self.snapshot().items():
            if entry["kind"] == "histogram":
                metrics[name] = {
                    key: entry[key]
                    for key in ("count", "sum", "buckets", "overflow")
                }
            else:
                metrics[name] = entry["value"]
        return {
            "system": self.registry.system,
            "metrics": metrics,
            "caches": cache_info_snapshot(),
        }

    def error_summary(self) -> str:
        return ", ".join(
            f"{stage}={int(self.stage_errors[stage].value)}"
            for stage in self.STAGES
        )

    def cache_summary(self) -> str:
        hits = int(self.cache_counters["plan_cache_hits"].value)
        misses = int(self.cache_counters["plan_cache_misses"].value)
        invalidations = int(self.cache_counters["plan_cache_invalidations"].value)
        created = int(self.cache_counters["deployments_created"].value)
        reused = int(self.cache_counters["deployments_reused"].value)
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        return (
            f"plan cache: hits={hits} misses={misses} "
            f"invalidations={invalidations} hit_rate={rate:.1%}; "
            f"deployments: created={created} reused={reused}"
        )

    def fault_summary(self) -> str:
        injected = int(self.fault_counters["faults_injected"].value)
        masked = int(self.fault_counters["boundary_masked_calls"].value)
        exhausted = int(
            self.fault_counters["boundary_exhausted_calls"].value
        )
        kinds = ", ".join(
            f"{kind}={int(self.fault_counters[f'faults_{kind}'].value)}"
            for kind in ("timeout", "io_error", "torn_write", "stale_read")
        )
        return (
            f"faults: injected={injected} ({kinds}); "
            f"retries: masked={masked} exhausted={exhausted}"
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"trials: {int(self.trials_total.value)} "
            f"(ok={int(self.trials_ok.value)}, errors: {self.error_summary()})",
            self.cache_summary(),
        ]
        if int(self.fault_counters["faults_injected"].value):
            lines.append(self.fault_summary())
        for name, metric in self.registry.items():
            if not isinstance(metric, Histogram) or not metric.count:
                continue
            lines.append(
                f"{name}: n={metric.count} mean={metric.mean * 1e6:.0f}us "
                f"p50={metric.quantile(0.5) * 1e6:.0f}us "
                f"p99={metric.quantile(0.99) * 1e6:.0f}us"
            )
        return lines


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` auto-sizes to the host's cores; negatives reject."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or None for auto), got {jobs}")
    return jobs


def resolve_pool(pool: str, jobs: int) -> str:
    """Pick the worker-pool flavour: processes for real parallelism."""
    if pool == "auto":
        return "process" if jobs > 1 else "thread"
    if pool not in ("thread", "process"):
        raise ValueError(f"pool must be auto|thread|process, got {pool!r}")
    return pool


def _make_executor(
    pool: str,
    jobs: int,
    initializer=None,
    initargs: tuple = (),
) -> Executor:
    if pool == "process":
        return ProcessPoolExecutor(
            max_workers=jobs, initializer=initializer, initargs=initargs
        )
    return ThreadPoolExecutor(max_workers=jobs)


class WorkerPoolHandle:
    """A long-lived worker pool reused across :func:`execute` calls.

    ``execute`` normally builds a pool per call and tears it down on the
    way out — correct for one-shot matrices, ruinous for an always-on
    campaign that submits a small batch every few hundred milliseconds:
    process workers would pay import + parse-cache + deployment-pool
    cold start on *every* batch. A handle owns one executor for its
    whole lifetime; worker-global state (parse LRU caches, deployment
    pools, compiled plans) then persists across batches, which is where
    the campaign's steady-state throughput comes from.

    Worker state can never leak into results: shard outcomes are
    byte-identical whatever a worker ran before (the jobs/pool identity
    grid pins this), so reusing workers is purely a wall-clock win.

    The handle is lazy (no pool until the first :meth:`executor` call)
    and idempotent to close; it also works as a context manager.
    """

    def __init__(
        self,
        jobs: int | None = None,
        pool: str = "auto",
        initializer=None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.flavour = resolve_pool(pool, self.jobs)
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Executor | None = None

    def executor(self) -> Executor:
        if self._executor is None:
            self._executor = _make_executor(
                self.flavour, self.jobs, self._initializer, self._initargs
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPoolHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def execute(
    plans,
    formats,
    inputs,
    conf_overrides: dict[str, object] | None = None,
    *,
    jobs: int | None = 1,
    pool: str = "auto",
    shard_inputs: int = DEFAULT_SHARD_INPUTS,
    metrics: CrossTestMetrics | None = None,
    progress=None,
    trace_sink: dict[int, tuple[Span, ...]] | None = None,
    fault_plan: FaultPlan | None = None,
    fault_seed: int = 0,
    injection_sink: dict[int, tuple[InjectionRecord, ...]] | None = None,
    prewarm: bool = True,
    batch: bool = True,
    pool_handle: "WorkerPoolHandle | None" = None,
) -> list[Trial]:
    """Run the full matrix and return trials in sequential order.

    ``batch`` (the default) lets same-type trials within a shard share
    deployment lanes — one create, batched writes, one scan — with
    bisecting fallback to the isolated path on any in-lane ambiguity.
    Automatically bypassed for traced or fault-injected runs (see
    :func:`run_shard`); reports are byte-identical either way.

    ``progress``, if given, is called after every shard completes as
    ``progress(done_shards, total_shards, done_trials, total_trials)``.

    ``trace_sink``, if given, switches per-trial tracing on and is
    filled with ``{global trial index: finished spans}`` — the index
    matches the position of the trial in the returned list, at every
    ``jobs``/``pool`` setting.

    ``fault_plan``/``fault_seed`` switch deterministic fault injection
    on (an empty plan is equivalent to no plan at all);
    ``injection_sink`` is filled like ``trace_sink``, with
    ``{global trial index: fired injection records}``.

    ``prewarm`` (process pools only) installs :func:`prewarm_worker`
    as the pool initializer so fresh workers start on warm parse and
    plan caches instead of paying cold-start on their first shard.

    ``pool_handle``, if given (and ``jobs > 1``), submits shards to the
    caller's persistent :class:`WorkerPoolHandle` instead of building
    and tearing down a pool inside this call — the repeated-submission
    path the fuzz scheduler and the always-on campaign service use.
    ``prewarm`` is ignored on that path (the handle fixed its
    initializer at construction).

    A zero-trial matrix (no plans, no formats, or no inputs) returns
    immediately — no shards, no pool, no progress callbacks.
    """
    jobs = resolve_jobs(jobs)
    inputs = list(inputs)
    shards = build_shards(plans, formats, inputs, shard_inputs=shard_inputs)
    if not shards:
        return []
    total_trials = sum(len(s.inputs) for s in shards)
    tracing = trace_sink is not None
    if fault_plan is not None and fault_plan.empty:
        fault_plan = None
    offsets: list[int] = []
    base = 0
    for shard in shards:
        offsets.append(base)
        base += len(shard.inputs)
    trials_by_index: dict[int, list[Trial]] = {}
    done_trials = 0

    def finish(shard: Shard, result: ShardResult) -> None:
        nonlocal done_trials
        shard_trials = result.to_trials(shard)
        trials_by_index[shard.index] = shard_trials
        done_trials += len(shard_trials)
        if metrics is not None:
            metrics.record_shard(shard, result, shard_trials)
        if trace_sink is not None:
            batches = result.span_batches()
            if batches is not None:
                offset = offsets[shard.index]
                for position, spans in enumerate(batches):
                    trace_sink[offset + position] = spans
        if injection_sink is not None:
            batches = result.injection_batches()
            if batches is not None:
                offset = offsets[shard.index]
                for position, records in enumerate(batches):
                    injection_sink[offset + position] = records
        if progress is not None:
            progress(
                len(trials_by_index), len(shards), done_trials, total_trials
            )

    if jobs == 1:
        # sequential semantics: shards walked in order on the calling
        # thread, deployments pooled so the engines' plan caches carry
        # across trials (results are byte-identical to fresh-per-trial —
        # the pooled-vs-fresh equivalence is pinned by tests).
        for shard in shards:
            finish(
                shard,
                run_shard(
                    shard,
                    conf_overrides,
                    tracing=tracing,
                    fault_plan=fault_plan,
                    fault_seed=fault_seed,
                    batch=batch,
                ),
            )
    else:

        def drain(workers: Executor) -> None:
            pending = {
                workers.submit(
                    run_shard,
                    shard,
                    conf_overrides,
                    True,
                    tracing,
                    fault_plan,
                    fault_seed,
                    batch,
                ): shard
                for shard in shards
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = pending.pop(future)
                    finish(shard, future.result())

        if pool_handle is not None:
            drain(pool_handle.executor())
        else:
            flavour = resolve_pool(pool, jobs)
            initializer = None
            initargs: tuple = ()
            if flavour == "process" and prewarm:
                type_texts, statement_texts = corpus_texts(formats, inputs)
                # warm with a small same-type lane (the first type's
                # first two inputs) so workers compile the exact
                # create/scan plans lanes replay, whether the run
                # batches or not.
                first_type = inputs[0].type_text
                warm = tuple(
                    test_input
                    for test_input in inputs
                    if test_input.type_text == first_type
                )[:2]
                initializer = prewarm_worker
                initargs = (
                    conf_overrides,
                    tuple(plans),
                    tuple(formats),
                    warm,
                    type_texts,
                    statement_texts,
                )
            with _make_executor(
                flavour, min(jobs, len(shards)), initializer, initargs
            ) as workers:
                drain(workers)

    trials: list[Trial] = []
    for index in range(len(shards)):
        trials.extend(trials_by_index[index])
    return trials


def run_trials(
    specs: list[tuple[Plan, str, TestInput]],
    conf_overrides: dict[str, object] | None = None,
    batch: bool = True,
) -> list[Outcome]:
    """Run a sparse set of (plan, fmt, input) triples, outcomes in order.

    The pooled path for callers that need a handful of scattered trials
    rather than a full matrix — e.g. the fault-robustness oracle
    re-running only the injected trials to establish fault-free
    baselines. Deployments are leased from the worker-global pool (warm
    plan caches, reset on release, never thrown away), and with
    ``batch`` the triples are grouped into (plan, fmt, type) lanes so a
    chaos run's baseline pass amortizes the per-trial round trip the
    same way the main matrix does.
    """
    pool = worker_pool(conf_overrides)
    outcomes: list[Outcome | None] = [None] * len(specs)
    counts = _new_counts()
    if not batch:
        for position, (plan, fmt, test_input) in enumerate(specs):
            deployment = _lease_counted(pool, counts)
            try:
                outcomes[position] = run_trial_on(
                    deployment, plan, fmt, test_input
                ).outcome
            finally:
                pool.release(deployment)
        return outcomes  # type: ignore[return-value]
    lanes: dict[tuple[Plan, str, str], list[int]] = {}
    for position, (plan, fmt, test_input) in enumerate(specs):
        lanes.setdefault((plan, fmt, test_input.type_text), []).append(
            position
        )
    for (plan, fmt, _), positions in lanes.items():
        lane_inputs = tuple(specs[position][2] for position in positions)
        lane_outcomes = _run_lane(
            pool, plan, fmt, lane_inputs, counts, None
        )
        for offset, position in enumerate(positions):
            outcomes[position] = lane_outcomes[offset]
    return outcomes  # type: ignore[return-value]
