"""Canonical discrepancy fingerprints shared by classification and fuzzing.

A *fingerprint* names the mechanism of a discrepancy, not the input that
happened to trigger it: ``(oracle, plan pair, format, canonical type
shape, normalized evidence, conf)``. Two inputs that trip the same
mechanism — a curated ``decimal(5,2)`` overflow and a fuzz-generated
``decimal(7,3)`` overflow — produce the *same* fingerprint, which is
what lets ``repro fuzz`` dedup its findings against the committed
baseline of known discrepancies instead of re-reporting the paper's 15
on every run.

The module also hosts the trial-shape helpers the classifier's
behavioural signatures are written in (``canonical_input``,
``sql_rejected``, ``df_nulled``, ``df_mangled``, ...); they were
previously private to :mod:`repro.crosstest.classify` and are shared
here so the fuzzer's dedup logic and the classifier read trials through
one vocabulary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.row import values_equal
from repro.common.types import (
    ByteType,
    IntegerType,
    LongType,
    MapType,
    ShortType,
    StringType,
)
from repro.crosstest.harness import NO_ROWS, Outcome, Trial
from repro.crosstest.oracles import OracleFailure, all_failures, canonical
from repro.crosstest.values import TestInput

__all__ = [
    "Fingerprint",
    "FingerprintHit",
    "type_shape",
    "outcome_shape",
    "failure_fingerprint",
    "run_fingerprints",
    "conf_label",
    "canonical_input",
    "is_narrow_int",
    "is_wide_int",
    "has_non_string_map_key",
    "sql_rejected",
    "df_nulled",
    "df_mangled",
]

#: numeric parameters inside a type text — ``decimal(10,2)``,
#: ``char(5)`` — are input detail, not mechanism, and are stripped from
#: the shape.
_TYPE_PARAMS = re.compile(r"\(\s*\d+\s*(?:,\s*\d+\s*)?\)")


@dataclass(frozen=True)
class Fingerprint:
    """The identity of one discrepancy mechanism.

    ``plans`` keeps the failure's plan tuple (one plan for WR/EH, the
    differing pair for Diff); ``fmt`` is the storage format, or
    ``"a<>b"`` for a format-axis differential; ``conf`` is the
    deployment-conf label the trial ran under (``""`` for defaults).
    """

    oracle: str
    group: str
    fmt: str
    plans: tuple[str, ...]
    type_shape: str
    evidence: str
    conf: str = ""

    @property
    def key(self) -> str:
        """Stable string identity — what baselines and JSONL store."""
        return "|".join(
            (
                self.oracle,
                self.group,
                self.fmt,
                "+".join(self.plans),
                self.type_shape,
                self.evidence,
                self.conf,
            )
        )

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "group": self.group,
            "fmt": self.fmt,
            "plans": list(self.plans),
            "type": self.type_shape,
            "evidence": self.evidence,
            "conf": self.conf,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Fingerprint":
        return cls(
            oracle=payload["oracle"],
            group=payload["group"],
            fmt=payload["fmt"],
            plans=tuple(payload["plans"]),
            type_shape=payload["type"],
            evidence=payload["evidence"],
            conf=payload.get("conf", ""),
        )


def type_shape(type_text: str) -> str:
    """The canonical shape of a declared type.

    Numeric parameters are stripped (``decimal(10,2)`` → ``decimal``),
    nesting is preserved (``array<decimal(5,0)>`` → ``array<decimal>``),
    and struct field *names* are reduced to a case marker: the names
    themselves are input detail, but whether any of them carries upper
    case is mechanism (#14 only fires on mixed-case fields).
    """
    text = _TYPE_PARAMS.sub("", type_text.replace(" ", ""))
    if not text.startswith("struct<"):
        return text

    def _strip_struct(chunk: str) -> str:
        # replace each "name:" with a case marker, at any nesting depth
        out: list[str] = []
        index = 0
        while index < len(chunk):
            match = re.match(r"([A-Za-z_][A-Za-z0-9_]*):", chunk[index:])
            if match:
                name = match.group(1)
                out.append("F!" if name != name.lower() else "f")
                out.append(":")
                index += match.end()
            else:
                out.append(chunk[index])
                index += 1
        return "".join(out)

    return _strip_struct(text)


def _value_type_shape(outcome: Outcome, test_input: TestInput) -> str:
    """Shape of the *read-back* type, with a lower-casing marker.

    The declared-vs-observed comparison happens on the raw type texts
    first (so ``struct<Aa:int>`` vs ``struct<aa:int>`` is visible), then
    the observed text is normalized like any declared type.
    """
    observed = outcome.value_type
    declared = test_input.type_text.replace(" ", "")
    if not observed:
        return ""
    if observed == declared:
        return type_shape(observed)
    if declared != declared.lower() and observed == declared.lower():
        return f"{type_shape(observed)}#lowercased"
    return type_shape(observed)


def outcome_shape(outcome: Outcome, test_input: TestInput) -> str:
    """Normalized behaviour of one trial outcome, value detail removed.

    Errors keep ``stage`` and ``error_type`` (the mechanism) and drop
    the message (the input). Successful reads are classified by what
    came back relative to what went in: the expected value, the raw
    (invalid) input verbatim, ``NULL``, no rows, or something else.
    """
    if not outcome.ok:
        return f"error:{outcome.stage}:{outcome.error_type}"
    if outcome.value is NO_ROWS:
        return "ok:no_rows"
    vshape = _value_type_shape(outcome, test_input)
    if outcome.value is None:
        return f"ok:null:{vshape}"
    if values_equal(outcome.value, test_input.expected_value):
        return f"ok:expected:{vshape}"
    if values_equal(outcome.value, test_input.py_value):
        return f"ok:input:{vshape}"
    return f"ok:other:{vshape}"


def conf_label(conf_overrides: dict[str, object] | None) -> str:
    """Stable rendering of the deployment conf a trial ran under."""
    if not conf_overrides:
        return ""
    return ";".join(
        f"{key}={value}" for key, value in sorted(conf_overrides.items())
    )


def failure_fingerprint(
    failure: OracleFailure,
    bucket: list[Trial],
    conf: str = "",
) -> Fingerprint:
    """Fingerprint one oracle failure given its input's trial bucket.

    ``bucket`` is every trial of the failure's input (all plans and
    formats) — the same bucket the classifier matches signatures over.
    """
    by_cell = {(t.plan.name, t.fmt): t for t in bucket}
    test_input = bucket[0].test_input
    shape = type_shape(test_input.type_text)
    if failure.oracle in ("wr", "eh"):
        trial = by_cell[(failure.plans[0], failure.fmt)]
        return Fingerprint(
            oracle=failure.oracle,
            group=failure.group,
            fmt=failure.fmt,
            plans=failure.plans,
            type_shape=shape,
            evidence=outcome_shape(trial.outcome, test_input),
            conf=conf,
        )
    # differential: two trials, identified by the failure's axis
    if failure.axis == "fmt":
        left = by_cell[(failure.plans[0], failure.labels[0])]
        right = by_cell[(failure.plans[1], failure.labels[1])]
        fmt = f"{failure.labels[0]}<>{failure.labels[1]}"
    else:
        left = by_cell[(failure.plans[0], failure.fmt)]
        right = by_cell[(failure.plans[1], failure.fmt)]
        fmt = failure.fmt
    evidence = (
        f"{outcome_shape(left.outcome, test_input)}"
        f"<>{outcome_shape(right.outcome, test_input)}"
    )
    return Fingerprint(
        oracle=failure.oracle,
        group=failure.group,
        fmt=fmt,
        plans=failure.plans,
        type_shape=shape,
        evidence=evidence,
        conf=conf,
    )


@dataclass
class FingerprintHit:
    """One distinct fingerprint observed in a run, with its witnesses."""

    fingerprint: Fingerprint
    failures: list[OracleFailure] = field(default_factory=list)
    #: input id of the first witnessing failure, in trial order
    witness_input_id: int = -1


def run_fingerprints(
    trials: list[Trial],
    failures: dict[str, list[OracleFailure]] | None = None,
    conf: str = "",
) -> dict[str, FingerprintHit]:
    """Every distinct fingerprint of a run, with its witnessing failures.

    Returns ``{fingerprint key: hit}``; recomputes the oracle failures
    when not handed in. Iteration order is deterministic (the oracles
    emit failures in trial order).
    """
    if failures is None:
        failures = all_failures(trials)
    buckets: dict[int, list[Trial]] = {}
    for trial in trials:
        buckets.setdefault(trial.test_input.input_id, []).append(trial)
    out: dict[str, FingerprintHit] = {}
    for oracle in ("wr", "eh", "difft"):
        for failure in failures.get(oracle, []):
            fingerprint = failure_fingerprint(
                failure, buckets[failure.input_id], conf
            )
            hit = out.get(fingerprint.key)
            if hit is None:
                hit = FingerprintHit(
                    fingerprint, witness_input_id=failure.input_id
                )
                out[fingerprint.key] = hit
            hit.failures.append(failure)
    return out


# -- trial-shape helpers (shared with the classifier) ----------------------


def canonical_input(trial: Trial) -> str:
    """``canonical(py_value)``, cached on the (shared) test input."""
    test_input = trial.test_input
    cached = test_input.__dict__.get("_canonical_py")
    if cached is None:
        cached = canonical(test_input.py_value)
        object.__setattr__(test_input, "_canonical_py", cached)
    return cached


def _column_type(trial: Trial):
    return trial.test_input.column_type


def is_narrow_int(trial: Trial) -> bool:
    return isinstance(_column_type(trial), (ByteType, ShortType))


def is_wide_int(trial: Trial) -> bool:
    return isinstance(_column_type(trial), (IntegerType, LongType))


def has_non_string_map_key(trial: Trial) -> bool:
    dtype = _column_type(trial)
    return isinstance(dtype, MapType) and not isinstance(
        dtype.key_type, StringType
    )


def sql_rejected(trial: Trial) -> bool:
    return (
        trial.plan.writer == "sparksql"
        and not trial.outcome.ok
        and trial.outcome.stage == "write"
    )


def df_nulled(trial: Trial) -> bool:
    return (
        trial.plan.writer == "dataframe"
        and trial.outcome.ok
        and trial.outcome.value is None
    )


def df_mangled(trial: Trial) -> bool:
    """DataFrame path stored a different (e.g. wrapped) value."""
    if trial.plan.writer != "dataframe" or not trial.outcome.ok:
        return False
    value = trial.outcome.value
    if value is None or value is NO_ROWS:
        return False
    return canonical(value) != canonical_input(trial)
