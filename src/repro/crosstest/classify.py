"""Map observed trial behaviour onto the discrepancy catalog.

Nothing in the harness or oracles knows about the 15 catalog entries;
this module recognizes each entry's *behavioural signature* in the raw
trials. A signature never quotes a JIRA id back at the data — it states
the observable mechanism ("an avro trial raised
IncompatibleSchemaException on a BYTE column") and lets the evidence
match or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import (
    BooleanType,
    CharType,
    DateType,
    DecimalType,
    DoubleType,
    FloatType,
    StructType,
    TimestampNTZType,
    VarcharType,
)
from repro.crosstest.fingerprint import (
    canonical_input as _canonical_input,
)
from repro.crosstest.fingerprint import (
    df_mangled as _df_mangled,
)
from repro.crosstest.fingerprint import (
    df_nulled as _df_nulled,
)
from repro.crosstest.fingerprint import (
    has_non_string_map_key as _has_non_string_map_key,
)
from repro.crosstest.fingerprint import (
    is_narrow_int as _is_narrow_int,
)
from repro.crosstest.fingerprint import (
    is_wide_int as _is_wide_int,
)
from repro.crosstest.fingerprint import (
    sql_rejected as _sql_rejected,
)
from repro.crosstest.harness import Trial

__all__ = ["Evidence", "classify_trials", "found_discrepancies"]


@dataclass
class Evidence:
    """Trials supporting one catalog entry."""

    number: int
    trials: list[Trial] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return bool(self.trials)


def classify_trials(trials: list[Trial]) -> dict[int, Evidence]:
    """Assign each catalog number the trials that exhibit its signature."""
    evidence = {number: Evidence(number) for number in range(1, 16)}
    by_input: dict[int, list[Trial]] = {}
    for trial in trials:
        by_input.setdefault(trial.test_input.input_id, []).append(trial)

    for bucket in by_input.values():
        for number in range(1, 16):
            matched = _MATCHERS[number](bucket)
            evidence[number].trials.extend(matched)
    return evidence


def found_discrepancies(trials: list[Trial]) -> set[int]:
    return {
        number
        for number, ev in classify_trials(trials).items()
        if ev.found
    }


# -- helpers ----------------------------------------------------------------
#
# The trial-shape vocabulary (_canonical_input, _sql_rejected, ...) lives
# in repro.crosstest.fingerprint and is shared with repro.fuzz.dedup; the
# aliased imports above keep the signature definitions below unchanged.


def _ct(trial: Trial):
    return trial.test_input.column_type


# -- per-entry signatures -------------------------------------------------------


def _m1(bucket: list[Trial]) -> list[Trial]:
    """Avro read of a BYTE/SHORT column raises IncompatibleSchemaException."""
    return [
        t
        for t in bucket
        if t.fmt == "avro"
        and _is_narrow_int(t)
        and not t.outcome.ok
        and t.outcome.error_type == "IncompatibleSchemaException"
    ]


def _m2(bucket: list[Trial]) -> list[Trial]:
    """DataFrame-written decimal fails to read through HiveQL."""
    return [
        t
        for t in bucket
        if isinstance(_ct(t), DecimalType)
        and t.test_input.valid
        and t.plan.writer == "dataframe"
        and t.plan.reader == "hiveql"
        and not t.outcome.ok
        and t.outcome.stage == "read"
        and "scale" in t.outcome.error_message
    ]


def _m3(bucket: list[Trial]) -> list[Trial]:
    """SparkSQL round trip: BYTE/SHORT read back as INT, with the warning."""
    return [
        t
        for t in bucket
        if t.fmt == "avro"
        and _is_narrow_int(t)
        and t.test_input.valid
        and t.plan.writer == "sparksql"
        and t.outcome.ok
        and t.outcome.value_type == "int"
        and any("not case preserving" in w for w in t.outcome.warnings)
    ]


def _m4(bucket: list[Trial]) -> list[Trial]:
    """Non-string map key: avro fails at create/write, others succeed."""
    avro_failed = [
        t
        for t in bucket
        if _has_non_string_map_key(t)
        and t.fmt == "avro"
        and not t.outcome.ok
        and t.outcome.error_type == "UnsupportedTypeError"
    ]
    others_ok = any(
        t.fmt != "avro" and t.outcome.ok
        for t in bucket
        if _has_non_string_map_key(t)
    )
    return avro_failed if (avro_failed and others_ok) else []


def _m5(bucket: list[Trial]) -> list[Trial]:
    """Decimal overflow: SQL raises, DataFrame -> NULL."""
    if not any(
        isinstance(_ct(t), DecimalType) and not t.test_input.valid
        for t in bucket
    ):
        return []
    rejected = [t for t in bucket if _sql_rejected(t)]
    nulled = [t for t in bucket if _df_nulled(t)]
    return rejected + nulled if (rejected and nulled) else []


def _m6(bucket: list[Trial]) -> list[Trial]:
    """NaN survives Spark readers but reads as NULL through HiveQL."""
    matched = []
    for t in bucket:
        if not isinstance(_ct(t), (FloatType, DoubleType)):
            continue
        if (
            "NaN" not in t.test_input.description
            and _canonical_input(t) != "double:NaN"
        ):
            continue
        if t.plan.reader == "hiveql" and t.outcome.ok and t.outcome.value is None:
            matched.append(t)
    return matched


def _m7(bucket: list[Trial]) -> list[Trial]:
    """±Infinity errors through HiveQL (same root cause as #6)."""
    matched = []
    for t in bucket:
        if not isinstance(_ct(t), (FloatType, DoubleType)):
            continue
        if "Inf" not in _canonical_input(t):
            continue
        if (
            t.plan.reader == "hiveql"
            and not t.outcome.ok
            and t.outcome.stage == "read"
        ):
            matched.append(t)
    return matched


def _m8(bucket: list[Trial]) -> list[Trial]:
    """TIMESTAMP_NTZ read back with plain TIMESTAMP type."""
    return [
        t
        for t in bucket
        if isinstance(_ct(t), TimestampNTZType)
        and t.test_input.valid
        and t.outcome.ok
        and t.outcome.value_type == "timestamp"
        and t.plan.reader != "hiveql"
    ]


def _m9(bucket: list[Trial]) -> list[Trial]:
    """Malformed date string: SQL literal rejects, DataFrame stores NULL.

    Only string-shaped invalid inputs qualify — a kind mismatch (e.g. an
    int into a date column) is a store-assignment issue, not the
    SPARK-40525 date-parsing asymmetry.
    """

    def is_bad_date_string(t: Trial) -> bool:
        return (
            isinstance(_ct(t), DateType)
            and not t.test_input.valid
            and isinstance(t.test_input.py_value, str)
        )

    if not any(is_bad_date_string(t) for t in bucket):
        return []
    rejected = [t for t in bucket if is_bad_date_string(t) and _sql_rejected(t)]
    nulled = [t for t in bucket if is_bad_date_string(t) and _df_nulled(t)]
    return rejected + nulled if (rejected and nulled) else []


def _overflow_pair(bucket: list[Trial], narrow: bool) -> list[Trial]:
    picker = _is_narrow_int if narrow else _is_wide_int
    relevant = [t for t in bucket if picker(t) and not t.test_input.valid]
    if not relevant:
        return []
    rejected = [t for t in relevant if _sql_rejected(t)]
    mangled = [t for t in relevant if _df_mangled(t) or _df_nulled(t)]
    return rejected + mangled if (rejected and mangled) else []


def _m10(bucket: list[Trial]) -> list[Trial]:
    return _overflow_pair(bucket, narrow=False)


def _m11(bucket: list[Trial]) -> list[Trial]:
    return _overflow_pair(bucket, narrow=True)


def _m12(bucket: list[Trial]) -> list[Trial]:
    """Invalid boolean: SQL rejects, DataFrame stores NULL."""
    relevant = [
        t
        for t in bucket
        if isinstance(_ct(t), BooleanType) and not t.test_input.valid
    ]
    if not relevant:
        return []
    rejected = [t for t in relevant if _sql_rejected(t)]
    nulled = [t for t in relevant if _df_nulled(t)]
    return rejected + nulled if (rejected and nulled) else []


def _m13(bucket: list[Trial]) -> list[Trial]:
    """CHAR padding differs across *Spark* interfaces for the same input.

    Hive-side plans are excluded: Hive pads CHAR regardless of Spark's
    session configuration (it cannot see it), and the paper reports #13
    as a Spark-to-Spark differential (ss_difft).
    """
    relevant = [
        t
        for t in bucket
        if isinstance(_ct(t), CharType)
        and t.plan.group == "spark_e2e"
        and t.outcome.ok
        and isinstance(t.outcome.value, str)
    ]
    seen = {t.outcome.value for t in relevant}
    if len(seen) > 1:
        return relevant
    return []


def _m14(bucket: list[Trial]) -> list[Trial]:
    """Mixed-case struct field names come back lower-cased on some paths."""
    matched = []
    for t in bucket:
        dtype = _ct(t)
        if not isinstance(dtype, StructType):
            continue
        declared = dtype.simple_string()
        if declared == declared.lower():
            continue  # nothing to lose
        if (
            t.outcome.ok
            and t.outcome.value_type
            and t.outcome.value_type != declared
            and t.outcome.value_type == declared.lower()
        ):
            matched.append(t)
    return matched


def _m15(bucket: list[Trial]) -> list[Trial]:
    """Overlong VARCHAR stored and read back verbatim via DataFrame."""
    return [
        t
        for t in bucket
        if isinstance(_ct(t), VarcharType)
        and not t.test_input.valid
        and t.plan.writer == "dataframe"
        and t.outcome.ok
        and t.outcome.value == t.test_input.py_value
    ]


_MATCHERS = {
    1: _m1,
    2: _m2,
    3: _m3,
    4: _m4,
    5: _m5,
    6: _m6,
    7: _m7,
    8: _m8,
    9: _m9,
    10: _m10,
    11: _m11,
    12: _m12,
    13: _m13,
    14: _m14,
    15: _m15,
}
