"""Wall-clock benchmark of the §8 trial matrix.

``python -m repro.crosstest.bench [OUTPUT.json]`` (or ``make
bench-json``) runs the full matrix three ways — ``--jobs 1`` isolated,
``--jobs 1`` with batched deployment lanes, and on a process pool at an
explicit ``max(2, cores)`` worker count — and records wall-clock,
throughput, and the plan-cache counters for each: the numbers the
prepared-execution, lane, and parallel layers are accountable for.
``batch_speedup`` is the lanes-on/lanes-off ratio at jobs=1, with both
legs from the same run so it isolates exactly what batching buys.

The parallel leg is *honest about the host*: it never lets ``jobs``
auto-resolve (on a 1-core runner that silently measured jobs=1 against
jobs=1 and reported the pool overhead as a "speedup" of 0.92x), it
records which pool flavour ran, and it sets ``degenerate: true`` when
the host has fewer than 2 cores — the signal ``benchgate`` uses to know
a parallel-speedup comparison would be meaningless there.

``baseline_jobs1_s`` is the sequential wall-clock measured at the PR-1
commit (before the plan cache, compiled kernels, and pooled
deployments existed) on the reference machine; ``speedup_vs_baseline``
is computed against it.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.crosstest.executor import resolve_jobs, resolve_pool
from repro.crosstest.plans import FORMATS
from repro.crosstest.report import run_crosstest

__all__ = ["PR1_BASELINE_JOBS1_S", "run_benchmark", "main"]

#: sequential (jobs=1) wall-clock of the full matrix at the PR-1 commit
PR1_BASELINE_JOBS1_S = 2.0


def _measure(
    jobs: int,
    repeats: int,
    pool: str = "auto",
    inputs=None,
    batch: bool = False,
) -> dict:
    """Best-of-``repeats`` for one explicit jobs/pool setting.

    The first run in a process pays every cold cache (parsers, kernels,
    serializer instances, deployment pools); later runs are warm. Both
    are reported — cold is what a one-shot CLI invocation sees.

    ``batch`` turns deployment lanes on for the leg; it defaults to off
    here so the ``jobs1``/``parallel`` legs stay comparable with the
    pre-lane baselines, with batching measured as its own leg.
    """
    from repro.crosstest import CrossTestMetrics

    walls: list[float] = []
    counters: dict[str, int] = {}
    trials = 0
    for _ in range(max(1, repeats)):
        metrics = CrossTestMetrics()
        started = time.perf_counter()
        run_crosstest(
            inputs=inputs, jobs=jobs, pool=pool, metrics=metrics, batch=batch
        )
        wall = time.perf_counter() - started
        if not walls or wall < min(walls):
            counters = {
                name: int(counter.value)
                for name, counter in sorted(metrics.cache_counters.items())
            }
            trials = int(metrics.trials_total.value)
        walls.append(wall)
    best = min(walls)
    hits = counters.get("plan_cache_hits", 0)
    misses = counters.get("plan_cache_misses", 0)
    return {
        "jobs": resolve_jobs(jobs),
        "pool": resolve_pool(pool, resolve_jobs(jobs)),
        "batch": batch,
        "trials": trials,
        "cold_s": round(walls[0], 4),
        "best_s": round(best, 4),
        "runs_s": [round(w, 4) for w in walls],
        "trials_per_s": round(trials / best, 1) if best > 0 else 0.0,
        "plan_cache": counters,
        "plan_cache_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
    }


def run_benchmark(repeats: int = 3, inputs=None) -> dict:
    """The full benchmark document written to ``BENCH_crosstest.json``.

    The parallel leg always runs ``max(2, cores)`` process-pool workers
    — an explicit job count, never auto-resolved, so a 1-core host
    still measures a *real* pool (and its real overhead) rather than
    comparing jobs=1 against itself. ``parallel.degenerate`` marks
    hosts where those workers cannot actually run concurrently; gates
    must not read ``parallel_speedup`` as a regression signal there.

    ``inputs`` narrows the matrix (testing hook); ``None`` runs the
    full 422-input corpus.
    """
    cores = os.cpu_count() or 1
    parallel_jobs = max(2, cores)
    sequential = _measure(1, repeats, inputs=inputs)
    batched = _measure(1, repeats, inputs=inputs, batch=True)
    parallel = _measure(parallel_jobs, repeats, pool="process", inputs=inputs)
    parallel["degenerate"] = cores < 2
    return {
        "benchmark": "crosstest-trial-matrix",
        "formats": list(FORMATS),
        "baseline_jobs1_s": PR1_BASELINE_JOBS1_S,
        "jobs1": sequential,
        "jobs1_batch": batched,
        "parallel": parallel,
        "speedup_vs_baseline": round(
            PR1_BASELINE_JOBS1_S / sequential["best_s"], 2
        ),
        # what lanes buy over this run's own isolated jobs=1 leg — the
        # apples-to-apples number the batch gate reads (both legs share
        # every other optimization layer, so the ratio isolates lanes)
        "batch_speedup": round(
            sequential["best_s"] / batched["best_s"], 2
        ),
        "parallel_speedup": round(
            sequential["best_s"] / parallel["best_s"], 2
        ),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "BENCH_crosstest.json"
    repeats = int(argv[1]) if len(argv) > 1 else 3
    document = run_benchmark(repeats=repeats)
    text = json.dumps(document, indent=1)
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(text)
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
