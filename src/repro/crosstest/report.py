"""Reporting for the cross-test run: the §8.2 results.

Produces the same shape of output as the paper's artifact: per-group,
per-oracle failure lists (``ss_difft``, ``sh_wr``, ``hs_eh``, ...), the
set of distinct discrepancies found, and the five problem-category
counts of §8.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crosstest.catalog import CATALOG, CATEGORY_MEMBERS, Discrepancy
from repro.crosstest.classify import Evidence, classify_trials
from repro.crosstest.executor import run_trials
from repro.crosstest.fingerprint import FingerprintHit, run_fingerprints
from repro.crosstest.harness import CrossTester, Outcome, Trial
from repro.crosstest.oracles import (
    OracleFailure,
    RobustnessVerdict,
    all_failures,
    fault_robustness,
)
from repro.crosstest.plans import ALL_PLANS, FORMATS
from repro.crosstest.values import TestInput
from repro.faults.core import InjectionRecord
from repro.faults.plan import FaultPlan
from repro.tracing.core import Span, Tracer

__all__ = ["CrossTestReport", "FaultReport", "FuzzSection", "run_crosstest"]

#: classification order used everywhere a fault report renders
_CLASSIFICATIONS = ("masked", "gracefully_failed", "mis_handled")


@dataclass
class FaultReport:
    """The robustness side of a fault-injected run.

    Everything in here is deterministic for a fixed (plan, seed): the
    injection schedule is a pure hash and the verdicts are pure
    functions of (records, outcome, baseline) — so two runs of the same
    campaign produce byte-identical fault reports, which is what the CI
    chaos job asserts with a plain diff.
    """

    plan: FaultPlan
    seed: int
    #: global trial index -> fired injections (only injected trials)
    injections: dict[int, tuple[InjectionRecord, ...]] = field(
        default_factory=dict
    )
    verdicts: dict[int, RobustnessVerdict] = field(default_factory=dict)
    #: global trial index -> "plan/fmt/input_id" label
    trial_keys: dict[int, str] = field(default_factory=dict)

    @property
    def injected_trials(self) -> int:
        return len(self.verdicts)

    def counts(self) -> dict[str, int]:
        out = {name: 0 for name in _CLASSIFICATIONS}
        for verdict in self.verdicts.values():
            out[verdict.classification] += 1
        return out

    def mode_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for verdict in self.verdicts.values():
            out[verdict.mode] = out.get(verdict.mode, 0) + 1
        return dict(sorted(out.items()))

    def mis_handled(self) -> list[int]:
        return sorted(
            index
            for index, verdict in self.verdicts.items()
            if verdict.classification == "mis_handled"
        )

    def to_json(self) -> dict:
        return {
            "plan": self.plan.to_json(),
            "seed": self.seed,
            "injected_trials": self.injected_trials,
            "classifications": self.counts(),
            "modes": self.mode_counts(),
            "trials": [
                {
                    "index": index,
                    "trial": self.trial_keys.get(index, ""),
                    "injections": [
                        record.to_json()
                        for record in self.injections.get(index, ())
                    ],
                    **self.verdicts[index].to_json(),
                }
                for index in sorted(self.verdicts)
            ],
        }

    def summary_lines(self) -> list[str]:
        counts = self.counts()
        lines = [
            f"fault plan: {self.plan.name} (seed={self.seed}), "
            f"injected trials: {self.injected_trials}",
            "robustness: "
            + ", ".join(
                f"{name}={counts[name]}" for name in _CLASSIFICATIONS
            ),
        ]
        modes = self.mode_counts()
        if modes:
            lines.append(
                "modes: "
                + ", ".join(
                    f"{mode}={count}" for mode, count in modes.items()
                )
            )
        for index in self.mis_handled():
            verdict = self.verdicts[index]
            label = self.trial_keys.get(index, str(index))
            lines.append(
                f"  MIS-HANDLED {label}: [{verdict.mode}] {verdict.detail}"
            )
        return lines

@dataclass
class FuzzSection:
    """The fuzzing side of a report: what a campaign searched and found.

    Attached to :class:`CrossTestReport` only by ``repro fuzz`` — plain
    §8 runs leave it ``None``, and both ``to_json`` and
    ``summary_lines`` skip an absent section entirely, so the
    paper-replication report is byte-identical with fuzzing off.
    """

    seed: int
    budget: int
    rounds: int
    candidates: int
    trials: int
    coverage_features: int
    distinct_fingerprints: int
    known_fingerprints: int
    #: rendered summaries of novel findings, in fingerprint-key order
    novel: list[dict] = field(default_factory=list)
    #: catalog numbers the campaign's inputs rediscovered behaviourally
    rediscovered: tuple[int, ...] = ()

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "rounds": self.rounds,
            "candidates": self.candidates,
            "trials": self.trials,
            "coverage_features": self.coverage_features,
            "distinct_fingerprints": self.distinct_fingerprints,
            "known_fingerprints": self.known_fingerprints,
            "novel": self.novel,
            "rediscovered": list(self.rediscovered),
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzz: seed={self.seed} budget={self.budget} "
            f"rounds={self.rounds} candidates={self.candidates} "
            f"trials={self.trials}",
            f"coverage: {self.coverage_features} features; "
            f"fingerprints: {self.distinct_fingerprints} distinct "
            f"({self.known_fingerprints} known, {len(self.novel)} novel)",
            "rediscovered known discrepancies: "
            + (
                ", ".join(f"#{n}" for n in self.rediscovered)
                if self.rediscovered
                else "none"
            ),
        ]
        # fingerprints that differ only in format/plan pair render the
        # same mechanism line — fold them and count the variants
        rendered: dict[tuple[str, str], int] = {}
        for finding in self.novel:
            head = (
                f"  NOVEL {finding['fingerprint']['oracle']} "
                f"{finding['fingerprint']['type']} "
                f"[{finding['fingerprint']['evidence']}]"
                + (
                    f" conf={finding['fingerprint']['conf']}"
                    if finding["fingerprint"]["conf"]
                    else ""
                )
            )
            repro = (
                f"    repro: {finding['shrunk']['type_text']} = "
                f"{finding['shrunk']['sql_literal']}"
            )
            rendered[(head, repro)] = rendered.get((head, repro), 0) + 1
        for (head, repro), count in rendered.items():
            lines.append(
                head + (f" x{count}" if count > 1 else "")
            )
            lines.append(repro)
        return lines


_GROUP_SHORT = {"spark_e2e": "ss", "spark_hive": "sh", "hive_spark": "hs"}


@dataclass
class CrossTestReport:
    trials: list[Trial]
    failures: dict[str, list[OracleFailure]]
    evidence: dict[int, Evidence]
    #: per-trial span trees, keyed by position in ``trials`` — only
    #: populated when the run was traced. Never feeds ``to_json`` or
    #: ``summary_lines``, so the rendered report is byte-identical with
    #: tracing on or off.
    traces: dict[int, tuple[Span, ...]] | None = None
    #: spans from the oracle/classification phase of a traced run
    oracle_spans: tuple[Span, ...] = ()
    #: robustness results of a fault-injected run — ``None`` for plain
    #: runs, so empty-plan reports stay byte-identical to pre-fault ones
    faults: "FaultReport | None" = None
    #: fuzz-campaign results — ``None`` for plain §8 runs, keeping the
    #: paper-replication report byte-identical with fuzzing off
    fuzz: "FuzzSection | None" = None

    # -- derived views ----------------------------------------------------

    @property
    def found_numbers(self) -> set[int]:
        return {n for n, ev in self.evidence.items() if ev.found}

    @property
    def found(self) -> list[Discrepancy]:
        return [d for d in CATALOG if d.number in self.found_numbers]

    def failures_by_log(self) -> dict[str, list[OracleFailure]]:
        """Failures keyed the way the paper's artifact names its logs,
        e.g. ``ss_difft``, ``sh_wr``, ``hs_eh``. Plans outside the three
        built-in groups keep their raw group name as the prefix."""
        logs: dict[str, list[OracleFailure]] = {}
        for oracle, failures in self.failures.items():
            for failure in failures:
                short = _GROUP_SHORT.get(failure.group, failure.group)
                logs.setdefault(f"{short}_{oracle}", []).append(failure)
        return logs

    def category_counts_found(self) -> dict[str, int]:
        """How many *found* discrepancies fall in each §8.2 category."""
        return {
            name: len(members & self.found_numbers)
            for name, members in CATEGORY_MEMBERS.items()
        }

    def fingerprints(self, conf: str = "") -> dict[str, FingerprintHit]:
        """Mechanism fingerprints of this run's oracle failures.

        The same ``{key: hit}`` mapping a fuzz campaign collects,
        computed from the already-evaluated failures — the feed the
        campaign ledger records so co-occurrence analytics can group
        plain §8 runs and fuzz runs through one vocabulary. ``conf`` is
        the deployment-conf label the run executed under
        (:func:`~repro.crosstest.fingerprint.conf_label`).
        """
        return run_fingerprints(self.trials, self.failures, conf)

    def to_json(self) -> dict:
        payload = {
            "trials": len(self.trials),
            "failures": {
                log: [
                    {
                        "input": f.input_id,
                        "fmt": f.fmt,
                        "plans": list(f.plans),
                        "detail": f.detail,
                    }
                    for f in failures
                ]
                for log, failures in sorted(self.failures_by_log().items())
            },
            "found_discrepancies": sorted(self.found_numbers),
            "category_counts": self.category_counts_found(),
        }
        if self.faults is not None:
            payload["fault_robustness"] = self.faults.to_json()
        if self.fuzz is not None:
            payload["fuzz"] = self.fuzz.to_json()
        return payload

    # -- traces -----------------------------------------------------------

    def discrepancy_trace(self, number: int) -> list[Span]:
        """Every span recorded for the trials behind one discrepancy.

        The witness trials alone can be one-sided (e.g. a discrepancy
        whose witnesses all fail at ``create`` never reaches a read), so
        the trace covers *every* trial that shares the first witness's
        input — the full differential bucket, writer side and reader
        side, across all plans and formats.
        """
        if self.traces is None:
            return []
        witness = self.evidence.get(number)
        if witness is None or not witness.trials:
            return []
        input_id = witness.trials[0].test_input.input_id
        spans: list[Span] = []
        for index, trial in enumerate(self.trials):
            if trial.test_input.input_id == input_id:
                spans.extend(self.traces.get(index, ()))
        return spans

    def discrepancy_traces(self) -> dict[int, list[Span]]:
        """``{discrepancy number: spans}`` for every found discrepancy."""
        return {
            number: self.discrepancy_trace(number)
            for number in sorted(self.found_numbers)
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"trials run: {len(self.trials)}",
            "oracle failures: "
            + ", ".join(
                f"{log}={len(fails)}"
                for log, fails in sorted(self.failures_by_log().items())
            ),
            f"distinct discrepancies found: {len(self.found_numbers)}/15",
        ]
        for entry in self.found:
            lines.append(f"  #{entry.number:>2} [{entry.jira}] {entry.title}")
        lines.append("problem categories (found / paper):")
        paper = {name: len(members) for name, members in CATEGORY_MEMBERS.items()}
        for name, count in self.category_counts_found().items():
            lines.append(f"  {name}: {count}/{paper[name]}")
        if self.faults is not None:
            lines.extend(self.faults.summary_lines())
        if self.fuzz is not None:
            lines.extend(self.fuzz.summary_lines())
        return lines


def run_crosstest(
    inputs: list[TestInput] | None = None,
    plans=ALL_PLANS,
    formats=FORMATS,
    conf_overrides: dict[str, object] | None = None,
    *,
    jobs: int | None = 1,
    pool: str = "auto",
    metrics=None,
    progress=None,
    tracing: bool = False,
    fault_plan: FaultPlan | None = None,
    fault_seed: int = 0,
    batch: bool = True,
) -> CrossTestReport:
    """Run the full §8 pipeline: harness → oracles → classification.

    ``jobs`` selects the execution engine: 1 (default) is the original
    sequential loop, >1 or ``None`` (auto-size) shards the matrix onto a
    worker pool. The resulting report is identical either way — tracing
    included: ``tracing=True`` attaches per-trial span trees (plus the
    oracle-phase spans) to the report without touching its rendered
    content.

    With a non-empty ``fault_plan``, trials run under deterministic
    fault injection; each injected trial is then re-run fault-free (in
    this process, against the pooled deployments) to obtain its
    baseline, and the fault-robustness oracle attaches a
    :class:`FaultReport` to the result. An empty or absent plan leaves
    the report byte-identical to a plain run.

    ``batch`` (the default) lets same-type trials share deployment
    lanes in the executor; traced or fault-injected trials always run
    isolated, and the rendered report is byte-identical either way.
    """
    tester = CrossTester(
        inputs=inputs,
        plans=plans,
        formats=formats,
        conf_overrides=conf_overrides,
    )
    injecting = fault_plan is not None and not fault_plan.empty
    trace_sink: dict[int, tuple[Span, ...]] | None = {} if tracing else None
    injection_sink: dict[int, tuple[InjectionRecord, ...]] | None = (
        {} if injecting else None
    )
    trials = tester.run(
        jobs=jobs,
        pool=pool,
        metrics=metrics,
        progress=progress,
        trace_sink=trace_sink,
        fault_plan=fault_plan if injecting else None,
        fault_seed=fault_seed,
        injection_sink=injection_sink,
        batch=batch,
    )

    def oracle_phase() -> tuple[dict, dict, FaultReport | None]:
        failures = all_failures(trials)
        evidence = classify_trials(trials)
        faults: FaultReport | None = None
        if injecting and fault_plan is not None:
            assert injection_sink is not None
            injected = {
                index: records
                for index, records in injection_sink.items()
                if records
            }
            # baseline reruns go through the executor's pooled/laned
            # path: one sparse batch over warm deployments instead of a
            # fresh lease per injected trial, so chaos runs don't pay
            # per-trial cold round trips for their fault-free oracles.
            indices = sorted(injected)
            baseline_outcomes = run_trials(
                [
                    (
                        trials[index].plan,
                        trials[index].fmt,
                        trials[index].test_input,
                    )
                    for index in indices
                ],
                tester.conf_overrides,
                batch=batch,
            )
            baselines: dict[int, Outcome] = dict(
                zip(indices, baseline_outcomes)
            )
            verdicts = fault_robustness(trials, injected, baselines)
            faults = FaultReport(
                plan=fault_plan,
                seed=fault_seed,
                injections=injected,
                verdicts=verdicts,
                trial_keys={
                    index: (
                        f"{trials[index].plan.name}/{trials[index].fmt}/"
                        f"{trials[index].test_input.input_id}"
                    )
                    for index in injected
                },
            )
        return failures, evidence, faults

    if tracing:
        with Tracer(trace_id="crosstest/oracles") as oracle_tracer:
            failures, evidence, faults = oracle_phase()
        oracle_spans = tuple(oracle_tracer.finished)
    else:
        failures, evidence, faults = oracle_phase()
        oracle_spans = ()
    return CrossTestReport(
        trials=trials,
        failures=failures,
        evidence=evidence,
        traces=trace_sink,
        oracle_spans=oracle_spans,
        faults=faults,
    )
