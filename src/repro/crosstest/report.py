"""Reporting for the cross-test run: the §8.2 results.

Produces the same shape of output as the paper's artifact: per-group,
per-oracle failure lists (``ss_difft``, ``sh_wr``, ``hs_eh``, ...), the
set of distinct discrepancies found, and the five problem-category
counts of §8.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crosstest.catalog import CATALOG, CATEGORY_MEMBERS, Discrepancy
from repro.crosstest.classify import Evidence, classify_trials
from repro.crosstest.harness import CrossTester, Trial
from repro.crosstest.oracles import OracleFailure, all_failures
from repro.crosstest.plans import ALL_PLANS, FORMATS
from repro.crosstest.values import TestInput
from repro.tracing.core import Span, Tracer

__all__ = ["CrossTestReport", "run_crosstest"]

_GROUP_SHORT = {"spark_e2e": "ss", "spark_hive": "sh", "hive_spark": "hs"}


@dataclass
class CrossTestReport:
    trials: list[Trial]
    failures: dict[str, list[OracleFailure]]
    evidence: dict[int, Evidence]
    #: per-trial span trees, keyed by position in ``trials`` — only
    #: populated when the run was traced. Never feeds ``to_json`` or
    #: ``summary_lines``, so the rendered report is byte-identical with
    #: tracing on or off.
    traces: dict[int, tuple[Span, ...]] | None = None
    #: spans from the oracle/classification phase of a traced run
    oracle_spans: tuple[Span, ...] = ()

    # -- derived views ----------------------------------------------------

    @property
    def found_numbers(self) -> set[int]:
        return {n for n, ev in self.evidence.items() if ev.found}

    @property
    def found(self) -> list[Discrepancy]:
        return [d for d in CATALOG if d.number in self.found_numbers]

    def failures_by_log(self) -> dict[str, list[OracleFailure]]:
        """Failures keyed the way the paper's artifact names its logs,
        e.g. ``ss_difft``, ``sh_wr``, ``hs_eh``. Plans outside the three
        built-in groups keep their raw group name as the prefix."""
        logs: dict[str, list[OracleFailure]] = {}
        for oracle, failures in self.failures.items():
            for failure in failures:
                short = _GROUP_SHORT.get(failure.group, failure.group)
                logs.setdefault(f"{short}_{oracle}", []).append(failure)
        return logs

    def category_counts_found(self) -> dict[str, int]:
        """How many *found* discrepancies fall in each §8.2 category."""
        return {
            name: len(members & self.found_numbers)
            for name, members in CATEGORY_MEMBERS.items()
        }

    def to_json(self) -> dict:
        return {
            "trials": len(self.trials),
            "failures": {
                log: [
                    {
                        "input": f.input_id,
                        "fmt": f.fmt,
                        "plans": list(f.plans),
                        "detail": f.detail,
                    }
                    for f in failures
                ]
                for log, failures in sorted(self.failures_by_log().items())
            },
            "found_discrepancies": sorted(self.found_numbers),
            "category_counts": self.category_counts_found(),
        }

    # -- traces -----------------------------------------------------------

    def discrepancy_trace(self, number: int) -> list[Span]:
        """Every span recorded for the trials behind one discrepancy.

        The witness trials alone can be one-sided (e.g. a discrepancy
        whose witnesses all fail at ``create`` never reaches a read), so
        the trace covers *every* trial that shares the first witness's
        input — the full differential bucket, writer side and reader
        side, across all plans and formats.
        """
        if self.traces is None:
            return []
        witness = self.evidence.get(number)
        if witness is None or not witness.trials:
            return []
        input_id = witness.trials[0].test_input.input_id
        spans: list[Span] = []
        for index, trial in enumerate(self.trials):
            if trial.test_input.input_id == input_id:
                spans.extend(self.traces.get(index, ()))
        return spans

    def discrepancy_traces(self) -> dict[int, list[Span]]:
        """``{discrepancy number: spans}`` for every found discrepancy."""
        return {
            number: self.discrepancy_trace(number)
            for number in sorted(self.found_numbers)
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"trials run: {len(self.trials)}",
            "oracle failures: "
            + ", ".join(
                f"{log}={len(fails)}"
                for log, fails in sorted(self.failures_by_log().items())
            ),
            f"distinct discrepancies found: {len(self.found_numbers)}/15",
        ]
        for entry in self.found:
            lines.append(f"  #{entry.number:>2} [{entry.jira}] {entry.title}")
        lines.append("problem categories (found / paper):")
        paper = {name: len(members) for name, members in CATEGORY_MEMBERS.items()}
        for name, count in self.category_counts_found().items():
            lines.append(f"  {name}: {count}/{paper[name]}")
        return lines


def run_crosstest(
    inputs: list[TestInput] | None = None,
    plans=ALL_PLANS,
    formats=FORMATS,
    conf_overrides: dict[str, object] | None = None,
    *,
    jobs: int | None = 1,
    pool: str = "auto",
    metrics=None,
    progress=None,
    tracing: bool = False,
) -> CrossTestReport:
    """Run the full §8 pipeline: harness → oracles → classification.

    ``jobs`` selects the execution engine: 1 (default) is the original
    sequential loop, >1 or ``None`` (auto-size) shards the matrix onto a
    worker pool. The resulting report is identical either way — tracing
    included: ``tracing=True`` attaches per-trial span trees (plus the
    oracle-phase spans) to the report without touching its rendered
    content.
    """
    tester = CrossTester(
        inputs=inputs,
        plans=plans,
        formats=formats,
        conf_overrides=conf_overrides,
    )
    trace_sink: dict[int, tuple[Span, ...]] | None = {} if tracing else None
    trials = tester.run(
        jobs=jobs,
        pool=pool,
        metrics=metrics,
        progress=progress,
        trace_sink=trace_sink,
    )
    if tracing:
        with Tracer(trace_id="crosstest/oracles") as oracle_tracer:
            failures = all_failures(trials)
            evidence = classify_trials(trials)
        oracle_spans = tuple(oracle_tracer.finished)
    else:
        failures = all_failures(trials)
        evidence = classify_trials(trials)
        oracle_spans = ()
    return CrossTestReport(
        trials=trials,
        failures=failures,
        evidence=evidence,
        traces=trace_sink,
        oracle_spans=oracle_spans,
    )
