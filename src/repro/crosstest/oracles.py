"""The three test oracles of §8.1.

* **Write-Read (WR)** — for valid data, what is read must be what was
  written (possibly through a different interface).
* **Error handling (EH)** — invalid data must be rejected or corrected
  with feedback; an invalid value that is stored and read back verbatim
  is a failure.
* **Differential (Diff)** — results/behaviour must be consistent across
  interfaces and across backend formats.
"""

from __future__ import annotations

import datetime
import decimal
import math
from dataclasses import dataclass
from itertools import combinations

from repro.common.row import values_equal
from repro.crosstest.harness import NO_ROWS, Outcome, Trial
from repro.tracing.core import span as trace_span

__all__ = [
    "OracleFailure",
    "signature",
    "wr_failures",
    "eh_failures",
    "difft_failures",
    "all_failures",
]


@dataclass(frozen=True)
class OracleFailure:
    oracle: str  # "wr" | "eh" | "difft"
    group: str  # spark_e2e | spark_hive | hive_spark
    input_id: int
    fmt: str
    plans: tuple[str, ...]
    detail: str


def canonical(value: object) -> str:
    """A stable, cross-type-comparable rendering of a cell value."""
    if value is NO_ROWS:
        return "<no rows>"
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if math.isnan(value):
            return "double:NaN"
        if math.isinf(value):
            return f"double:{'+' if value > 0 else '-'}Inf"
        return f"double:{value!r}"
    if isinstance(value, bool):
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, decimal.Decimal):
        return f"dec:{value}"
    if isinstance(value, bytes):
        return f"bin:{value.hex()}"
    if isinstance(value, datetime.datetime):
        return f"ts:{value.isoformat()}"
    if isinstance(value, datetime.date):
        return f"date:{value.isoformat()}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return f"str:{value}"


def signature(outcome: Outcome) -> str:
    """The behaviour fingerprint the Diff oracle compares.

    Cached on the outcome: every trial sits in two Diff buckets, so each
    fingerprint is requested several times during report assembly.
    """
    cached = outcome.__dict__.get("_signature")
    if cached is None:
        if not outcome.ok:
            cached = f"error:{outcome.stage}:{outcome.error_type}"
        else:
            cached = f"ok:{canonical(outcome.value)}:{outcome.value_type}"
        object.__setattr__(outcome, "_signature", cached)
    return cached


# ---------------------------------------------------------------------------
# WR
# ---------------------------------------------------------------------------


def wr_failures(trials: list[Trial]) -> list[OracleFailure]:
    failures = []
    for trial in trials:
        if not trial.test_input.valid:
            continue
        outcome = trial.outcome
        if not outcome.ok:
            failures.append(
                _failure(
                    "wr",
                    trial,
                    f"{outcome.stage} failed with {outcome.error_type}: "
                    f"{outcome.error_message}",
                )
            )
            continue
        if outcome.value is NO_ROWS:
            failures.append(_failure("wr", trial, "row vanished"))
            continue
        expected = trial.test_input.expected_value
        if not values_equal(outcome.value, expected):
            failures.append(
                _failure(
                    "wr",
                    trial,
                    f"wrote {canonical(expected)}, read "
                    f"{canonical(outcome.value)}",
                )
            )
    return failures


# ---------------------------------------------------------------------------
# EH
# ---------------------------------------------------------------------------


def eh_failures(trials: list[Trial]) -> list[OracleFailure]:
    failures = []
    for trial in trials:
        if trial.test_input.valid:
            continue
        outcome = trial.outcome
        if not outcome.ok or outcome.value is NO_ROWS:
            continue  # rejected: the system behaved
        if outcome.value is None:
            continue  # corrected to NULL: tolerated
        if values_equal(outcome.value, trial.test_input.py_value):
            failures.append(
                _failure(
                    "eh",
                    trial,
                    f"invalid value {canonical(trial.test_input.py_value)} "
                    "was stored and read back verbatim",
                )
            )
    return failures


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


def difft_failures(trials: list[Trial]) -> list[OracleFailure]:
    """Inconsistencies across interfaces (same fmt) and formats (same plan)."""
    failures = []
    by_group_fmt_input: dict[tuple, list[Trial]] = {}
    by_group_plan_input: dict[tuple, list[Trial]] = {}
    for trial in trials:
        key = (trial.plan.group, trial.fmt, trial.test_input.input_id)
        by_group_fmt_input.setdefault(key, []).append(trial)
        key = (trial.plan.group, trial.plan.name, trial.test_input.input_id)
        by_group_plan_input.setdefault(key, []).append(trial)

    # across interfaces within a group, same format
    for (group, fmt, input_id), bucket in sorted(
        by_group_fmt_input.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        failures.extend(_diff_bucket(bucket, group, input_id, fmt, axis="plan"))

    # across formats for the same plan
    for (group, _plan, input_id), bucket in sorted(
        by_group_plan_input.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        failures.extend(_diff_bucket(bucket, group, input_id, "*", axis="fmt"))
    return failures


def _diff_bucket(
    bucket: list[Trial], group: str, input_id: int, fmt: str, axis: str
) -> list[OracleFailure]:
    failures = []
    sigs = [signature(trial.outcome) for trial in bucket]
    for (left, left_sig), (right, right_sig) in combinations(
        zip(bucket, sigs), 2
    ):
        if left_sig == right_sig:
            continue
        left_label = left.plan.name if axis == "plan" else left.fmt
        right_label = right.plan.name if axis == "plan" else right.fmt
        failures.append(
            OracleFailure(
                oracle="difft",
                group=group,
                input_id=input_id,
                fmt=fmt,
                plans=(left.plan.name, right.plan.name),
                detail=f"{left_label} -> {left_sig} vs {right_label} -> {right_sig}",
            )
        )
    return failures


def all_failures(trials: list[Trial]) -> dict[str, list[OracleFailure]]:
    out: dict[str, list[OracleFailure]] = {}
    for name, oracle in (
        ("wr", wr_failures),
        ("eh", eh_failures),
        ("difft", difft_failures),
    ):
        with trace_span(
            f"oracle.{name}",
            system="crosstest",
            peer_system="oracle",
            operation=name,
            boundary="crosstest->oracle",
        ) as sp:
            failures = oracle(trials)
            if sp is not None:
                sp.attributes.update(
                    trials=len(trials), failures=len(failures)
                )
            out[name] = failures
    return out


def _failure(oracle: str, trial: Trial, detail: str) -> OracleFailure:
    return OracleFailure(
        oracle=oracle,
        group=trial.plan.group,
        input_id=trial.test_input.input_id,
        fmt=trial.fmt,
        plans=(trial.plan.name,),
        detail=detail,
    )
