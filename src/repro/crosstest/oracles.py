"""The three test oracles of §8.1.

* **Write-Read (WR)** — for valid data, what is read must be what was
  written (possibly through a different interface).
* **Error handling (EH)** — invalid data must be rejected or corrected
  with feedback; an invalid value that is stored and read back verbatim
  is a failure.
* **Differential (Diff)** — results/behaviour must be consistent across
  interfaces and across backend formats.
"""

from __future__ import annotations

import datetime
import decimal
import math
from dataclasses import dataclass
from itertools import combinations

from repro.common.row import values_equal
from repro.crosstest.harness import NO_ROWS, Outcome, Trial
from repro.faults.core import InjectionRecord
from repro.tracing.core import span as trace_span

__all__ = [
    "OracleFailure",
    "RobustnessVerdict",
    "signature",
    "wr_failures",
    "eh_failures",
    "difft_failures",
    "all_failures",
    "fault_robustness",
]


@dataclass(frozen=True)
class OracleFailure:
    oracle: str  # "wr" | "eh" | "difft"
    group: str  # spark_e2e | spark_hive | hive_spark
    input_id: int
    fmt: str
    plans: tuple[str, ...]
    detail: str
    #: which axis a differential failure compared ("plan" or "fmt") and
    #: the two compared labels — consumed by the fingerprinter, absent
    #: from the rendered report (defaults keep old constructions valid).
    axis: str = "plan"
    labels: tuple[str, ...] = ()


def canonical(value: object) -> str:
    """A stable, cross-type-comparable rendering of a cell value."""
    if value is NO_ROWS:
        return "<no rows>"
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if math.isnan(value):
            return "double:NaN"
        if math.isinf(value):
            return f"double:{'+' if value > 0 else '-'}Inf"
        return f"double:{value!r}"
    if isinstance(value, bool):
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, decimal.Decimal):
        return f"dec:{value}"
    if isinstance(value, bytes):
        return f"bin:{value.hex()}"
    if isinstance(value, datetime.datetime):
        return f"ts:{value.isoformat()}"
    if isinstance(value, datetime.date):
        return f"date:{value.isoformat()}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return f"str:{value}"


def signature(outcome: Outcome) -> str:
    """The behaviour fingerprint the Diff oracle compares.

    Cached on the outcome: every trial sits in two Diff buckets, so each
    fingerprint is requested several times during report assembly.
    """
    cached = outcome.__dict__.get("_signature")
    if cached is None:
        if not outcome.ok:
            cached = f"error:{outcome.stage}:{outcome.error_type}"
        else:
            cached = f"ok:{canonical(outcome.value)}:{outcome.value_type}"
        object.__setattr__(outcome, "_signature", cached)
    return cached


# ---------------------------------------------------------------------------
# WR
# ---------------------------------------------------------------------------


def wr_failures(trials: list[Trial]) -> list[OracleFailure]:
    failures = []
    for trial in trials:
        if not trial.test_input.valid:
            continue
        outcome = trial.outcome
        if not outcome.ok:
            failures.append(
                _failure(
                    "wr",
                    trial,
                    f"{outcome.stage} failed with {outcome.error_type}: "
                    f"{outcome.error_message}",
                )
            )
            continue
        if outcome.value is NO_ROWS:
            failures.append(_failure("wr", trial, "row vanished"))
            continue
        expected = trial.test_input.expected_value
        if not values_equal(outcome.value, expected):
            failures.append(
                _failure(
                    "wr",
                    trial,
                    f"wrote {canonical(expected)}, read "
                    f"{canonical(outcome.value)}",
                )
            )
    return failures


# ---------------------------------------------------------------------------
# EH
# ---------------------------------------------------------------------------


def eh_failures(trials: list[Trial]) -> list[OracleFailure]:
    failures = []
    for trial in trials:
        if trial.test_input.valid:
            continue
        outcome = trial.outcome
        if not outcome.ok or outcome.value is NO_ROWS:
            continue  # rejected: the system behaved
        if outcome.value is None:
            continue  # corrected to NULL: tolerated
        if values_equal(outcome.value, trial.test_input.py_value):
            failures.append(
                _failure(
                    "eh",
                    trial,
                    f"invalid value {canonical(trial.test_input.py_value)} "
                    "was stored and read back verbatim",
                )
            )
    return failures


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


def difft_failures(trials: list[Trial]) -> list[OracleFailure]:
    """Inconsistencies across interfaces (same fmt) and formats (same plan)."""
    failures = []
    by_group_fmt_input: dict[tuple, list[Trial]] = {}
    by_group_plan_input: dict[tuple, list[Trial]] = {}
    for trial in trials:
        key = (trial.plan.group, trial.fmt, trial.test_input.input_id)
        by_group_fmt_input.setdefault(key, []).append(trial)
        key = (trial.plan.group, trial.plan.name, trial.test_input.input_id)
        by_group_plan_input.setdefault(key, []).append(trial)

    # across interfaces within a group, same format (keys are unique, so
    # sorting items compares only the key tuples — no lambda needed)
    for (group, fmt, input_id), bucket in sorted(by_group_fmt_input.items()):
        failures.extend(_diff_bucket(bucket, group, input_id, fmt, axis="plan"))

    # across formats for the same plan
    for (group, _plan, input_id), bucket in sorted(
        by_group_plan_input.items()
    ):
        failures.extend(_diff_bucket(bucket, group, input_id, "*", axis="fmt"))
    return failures


def _diff_bucket(
    bucket: list[Trial], group: str, input_id: int, fmt: str, axis: str
) -> list[OracleFailure]:
    failures = []
    sigs = [signature(trial.outcome) for trial in bucket]
    # almost every bucket agrees; skip the pairwise walk when it does
    first = sigs[0]
    if all(sig == first for sig in sigs):
        return failures
    for (left, left_sig), (right, right_sig) in combinations(
        zip(bucket, sigs), 2
    ):
        if left_sig == right_sig:
            continue
        left_label = left.plan.name if axis == "plan" else left.fmt
        right_label = right.plan.name if axis == "plan" else right.fmt
        failures.append(
            OracleFailure(
                oracle="difft",
                group=group,
                input_id=input_id,
                fmt=fmt,
                plans=(left.plan.name, right.plan.name),
                detail=f"{left_label} -> {left_sig} vs {right_label} -> {right_sig}",
                axis=axis,
                labels=(left_label, right_label),
            )
        )
    return failures


# ---------------------------------------------------------------------------
# Fault robustness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RobustnessVerdict:
    """How one injected trial handled its faults — the paper's taxonomy.

    ``classification`` is one of:

    * ``masked`` — the outcome is identical to the fault-free baseline;
      retries (or sheer luck of the call graph) absorbed every fault.
    * ``gracefully_failed`` — the trial failed, but with a *typed*
      boundary error that names the failing interaction; an upstream
      could catch and handle it.
    * ``mis_handled`` — the fault fell through the cracks: a raw
      injected fault escaped to the top (``hang_equivalent`` /
      ``unhandled_fault``), the error surfaced in the wrong system or
      stage (``wrong_system_error``), or the trial "succeeded" with a
      different answer than the baseline (``silent_corruption``).
    """

    classification: str  # masked | gracefully_failed | mis_handled
    mode: str
    detail: str

    def to_json(self) -> dict:
        return {
            "classification": self.classification,
            "mode": self.mode,
            "detail": self.detail,
        }


def _classify_injected(
    records: tuple[InjectionRecord, ...],
    outcome: Outcome,
    baseline: Outcome,
) -> RobustnessVerdict:
    if signature(outcome) == signature(baseline):
        return RobustnessVerdict(
            "masked",
            "absorbed",
            f"{len(records)} fault(s) absorbed; outcome matches baseline",
        )
    kinds = {record.kind for record in records}
    if not outcome.ok:
        error_type = outcome.error_type
        if error_type == "InjectedTimeout":
            return RobustnessVerdict(
                "mis_handled",
                "hang_equivalent",
                f"raw timeout escaped at the {outcome.stage} stage: "
                f"{outcome.error_message}",
            )
        if error_type in ("InjectedIOError", "TransientFault", "InjectedFault"):
            return RobustnessVerdict(
                "mis_handled",
                "unhandled_fault",
                f"raw transient fault escaped at the {outcome.stage} "
                f"stage: {outcome.error_message}",
            )
        if error_type in ("BoundaryTimeout", "BoundaryUnavailable"):
            return RobustnessVerdict(
                "gracefully_failed",
                "typed_boundary_error",
                f"retries exhausted into {error_type} at the "
                f"{outcome.stage} stage",
            )
        if "stale_read" in kinds:
            return RobustnessVerdict(
                "mis_handled",
                "wrong_system_error",
                f"stale metastore read surfaced as {error_type} at the "
                f"{outcome.stage} stage (the table exists)",
            )
        if "torn_write" in kinds:
            if outcome.stage == "write":
                return RobustnessVerdict(
                    "gracefully_failed",
                    "typed_error",
                    f"torn write rejected at the write stage with "
                    f"{error_type}",
                )
            return RobustnessVerdict(
                "mis_handled",
                "wrong_system_error",
                f"write-side tear surfaced as {error_type} at the "
                f"{outcome.stage} stage — wrong system, wrong time",
            )
        return RobustnessVerdict(
            "gracefully_failed",
            "typed_error",
            f"fault surfaced as typed {error_type} at the "
            f"{outcome.stage} stage",
        )
    return RobustnessVerdict(
        "mis_handled",
        "silent_corruption",
        f"trial 'succeeded' but read {signature(outcome)} where the "
        f"baseline reads {signature(baseline)}",
    )


def fault_robustness(
    trials: list[Trial],
    injections: dict[int, tuple[InjectionRecord, ...]],
    baselines: dict[int, Outcome],
) -> dict[int, RobustnessVerdict]:
    """Classify every injected trial against its fault-free baseline.

    ``injections`` and ``baselines`` are keyed by global trial index
    (position in ``trials``). Trials whose injection tuple is empty
    received no fault and get no verdict. The classification is a pure
    function of (records, outcome, baseline), so a fixed (plan, seed)
    reproduces identical verdicts across runs and worker counts.
    """
    with trace_span(
        "oracle.fault_robustness",
        system="crosstest",
        peer_system="oracle",
        operation="fault_robustness",
        boundary="crosstest->oracle",
    ) as sp:
        verdicts: dict[int, RobustnessVerdict] = {}
        for index, records in sorted(injections.items()):
            if not records:
                continue
            baseline = baselines.get(index)
            if baseline is None:
                continue
            verdicts[index] = _classify_injected(
                records, trials[index].outcome, baseline
            )
        if sp is not None:
            sp.attributes.update(
                injected=len(verdicts),
                mis_handled=sum(
                    1
                    for verdict in verdicts.values()
                    if verdict.classification == "mis_handled"
                ),
            )
        return verdicts


def all_failures(trials: list[Trial]) -> dict[str, list[OracleFailure]]:
    out: dict[str, list[OracleFailure]] = {}
    for name, oracle in (
        ("wr", wr_failures),
        ("eh", eh_failures),
        ("difft", difft_failures),
    ):
        with trace_span(
            f"oracle.{name}",
            system="crosstest",
            peer_system="oracle",
            operation=name,
            boundary="crosstest->oracle",
        ) as sp:
            failures = oracle(trials)
            if sp is not None:
                sp.attributes.update(
                    trials=len(trials), failures=len(failures)
                )
            out[name] = failures
    return out


def _failure(oracle: str, trial: Trial, detail: str) -> OracleFailure:
    return OracleFailure(
        oracle=oracle,
        group=trial.plan.group,
        input_id=trial.test_input.input_id,
        fmt=trial.fmt,
        plans=(trial.plan.name,),
        detail=detail,
    )
