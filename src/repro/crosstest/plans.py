"""Test plans: the write→read interface matrix of Figure 6.

Three interfaces (SparkSQL, DataFrame, HiveQL), eight write→read pairs
grouped exactly as the paper groups its experiments:

* ``spark_e2e``   — Spark to Spark (4 pairs)
* ``spark_hive``  — Spark to Hive (2 pairs)
* ``hive_spark``  — Hive to Spark (2 pairs)

crossed with the three backend formats (ORC, Parquet, Avro).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Interface",
    "Plan",
    "ALL_PLANS",
    "FORMATS",
    "SPARK_E2E",
    "SPARK_TO_HIVE",
    "HIVE_TO_SPARK",
    "plans_in_group",
]

FORMATS = ("orc", "parquet", "avro")


class Interface:
    SPARKSQL = "sparksql"
    DATAFRAME = "dataframe"
    HIVEQL = "hiveql"


@dataclass(frozen=True)
class Plan:
    """One write-interface → read-interface pairing."""

    writer: str
    reader: str
    group: str

    @property
    def name(self) -> str:
        short = {"sparksql": "sql", "dataframe": "df", "hiveql": "hive"}
        return f"w_{short[self.writer]}_r_{short[self.reader]}"


SPARK_E2E = (
    Plan(Interface.SPARKSQL, Interface.SPARKSQL, "spark_e2e"),
    Plan(Interface.SPARKSQL, Interface.DATAFRAME, "spark_e2e"),
    Plan(Interface.DATAFRAME, Interface.SPARKSQL, "spark_e2e"),
    Plan(Interface.DATAFRAME, Interface.DATAFRAME, "spark_e2e"),
)

SPARK_TO_HIVE = (
    Plan(Interface.SPARKSQL, Interface.HIVEQL, "spark_hive"),
    Plan(Interface.DATAFRAME, Interface.HIVEQL, "spark_hive"),
)

HIVE_TO_SPARK = (
    Plan(Interface.HIVEQL, Interface.SPARKSQL, "hive_spark"),
    Plan(Interface.HIVEQL, Interface.DATAFRAME, "hive_spark"),
)

ALL_PLANS = SPARK_E2E + SPARK_TO_HIVE + HIVE_TO_SPARK

_GROUPS = {
    "spark_e2e": SPARK_E2E,
    "spark_hive": SPARK_TO_HIVE,
    "hive_spark": HIVE_TO_SPARK,
}


def plans_in_group(group: str) -> tuple[Plan, ...]:
    try:
        return _GROUPS[group]
    except KeyError:
        raise ValueError(
            f"unknown plan group {group!r}; known: {sorted(_GROUPS)}"
        ) from None
